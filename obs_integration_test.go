package clusterq

import (
	"fmt"
	"math"
	"testing"
)

// TestProbeUtilizationMatchesModel is the acceptance check for the
// observability layer: a probe-attached simulation of the canonical scenario
// must produce a non-empty timeline whose time-averaged per-tier utilization
// agrees with the analytical model.
func TestProbeUtilizationMatchesModel(t *testing.T) {
	c := Enterprise3Tier(1.0)
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetricRegistry()
	res, err := Simulate(c, SimOptions{
		Horizon:      30000,
		Replications: 2,
		Seed:         9,
		Probe:        &SimProbe{Period: 5, Registry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}

	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		t.Fatal("probe attached but Timeline is empty")
	}
	for j := range c.Tiers {
		name := fmt.Sprintf("tier%d_util", j)
		got := tl.Mean(name)
		want := m.Tiers[j].Utilization
		if math.IsNaN(got) {
			t.Fatalf("series %s missing from timeline %v", name, tl.Names())
		}
		if math.Abs(got-want) > 0.05 {
			t.Errorf("tier %d: sampled utilization %.4f vs model %.4f", j, got, want)
		}
	}

	// The registry carries the run summary alongside the event counters.
	if got := reg.Gauge("sim_replications", "").Value(); got != 2 {
		t.Errorf("sim_replications = %g, want 2", got)
	}
	if res.EventCounts["arrival"] == 0 {
		t.Errorf("event counters empty: %v", res.EventCounts)
	}
}
