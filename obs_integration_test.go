package clusterq

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestProbeUtilizationMatchesModel is the acceptance check for the
// observability layer: a probe-attached simulation of the canonical scenario
// must produce a non-empty timeline whose time-averaged per-tier utilization
// agrees with the analytical model.
func TestProbeUtilizationMatchesModel(t *testing.T) {
	c := Enterprise3Tier(1.0)
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetricRegistry()
	res, err := Simulate(c, SimOptions{
		Horizon:      30000,
		Replications: 2,
		Seed:         9,
		Probe:        &SimProbe{Period: 5, Registry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}

	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		t.Fatal("probe attached but Timeline is empty")
	}
	for j := range c.Tiers {
		name := fmt.Sprintf("tier%d_util", j)
		got := tl.Mean(name)
		want := m.Tiers[j].Utilization
		if math.IsNaN(got) {
			t.Fatalf("series %s missing from timeline %v", name, tl.Names())
		}
		if math.Abs(got-want) > 0.05 {
			t.Errorf("tier %d: sampled utilization %.4f vs model %.4f", j, got, want)
		}
	}

	// The registry carries the run summary alongside the event counters.
	if got := reg.Gauge("sim_replications", "").Value(); got != 2 {
		t.Errorf("sim_replications = %g, want 2", got)
	}
	if res.EventCounts["arrival"] == 0 {
		t.Errorf("event counters empty: %v", res.EventCounts)
	}
}

// TestFlightRecorderFullStack is the end-to-end acceptance check for the
// flight-recorder layer through the public facade: one simulation with the
// recorder, the window sensors and the probe registry attached, served live
// over HTTP — every endpoint group the CLIs' -http flag mounts must answer
// with consistent data.
func TestFlightRecorderFullStack(t *testing.T) {
	c := Enterprise3Tier(1.0)

	reg := NewMetricRegistry()
	rec := NewFlightRecorder(1 << 17)
	win, err := NewWindowSet(WindowConfig{Width: 1000}, len(c.Classes), len(c.Tiers))
	if err != nil {
		t.Fatal(err)
	}
	win.Bind(reg)
	res, err := Simulate(c, SimOptions{
		Horizon:      5000,
		Replications: 1, // the recorder contract
		Seed:         17,
		Probe:        &SimProbe{Period: 5, Registry: reg},
		Recorder:     rec,
		Windows:      win,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The recorder's per-class completion counts must agree with the
	// simulator's own Result, and every span must balance.
	var completed int64
	for k := range c.Classes {
		b := rec.Breakdown(k)
		completed += b.Completed
		// The decomposition is exact by construction, so == is safe here
		// (floateq exempts _test.go files).
		if b.Sojourn() != b.Queue+b.Service+b.Preempted+b.Backoff {
			t.Errorf("class %d breakdown components do not sum to sojourn", k)
		}
	}
	if got := res.EventCounts["exit"]; completed != got {
		t.Errorf("recorder completed %d vs simulator exits %d", completed, got)
	}

	srv := httptest.NewServer(ServeMetrics(reg, rec))
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	// /metrics: Prometheus text with the probe counters and window gauges.
	prom := get("/metrics")
	for _, want := range []string{"sim_events_arrival_total", "window_class0_arrival_rate", "window_tier0_utilization"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// /metrics.json: well-formed JSON carrying the same registry.
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(get("/metrics.json")), &doc); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Error("/metrics.json has no metrics")
	}

	// /trace: Chrome trace-event JSON with the recorder's events.
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &chrome); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("/trace has no events despite a recorded run")
	}

	// /debug/pprof: the runtime profile index answers.
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index does not look like pprof")
	}
}
