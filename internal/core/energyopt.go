package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// EnergyOptions configures MinimizeEnergy and MinimizeEnergyPerClass
// (problems C3a and C3b).
type EnergyOptions struct {
	// MaxWeightedDelay bounds the aggregate (arrival-rate-weighted)
	// average end-to-end delay; used by MinimizeEnergy.
	MaxWeightedDelay float64
	// MaxClassDelay[k] bounds class k's average end-to-end delay; used by
	// MinimizeEnergyPerClass. Entries ≤ 0 mean "unconstrained".
	MaxClassDelay []float64
	// Starts is the number of multi-start points (default 4).
	Starts int
	// Solver options for the inner augmented-Lagrangian solves.
	AugLag opt.AugLagOptions
}

// MinimizeEnergy solves the paper's C3a problem: choose per-tier speeds to
// minimize the cluster's average power subject to the all-class average
// end-to-end delay staying within the bound.
//
//	min_s  P(s)
//	s.t.   D̄(s) ≤ MaxWeightedDelay,  s ∈ [s_min, s_max]
//
// Power increases and delay decreases in every speed, so the optimum runs
// the cluster as slowly as the delay bound allows.
func MinimizeEnergy(c *cluster.Cluster, o EnergyOptions) (*Solution, error) {
	if !(o.MaxWeightedDelay > 0) {
		return nil, fmt.Errorf("core: delay bound %g must be positive", o.MaxWeightedDelay)
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}
	// Feasibility: the fastest configuration gives the smallest achievable
	// delay.
	if dMin := ev.weightedDelay(box.Hi, nil); dMin > o.MaxWeightedDelay {
		return nil, fmt.Errorf("core: delay bound %g s infeasible: best achievable is %g s",
			o.MaxWeightedDelay, dMin)
	}

	objective := func(s []float64) float64 { return ev.power(s) }
	bound := func(s []float64) float64 {
		d := ev.weightedDelay(s, nil)
		if math.IsInf(d, 1) {
			return math.Inf(1)
		}
		return d - o.MaxWeightedDelay
	}

	starts := o.Starts
	if starts <= 0 {
		starts = 4
	}
	solve := func(x0 []float64) opt.Result {
		return opt.AugmentedLagrangian(objective, []opt.Constraint{bound}, box, x0, o.AugLag)
	}
	r := opt.MultiStart(solve, box, starts)
	if math.IsInf(r.F, 1) {
		return nil, fmt.Errorf("core: no feasible configuration found")
	}
	if v := bound(r.X); v > 1e-3*(1+o.MaxWeightedDelay) {
		return nil, fmt.Errorf("core: solver left delay bound violated by %g s", v)
	}
	return ev.finish(r.X, r.F, r)
}

// MinimizeEnergyPerClass solves the paper's C3b problem: minimize power with
// an individual delay bound per class (entries ≤ 0 are unconstrained).
//
//	min_s  P(s)
//	s.t.   D_k(s) ≤ MaxClassDelay[k] for every bounded class k.
//
// Per-class bounds interact with priority: tight bounds on low-priority
// classes are the expensive ones, since the only lever that helps them — more
// speed — also overshoots the already-easy high-priority bounds.
func MinimizeEnergyPerClass(c *cluster.Cluster, o EnergyOptions) (*Solution, error) {
	if len(o.MaxClassDelay) != len(c.Classes) {
		return nil, fmt.Errorf("core: %d delay bounds for %d classes", len(o.MaxClassDelay), len(c.Classes))
	}
	anyBound := false
	for _, b := range o.MaxClassDelay {
		if b > 0 {
			anyBound = true
		}
	}
	if !anyBound {
		return nil, fmt.Errorf("core: no positive delay bound given")
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}
	// Feasibility at maximum speed.
	if mFast := ev.metricsAt(box.Hi); mFast == nil {
		return nil, fmt.Errorf("core: cluster invalid at maximum speeds")
	} else {
		for k, b := range o.MaxClassDelay {
			if b > 0 && mFast.Delay[k] > b {
				return nil, fmt.Errorf("core: class %d bound %g s infeasible: best achievable is %g s",
					k, b, mFast.Delay[k])
			}
		}
	}

	objective := func(s []float64) float64 { return ev.power(s) }
	var gs []opt.Constraint
	for k, b := range o.MaxClassDelay {
		if b <= 0 {
			continue
		}
		k, b := k, b
		gs = append(gs, func(s []float64) float64 {
			m := ev.metricsAt(s)
			if m == nil || math.IsInf(m.Delay[k], 1) {
				return math.Inf(1)
			}
			// Normalize so the multiplier scale is comparable across
			// classes with very different bounds.
			return (m.Delay[k] - b) / b
		})
	}

	starts := o.Starts
	if starts <= 0 {
		starts = 4
	}
	solve := func(x0 []float64) opt.Result {
		return opt.AugmentedLagrangian(objective, gs, box, x0, o.AugLag)
	}
	r := opt.MultiStart(solve, box, starts)
	if math.IsInf(r.F, 1) {
		return nil, fmt.Errorf("core: no feasible configuration found")
	}
	for i, g := range gs {
		if v := g(r.X); v > 1e-3 {
			return nil, fmt.Errorf("core: solver left constraint %d violated by %g (relative)", i, v)
		}
	}
	return ev.finish(r.X, r.F, r)
}

// BindingClasses reports which bounded classes sit within tol (relative) of
// their delay bound in the solution — the classes whose SLAs actually cost
// energy.
func BindingClasses(sol *Solution, bounds []float64, tol float64) []int {
	if tol <= 0 {
		tol = 0.02
	}
	var binding []int
	for k, b := range bounds {
		if b <= 0 || k >= len(sol.Metrics.Delay) {
			continue
		}
		if sol.Metrics.Delay[k] >= b*(1-tol) {
			binding = append(binding, k)
		}
	}
	return binding
}
