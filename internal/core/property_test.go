package core

import (
	"math"
	"math/rand"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// randomCluster draws a structurally valid random cluster: 1–4 tiers, 1–3
// classes, random demands, power coefficients, server counts and loads kept
// comfortably inside stability at max speed.
func randomCluster(rng *rand.Rand) *cluster.Cluster {
	j := 1 + rng.Intn(4)
	k := 1 + rng.Intn(3)
	tiers := make([]*cluster.Tier, j)
	for i := range tiers {
		pm, err := power.NewPowerLaw(20+80*rng.Float64(), 0.1+rng.Float64(), 2+rng.Float64())
		if err != nil {
			panic(err)
		}
		demands := make([]queueing.Demand, k)
		for d := range demands {
			cv2 := []float64{0, 0.5, 1, 2}[rng.Intn(4)]
			demands[d] = queueing.Demand{Work: 0.3 + 2*rng.Float64(), CV2: cv2}
		}
		tiers[i] = &cluster.Tier{
			Name:       string(rune('A' + i)),
			Servers:    1 + rng.Intn(3),
			MinSpeed:   0.5,
			MaxSpeed:   8 + 4*rng.Float64(),
			Discipline: queueing.NonPreemptive,
			Power:      pm,
			Demands:    demands,
		}
		tiers[i].Speed = tiers[i].MaxSpeed // placed at a valid point; solvers move it
	}
	classes := make([]cluster.Class, k)
	for i := range classes {
		classes[i] = cluster.Class{Name: string(rune('a' + i)), Lambda: 0.2 + rng.Float64()}
	}
	c := &cluster.Cluster{Tiers: tiers, Classes: classes}
	// Scale arrivals so the bottleneck at max speed sits near 50%: every
	// random instance is solvable with headroom.
	u, _ := c.Network().BottleneckUtilization(c.Lambdas())
	if u > 0 {
		f := 0.5 / u
		for i := range c.Classes {
			c.Classes[i].Lambda *= f
		}
	}
	return c
}

// TestDualSolverPropertyRandomClusters drives the decomposed solver over
// random instances and asserts the solution contract: feasibility, bound
// satisfaction, and dominance over the uniform baseline.
func TestDualSolverPropertyRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 25; trial++ {
		c := randomCluster(rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random cluster: %v", trial, err)
		}
		// A reachable delay bound: twice the best achievable.
		_, hi := c.SpeedBounds()
		fast := c.Clone()
		if err := fast.SetSpeeds(hi); err != nil {
			t.Fatal(err)
		}
		mFast, err := cluster.Evaluate(fast)
		if err != nil {
			t.Fatal(err)
		}
		if !mFast.Stable() {
			continue // random instance saturated even flat out; skip
		}
		bound := mFast.WeightedDelay * 2

		sol, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound})
		if err != nil {
			t.Errorf("trial %d: dual failed: %v", trial, err)
			continue
		}
		if sol.Metrics.WeightedDelay > bound*1.002 {
			t.Errorf("trial %d: bound %g violated: %g", trial, bound, sol.Metrics.WeightedDelay)
		}
		if !sol.Metrics.Stable() {
			t.Errorf("trial %d: unstable solution", trial)
		}
		// Never worse than the uniform single-knob baseline.
		if base, err := UniformEnergyBaseline(c, bound); err == nil {
			if sol.Objective > base.Objective*1.005 {
				t.Errorf("trial %d: dual %g worse than uniform %g", trial, sol.Objective, base.Objective)
			}
		}
		// Power at the solution equals the objective.
		if math.Abs(sol.Objective-sol.Metrics.TotalPower) > 1e-6*(1+sol.Objective) {
			t.Errorf("trial %d: objective %g != power %g", trial, sol.Objective, sol.Metrics.TotalPower)
		}
	}
}

// TestCostSolverPropertyRandomClusters drives the C4 sizing over random
// instances with synthesized SLAs and asserts: SLAs hold, removal polish
// leaves no obviously redundant server.
func TestCostSolverPropertyRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 12; trial++ {
		c := randomCluster(rng)
		for i := range c.Tiers {
			c.Tiers[i].CostPerServer = 1 + 3*rng.Float64()
		}
		// SLA: 3× the max-speed delay per class — demanding but reachable
		// once enough servers exist.
		_, hi := c.SpeedBounds()
		fast := c.Clone()
		if err := fast.SetSpeeds(hi); err != nil {
			t.Fatal(err)
		}
		mFast, err := cluster.Evaluate(fast)
		if err != nil || !mFast.Stable() {
			continue
		}
		for k := range c.Classes {
			c.Classes[k].SLA.MaxMeanDelay = mFast.Delay[k] * 3
		}
		// Load it harder so sizing is non-trivial.
		heavier := c.Clone()
		for k := range heavier.Classes {
			heavier.Classes[k].Lambda *= 1.4
		}

		sol, err := MinimizeCost(heavier, CostOptions{SkipSpeedTuning: true, MaxServersPerTier: 16})
		if err != nil {
			// Some random instances are genuinely unreachable within the
			// cap — acceptable, but should be rare.
			t.Logf("trial %d: sizing failed (acceptable if rare): %v", trial, err)
			continue
		}
		reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if !r.Satisfied() {
				t.Errorf("trial %d: SLA violated: %+v", trial, r)
			}
		}
		// Polish property: removing any single server must break an SLA
		// (otherwise the solution is not minimal under single removals).
		for j := range sol.Cluster.Tiers {
			if sol.Cluster.Tiers[j].Servers <= 1 {
				continue
			}
			probe := sol.Cluster.Clone()
			probe.Tiers[j].Servers--
			if slasHoldAtMaxSpeed(probe) {
				t.Errorf("trial %d: tier %d has a removable server", trial, j)
			}
		}
	}
}
