package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
	"clusterq/internal/power"
)

// This file implements the Lagrangian dual decomposition solver for the
// C2/C3a problems — the approach the paper's analytical setting makes
// natural. Under the Poisson-arrival coupling, both objectives are SEPARABLE
// across tiers:
//
//	D(s) = Σ_j f_j(s_j)   (weighted delay contribution of tier j)
//	P(s) = Σ_j g_j(s_j)   (average power of tier j)
//
// so the Lagrangian min_s Σ_j [g_j(s_j) + β f_j(s_j)] splits into J
// independent one-dimensional minimizations (each convex: power is convex
// increasing, delay convex decreasing in the speed), and the single dual
// multiplier β is found by bisection on the constraint. The result is exact
// for the separable model and two to three orders of magnitude faster than
// the general-purpose augmented-Lagrangian path, which remains available for
// the non-separable problems (per-class bounds, tails).

// tierFns holds the per-tier delay and power functions of one cluster.
type tierFns struct {
	c   *cluster.Cluster
	lo  []float64
	hi  []float64
	wBy []float64 // per-class weights, normalized to sum 1
}

// newTierFns prepares the decomposition for the cluster. Weights default to
// arrival-rate weighting.
func newTierFns(c *cluster.Cluster, weights []float64) (*tierFns, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	work := c.Clone()
	lo, hi := work.SpeedBounds()
	w := weights
	if w == nil {
		w = work.Lambdas()
	}
	var sum float64
	for _, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("core: negative weight %g", v)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: all-zero weights")
	}
	wn := make([]float64, len(w))
	for i, v := range w {
		wn[i] = v / sum
	}
	return &tierFns{c: work, lo: lo, hi: hi, wBy: wn}, nil
}

// delayAt returns f_j(s): tier j's contribution to the weighted mean delay
// when running at speed s — Σ_k w_k · visits_{k,j} · resp_{k,j}(s).
func (t *tierFns) delayAt(j int, s float64) float64 {
	st := t.c.Tiers[j].Station()
	st.Speed = s
	at := perTierArrivalsOf(t.c, j)
	_, resp, err := st.ResponseTimes(at)
	if err != nil {
		return math.Inf(1)
	}
	var d float64
	for k := range t.c.Classes {
		visits := t.c.VisitRates(k)[j]
		if visits == 0 {
			continue
		}
		if math.IsInf(resp[k], 1) {
			return math.Inf(1)
		}
		d += t.wBy[k] * visits * resp[k]
	}
	return d
}

// powerAt returns g_j(s): tier j's average power at speed s.
func (t *tierFns) powerAt(j int, s float64) float64 {
	tier := t.c.Tiers[j]
	st := tier.Station()
	st.Speed = s
	rho := st.Utilization(perTierArrivalsOf(t.c, j))
	return power.StationPower(tier.Power, s, tier.Servers, rho)
}

// argminLagrangian returns, for multiplier beta, the per-tier minimizers of
// g_j + β·f_j and the resulting total delay and power.
func (t *tierFns) argminLagrangian(beta float64) (speeds []float64, delay, pow float64) {
	j := len(t.c.Tiers)
	speeds = make([]float64, j)
	for i := 0; i < j; i++ {
		i := i
		obj := func(s float64) float64 {
			d := t.delayAt(i, s)
			if math.IsInf(d, 1) {
				return math.Inf(1)
			}
			return t.powerAt(i, s) + beta*d
		}
		s, _, _ := opt.GoldenSection(obj, t.lo[i], t.hi[i], 1e-10)
		speeds[i] = s
		delay += t.delayAt(i, s)
		pow += t.powerAt(i, s)
	}
	return speeds, delay, pow
}

// argminDelayLagrangian returns the per-tier minimizers of f_j + β·g_j (the
// C2 dual) and the resulting totals.
func (t *tierFns) argminDelayLagrangian(beta float64) (speeds []float64, delay, pow float64) {
	j := len(t.c.Tiers)
	speeds = make([]float64, j)
	for i := 0; i < j; i++ {
		i := i
		obj := func(s float64) float64 {
			d := t.delayAt(i, s)
			if math.IsInf(d, 1) {
				return math.Inf(1)
			}
			return d + beta*t.powerAt(i, s)
		}
		s, _, _ := opt.GoldenSection(obj, t.lo[i], t.hi[i], 1e-10)
		speeds[i] = s
		delay += t.delayAt(i, s)
		pow += t.powerAt(i, s)
	}
	return speeds, delay, pow
}

// MinimizeEnergyDual solves C3a by Lagrangian dual decomposition: bisect the
// multiplier β ≥ 0 so the delay of the per-tier Lagrangian minimizers meets
// the bound. Exact for the separable model; use MinimizeEnergy (augmented
// Lagrangian) for cross-checking or as a general fallback.
func MinimizeEnergyDual(c *cluster.Cluster, o EnergyOptions) (*Solution, error) {
	if !(o.MaxWeightedDelay > 0) {
		return nil, fmt.Errorf("core: delay bound %g must be positive", o.MaxWeightedDelay)
	}
	t, err := newTierFns(c, nil)
	if err != nil {
		return nil, err
	}
	bound := o.MaxWeightedDelay
	evals := 0
	var trace []opt.TraceEntry

	// β = 0 minimizes power alone (slowest speeds): if that already meets
	// the bound, it is the optimum.
	s0, d0, p0 := t.argminLagrangian(0)
	evals++
	trace = append(trace, opt.TraceEntry{F: p0, Violation: math.Max(0, d0-bound), Evals: evals})
	if d0 <= bound {
		return finishDual(t, s0, evals, powerObjective, trace)
	}
	// Feasibility: the fastest point gives the least delay.
	dMin := 0.0
	for j := range t.c.Tiers {
		dMin += t.delayAt(j, t.hi[j])
	}
	if dMin > bound {
		return nil, fmt.Errorf("core: delay bound %g s infeasible: best achievable is %g s", bound, dMin)
	}

	// Bracket β: delay(β) is non-increasing; grow until feasible.
	betaHi := 1.0
	for {
		_, d, _ := t.argminLagrangian(betaHi)
		evals++
		if d <= bound {
			break
		}
		betaHi *= 4
		if betaHi > 1e18 {
			return nil, fmt.Errorf("core: dual multiplier failed to bracket the bound")
		}
	}
	betaLo := 0.0
	var speeds []float64
	for i := 0; i < 100 && betaHi-betaLo > 1e-12*(1+betaHi); i++ {
		mid := (betaLo + betaHi) / 2
		s, d, p := t.argminLagrangian(mid)
		evals++
		trace = append(trace, opt.TraceEntry{
			Iter: i + 1, F: p, Violation: math.Max(0, d-bound),
			Step: betaHi - betaLo, Evals: evals,
		})
		if d <= bound {
			betaHi = mid
			speeds = s
		} else {
			betaLo = mid
		}
	}
	if speeds == nil {
		speeds, _, _ = t.argminLagrangian(betaHi)
		evals++
	}
	return finishDual(t, speeds, evals, powerObjective, trace)
}

// MinimizeDelayDual solves C2 by the symmetric dual: bisect β ≥ 0 so the
// power of the per-tier minimizers of f_j + β·g_j meets the energy budget.
func MinimizeDelayDual(c *cluster.Cluster, o DelayOptions) (*Solution, error) {
	if !(o.EnergyBudget > 0) {
		return nil, fmt.Errorf("core: energy budget %g must be positive", o.EnergyBudget)
	}
	if o.Weights != nil && len(o.Weights) != len(c.Classes) {
		return nil, fmt.Errorf("core: %d weights for %d classes", len(o.Weights), len(c.Classes))
	}
	t, err := newTierFns(c, o.Weights)
	if err != nil {
		return nil, err
	}
	budget := o.EnergyBudget
	evals := 0
	var trace []opt.TraceEntry

	// β = 0 minimizes delay alone (fastest speeds): if affordable, done.
	s0, d0, p0 := t.argminDelayLagrangian(0)
	evals++
	trace = append(trace, opt.TraceEntry{F: d0, Violation: math.Max(0, p0-budget), Evals: evals})
	if p0 <= budget {
		return finishDual(t, s0, evals, delayObjective, trace)
	}
	// Feasibility: the cheapest point.
	pMin := 0.0
	for j := range t.c.Tiers {
		pMin += t.powerAt(j, t.lo[j])
	}
	if pMin > budget {
		return nil, fmt.Errorf("core: energy budget %g W infeasible: minimum stable power is %g W", budget, pMin)
	}

	betaHi := 1e-6
	for {
		_, _, p := t.argminDelayLagrangian(betaHi)
		evals++
		if p <= budget {
			break
		}
		betaHi *= 4
		if betaHi > 1e18 {
			return nil, fmt.Errorf("core: dual multiplier failed to bracket the budget")
		}
	}
	betaLo := 0.0
	var speeds []float64
	for i := 0; i < 100 && betaHi-betaLo > 1e-12*(1+betaHi); i++ {
		mid := (betaLo + betaHi) / 2
		s, d, p := t.argminDelayLagrangian(mid)
		evals++
		trace = append(trace, opt.TraceEntry{
			Iter: i + 1, F: d, Violation: math.Max(0, p-budget),
			Step: betaHi - betaLo, Evals: evals,
		})
		if p <= budget {
			betaHi = mid
			speeds = s
		} else {
			betaLo = mid
		}
	}
	if speeds == nil {
		speeds, _, _ = t.argminDelayLagrangian(betaHi)
		evals++
	}
	return finishDual(t, speeds, evals, delayObjective, trace)
}

// dualObjective selects what the assembled Solution reports as Objective.
type dualObjective int

const (
	powerObjective dualObjective = iota // C3a: minimized power
	delayObjective                      // C2: minimized weighted delay
)

// finishDual assembles a Solution at the decomposed speeds. The objective is
// recomputed from the separable tier functions so custom weights are
// honoured; trace carries the dual bisection's convergence record.
func finishDual(t *tierFns, speeds []float64, evals int, kind dualObjective, trace []opt.TraceEntry) (*Solution, error) {
	out := t.c.Clone()
	if err := out.SetSpeeds(speeds); err != nil {
		return nil, err
	}
	m, err := cluster.Evaluate(out)
	if err != nil {
		return nil, err
	}
	obj := m.TotalPower
	if kind == delayObjective {
		obj = 0
		for j := range t.c.Tiers {
			obj += t.delayAt(j, speeds[j])
		}
	}
	return &Solution{
		Cluster: out, Metrics: m,
		Objective: obj,
		Result: opt.Result{
			X: speeds, F: obj, Iters: len(trace), Evals: evals,
			Converged: true, Trace: trace,
		},
	}, nil
}
