// Package core implements the paper's contributions on top of the cluster
// model:
//
//   - MinimizeDelay (C2): minimize the average end-to-end delay subject to an
//     average energy (power) budget, by optimizing per-tier DVFS speeds.
//   - MinimizeEnergy (C3a): minimize the average power subject to a bound on
//     the aggregate (all-class) average end-to-end delay.
//   - MinimizeEnergyPerClass (C3b): the same with per-class delay bounds.
//   - MinimizeCost (C4): minimize the total provisioning cost (servers ×
//     per-server price) such that every priority class's SLA — mean and/or
//     percentile end-to-end delay — is guaranteed, choosing both integer
//     server counts and tier speeds.
//
// All solvers operate on a clone of the input cluster; the input is never
// mutated. Baseline allocators (uniform, load-proportional) used in the
// paper-style comparisons live in baselines.go.
package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// Solution is the outcome of any of the optimizers: the configured cluster,
// its analytical metrics, and solver diagnostics.
type Solution struct {
	// Cluster is a configured clone of the input with the chosen speeds
	// (and, for MinimizeCost, server counts).
	Cluster *cluster.Cluster
	// Metrics are the analytical metrics of the configured cluster.
	Metrics *cluster.Metrics
	// Objective is the achieved objective value (delay, power or cost,
	// depending on the problem).
	Objective float64
	// Result carries solver diagnostics (iterations, evaluations).
	Result opt.Result
}

func (s *Solution) String() string {
	return fmt.Sprintf("objective=%.6g speeds=%v (evals=%d)",
		s.Objective, s.Cluster.Speeds(), s.Result.Evals)
}

// evaluator caches the cloned cluster and provides the objective plumbing
// every optimizer shares: write a candidate speed vector, evaluate, map
// failures to +Inf.
type evaluator struct {
	c *cluster.Cluster
}

func newEvaluator(c *cluster.Cluster) (*evaluator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &evaluator{c: c.Clone()}, nil
}

// metricsAt evaluates the cluster at the candidate speeds; nil means the
// configuration is invalid or unstable in a way Evaluate rejects.
func (e *evaluator) metricsAt(speeds []float64) *cluster.Metrics {
	if err := e.c.SetSpeeds(speeds); err != nil {
		return nil
	}
	m, err := cluster.Evaluate(e.c)
	if err != nil {
		return nil
	}
	return m
}

// weightedDelay returns the class-weighted mean delay at the candidate
// speeds, +Inf when unstable/invalid. Weights default to arrival rates.
func (e *evaluator) weightedDelay(speeds, weights []float64) float64 {
	m := e.metricsAt(speeds)
	if m == nil {
		return math.Inf(1)
	}
	if weights == nil {
		if !m.Stable() {
			return math.Inf(1)
		}
		return m.WeightedDelay
	}
	var num, den float64
	for k, w := range weights {
		if math.IsInf(m.Delay[k], 1) {
			return math.Inf(1)
		}
		num += w * m.Delay[k]
		den += w
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// power returns total average power at the candidate speeds, +Inf on failure.
func (e *evaluator) power(speeds []float64) float64 {
	m := e.metricsAt(speeds)
	if m == nil {
		return math.Inf(1)
	}
	return m.TotalPower
}

// box returns the DVFS search box of the cluster.
func (e *evaluator) box() (opt.Box, error) {
	lo, hi := e.c.SpeedBounds()
	return opt.NewBox(lo, hi)
}

// finish assembles a Solution at the given speeds.
func (e *evaluator) finish(speeds []float64, objective float64, r opt.Result) (*Solution, error) {
	out := e.c.Clone()
	if err := out.SetSpeeds(speeds); err != nil {
		return nil, err
	}
	m, err := cluster.Evaluate(out)
	if err != nil {
		return nil, err
	}
	return &Solution{Cluster: out, Metrics: m, Objective: objective, Result: r}, nil
}
