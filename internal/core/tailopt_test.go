package core

import (
	"testing"

	"clusterq/internal/cluster"
)

func TestMinimizeEnergyTailMeetsBounds(t *testing.T) {
	c := symCluster(3, 2, 0.5)
	bounds := []TailBound{
		{Delay: 5, Percentile: 0.95},
		{Delay: 12, Percentile: 0.95},
	}
	sol, err := MinimizeEnergyTail(c, TailOptions{Bounds: bounds, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range bounds {
		q, err := cluster.DelayQuantile(sol.Cluster, sol.Metrics, k, b.Percentile)
		if err != nil {
			t.Fatal(err)
		}
		if q > b.Delay*1.005 {
			t.Errorf("class %d p95 %g exceeds bound %g", k, q, b.Delay)
		}
	}
}

func TestTailBoundCostsMoreThanEqualMeanBound(t *testing.T) {
	// Requiring the p95 below X is strictly harder than requiring the MEAN
	// below X, so it must cost at least as much power.
	c := symCluster(2, 2, 0.5)
	x := 3.0
	meanSol, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{x, x}, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	tailSol, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{Delay: x, Percentile: 0.95}, {Delay: x, Percentile: 0.95}},
		Starts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(tailSol.Objective >= meanSol.Objective*0.999) {
		t.Errorf("tail bound power %g below mean bound power %g", tailSol.Objective, meanSol.Objective)
	}
}

func TestMinimizeEnergyTailUnconstrainedEntries(t *testing.T) {
	c := symCluster(2, 3, 0.4)
	bounds := []TailBound{{}, {}, {Delay: 8, Percentile: 0.9}}
	sol, err := MinimizeEnergyTail(c, TailOptions{Bounds: bounds, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.DelayQuantile(sol.Cluster, sol.Metrics, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if q > 8*1.005 {
		t.Errorf("p90 %g exceeds 8", q)
	}
}

func TestMinimizeEnergyTailErrors(t *testing.T) {
	c := symCluster(2, 2, 0.4)
	if _, err := MinimizeEnergyTail(c, TailOptions{Bounds: []TailBound{{}}}); err == nil {
		t.Error("wrong bound count accepted")
	}
	if _, err := MinimizeEnergyTail(c, TailOptions{Bounds: []TailBound{{}, {}}}); err == nil {
		t.Error("all-unconstrained accepted")
	}
	if _, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{Delay: 1, Percentile: 1.5}, {}},
	}); err == nil {
		t.Error("percentile > 1 accepted")
	}
	if _, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{Delay: 1e-9, Percentile: 0.95}, {}},
	}); err == nil {
		t.Error("impossible bound accepted")
	}
}

func TestTighterPercentileCostsMore(t *testing.T) {
	c := symCluster(2, 2, 0.5)
	x := 4.0
	p90, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{}, {Delay: x, Percentile: 0.9}}, Starts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p99, err := MinimizeEnergyTail(c, TailOptions{
		Bounds: []TailBound{{}, {Delay: x, Percentile: 0.99}}, Starts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(p99.Objective >= p90.Objective*0.999) {
		t.Errorf("p99 power %g below p90 power %g", p99.Objective, p90.Objective)
	}
}
