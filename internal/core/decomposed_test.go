package core

import (
	"testing"
	"time"
)

func TestDualMatchesAugLagOnEnergy(t *testing.T) {
	// Both solvers attack the same separable problem; the dual must find a
	// power no worse than the general solver (it is exact here) while
	// meeting the bound.
	for _, shape := range []struct{ j, k int }{{2, 2}, {3, 3}} {
		c := symCluster(shape.j, shape.k, 0.6)
		bound := 3.0
		dual, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound})
		if err != nil {
			t.Fatalf("%dx%d dual: %v", shape.j, shape.k, err)
		}
		al, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: bound, Starts: 3})
		if err != nil {
			t.Fatalf("%dx%d auglag: %v", shape.j, shape.k, err)
		}
		if dual.Metrics.WeightedDelay > bound*1.001 {
			t.Errorf("%dx%d: dual violates bound: %g", shape.j, shape.k, dual.Metrics.WeightedDelay)
		}
		if dual.Objective > al.Objective*1.005 {
			t.Errorf("%dx%d: dual power %g worse than auglag %g", shape.j, shape.k, dual.Objective, al.Objective)
		}
	}
}

func TestDualMatchesAugLagOnDelay(t *testing.T) {
	c := symCluster(3, 2, 0.6)
	budget := 700.0
	dual, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	al, err := MinimizeDelay(c, DelayOptions{EnergyBudget: budget, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Metrics.TotalPower > budget*1.001 {
		t.Errorf("dual violates budget: %g", dual.Metrics.TotalPower)
	}
	if dual.Objective > al.Objective*1.005 {
		t.Errorf("dual delay %g worse than auglag %g", dual.Objective, al.Objective)
	}
}

func TestDualMuchFasterThanAugLag(t *testing.T) {
	c := symCluster(5, 4, 0.6)
	bound := 3.0
	// This test deliberately measures wall time: its whole point is the
	// solver-speed comparison, not simulated time.
	//lint:waive simdeterm reason="wall-clock measurement is the subject of this test" until=2027-08-01
	t0 := time.Now()
	if _, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound}); err != nil {
		t.Fatal(err)
	}
	//lint:waive simdeterm reason="wall-clock measurement is the subject of this test" until=2027-08-01
	dualTime := time.Since(t0)
	//lint:waive simdeterm reason="wall-clock measurement is the subject of this test" until=2027-08-01
	t0 = time.Now()
	if _, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: bound, Starts: 2}); err != nil {
		t.Fatal(err)
	}
	//lint:waive simdeterm reason="wall-clock measurement is the subject of this test" until=2027-08-01
	alTime := time.Since(t0)
	if dualTime*3 > alTime {
		t.Logf("dual %v vs auglag %v — decomposition expected to be much faster", dualTime, alTime)
		// Timing assertions are flaky on loaded machines; only fail when
		// the dual is actually SLOWER.
		if dualTime > alTime {
			t.Errorf("dual (%v) slower than auglag (%v)", dualTime, alTime)
		}
	}
}

func TestDualLooseBoundStopsAtPowerFloor(t *testing.T) {
	// With an enormous bound the dual must return the β=0 point: the
	// cheapest stable speeds.
	c := symCluster(2, 2, 0.5)
	sol, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := sol.Cluster.SpeedBounds()
	for i, s := range sol.Cluster.Speeds() {
		if s > lo[i]*1.02 {
			t.Errorf("tier %d speed %g above floor %g with a loose bound", i, s, lo[i])
		}
	}
}

func TestDualRichBudgetRunsFlatOut(t *testing.T) {
	c := symCluster(2, 2, 0.5)
	sol, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	_, hi := sol.Cluster.SpeedBounds()
	for i, s := range sol.Cluster.Speeds() {
		if s < hi[i]*0.98 {
			t.Errorf("tier %d speed %g below max %g with an unlimited budget", i, s, hi[i])
		}
	}
}

func TestDualInfeasibleCases(t *testing.T) {
	c := symCluster(3, 2, 0.7)
	if _, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: 1e-9}); err == nil {
		t.Error("impossible bound accepted")
	}
	if _, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: -1}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: 1}); err == nil {
		t.Error("impossible budget accepted")
	}
	if _, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: 500, Weights: []float64{1}}); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func TestDualAsymmetricBeatsUniform(t *testing.T) {
	// The scenario where per-tier optimization matters: the dual must beat
	// the uniform baseline like the general solver does.
	c := symCluster(3, 2, 0.5)
	for k := range c.Tiers[2].Demands {
		c.Tiers[2].Demands[k].Work = 3
	}
	c.Tiers[2].MaxSpeed = 24
	bound := 5.0
	dual, err := MinimizeEnergyDual(c, EnergyOptions{MaxWeightedDelay: bound})
	if err != nil {
		t.Fatal(err)
	}
	base, err := UniformEnergyBaseline(c, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !(dual.Objective <= base.Objective*1.001) {
		t.Errorf("dual %g W worse than uniform %g W", dual.Objective, base.Objective)
	}
}

func TestDualDelayObjectiveIsWeightedDelay(t *testing.T) {
	c := symCluster(2, 2, 0.6)
	sol, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, sol.Metrics.WeightedDelay, 1e-9) {
		t.Errorf("objective %g != weighted delay %g", sol.Objective, sol.Metrics.WeightedDelay)
	}
}
