package core

import (
	"testing"

	"clusterq/internal/cluster"
)

func TestMinimizeCostWithEnergyPriceMeetsSLAs(t *testing.T) {
	c := slaCluster()
	sol, err := MinimizeCost(c, CostOptions{EnergyPrice: 0.005, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Satisfied() {
			t.Errorf("SLA violated under TCO objective: %+v", r)
		}
	}
	// Objective is the combined cost.
	want := cluster.TotalCost(sol.Cluster) + 0.005*sol.Metrics.TotalPower
	if !almostEq(sol.Objective, want, 1e-9) {
		t.Errorf("objective %g != combined cost %g", sol.Objective, want)
	}
}

func TestEnergyPriceGrowsTheFleet(t *testing.T) {
	// As electricity gets expensive, the optimizer should trade servers
	// for speed: fleet size (servers) must be non-decreasing in the energy
	// price, and the high-price solution must run slower.
	c := slaCluster()
	countServers := func(s *Solution) int {
		n := 0
		for _, tier := range s.Cluster.Tiers {
			n += tier.Servers
		}
		return n
	}
	meanSpeedFrac := func(s *Solution) float64 {
		lo, hi := s.Cluster.SpeedBounds()
		var f float64
		for i, sp := range s.Cluster.Speeds() {
			if hi[i] > lo[i] {
				f += (sp - lo[i]) / (hi[i] - lo[i])
			}
		}
		return f / float64(len(lo))
	}

	cheap, err := MinimizeCost(c, CostOptions{EnergyPrice: 1e-6, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	pricey, err := MinimizeCost(c, CostOptions{EnergyPrice: 0.05, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if countServers(pricey) < countServers(cheap) {
		t.Errorf("fleet shrank as energy got pricier: %d vs %d",
			countServers(pricey), countServers(cheap))
	}
	// With a bigger fleet, the pricey solution should run at a lower
	// relative speed (or at worst equal, if the fleet didn't grow).
	if countServers(pricey) > countServers(cheap) &&
		meanSpeedFrac(pricey) > meanSpeedFrac(cheap)+0.05 {
		t.Errorf("bigger fleet did not slow down: %.2f vs %.2f",
			meanSpeedFrac(pricey), meanSpeedFrac(cheap))
	}
	// Pricey power must not exceed cheap power (that is what it paid for).
	if pricey.Metrics.TotalPower > cheap.Metrics.TotalPower*1.01 {
		t.Errorf("power not reduced under high energy price: %g vs %g",
			pricey.Metrics.TotalPower, cheap.Metrics.TotalPower)
	}
}

func TestEnergyPriceZeroKeepsOldObjective(t *testing.T) {
	c := slaCluster()
	a, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Objective without energy price is pure provisioning cost.
	if a.Objective != cluster.TotalCost(a.Cluster) {
		t.Errorf("objective %g != provisioning cost %g", a.Objective, cluster.TotalCost(a.Cluster))
	}
}

func TestTCOHillClimbRespectsServerCap(t *testing.T) {
	c := slaCluster()
	sol, err := MinimizeCost(c, CostOptions{EnergyPrice: 10, MaxServersPerTier: 3, Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range sol.Cluster.Tiers {
		if tier.Servers > 3 {
			t.Errorf("tier %s exceeded the cap: %d", tier.Name, tier.Servers)
		}
	}
}
