package core

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// slaCluster builds a 3-tier cluster with per-class SLA bounds and priced
// tiers, loaded enough that one server per tier cannot meet the SLAs.
func slaCluster() *cluster.Cluster {
	pm, _ := power.NewPowerLaw(80, 8, 3)
	mk := func(name string, cost float64, workScale float64) *cluster.Tier {
		return &cluster.Tier{
			Name: name, Servers: 1, Speed: 3, MinSpeed: 0.5, MaxSpeed: 3,
			Discipline: queueing.NonPreemptive, Power: pm, CostPerServer: cost,
			Demands: []queueing.Demand{
				{Work: 0.8 * workScale, CV2: 1},
				{Work: 1.0 * workScale, CV2: 1},
				{Work: 1.2 * workScale, CV2: 1},
			},
		}
	}
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{mk("web", 1, 0.6), mk("app", 2, 1.0), mk("db", 4, 1.4)},
		Classes: []cluster.Class{
			{Name: "gold", Lambda: 1.2, SLA: cluster.SLA{MaxMeanDelay: 2.5, PricePerRequest: 5}},
			{Name: "silver", Lambda: 1.2, SLA: cluster.SLA{MaxMeanDelay: 4, PricePerRequest: 2}},
			{Name: "bronze", Lambda: 1.2, SLA: cluster.SLA{MaxMeanDelay: 8, PricePerRequest: 1}},
		},
	}
}

func TestMinimizeCostMeetsAllSLAs(t *testing.T) {
	c := slaCluster()
	sol, err := MinimizeCost(c, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Satisfied() {
			t.Errorf("SLA not met: %+v", r)
		}
	}
	if sol.Objective != cluster.TotalCost(sol.Cluster) {
		t.Errorf("objective %g != cost %g", sol.Objective, cluster.TotalCost(sol.Cluster))
	}
	// The input must not be mutated.
	if c.Tiers[0].Servers != 1 {
		t.Error("input cluster mutated")
	}
}

func TestMinimizeCostBeatsUniformBaseline(t *testing.T) {
	c := slaCluster()
	sol, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := UniformCostBaseline(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(sol.Objective <= base.Objective) {
		t.Errorf("greedy cost %g worse than uniform baseline %g", sol.Objective, base.Objective)
	}
}

func TestMinimizeCostNoWorseThanProportional(t *testing.T) {
	c := slaCluster()
	sol, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := ProportionalCostBaseline(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(sol.Objective <= prop.Objective*1.001) {
		t.Errorf("greedy cost %g worse than proportional baseline %g", sol.Objective, prop.Objective)
	}
	// Both must meet SLAs.
	for _, s := range []*Solution{sol, prop} {
		reports, _ := cluster.CheckSLAs(s.Cluster, s.Metrics)
		for _, r := range reports {
			if !r.Satisfied() {
				t.Errorf("baseline/solution violates SLA: %+v", r)
			}
		}
	}
}

func TestMinimizeCostSpeedTuningSavesEnergy(t *testing.T) {
	c := slaCluster()
	fast, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := MinimizeCost(c, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Objective != fast.Objective {
		t.Errorf("speed tuning changed the cost: %g vs %g", tuned.Objective, fast.Objective)
	}
	if !(tuned.Metrics.TotalPower <= fast.Metrics.TotalPower*1.001) {
		t.Errorf("tuned power %g not below max-speed power %g", tuned.Metrics.TotalPower, fast.Metrics.TotalPower)
	}
	// Tuned solution still meets SLAs.
	reports, _ := cluster.CheckSLAs(tuned.Cluster, tuned.Metrics)
	for _, r := range reports {
		if !r.Satisfied() {
			t.Errorf("tuned solution violates SLA: %+v", r)
		}
	}
}

func TestMinimizeCostWithPercentileSLA(t *testing.T) {
	c := slaCluster()
	c.Classes[0].SLA = cluster.SLA{PercentileDelay: 6, Percentile: 0.95, PricePerRequest: 5}
	sol, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].TailOK {
		t.Errorf("percentile SLA not met: %+v", reports[0])
	}
}

func TestMinimizeCostErrors(t *testing.T) {
	// No SLA bounds at all.
	c := slaCluster()
	for k := range c.Classes {
		c.Classes[k].SLA = cluster.SLA{}
	}
	if _, err := MinimizeCost(c, CostOptions{}); err == nil {
		t.Error("unconstrained cost problem accepted")
	}
	// Unreachable SLA within the server cap.
	c2 := slaCluster()
	c2.Classes[0].SLA.MaxMeanDelay = 1e-9
	if _, err := MinimizeCost(c2, CostOptions{MaxServersPerTier: 3}); err == nil {
		t.Error("unreachable SLA accepted")
	}
}

func TestMinimizeCostTightSLANeedsMoreServers(t *testing.T) {
	loose := slaCluster()
	tight := slaCluster()
	for k := range tight.Classes {
		tight.Classes[k].SLA.MaxMeanDelay /= 2.4
	}
	sl, err := MinimizeCost(loose, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := MinimizeCost(tight, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Objective >= sl.Objective) {
		t.Errorf("tighter SLAs should cost at least as much: %g vs %g", st.Objective, sl.Objective)
	}
}

func TestMinimizeCostSafetyMargin(t *testing.T) {
	c := slaCluster()
	plain, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	margin, err := MinimizeCost(c, CostOptions{SkipSpeedTuning: true, SafetyMargin: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// The margin plan must cost at least as much and leave slack: every
	// bounded class sits below 80% of its original bound.
	if margin.Objective < plain.Objective {
		t.Errorf("margin plan cheaper than plain: %g vs %g", margin.Objective, plain.Objective)
	}
	for k, cl := range margin.Cluster.Classes {
		if cl.SLA.MaxMeanDelay != c.Classes[k].SLA.MaxMeanDelay {
			t.Errorf("class %d SLA not restored: %g vs %g", k, cl.SLA.MaxMeanDelay, c.Classes[k].SLA.MaxMeanDelay)
		}
		if b := cl.SLA.MaxMeanDelay; b > 0 && margin.Metrics.Delay[k] > b*0.8*1.001 {
			t.Errorf("class %d delay %g lacks the 20%% headroom (bound %g)", k, margin.Metrics.Delay[k], b)
		}
	}
	// Invalid margins rejected.
	if _, err := MinimizeCost(c, CostOptions{SafetyMargin: 1}); err == nil {
		t.Error("margin 1 accepted")
	}
	if _, err := MinimizeCost(c, CostOptions{SafetyMargin: -0.1}); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestUniformCostBaselineErrors(t *testing.T) {
	c := slaCluster()
	c.Classes[0].SLA.MaxMeanDelay = 1e-9
	if _, err := UniformCostBaseline(c, 4); err == nil {
		t.Error("unreachable SLA accepted by uniform baseline")
	}
	if _, err := ProportionalCostBaseline(c, 4); err == nil {
		t.Error("unreachable SLA accepted by proportional baseline")
	}
}

func TestUniformDelayBaselineInfeasible(t *testing.T) {
	c := slaCluster()
	if _, err := UniformDelayBaseline(c, 1); err == nil {
		t.Error("impossible budget accepted")
	}
	if _, err := UniformDelayBaseline(c, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestUniformEnergyBaselineInfeasible(t *testing.T) {
	c := slaCluster()
	if _, err := UniformEnergyBaseline(c, 1e-9); err == nil {
		t.Error("impossible bound accepted")
	}
	if _, err := UniformEnergyBaseline(c, -1); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestUniformEnergyBaselineLooseBoundUsesMinSpeeds(t *testing.T) {
	c := slaCluster()
	// slaCluster is unstable with one server per tier even at MaxSpeed;
	// give it capacity so the baseline has a feasible range to bisect.
	for _, tier := range c.Tiers {
		tier.Servers = 4
	}
	sol, err := UniformEnergyBaseline(c, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// With an enormous bound the baseline should sit at the slow end.
	lo, _ := sol.Cluster.SpeedBounds()
	s := sol.Cluster.Speeds()
	for i := range s {
		if s[i] > lo[i]*1.05 {
			t.Errorf("tier %d speed %g not at floor %g", i, s[i], lo[i])
		}
	}
}

func TestMinimizeCostAvailabilityMargin(t *testing.T) {
	nominal, err := MinimizeCost(slaCluster(), CostOptions{SkipSpeedTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	derated, err := MinimizeCost(slaCluster(), CostOptions{SkipSpeedTuning: true, Availability: 0.7})
	if err != nil {
		t.Fatal(err)
	}

	total := func(s *Solution) int {
		n := 0
		for _, tier := range s.Cluster.Tiers {
			n += tier.Servers
		}
		return n
	}
	if !(total(derated) > total(nominal)) {
		t.Errorf("planning at A=0.7 sized %d servers, nominal plan %d; want strictly more",
			total(derated), total(nominal))
	}

	// The solution must report at the original availabilities (here: always
	// up) and still satisfy every SLA there.
	for _, tier := range derated.Cluster.Tiers {
		if tier.Availability != 0 {
			t.Errorf("tier %q availability %g leaked from planning", tier.Name, tier.Availability)
		}
	}
	reports, err := cluster.CheckSLAs(derated.Cluster, derated.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Satisfied() {
			t.Errorf("SLA not met: %+v", r)
		}
	}

	// Availability 1 is an explicit no-op.
	noop, err := MinimizeCost(slaCluster(), CostOptions{SkipSpeedTuning: true, Availability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if total(noop) != total(nominal) {
		t.Errorf("A=1 plan sized %d servers, nominal %d", total(noop), total(nominal))
	}

	for _, a := range []float64{-0.5, 1.5, math.NaN()} {
		if _, err := MinimizeCost(slaCluster(), CostOptions{Availability: a}); err == nil {
			t.Errorf("availability %g: want error", a)
		}
	}
}
