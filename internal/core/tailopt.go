package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// TailBound is a per-class percentile delay requirement:
// P(D_k ≤ Delay) ≥ Percentile.
type TailBound struct {
	Delay      float64 // bound in seconds (≤ 0 means unconstrained)
	Percentile float64 // e.g. 0.95
}

// TailOptions configures MinimizeEnergyTail.
type TailOptions struct {
	// Bounds[k] is class k's tail requirement (zero value = unconstrained).
	Bounds []TailBound
	// Starts is the number of multi-start points (default 4).
	Starts int
	// AugLag configures the inner solves.
	AugLag opt.AugLagOptions
}

// MinimizeEnergyTail is the percentile flavour of the paper's C3 problem:
// choose per-tier speeds to minimize average power subject to per-class
// TAIL delay guarantees,
//
//	min_s  P(s)   s.t.  Q_k(γ_k; s) ≤ x_k  for every bounded class k,
//
// where Q_k is the γ_k-quantile of class k's end-to-end delay under the
// hypoexponential stage approximation (cluster.DelayQuantile). Tail bounds
// are what SLAs actually say ("95% of requests within 2 s"); they are
// strictly harder than mean bounds of the same magnitude because the tail
// carries the queueing variance.
func MinimizeEnergyTail(c *cluster.Cluster, o TailOptions) (*Solution, error) {
	if len(o.Bounds) != len(c.Classes) {
		return nil, fmt.Errorf("core: %d tail bounds for %d classes", len(o.Bounds), len(c.Classes))
	}
	anyBound := false
	for k, b := range o.Bounds {
		if b.Delay <= 0 {
			continue
		}
		if b.Percentile <= 0 || b.Percentile >= 1 {
			return nil, fmt.Errorf("core: class %d percentile %g out of (0,1)", k, b.Percentile)
		}
		anyBound = true
	}
	if !anyBound {
		return nil, fmt.Errorf("core: no positive tail bound given")
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}

	quantAt := func(s []float64, k int, p float64) float64 {
		m := ev.metricsAt(s)
		if m == nil {
			return math.Inf(1)
		}
		q, err := cluster.DelayQuantile(ev.c, m, k, p)
		if err != nil {
			return math.Inf(1)
		}
		return q
	}

	// Feasibility at maximum speed.
	for k, b := range o.Bounds {
		if b.Delay <= 0 {
			continue
		}
		if q := quantAt(box.Hi, k, b.Percentile); q > b.Delay {
			return nil, fmt.Errorf("core: class %d p%g bound %g s infeasible: best achievable is %g s",
				k, 100*b.Percentile, b.Delay, q)
		}
	}

	objective := func(s []float64) float64 { return ev.power(s) }
	var gs []opt.Constraint
	for k, b := range o.Bounds {
		if b.Delay <= 0 {
			continue
		}
		k, b := k, b
		gs = append(gs, func(s []float64) float64 {
			q := quantAt(s, k, b.Percentile)
			if math.IsInf(q, 1) {
				return math.Inf(1)
			}
			return (q - b.Delay) / b.Delay
		})
	}

	starts := o.Starts
	if starts <= 0 {
		starts = 4
	}
	solve := func(x0 []float64) opt.Result {
		return opt.AugmentedLagrangian(objective, gs, box, x0, o.AugLag)
	}
	r := opt.MultiStart(solve, box, starts)
	if math.IsInf(r.F, 1) {
		return nil, fmt.Errorf("core: no feasible configuration found")
	}
	for i, g := range gs {
		if v := g(r.X); v > 1e-3 {
			return nil, fmt.Errorf("core: solver left tail constraint %d violated by %g (relative)", i, v)
		}
	}
	return ev.finish(r.X, r.F, r)
}
