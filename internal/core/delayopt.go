package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// DelayOptions configures MinimizeDelay (problem C2).
type DelayOptions struct {
	// EnergyBudget is the average power cap in watts (required, > 0).
	EnergyBudget float64
	// Weights optionally reweights the per-class delays in the objective;
	// nil uses arrival-rate weighting (the paper's all-class average).
	Weights []float64
	// Starts is the number of multi-start points (default 4).
	Starts int
	// Solver options for the inner augmented-Lagrangian solves.
	AugLag opt.AugLagOptions
}

// MinimizeDelay solves the paper's C2 problem: choose per-tier speeds to
// minimize the average end-to-end delay subject to the cluster's average
// power staying within the energy budget.
//
//	min_s  Σ_k w_k D_k(s) / Σ_k w_k
//	s.t.   P(s) ≤ EnergyBudget,  s ∈ [s_min, s_max] per tier
//
// Delay decreases and power increases in every speed, so the budget
// constraint is active at the optimum whenever it bites; the augmented
// Lagrangian handles the trade-off, multi-start guards against the
// non-convexity introduced by priority interactions across tiers.
func MinimizeDelay(c *cluster.Cluster, o DelayOptions) (*Solution, error) {
	if !(o.EnergyBudget > 0) {
		return nil, fmt.Errorf("core: energy budget %g must be positive", o.EnergyBudget)
	}
	if o.Weights != nil && len(o.Weights) != len(c.Classes) {
		return nil, fmt.Errorf("core: %d weights for %d classes", len(o.Weights), len(c.Classes))
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}

	// The cheapest stable configuration must fit the budget, or the
	// problem is infeasible outright.
	if minPow := ev.power(box.Lo); minPow > o.EnergyBudget {
		return nil, fmt.Errorf("core: energy budget %g W infeasible: minimum stable power is %g W",
			o.EnergyBudget, minPow)
	}

	objective := func(s []float64) float64 { return ev.weightedDelay(s, o.Weights) }
	budget := func(s []float64) float64 { return ev.power(s) - o.EnergyBudget }

	starts := o.Starts
	if starts <= 0 {
		starts = 4
	}
	solve := func(x0 []float64) opt.Result {
		return opt.AugmentedLagrangian(objective, []opt.Constraint{budget}, box, x0, o.AugLag)
	}
	r := opt.MultiStart(solve, box, starts)
	if math.IsInf(r.F, 1) {
		return nil, fmt.Errorf("core: no stable configuration found within the energy budget")
	}
	// Guard: the returned point must respect the budget (small tolerance
	// inherent to the multiplier method).
	if v := budget(r.X); v > 1e-3*(1+o.EnergyBudget) {
		return nil, fmt.Errorf("core: solver left budget violated by %g W", v)
	}
	return ev.finish(r.X, r.F, r)
}

// DelayFrontier sweeps MinimizeDelay over a list of energy budgets and
// returns the achieved minimum delays — the energy/performance trade-off
// curve of the paper's Fig.-3-style plot. Budgets below feasibility produce
// NaN entries rather than an error so sweeps can span the interesting range.
func DelayFrontier(c *cluster.Cluster, budgets []float64, o DelayOptions) ([]float64, []*Solution, error) {
	delays := make([]float64, len(budgets))
	sols := make([]*Solution, len(budgets))
	for i, b := range budgets {
		oo := o
		oo.EnergyBudget = b
		sol, err := MinimizeDelay(c, oo)
		if err != nil {
			delays[i] = math.NaN()
			continue
		}
		delays[i] = sol.Objective
		sols[i] = sol
	}
	return delays, sols, nil
}
