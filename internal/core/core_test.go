package core

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// symCluster builds a symmetric J-tier, K-class cluster: identical tiers,
// unit exponential work, per-class arrival rate lam.
func symCluster(j, k int, lam float64) *cluster.Cluster {
	pm, _ := power.NewPowerLaw(50, 5, 3)
	demands := make([]queueing.Demand, k)
	for i := range demands {
		demands[i] = queueing.Demand{Work: 1, CV2: 1}
	}
	tiers := make([]*cluster.Tier, j)
	for i := range tiers {
		tiers[i] = &cluster.Tier{
			Name: string(rune('A' + i)), Servers: 1, Speed: 4,
			MinSpeed: 0.1, MaxSpeed: 8,
			Discipline: queueing.NonPreemptive, Power: pm,
			CostPerServer: 1,
			Demands:       append([]queueing.Demand(nil), demands...),
		}
	}
	classes := make([]cluster.Class, k)
	for i := range classes {
		classes[i] = cluster.Class{Name: string(rune('a' + i)), Lambda: lam}
	}
	return &cluster.Cluster{Tiers: tiers, Classes: classes}
}

func TestMinimizeDelayRespectsBudget(t *testing.T) {
	c := symCluster(3, 2, 0.7)
	sol, err := MinimizeDelay(c, DelayOptions{EnergyBudget: 900, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics.TotalPower > 900*1.002 {
		t.Errorf("power %g exceeds budget", sol.Metrics.TotalPower)
	}
	if !sol.Metrics.Stable() {
		t.Error("solution unstable")
	}
	if math.IsInf(sol.Objective, 1) || sol.Objective <= 0 {
		t.Errorf("objective = %g", sol.Objective)
	}
	// The input must not be mutated.
	if c.Tiers[0].Speed != 4 {
		t.Error("input cluster mutated")
	}
}

func TestMinimizeDelaySymmetricOptimumIsSymmetric(t *testing.T) {
	// With identical tiers the optimal speeds must be (nearly) equal.
	c := symCluster(3, 1, 0.8)
	sol, err := MinimizeDelay(c, DelayOptions{EnergyBudget: 700, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := sol.Cluster.Speeds()
	for i := 1; i < len(s); i++ {
		if !almostEq(s[i], s[0], 0.05) {
			t.Errorf("asymmetric optimum: %v", s)
		}
	}
	// The budget should be essentially exhausted (more speed always helps).
	if sol.Metrics.TotalPower < 0.95*700 {
		t.Errorf("budget underused: %g of 700", sol.Metrics.TotalPower)
	}
}

func TestMinimizeDelayMonotoneInBudget(t *testing.T) {
	c := symCluster(2, 2, 0.6)
	var prev float64 = math.Inf(1)
	for _, budget := range []float64{300, 450, 700, 1100} {
		sol, err := MinimizeDelay(c, DelayOptions{EnergyBudget: budget, Starts: 2})
		if err != nil {
			t.Fatalf("budget %g: %v", budget, err)
		}
		if sol.Objective > prev*1.02 {
			t.Errorf("delay rose with a bigger budget: %g → %g", prev, sol.Objective)
		}
		prev = sol.Objective
	}
}

func TestMinimizeDelayInfeasibleBudget(t *testing.T) {
	c := symCluster(3, 2, 0.7)
	// The static floor alone is 150 W; a 10 W budget is hopeless.
	if _, err := MinimizeDelay(c, DelayOptions{EnergyBudget: 10}); err == nil {
		t.Error("impossible budget accepted")
	}
	if _, err := MinimizeDelay(c, DelayOptions{EnergyBudget: -5}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := MinimizeDelay(c, DelayOptions{EnergyBudget: 500, Weights: []float64{1}}); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func TestMinimizeDelayBeatsUniformBaseline(t *testing.T) {
	// Make tiers asymmetric so per-tier optimization has something to win:
	// the db tier carries triple work.
	c := symCluster(3, 2, 0.5)
	for k := range c.Tiers[2].Demands {
		c.Tiers[2].Demands[k].Work = 3
	}
	c.Tiers[2].MaxSpeed = 24

	budget := 1200.0
	optSol, err := MinimizeDelay(c, DelayOptions{EnergyBudget: budget, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := UniformDelayBaseline(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !(optSol.Objective <= base.Objective*1.001) {
		t.Errorf("optimizer %g worse than uniform baseline %g", optSol.Objective, base.Objective)
	}
	if base.Metrics.TotalPower > budget*1.001 {
		t.Errorf("baseline exceeded budget: %g", base.Metrics.TotalPower)
	}
}

func TestMinimizeEnergyMeetsBound(t *testing.T) {
	c := symCluster(3, 2, 0.7)
	sol, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: 3, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics.WeightedDelay > 3*1.002 {
		t.Errorf("delay %g exceeds bound", sol.Metrics.WeightedDelay)
	}
	if sol.Objective != sol.Metrics.TotalPower {
		t.Errorf("objective %g != power %g", sol.Objective, sol.Metrics.TotalPower)
	}
}

func TestMinimizeEnergyMonotoneInBound(t *testing.T) {
	c := symCluster(2, 2, 0.6)
	prev := 0.0
	for _, bound := range []float64{8, 4, 2, 1} { // tighter bounds
		sol, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: bound, Starts: 2})
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		if sol.Objective < prev*0.98 {
			t.Errorf("power fell with a tighter bound: %g → %g at bound %g", prev, sol.Objective, bound)
		}
		prev = sol.Objective
	}
}

func TestMinimizeEnergyBoundIsActive(t *testing.T) {
	// The optimum runs as slowly as allowed: the delay bound should be
	// (close to) tight unless the speed floor interferes.
	c := symCluster(3, 1, 0.8)
	sol, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: 4, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics.WeightedDelay < 4*0.9 {
		t.Errorf("bound slack at optimum: delay %g vs bound 4", sol.Metrics.WeightedDelay)
	}
}

func TestMinimizeEnergyInfeasibleBound(t *testing.T) {
	c := symCluster(3, 2, 0.7)
	if _, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: 1e-6}); err == nil {
		t.Error("impossible bound accepted")
	}
	if _, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: -1}); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestMinimizeEnergyBeatsUniformBaseline(t *testing.T) {
	c := symCluster(3, 2, 0.5)
	for k := range c.Tiers[2].Demands {
		c.Tiers[2].Demands[k].Work = 3
	}
	c.Tiers[2].MaxSpeed = 24

	bound := 5.0
	optSol, err := MinimizeEnergy(c, EnergyOptions{MaxWeightedDelay: bound, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := UniformEnergyBaseline(c, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !(optSol.Objective <= base.Objective*1.001) {
		t.Errorf("optimizer %g W worse than uniform baseline %g W", optSol.Objective, base.Objective)
	}
	if base.Metrics.WeightedDelay > bound*1.001 {
		t.Errorf("baseline missed the bound: %g", base.Metrics.WeightedDelay)
	}
}

func TestMinimizeEnergyPerClass(t *testing.T) {
	c := symCluster(3, 3, 0.4)
	bounds := []float64{2, 4, 8}
	sol, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: bounds, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range bounds {
		if sol.Metrics.Delay[k] > b*1.005 {
			t.Errorf("class %d delay %g exceeds bound %g", k, sol.Metrics.Delay[k], b)
		}
	}
}

func TestMinimizeEnergyPerClassUnboundedEntries(t *testing.T) {
	c := symCluster(2, 3, 0.4)
	// Only the lowest class is bounded.
	bounds := []float64{0, 0, 3}
	sol, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: bounds, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Metrics.Delay[2] > 3*1.005 {
		t.Errorf("bounded class delay %g", sol.Metrics.Delay[2])
	}
}

func TestMinimizeEnergyPerClassErrors(t *testing.T) {
	c := symCluster(2, 2, 0.4)
	if _, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{1}}); err == nil {
		t.Error("wrong bound count accepted")
	}
	if _, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{0, 0}}); err == nil {
		t.Error("all-unbounded accepted")
	}
	if _, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{1e-9, 0}}); err == nil {
		t.Error("impossible bound accepted")
	}
}

func TestTightLowPriorityBoundCostsMoreEnergy(t *testing.T) {
	// Tightening the LOW priority class is the expensive direction: it
	// forces global speed-ups. Compare against tightening the high class
	// to the same value.
	c := symCluster(2, 2, 0.5)
	loose := 8.0
	tight := 1.6
	solLowTight, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{loose, tight}, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	solHighTight, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: []float64{tight, loose}, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(solLowTight.Objective >= solHighTight.Objective*0.999) {
		t.Errorf("tight low-priority bound (%g W) should cost at least as much as tight high-priority (%g W)",
			solLowTight.Objective, solHighTight.Objective)
	}
}

func TestBindingClasses(t *testing.T) {
	c := symCluster(2, 2, 0.5)
	bounds := []float64{100, 2} // only the low class can bind
	sol, err := MinimizeEnergyPerClass(c, EnergyOptions{MaxClassDelay: bounds, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	binding := BindingClasses(sol, bounds, 0.05)
	for _, k := range binding {
		if k == 0 {
			t.Error("loose high-priority bound reported as binding")
		}
	}
}

func TestDelayFrontierShape(t *testing.T) {
	c := symCluster(2, 2, 0.6)
	budgets := []float64{10, 350, 500, 800}
	delays, sols, err := DelayFrontier(c, budgets, DelayOptions{Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(delays[0]) {
		t.Error("infeasible budget should produce NaN")
	}
	if sols[0] != nil {
		t.Error("infeasible budget should produce nil solution")
	}
	for i := 2; i < len(delays); i++ {
		if delays[i] > delays[i-1]*1.02 {
			t.Errorf("frontier not non-increasing: %v", delays)
		}
	}
}

func TestMinimizeDelayCustomWeights(t *testing.T) {
	// Weighting only the LOW-priority class steers the optimum: the
	// bronze-weighted solve must achieve a lower bronze delay than the
	// gold-weighted solve at the same budget.
	c := symCluster(2, 2, 0.6)
	budget := 520.0
	wLow, err := MinimizeDelay(c, DelayOptions{
		EnergyBudget: budget, Weights: []float64{0, 1}, Starts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wHigh, err := MinimizeDelay(c, DelayOptions{
		EnergyBudget: budget, Weights: []float64{1, 0}, Starts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(wLow.Metrics.Delay[1] <= wHigh.Metrics.Delay[1]*1.01) {
		t.Errorf("bronze-weighted solve did not favour bronze: %g vs %g",
			wLow.Metrics.Delay[1], wHigh.Metrics.Delay[1])
	}
	// Objectives are the weighted delays, not the λ-weighted ones.
	if !almostEq(wLow.Objective, wLow.Metrics.Delay[1], 1e-6) {
		t.Errorf("objective %g != bronze delay %g", wLow.Objective, wLow.Metrics.Delay[1])
	}
}

func TestMinimizeDelayDualCustomWeights(t *testing.T) {
	c := symCluster(2, 2, 0.6)
	budget := 520.0
	sol, err := MinimizeDelayDual(c, DelayOptions{
		EnergyBudget: budget, Weights: []float64{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, sol.Metrics.Delay[1], 1e-6) {
		t.Errorf("dual objective %g != bronze delay %g", sol.Objective, sol.Metrics.Delay[1])
	}
	if _, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: budget, Weights: []float64{0, 0}}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := MinimizeDelayDual(c, DelayOptions{EnergyBudget: budget, Weights: []float64{-1, 1}}); err == nil {
		t.Error("negative weight accepted")
	}
}
