package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// The baselines implement the naive allocation policies the paper-style
// evaluation compares against: they use a single scalar knob (a common speed
// multiplier) instead of optimizing per-tier speeds, which is what real
// deployments without a model tend to do ("run everything at 80%").

// UniformDelayBaseline spends the energy budget with all tiers at the same
// speed: it bisects the largest common speed multiplier whose power fits the
// budget. Comparable to MinimizeDelay.
func UniformDelayBaseline(c *cluster.Cluster, budget float64) (*Solution, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("core: energy budget %g must be positive", budget)
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}
	speedsAt := func(f float64) []float64 {
		s := make([]float64, box.Dim())
		for i := range s {
			s[i] = box.Lo[i] + f*(box.Hi[i]-box.Lo[i])
		}
		return s
	}
	if ev.power(speedsAt(0)) > budget {
		return nil, fmt.Errorf("core: energy budget %g W infeasible even at minimum speeds", budget)
	}
	// Power is increasing in f; find the largest affordable f.
	f := 1.0
	if ev.power(speedsAt(1)) > budget {
		// g(f) = budget − power is decreasing-negating; use bisection on
		// power(f) = budget.
		root, err := opt.Bisect(func(f float64) float64 {
			return ev.power(speedsAt(f)) - budget
		}, 0, 1, 1e-9)
		if err != nil {
			return nil, err
		}
		f = root * 0.999999 // stay strictly inside the budget
	}
	s := speedsAt(f)
	d := ev.weightedDelay(s, nil)
	return ev.finish(s, d, opt.Result{Converged: true})
}

// UniformEnergyBaseline meets the aggregate delay bound with all tiers at the
// same relative speed: it bisects the smallest common multiplier whose delay
// meets the bound. Comparable to MinimizeEnergy.
func UniformEnergyBaseline(c *cluster.Cluster, maxDelay float64) (*Solution, error) {
	if !(maxDelay > 0) {
		return nil, fmt.Errorf("core: delay bound %g must be positive", maxDelay)
	}
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}
	speedsAt := func(f float64) []float64 {
		s := make([]float64, box.Dim())
		for i := range s {
			s[i] = box.Lo[i] + f*(box.Hi[i]-box.Lo[i])
		}
		return s
	}
	delayAt := func(f float64) float64 { return ev.weightedDelay(speedsAt(f), nil) }
	if delayAt(1) > maxDelay {
		return nil, fmt.Errorf("core: delay bound %g s infeasible: best achievable is %g s", maxDelay, delayAt(1))
	}
	f := 0.0
	if delayAt(0) > maxDelay {
		root, err := opt.BisectDecreasing(delayAt, maxDelay, 0, 1, 1e-9)
		if err != nil {
			return nil, err
		}
		f = math.Min(1, root*1.000001) // stay strictly feasible
	}
	s := speedsAt(f)
	p := ev.power(s)
	return ev.finish(s, p, opt.Result{Converged: true})
}

// UniformCostBaseline sizes every tier with the same server count (the
// smallest n such that all SLAs hold at maximum speeds). Comparable to
// MinimizeCost.
func UniformCostBaseline(c *cluster.Cluster, maxServersPerTier int) (*Solution, error) {
	if maxServersPerTier <= 0 {
		maxServersPerTier = 64
	}
	work := c.Clone()
	for n := 1; n <= maxServersPerTier; n++ {
		for _, t := range work.Tiers {
			t.Servers = n
		}
		if slasHoldAtMaxSpeed(work) {
			m, err := cluster.Evaluate(work)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Cluster: work, Metrics: m,
				Objective: cluster.TotalCost(work),
				Result:    opt.Result{Iters: n, Converged: true},
			}, nil
		}
	}
	return nil, fmt.Errorf("core: uniform baseline cannot meet SLAs within %d servers per tier", maxServersPerTier)
}

// ProportionalCostBaseline sizes tiers proportionally to their offered work
// (the classic "capacity planning by utilization" rule): the smallest scale
// factor whose rounded-up counts meet all SLAs at maximum speeds.
func ProportionalCostBaseline(c *cluster.Cluster, maxServersPerTier int) (*Solution, error) {
	if maxServersPerTier <= 0 {
		maxServersPerTier = 64
	}
	work := c.Clone()
	// Offered work per tier at max speed (Erlangs).
	_, hi := work.SpeedBounds()
	loads := make([]float64, len(work.Tiers))
	for j, t := range work.Tiers {
		at := perTierArrivalsOf(work, j)
		var w float64
		for k, d := range t.Demands {
			w += at[k] * d.Work
		}
		loads[j] = w / hi[j]
	}
	for scale := 1.0; ; scale += 0.25 {
		tooBig := false
		for j, t := range work.Tiers {
			n := int(math.Ceil(loads[j] * scale))
			if n < 1 {
				n = 1
			}
			if n > maxServersPerTier {
				tooBig = true
			}
			t.Servers = n
		}
		if slasHoldAtMaxSpeed(work) {
			m, err := cluster.Evaluate(work)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Cluster: work, Metrics: m,
				Objective: cluster.TotalCost(work),
				Result:    opt.Result{Converged: true},
			}, nil
		}
		if tooBig {
			return nil, fmt.Errorf("core: proportional baseline cannot meet SLAs within %d servers per tier", maxServersPerTier)
		}
	}
}

// slasHoldAtMaxSpeed reports whether every SLA holds with all tiers at their
// maximum speed.
func slasHoldAtMaxSpeed(c *cluster.Cluster) bool {
	_, hi := c.SpeedBounds()
	if err := c.SetSpeeds(hi); err != nil {
		return false
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		return false
	}
	reports, err := cluster.CheckSLAs(c, m)
	if err != nil {
		return false
	}
	for _, r := range reports {
		if !r.Satisfied() {
			return false
		}
	}
	return true
}
