package core

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/opt"
)

// CostOptions configures MinimizeCost (problem C4).
type CostOptions struct {
	// MaxServersPerTier caps the search (default 64).
	MaxServersPerTier int
	// TuneSpeeds selects whether, after sizing, tier speeds are lowered to
	// the energy-minimal point that still meets all SLAs (default true
	// via the zero value being interpreted as true; set SkipSpeedTuning
	// to disable).
	SkipSpeedTuning bool
	// SafetyMargin tightens every SLA bound by this fraction during
	// planning (e.g. 0.05 plans against 95% of each bound) so the plan
	// keeps headroom against model error; the returned solution reports
	// compliance against the ORIGINAL bounds. Default 0.
	SafetyMargin float64
	// Availability, when in (0, 1], multiplies every tier's effective
	// availability during planning — sizing the fleet as if servers were
	// additionally down that often — so the plan keeps capacity headroom
	// against breakdowns. Like SafetyMargin, the returned solution reports
	// metrics and compliance at the ORIGINAL tier availabilities. Default 0
	// (off); 1 is an explicit no-op.
	Availability float64
	// EnergyPrice, when positive, extends the objective to total cost of
	// ownership: Σ servers·price + EnergyPrice·P̄ (in $ per watt per unit
	// time). With energy priced, buying MORE servers and running them
	// slower can be cheaper than a lean fleet at high DVFS speeds — the
	// classic consolidation-versus-scaling trade-off; a hill-climbing pass
	// over server counts (with speed re-tuning per candidate) explores it.
	// Implies speed tuning regardless of SkipSpeedTuning.
	EnergyPrice float64
	// Starts for the speed-tuning solve (default 3).
	Starts int
	// AugLag configures the speed-tuning solver.
	AugLag opt.AugLagOptions
}

// MinimizeCost solves the paper's C4 problem: find the cheapest server
// allocation (integer count per tier) — and accompanying DVFS speeds — such
// that every priority class's SLA is guaranteed:
//
//	min_{c, s}  Σ_j c_j · price_j
//	s.t.        D_k(c, s)    ≤ MaxMeanDelay_k        for every mean-bounded k
//	            Q_k(γ_k; c, s) ≤ PercentileDelay_k   for every tail-bounded k
//	            stability, s ∈ [s_min, s_max], c_j ∈ ℕ⁺
//
// Delays are monotone decreasing in both server counts and speeds, so a
// count vector is feasible iff the SLAs hold at maximum speed. The solver
// uses greedy marginal allocation: grow from the stability minimum, each step
// adding the server with the best violation reduction per dollar; then a
// removal polish pass; then (optionally) lower the speeds to the
// energy-minimal feasible point.
func MinimizeCost(c *cluster.Cluster, o CostOptions) (*Solution, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	anyBound := false
	for _, cl := range c.Classes {
		if cl.SLA.HasMeanBound() || cl.SLA.HasPercentileBound() {
			anyBound = true
		}
	}
	if !anyBound {
		return nil, fmt.Errorf("core: no class carries an SLA bound; cost minimization is unconstrained")
	}
	maxServers := o.MaxServersPerTier
	if maxServers <= 0 {
		maxServers = 64
	}
	if o.SafetyMargin < 0 || o.SafetyMargin >= 1 {
		return nil, fmt.Errorf("core: safety margin %g out of [0, 1)", o.SafetyMargin)
	}
	// The negated comparison also rejects NaN.
	if o.Availability != 0 && (!(o.Availability > 0) || o.Availability > 1) {
		return nil, fmt.Errorf("core: planning availability %g out of (0, 1]", o.Availability)
	}

	work := c.Clone()
	// Plan against tightened bounds and derated availabilities; compliance
	// is reported against the caller's original configuration (restored
	// before returning).
	if o.SafetyMargin > 0 {
		for k := range work.Classes {
			sla := &work.Classes[k].SLA
			sla.MaxMeanDelay *= 1 - o.SafetyMargin
			sla.PercentileDelay *= 1 - o.SafetyMargin
		}
	}
	deratedAvail := o.Availability != 0 && o.Availability < 1
	if deratedAvail {
		for _, t := range work.Tiers {
			t.Availability = t.EffectiveAvailability() * o.Availability
		}
	}
	// restorePlanning undoes the planning-time tightenings on the solution
	// cluster so the reported metrics describe the system as configured.
	restorePlanning := func(w *cluster.Cluster) {
		if o.SafetyMargin > 0 {
			for k := range w.Classes {
				w.Classes[k].SLA = c.Classes[k].SLA
			}
		}
		if deratedAvail {
			for j := range w.Tiers {
				w.Tiers[j].Availability = c.Tiers[j].Availability
			}
		}
	}
	evals := 0

	// violationAt computes the worst relative SLA violation with the
	// current server counts, all tiers at maximum speed (the best case for
	// every delay-type guarantee). ≤ 0 means feasible.
	violationAt := func(w *cluster.Cluster) float64 {
		lo, hi := w.SpeedBounds()
		_ = lo
		if err := w.SetSpeeds(hi); err != nil {
			return math.Inf(1)
		}
		evals++
		m, err := cluster.Evaluate(w)
		if err != nil {
			return math.Inf(1)
		}
		worst := math.Inf(-1)
		for k, cl := range w.Classes {
			if cl.SLA.HasMeanBound() {
				v := (m.Delay[k] - cl.SLA.MaxMeanDelay) / cl.SLA.MaxMeanDelay
				if v > worst {
					worst = v
				}
			}
			if cl.SLA.HasPercentileBound() {
				q, err := cluster.DelayQuantile(w, m, k, cl.SLA.Percentile)
				if err != nil || math.IsInf(q, 1) {
					return math.Inf(1)
				}
				v := (q - cl.SLA.PercentileDelay) / cl.SLA.PercentileDelay
				if v > worst {
					worst = v
				}
			}
		}
		return worst
	}

	// Start from the smallest stable counts at max speed.
	for j, t := range work.Tiers {
		t.Servers = 1
		lo, hi := work.SpeedBounds()
		_ = lo
		// Grow until the tier alone is stable at max speed.
		for t.Servers < maxServers {
			st := t.Station()
			st.Speed = hi[j]
			if st.Utilization(perTierArrivalsOf(work, j)) < 0.999 {
				break
			}
			t.Servers++
		}
	}

	// Greedy growth to feasibility.
	added := 0
	for violationAt(work) > 0 {
		bestTier := -1
		bestGain := 0.0
		cur := violationAt(work)
		if math.IsInf(cur, 1) {
			cur = 1e6 // treat as a huge violation so any finite result wins
		}
		for j, t := range work.Tiers {
			if t.Servers >= maxServers {
				continue
			}
			t.Servers++
			v := violationAt(work)
			t.Servers--
			if math.IsInf(v, 1) {
				continue
			}
			gain := (cur - v) / math.Max(t.CostPerServer, 1e-9)
			if gain > bestGain {
				bestGain = gain
				bestTier = j
			}
		}
		if bestTier < 0 {
			// No single server helps: add to the hottest tier and keep
			// going (violation can be flat until a bottleneck clears).
			bestTier = hottestTier(work)
			if work.Tiers[bestTier].Servers >= maxServers {
				return nil, fmt.Errorf("core: SLAs unreachable within %d servers per tier", maxServers)
			}
		}
		work.Tiers[bestTier].Servers++
		added++
		if added > maxServers*len(work.Tiers) {
			return nil, fmt.Errorf("core: SLAs unreachable within %d servers per tier", maxServers)
		}
	}

	// Removal polish: drop servers (most expensive tiers first) while the
	// configuration stays feasible.
	for improved := true; improved; {
		improved = false
		order := tiersByCostDesc(work)
		for _, j := range order {
			t := work.Tiers[j]
			if t.Servers <= 1 {
				continue
			}
			t.Servers--
			if violationAt(work) <= 0 {
				improved = true
			} else {
				t.Servers++
			}
		}
	}

	// Final speeds: either max speed (feasible by construction) or the
	// energy-minimal feasible point.
	_, hi := work.SpeedBounds()
	if err := work.SetSpeeds(hi); err != nil {
		return nil, err
	}
	objective := cluster.TotalCost(work)
	result := opt.Result{Iters: added, Evals: evals, Converged: true}

	if !o.SkipSpeedTuning || o.EnergyPrice > 0 {
		tuned, err := tuneSpeedsForSLA(work, o)
		if err == nil {
			work = tuned
		}
		// On tuning failure keep max speeds — still feasible.
	}

	// Total-cost-of-ownership refinement: with energy priced, explore
	// adding servers (each candidate re-tuned to its energy-minimal
	// speeds) while the combined cost keeps falling.
	if o.EnergyPrice > 0 {
		work, err := tcoHillClimb(work, o, maxServers)
		if err != nil {
			return nil, err
		}
		// Report (and price energy) at the original SLAs and availabilities.
		restorePlanning(work)
		m, err := cluster.Evaluate(work)
		if err != nil {
			return nil, err
		}
		objective = cluster.TotalCost(work) + o.EnergyPrice*m.TotalPower
		result.Iters = added
		return &Solution{Cluster: work, Metrics: m, Objective: objective, Result: result}, nil
	}

	// Report against the caller's original SLA bounds and availabilities.
	restorePlanning(work)
	m, err := cluster.Evaluate(work)
	if err != nil {
		return nil, err
	}
	return &Solution{Cluster: work, Metrics: m, Objective: objective, Result: result}, nil
}

// tcoCost returns the total cost of ownership of a cluster at its current
// configuration: provisioning plus priced energy.
func tcoCost(c *cluster.Cluster, energyPrice float64) (float64, error) {
	m, err := cluster.Evaluate(c)
	if err != nil {
		return 0, err
	}
	return cluster.TotalCost(c) + energyPrice*m.TotalPower, nil
}

// tcoHillClimb greedily adds servers (one tier at a time, re-tuning speeds
// to the energy-minimal SLA-feasible point per candidate) while the total
// cost of ownership keeps improving. The input is already SLA-feasible, so
// every candidate is too (more servers only help delay).
func tcoHillClimb(c *cluster.Cluster, o CostOptions, maxServers int) (*cluster.Cluster, error) {
	best := c
	bestCost, err := tcoCost(best, o.EnergyPrice)
	if err != nil {
		return nil, err
	}
	for improved := true; improved; {
		improved = false
		for j := range best.Tiers {
			if best.Tiers[j].Servers >= maxServers {
				continue
			}
			cand := best.Clone()
			cand.Tiers[j].Servers++
			// Re-tune the candidate's speeds; fall back to max speed.
			if tuned, err := tuneSpeedsForSLA(cand, o); err == nil {
				cand = tuned
			} else {
				_, hi := cand.SpeedBounds()
				if err := cand.SetSpeeds(hi); err != nil {
					continue
				}
			}
			cost, err := tcoCost(cand, o.EnergyPrice)
			if err != nil {
				continue
			}
			if cost < bestCost*(1-1e-6) {
				best, bestCost = cand, cost
				improved = true
			}
		}
	}
	return best, nil
}

// tuneSpeedsForSLA lowers tier speeds to minimize power while keeping every
// SLA satisfied, holding the server counts fixed.
func tuneSpeedsForSLA(c *cluster.Cluster, o CostOptions) (*cluster.Cluster, error) {
	ev, err := newEvaluator(c)
	if err != nil {
		return nil, err
	}
	box, err := ev.box()
	if err != nil {
		return nil, err
	}
	objective := func(s []float64) float64 { return ev.power(s) }
	// Tuned speeds must satisfy the SLAs *strictly* (CheckSLAs has no
	// tolerance), so the constraints target a hair inside each bound.
	const margin = 0.998
	var gs []opt.Constraint
	for k := range c.Classes {
		k := k
		sla := c.Classes[k].SLA
		if sla.HasMeanBound() {
			b := sla.MaxMeanDelay * margin
			gs = append(gs, func(s []float64) float64 {
				m := ev.metricsAt(s)
				if m == nil || math.IsInf(m.Delay[k], 1) {
					return math.Inf(1)
				}
				return (m.Delay[k] - b) / b
			})
		}
		if sla.HasPercentileBound() {
			b, p := sla.PercentileDelay*margin, sla.Percentile
			gs = append(gs, func(s []float64) float64 {
				m := ev.metricsAt(s)
				if m == nil {
					return math.Inf(1)
				}
				q, err := cluster.DelayQuantile(ev.c, m, k, p)
				if err != nil || math.IsInf(q, 1) {
					return math.Inf(1)
				}
				return (q - b) / b
			})
		}
	}
	starts := o.Starts
	if starts <= 0 {
		starts = 3
	}
	solve := func(x0 []float64) opt.Result {
		return opt.AugmentedLagrangian(objective, gs, box, x0, o.AugLag)
	}
	r := opt.MultiStart(solve, box, starts)
	if math.IsInf(r.F, 1) || !r.Converged {
		return nil, fmt.Errorf("core: speed tuning failed")
	}
	out := ev.c.Clone()
	if err := out.SetSpeeds(r.X); err != nil {
		return nil, err
	}
	// Strict verification: the margin above should leave every SLA met
	// exactly; if the solver still overshot, reject the tuning.
	m, err := cluster.Evaluate(out)
	if err != nil {
		return nil, err
	}
	reports, err := cluster.CheckSLAs(out, m)
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		if !rep.Satisfied() {
			return nil, fmt.Errorf("core: speed tuning left an SLA violated")
		}
	}
	return out, nil
}

// perTierArrivalsOf returns the per-class arrival vector tier j sees.
func perTierArrivalsOf(c *cluster.Cluster, j int) []float64 {
	lam := c.Lambdas()
	at := make([]float64, len(lam))
	for k := range c.Classes {
		at[k] = lam[k] * c.VisitRates(k)[j]
	}
	return at
}

// hottestTier returns the index of the tier with the highest utilization at
// its current speed.
func hottestTier(c *cluster.Cluster) int {
	best, idx := math.Inf(-1), 0
	for j, t := range c.Tiers {
		u := t.Station().Utilization(perTierArrivalsOf(c, j))
		if u > best {
			best, idx = u, j
		}
	}
	return idx
}

// tiersByCostDesc returns tier indices ordered by per-server cost, highest
// first.
func tiersByCostDesc(c *cluster.Cluster) []int {
	idx := make([]int, len(c.Tiers))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort; tier counts are tiny
		for j := i; j > 0 && c.Tiers[idx[j]].CostPerServer > c.Tiers[idx[j-1]].CostPerServer; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
