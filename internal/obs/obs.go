// Package obs is the observability substrate of clusterq: a lightweight
// metric registry (counters, gauges, fixed-bucket histograms) with a
// lock-free hot path, time-series capture (Timeline), and exposition in both
// JSON and the Prometheus text format. It is stdlib-only, like the rest of
// the module.
//
// Two properties drive the design:
//
//   - Zero allocation on the hot path: Counter.Add, Gauge.Set and
//     Histogram.Observe never allocate; registration (name lookup, slice
//     growth) happens once up front.
//   - Near-zero cost when disabled: every metric method is a no-op on a nil
//     receiver, and a nil *Registry hands out nil metrics, so instrumented
//     code needs no "is observability on?" branches of its own.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Add increases the counter by n (n < 0 is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. The zero value reads as 0; a nil
// *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (atomic read-modify-write).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v ≤ Bounds[i]; one implicit overflow bucket (+Inf) catches the
// rest. The zero value is unusable — construct through Registry.Histogram —
// but a nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64  // float64 bits of the running sum
	n      atomic.Int64
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d: %g, %g",
				i, bounds[i-1], bounds[i])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-ish bucket search: the bound lists are short (≤ ~30), so a
	// linear scan beats binary search and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the running total of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (the +Inf overflow is implicit).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket counts, overflow last.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts by
// linear interpolation within the containing bucket, the standard
// histogram_quantile approach. The first bucket interpolates from 0 when its
// upper bound is positive (from the bound itself otherwise); ranks landing
// in the overflow bucket return the largest finite bound, the best the
// histogram can claim. Returns NaN on a nil or empty histogram or a q
// outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	n := h.n.Load()
	if n == 0 {
		return math.NaN()
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if h.bounds[0] <= 0 {
				lower = h.bounds[0]
			}
			upper := h.bounds[i]
			return lower + (upper-lower)*(rank-cum)/c
		}
		cum += c
	}
	// Unreachable when counts and n agree; be safe under racing observes.
	return h.bounds[len(h.bounds)-1]
}

// LinearBuckets returns n strictly increasing bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start·factor, start·factor², ….
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one named registry entry.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is an ordered collection of named metrics. Registration
// (Counter/Gauge/Histogram) is idempotent: asking twice for the same name and
// kind returns the same instance. A nil *Registry hands out nil metrics, so
// instrumentation wired to an optional registry costs (almost) nothing when
// observability is off.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// validName reports whether name fits the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup finds or creates the named entry; it panics on invalid names and on
// kind clashes, which are programming errors, not runtime conditions.
func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s",
				name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the named counter, creating it on first use. Nil registries
// return a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindCounter)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindGauge)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the named histogram, creating it (with the given bucket
// upper bounds) on first use; later calls ignore the bounds argument. Invalid
// bounds panic, matching the other registration errors.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindHistogram)
	if m.h == nil {
		h, err := newHistogram(bounds)
		if err != nil {
			panic(err.Error())
		}
		m.h = h
	}
	return m.h
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, m := range r.order {
		out[i] = m.name
	}
	return out
}

// SortedNames returns the registered metric names sorted lexically.
func (r *Registry) SortedNames() []string {
	if r == nil {
		return nil
	}
	names := r.Names()
	sort.Strings(names)
	return names
}
