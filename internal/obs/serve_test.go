package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clusterq/internal/obs/trace"
)

// TestMuxEndpoints exercises every endpoint group against a live registry
// and recorder.
func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "requests").Add(3)
	reg.Gauge("load", "load").Set(0.5)
	rec := trace.NewRecorder(0)
	rec.RecordArrival(0, 0, 1)
	rec.RecordServiceStart(1, 0, 1, 0)
	rec.RecordServiceStop(2, 0, 1, 0)
	rec.RecordExit(2, 0, 1, trace.OutcomeCompleted)

	srv := httptest.NewServer(Mux(reg, rec))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "requests_total 3") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var snaps struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if len(snaps.Metrics) != 2 {
		t.Errorf("/metrics.json has %d metrics, want 2", len(snaps.Metrics))
	}

	code, body = get("/trace")
	if code != 200 {
		t.Fatalf("/trace: code %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace empty")
	}

	// drain=1 empties the ring; a second drain sees only metadata.
	get("/trace?drain=1")
	if n := len(rec.Events()); n != 0 {
		t.Errorf("ring holds %d events after drain", n)
	}

	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

// TestMuxNilBackends: endpoints stay well-formed with nothing attached.
func TestMuxNilBackends(t *testing.T) {
	srv := httptest.NewServer(Mux(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: code %d", path, resp.StatusCode)
		}
		if path != "/metrics" {
			var v any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Errorf("%s: invalid JSON %q", path, body)
			}
		}
	}
}

// TestListenAndServe binds an ephemeral port and round-trips a metric.
func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", "liveness").Set(1)
	addr, stop, err := ListenAndServe("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("metrics body %q", body)
	}
	if _, _, err := ListenAndServe(addr, reg, nil); err == nil {
		t.Error("double bind succeeded")
	}
}
