package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Snapshot is the point-in-time state of one metric, shaped for JSON
// marshalling and plotting front-ends.
type Snapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Type string `json:"type"` // "counter", "gauge" or "histogram"
	// Value holds the counter or gauge reading (absent for histograms).
	Value float64 `json:"value"`
	// Histogram-only fields: per-bucket upper bounds and counts (overflow
	// bucket last, with no bound), plus the observation sum and count.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Count  int64     `json:"count,omitempty"`
}

// Snapshot captures every registered metric in registration order.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()

	out := make([]Snapshot, 0, len(metrics))
	for _, m := range metrics {
		s := Snapshot{Name: m.name, Help: m.help, Type: m.kind.String()}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.c.Value())
		case kindGauge:
			s.Value = m.g.Value()
		case kindHistogram:
			s.Bounds = m.h.Bounds()
			s.Counts = m.h.BucketCounts()
			s.Sum = m.h.Sum()
			s.Count = m.h.Count()
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON writes the registry as a JSON document {"metrics": [...]} with
// one Snapshot per metric. A nil registry writes nothing.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Snapshot `json:"metrics"`
	}{Metrics: r.Snapshot()})
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comment lines followed by samples, with
// histogram buckets expanded to cumulative `le`-labelled series. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
			return err
		}
		var err error
		switch s.Type {
		case "histogram":
			cum := int64(0)
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", s.Name, formatFloat(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", s.Name, s.Count)
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus parsers expect:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
