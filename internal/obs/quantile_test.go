package obs

import (
	"math"
	"testing"

	"clusterq/internal/stats"
)

// TestHistogramQuantile checks the interpolated estimate against exact
// sample quantiles on uniform data with fine buckets.
func TestHistogramQuantile(t *testing.T) {
	h, err := newHistogram(LinearBuckets(0.1, 0.1, 100)) // 0.1..10
	if err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for i := 1; i <= 2000; i++ {
		v := float64(i) / 200 // 0.005..10
		vals = append(vals, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		exact := stats.ExactQuantile(vals, q)
		if math.Abs(got-exact) > 0.1 { // one bucket width
			t.Errorf("q=%g: histogram %g vs exact %g", q, got, exact)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h, _ := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100) // overflow

	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) || !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("out-of-range q not NaN")
	}
	// Rank 4 of 4 lands in the overflow bucket → largest finite bound.
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %g, want 4 (overflow clamps)", got)
	}
	// q=0 interpolates from the first bucket's lower edge (0, since
	// bounds[0] > 0).
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
	// Median of 4 → rank 2: second observation, bucket (1,2], midpoint-ish.
	if got := h.Quantile(0.5); !(got > 1 && got <= 2) {
		t.Errorf("Quantile(0.5) = %g, want in (1,2]", got)
	}

	// Negative first bound: lower edge falls back to the bound itself.
	hn, _ := newHistogram([]float64{-1, 0, 1})
	hn.Observe(-2)
	if got := hn.Quantile(0.5); got != -1 {
		t.Errorf("negative-bound Quantile = %g, want -1", got)
	}

	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile not NaN")
	}
}
