// Package window provides streaming sliding-window estimators over the
// simulator's event stream: per-class arrival rate, mean sojourn time, a
// P²-estimated tail quantile, and per-tier utilization. It is the sensor API
// the online (MPC-style) controller of ROADMAP item 1 will read mid-run, and
// it publishes its readings as gauges on an obs.Registry for live HTTP
// exposition.
//
// Estimators are bucketed rings: the window of width W is split into B
// sub-buckets, each accumulating counts/sums for one W/B slice of simulated
// time; advancing past a bucket boundary expires the oldest bucket. Reads
// therefore have bucket-granularity: a "window" is the last B live buckets,
// between W−W/B and W of history. The tail estimator cannot expire
// individual samples from a P² sketch, so it rotates a current/previous pair
// of sketches every W and reads whichever is better warmed — tail readings
// cover between W and 2W of history.
//
// A nil *Set is a no-op on every method (the observability layer's
// nil-is-a-no-op contract). Writers (Observe*/Publish) must come from a
// single goroutine — the simulator's replication 0 — but bound registry
// gauges are atomic, so concurrent HTTP readers are safe.
package window

import (
	"fmt"
	"math"
	"strings"

	"clusterq/internal/obs"
	"clusterq/internal/stats"
)

// Config parameterizes a window Set.
type Config struct {
	// Width is the sliding-window width in simulated seconds (required > 0).
	Width float64
	// Buckets is the number of sub-buckets per window (default 16).
	Buckets int
	// Quantile is the tail quantile estimated per class (default 0.99).
	Quantile float64
}

func (c Config) withDefaults() (Config, error) {
	if !(c.Width > 0) {
		return c, fmt.Errorf("window: width %g must be positive", c.Width)
	}
	if c.Buckets == 0 {
		c.Buckets = 16
	}
	if c.Buckets < 0 {
		return c, fmt.Errorf("window: buckets %d must be positive", c.Buckets)
	}
	if c.Quantile == 0 {
		c.Quantile = 0.99
	}
	if !(c.Quantile > 0 && c.Quantile < 1) {
		return c, fmt.Errorf("window: quantile %g must be in (0,1)", c.Quantile)
	}
	return c, nil
}

// bucket accumulates one sub-slice of the window: an event count and a
// value sum/count (meaning depends on the series).
type bucket struct {
	events int64
	vsum   float64
	vn     int64
}

// series is one bucketed ring. cur is the absolute index (t/slot) of the
// bucket currently being written; advancing clears expired buckets.
type series struct {
	slot float64
	cur  int64
	b    []bucket
}

func newSeries(width float64, buckets int) *series {
	return &series{slot: width / float64(buckets), b: make([]bucket, buckets)}
}

func (s *series) advance(t float64) {
	idx := int64(t / s.slot)
	if idx <= s.cur {
		return
	}
	if idx-s.cur >= int64(len(s.b)) {
		for i := range s.b {
			s.b[i] = bucket{}
		}
	} else {
		for i := s.cur + 1; i <= idx; i++ {
			s.b[i%int64(len(s.b))] = bucket{}
		}
	}
	s.cur = idx
}

func (s *series) addEvent(t float64) {
	s.advance(t)
	s.b[s.cur%int64(len(s.b))].events++
}

func (s *series) addValue(t, v float64) {
	s.advance(t)
	bk := &s.b[s.cur%int64(len(s.b))]
	bk.vsum += v
	bk.vn++
}

// sum totals the live buckets after expiring anything older than t.
func (s *series) sum(t float64) bucket {
	s.advance(t)
	var tot bucket
	for _, bk := range s.b {
		tot.events += bk.events
		tot.vsum += bk.vsum
		tot.vn += bk.vn
	}
	return tot
}

// covered is the stretch of history the live buckets span at time t: the
// full ring once t exceeds it, everything so far before that.
func (s *series) covered(t float64) float64 {
	w := float64(len(s.b)) * s.slot
	if t < w {
		return t
	}
	return w
}

// tailMinSamples is the sketch warm-up threshold: below it the current
// epoch's sketch is considered too cold and the previous epoch is preferred.
const tailMinSamples = 8

// tail estimates a quantile over roughly the last window by rotating P²
// sketches every window width.
type tail struct {
	p     float64
	width float64
	epoch int64
	cur   *stats.P2Quantile
	prev  *stats.P2Quantile
}

func newTail(p, width float64) *tail {
	return &tail{p: p, width: width, cur: stats.NewP2Quantile(p)}
}

func (q *tail) roll(t float64) {
	e := int64(t / q.width)
	if e <= q.epoch {
		return
	}
	if e == q.epoch+1 {
		q.prev = q.cur
	} else {
		q.prev = nil // a whole epoch passed with no samples
	}
	q.cur = stats.NewP2Quantile(q.p)
	q.epoch = e
}

func (q *tail) add(t, v float64) {
	q.roll(t)
	q.cur.Add(v)
}

func (q *tail) value(t float64) float64 {
	q.roll(t)
	if q.cur.Count() >= tailMinSamples {
		return q.cur.Value()
	}
	if q.prev != nil && q.prev.Count() > 0 {
		return q.prev.Value()
	}
	if q.cur.Count() > 0 {
		return q.cur.Value()
	}
	return math.NaN()
}

// ClassSensor is one class's windowed readings at a point in time.
type ClassSensor struct {
	// Rate is the estimated arrival rate λ̂ (arrivals per second over the
	// covered window).
	Rate float64
	// MeanSojourn is the mean sojourn of spans that closed in the window
	// (NaN if none closed).
	MeanSojourn float64
	// TailSojourn is the P²-estimated Quantile of sojourns (NaN until
	// samples arrive).
	TailSojourn float64
	// Sojourns is the number of closed-span observations in the window.
	Sojourns int64
	// Covered is the stretch of history (seconds) behind Rate: the full
	// window once enough time has passed, everything so far before that.
	// Controllers can use it to discount cold estimates.
	Covered float64
}

// Set is a bank of window estimators for a fixed number of classes and
// tiers. Construct with NewSet; a nil *Set is a no-op on every method.
type Set struct {
	cfg   Config
	cls   []*series // per class: events = arrivals, values = sojourns
	tiers []*series // per tier: values = utilization samples
	tails []*tail

	reg   *obs.Registry
	rateG []*obs.Gauge
	meanG []*obs.Gauge
	tailG []*obs.Gauge
	utilG []*obs.Gauge
}

// NewSet builds a window Set for the given class and tier counts.
func NewSet(cfg Config, classes, tiers int) (*Set, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if classes < 0 || tiers < 0 {
		return nil, fmt.Errorf("window: negative dimensions (%d classes, %d tiers)", classes, tiers)
	}
	s := &Set{cfg: cfg}
	for k := 0; k < classes; k++ {
		s.cls = append(s.cls, newSeries(cfg.Width, cfg.Buckets))
		s.tails = append(s.tails, newTail(cfg.Quantile, cfg.Width))
	}
	for j := 0; j < tiers; j++ {
		s.tiers = append(s.tiers, newSeries(cfg.Width, cfg.Buckets))
	}
	return s, nil
}

// Config returns the (defaulted) configuration.
func (s *Set) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// Classes returns the number of class sensors.
func (s *Set) Classes() int {
	if s == nil {
		return 0
	}
	return len(s.cls)
}

// Tiers returns the number of tier sensors.
func (s *Set) Tiers() int {
	if s == nil {
		return 0
	}
	return len(s.tiers)
}

// ObserveArrival records one class-k arrival at time t.
func (s *Set) ObserveArrival(t float64, class int) {
	if s == nil || class < 0 || class >= len(s.cls) {
		return
	}
	s.cls[class].addEvent(t)
}

// ObserveSojourn records a closed span's sojourn d for class k at time t.
func (s *Set) ObserveSojourn(t float64, class int, d float64) {
	if s == nil || class < 0 || class >= len(s.cls) {
		return
	}
	s.cls[class].addValue(t, d)
	s.tails[class].add(t, d)
}

// ObserveUtilization records a sampled utilization for tier j at time t.
func (s *Set) ObserveUtilization(t float64, tier int, util float64) {
	if s == nil || tier < 0 || tier >= len(s.tiers) {
		return
	}
	s.tiers[tier].addValue(t, util)
}

// Class reads class k's sensors as of time t.
func (s *Set) Class(t float64, class int) ClassSensor {
	if s == nil || class < 0 || class >= len(s.cls) {
		return ClassSensor{Rate: math.NaN(), MeanSojourn: math.NaN(), TailSojourn: math.NaN()}
	}
	sr := s.cls[class]
	tot := sr.sum(t)
	out := ClassSensor{
		Rate:        math.NaN(),
		MeanSojourn: math.NaN(),
		TailSojourn: s.tails[class].value(t),
		Sojourns:    tot.vn,
	}
	if cov := sr.covered(t); cov > 0 {
		out.Rate = float64(tot.events) / cov
		out.Covered = cov
	}
	if tot.vn > 0 {
		out.MeanSojourn = tot.vsum / float64(tot.vn)
	}
	return out
}

// Rate returns class k's windowed arrival-rate estimate λ̂ as of time t —
// the single-number read an online controller re-estimates from each epoch.
// NaN when the receiver is nil, the class is out of range, or the window has
// no coverage yet.
func (s *Set) Rate(t float64, class int) float64 {
	if s == nil || class < 0 || class >= len(s.cls) {
		return math.NaN()
	}
	sr := s.cls[class]
	tot := sr.sum(t)
	cov := sr.covered(t)
	if cov <= 0 {
		return math.NaN()
	}
	return float64(tot.events) / cov
}

// Rates fills dst with every class's windowed arrival-rate estimate as of
// time t and returns it. Entries beyond the class count — or all of them, on
// a nil Set — are NaN, so callers can size dst for the cluster and treat NaN
// uniformly as "no estimate".
func (s *Set) Rates(t float64, dst []float64) []float64 {
	if s == nil {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return dst
	}
	for i := range dst {
		dst[i] = math.NaN()
	}
	for k := 0; k < len(s.cls) && k < len(dst); k++ {
		dst[k] = s.Rate(t, k)
	}
	return dst
}

// Utilization reads tier j's mean sampled utilization over the window as of
// time t (NaN if no samples are live).
func (s *Set) Utilization(t float64, tier int) float64 {
	if s == nil || tier < 0 || tier >= len(s.tiers) {
		return math.NaN()
	}
	tot := s.tiers[tier].sum(t)
	if tot.vn == 0 {
		return math.NaN()
	}
	return tot.vsum / float64(tot.vn)
}

// quantileLabel renders 0.99 as "p99", 0.999 as "p99_9" (gauge-name safe).
func quantileLabel(q float64) string {
	return "p" + strings.ReplaceAll(fmt.Sprintf("%g", q*100), ".", "_")
}

// QuantileLabel is the metric-name-safe label of the configured tail
// quantile ("p99" for 0.99), as used in the bound gauge names.
func (c Config) QuantileLabel() string {
	return quantileLabel(c.Quantile)
}

// Bind registers this Set's gauges on reg; Publish refreshes them. Gauge
// names: window_class<k>_arrival_rate, window_class<k>_mean_sojourn_seconds,
// window_class<k>_<p99>_sojourn_seconds, window_tier<j>_utilization, plus
// window_width_seconds.
func (s *Set) Bind(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.reg = reg
	s.rateG = s.rateG[:0]
	s.meanG = s.meanG[:0]
	s.tailG = s.tailG[:0]
	s.utilG = s.utilG[:0]
	pl := quantileLabel(s.cfg.Quantile)
	for k := range s.cls {
		s.rateG = append(s.rateG, reg.Gauge(
			fmt.Sprintf("window_class%d_arrival_rate", k),
			fmt.Sprintf("class %d arrivals per second over the sliding window", k)))
		s.meanG = append(s.meanG, reg.Gauge(
			fmt.Sprintf("window_class%d_mean_sojourn_seconds", k),
			fmt.Sprintf("class %d mean sojourn over the sliding window", k)))
		s.tailG = append(s.tailG, reg.Gauge(
			fmt.Sprintf("window_class%d_%s_sojourn_seconds", k, pl),
			fmt.Sprintf("class %d %s sojourn (P² estimate) over the sliding window", k, pl)))
	}
	for j := range s.tiers {
		s.utilG = append(s.utilG, reg.Gauge(
			fmt.Sprintf("window_tier%d_utilization", j),
			fmt.Sprintf("tier %d mean sampled utilization over the sliding window", j)))
	}
	reg.Gauge("window_width_seconds", "sliding-window width").Set(s.cfg.Width)
}

// Publish refreshes every bound gauge with readings as of time t. A no-op
// until Bind is called.
func (s *Set) Publish(t float64) {
	if s == nil || s.reg == nil {
		return
	}
	for k := range s.cls {
		cs := s.Class(t, k)
		s.rateG[k].Set(cs.Rate)
		s.meanG[k].Set(cs.MeanSojourn)
		s.tailG[k].Set(cs.TailSojourn)
	}
	for j := range s.tiers {
		s.utilG[j].Set(s.Utilization(t, j))
	}
}
