package window

import (
	"math"
	"testing"

	"clusterq/internal/obs"
	"clusterq/internal/stats"
)

func mustSet(t *testing.T, cfg Config, classes, tiers int) *Set {
	t.Helper()
	s, err := NewSet(cfg, classes, tiers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSet(Config{}, 1, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewSet(Config{Width: 10, Buckets: -1}, 1, 1); err == nil {
		t.Error("negative buckets accepted")
	}
	if _, err := NewSet(Config{Width: 10, Quantile: 1.5}, 1, 1); err == nil {
		t.Error("quantile 1.5 accepted")
	}
	if _, err := NewSet(Config{Width: 10}, -1, 0); err == nil {
		t.Error("negative classes accepted")
	}
	s := mustSet(t, Config{Width: 10}, 2, 3)
	cfg := s.Config()
	if cfg.Buckets != 16 || cfg.Quantile != 0.99 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if s.Classes() != 2 || s.Tiers() != 3 {
		t.Errorf("dimensions: %d classes, %d tiers", s.Classes(), s.Tiers())
	}
}

// TestArrivalRate feeds a constant arrival stream and checks λ̂ tracks it,
// then checks an idle gap expires the window.
func TestArrivalRate(t *testing.T) {
	s := mustSet(t, Config{Width: 10, Buckets: 10}, 1, 0)
	// 5 arrivals per second for 20 seconds.
	for i := 0; i < 100; i++ {
		s.ObserveArrival(float64(i)*0.2, 0)
	}
	got := s.Class(19.99, 0).Rate
	if math.Abs(got-5) > 0.5 {
		t.Errorf("rate = %g, want ≈5", got)
	}
	// After a long idle gap the window must be empty.
	if got := s.Class(100, 0).Rate; got != 0 {
		t.Errorf("rate after idle gap = %g, want 0", got)
	}
}

// TestEarlyRateUsesElapsedTime: before a full window has elapsed, the rate
// divides by elapsed time, not the full width.
func TestEarlyRateUsesElapsedTime(t *testing.T) {
	s := mustSet(t, Config{Width: 100, Buckets: 10}, 1, 0)
	for i := 0; i < 10; i++ {
		s.ObserveArrival(float64(i)*0.1, 0) // 10 arrivals in the first second
	}
	got := s.Class(1.0, 0).Rate
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("early rate = %g, want 10", got)
	}
}

func TestMeanAndTailSojourn(t *testing.T) {
	s := mustSet(t, Config{Width: 50, Buckets: 10, Quantile: 0.9}, 1, 0)
	// Uniform sojourns 0.01..10.00 spread over 40 seconds.
	var vals []float64
	for i := 1; i <= 1000; i++ {
		v := float64(i) / 100
		vals = append(vals, v)
		s.ObserveSojourn(float64(i)*0.04, 0, v)
	}
	cs := s.Class(40, 0)
	if cs.Sojourns != 1000 {
		t.Fatalf("Sojourns = %d, want 1000", cs.Sojourns)
	}
	if math.Abs(cs.MeanSojourn-5.005) > 1e-9 {
		t.Errorf("mean = %g, want 5.005", cs.MeanSojourn)
	}
	exact := stats.ExactQuantile(vals, 0.9)
	if math.Abs(cs.TailSojourn-exact)/exact > 0.05 {
		t.Errorf("p90 = %g, exact %g", cs.TailSojourn, exact)
	}
}

// TestTailRotation: the tail estimator must forget samples roughly two
// windows old.
func TestTailRotation(t *testing.T) {
	s := mustSet(t, Config{Width: 10, Buckets: 10, Quantile: 0.5}, 1, 0)
	// Epoch 0: sojourns near 100.
	for i := 0; i < 50; i++ {
		s.ObserveSojourn(float64(i)*0.2, 0, 100)
	}
	// Two epochs later: sojourns near 1.
	for i := 0; i < 50; i++ {
		s.ObserveSojourn(25+float64(i)*0.2, 0, 1)
	}
	if got := s.Class(35, 0).TailSojourn; math.Abs(got-1) > 0.5 {
		t.Errorf("tail after rotation = %g, want ≈1", got)
	}
	// A cold current epoch falls back to the previous one.
	s2 := mustSet(t, Config{Width: 10, Buckets: 10, Quantile: 0.5}, 1, 0)
	for i := 0; i < 50; i++ {
		s2.ObserveSojourn(float64(i)*0.2, 0, 7)
	}
	s2.ObserveSojourn(10.5, 0, 7) // one sample in the new epoch
	if got := s2.Class(10.6, 0).TailSojourn; math.Abs(got-7) > 0.5 {
		t.Errorf("cold-epoch fallback = %g, want ≈7", got)
	}
}

func TestUtilization(t *testing.T) {
	s := mustSet(t, Config{Width: 20, Buckets: 10}, 0, 2)
	for i := 0; i < 40; i++ {
		s.ObserveUtilization(float64(i)*0.5, 0, 0.75)
		s.ObserveUtilization(float64(i)*0.5, 1, 0.25)
	}
	if got := s.Utilization(19.9, 0); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("tier0 util = %g, want 0.75", got)
	}
	if got := s.Utilization(19.9, 1); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("tier1 util = %g, want 0.25", got)
	}
	if !math.IsNaN(s.Utilization(100, 0)) {
		t.Errorf("stale window should read NaN")
	}
}

func TestBindAndPublish(t *testing.T) {
	s := mustSet(t, Config{Width: 10, Buckets: 5, Quantile: 0.999}, 1, 1)
	reg := obs.NewRegistry()
	s.Bind(reg)
	for i := 0; i < 20; i++ {
		tm := float64(i) * 0.5
		s.ObserveArrival(tm, 0)
		s.ObserveSojourn(tm, 0, 2)
		s.ObserveUtilization(tm, 0, 0.5)
	}
	s.Publish(9.9)
	if got := reg.Gauge("window_class0_arrival_rate", "").Value(); math.Abs(got-2) > 0.3 {
		t.Errorf("published rate = %g, want ≈2", got)
	}
	if got := reg.Gauge("window_class0_mean_sojourn_seconds", "").Value(); got != 2 {
		t.Errorf("published mean = %g, want 2", got)
	}
	// Quantile 0.999 renders as p99_9 in the gauge name.
	found := false
	for _, name := range reg.Names() {
		if name == "window_class0_p99_9_sojourn_seconds" {
			found = true
		}
	}
	if !found {
		t.Errorf("p99_9 gauge missing from %v", reg.Names())
	}
	if got := reg.Gauge("window_tier0_utilization", "").Value(); got != 0.5 {
		t.Errorf("published util = %g, want 0.5", got)
	}
	if got := reg.Gauge("window_width_seconds", "").Value(); got != 10 {
		t.Errorf("width gauge = %g", got)
	}
}

// TestSetNilSafe calls every exported method on a nil Set.
func TestSetNilSafe(t *testing.T) {
	var s *Set
	s.ObserveArrival(0, 0)
	s.ObserveSojourn(0, 0, 1)
	s.ObserveUtilization(0, 0, 1)
	s.Bind(obs.NewRegistry())
	s.Publish(0)
	if s.Classes() != 0 || s.Tiers() != 0 {
		t.Error("nil Set has dimensions")
	}
	cs := s.Class(0, 0)
	if !math.IsNaN(cs.Rate) || !math.IsNaN(cs.MeanSojourn) || !math.IsNaN(cs.TailSojourn) {
		t.Error("nil Class sensor not NaN")
	}
	if !math.IsNaN(s.Utilization(0, 0)) {
		t.Error("nil Utilization not NaN")
	}
	if (s.Config() != Config{}) {
		t.Error("nil Config not zero")
	}
}

// TestOutOfRangeIgnored: observations for unknown classes/tiers are dropped.
func TestOutOfRangeIgnored(t *testing.T) {
	s := mustSet(t, Config{Width: 10}, 1, 1)
	s.ObserveArrival(1, 5)
	s.ObserveSojourn(1, -1, 2)
	s.ObserveUtilization(1, 9, 0.5)
	if got := s.Class(1, 0).Rate; got != 0 {
		t.Errorf("out-of-range arrival leaked: %g", got)
	}
	cs := s.Class(1, 7)
	if !math.IsNaN(cs.Rate) {
		t.Error("out-of-range read not NaN")
	}
}
