package window

import (
	"math"
	"testing"
)

// TestRateAccessor pins the controller-facing Rate contract: NaN while the
// window has no coverage (nothing has advanced it yet), the windowed arrival
// rate once it does, and NaN for nil sets and out-of-range classes — the
// "no estimate" signal the autoscaler's EWMA skips.
func TestRateAccessor(t *testing.T) {
	s := mustSet(t, Config{Width: 10, Buckets: 10}, 2, 0)
	if got := s.Rate(0, 0); !math.IsNaN(got) {
		t.Errorf("rate with no coverage = %g, want NaN", got)
	}
	for i := 0; i < 100; i++ {
		s.ObserveArrival(float64(i)*0.2, 0) // 5/s on class 0 only
	}
	if got := s.Rate(19.99, 0); math.Abs(got-5) > 0.5 {
		t.Errorf("rate = %g, want ≈5", got)
	}
	// Class 1 saw no arrivals: that is a genuine estimate of 0 (coverage is
	// a function of elapsed time, not of observations), distinct from the
	// t=0 "no coverage" NaN above.
	if got := s.Rate(19.99, 1); got != 0 {
		t.Errorf("untouched class rate = %g, want 0", got)
	}
	if !math.IsNaN(s.Rate(19.99, -1)) || !math.IsNaN(s.Rate(19.99, 7)) {
		t.Error("out-of-range class rate not NaN")
	}
	var nilSet *Set
	if !math.IsNaN(nilSet.Rate(1, 0)) {
		t.Error("nil set rate not NaN")
	}
}

// TestRatesFillsDst pins the bulk accessor: dst is NaN-filled first, then
// every in-range class gets its estimate, so a cluster-sized dst against a
// smaller (or nil) set reads as "no estimate" uniformly.
func TestRatesFillsDst(t *testing.T) {
	s := mustSet(t, Config{Width: 10, Buckets: 10}, 1, 0)
	for i := 0; i < 50; i++ {
		s.ObserveArrival(float64(i)*0.5, 0) // 2/s
	}
	dst := make([]float64, 3)
	got := s.Rates(24.9, dst)
	if &got[0] != &dst[0] {
		t.Error("Rates did not fill dst in place")
	}
	if math.Abs(dst[0]-2) > 0.3 {
		t.Errorf("dst[0] = %g, want ≈2", dst[0])
	}
	if !math.IsNaN(dst[1]) || !math.IsNaN(dst[2]) {
		t.Errorf("beyond-class entries not NaN: %v", dst)
	}
	var nilSet *Set
	for _, v := range nilSet.Rates(1, dst) {
		if !math.IsNaN(v) {
			t.Fatalf("nil set Rates entry %g, want NaN", v)
		}
	}
}

// TestClassSensorCovered pins the new Covered field: the elapsed window
// span the sensor's readings integrate over.
func TestClassSensorCovered(t *testing.T) {
	s := mustSet(t, Config{Width: 100, Buckets: 10}, 1, 0)
	for i := 0; i < 10; i++ {
		s.ObserveArrival(float64(i), 0)
	}
	cs := s.Class(9, 0)
	if math.Abs(cs.Covered-9) > 1e-9 {
		t.Errorf("partial coverage = %g, want 9", cs.Covered)
	}
	for i := 10; i < 300; i++ {
		s.ObserveArrival(float64(i), 0)
	}
	cs = s.Class(299, 0)
	if math.Abs(cs.Covered-100) > 1e-9 {
		t.Errorf("full coverage = %g, want width 100", cs.Covered)
	}
}
