package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Timeline is a column-oriented store of synchronously sampled time series:
// one shared time axis and one float64 column per named series. It is the
// output shape of the simulator's probe (queue lengths, utilization,
// instantaneous power over time) and is cheap to append to — one slice append
// per column per sample, no maps on the hot path.
//
// A Timeline is not safe for concurrent mutation; samplers own it until the
// run completes.
type Timeline struct {
	names []string
	index map[string]int
	times []float64
	cols  [][]float64
	buf   []float64 // reusable row for Sampler-style callers
}

// NewTimeline creates an empty timeline with the given series names. Names
// must be non-empty and unique.
func NewTimeline(names ...string) *Timeline {
	if len(names) == 0 {
		panic("obs: timeline needs at least one series")
	}
	t := &Timeline{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
		cols:  make([][]float64, len(names)),
		buf:   make([]float64, len(names)),
	}
	for i, n := range names {
		if n == "" {
			panic("obs: empty series name")
		}
		if _, dup := t.index[n]; dup {
			panic(fmt.Sprintf("obs: duplicate series name %q", n))
		}
		t.index[n] = i
	}
	return t
}

// Names returns the series names in column order.
func (t *Timeline) Names() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.names...)
}

// Len returns the number of samples recorded.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.times)
}

// Row returns a scratch row of len(Names()) the caller may fill and pass to
// Sample; reusing it keeps sampling allocation-free.
func (t *Timeline) Row() []float64 {
	if t == nil {
		return nil
	}
	return t.buf
}

// Sample appends one synchronized observation of every series at time now.
// len(values) must equal the series count; times must be non-decreasing.
func (t *Timeline) Sample(now float64, values []float64) {
	if t == nil {
		return
	}
	if len(values) != len(t.cols) {
		panic(fmt.Sprintf("obs: sample width %d for %d series", len(values), len(t.cols)))
	}
	if n := len(t.times); n > 0 && now < t.times[n-1] {
		panic(fmt.Sprintf("obs: sample time went backwards: %g < %g", now, t.times[n-1]))
	}
	t.times = append(t.times, now)
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
}

// Times returns the shared time axis (the live backing slice; do not mutate).
func (t *Timeline) Times() []float64 {
	if t == nil {
		return nil
	}
	return t.times
}

// Values returns the named series (the live backing slice; do not mutate),
// or nil when the name is unknown.
func (t *Timeline) Values(name string) []float64 {
	if t == nil {
		return nil
	}
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.cols[i]
}

// Mean returns the arithmetic mean of the named series — under the probe's
// uniform sampling this estimates the signal's time average. NaN when the
// series is unknown or empty.
func (t *Timeline) Mean(name string) float64 {
	if t == nil {
		return math.NaN()
	}
	vs := t.Values(name)
	if len(vs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Max returns the largest value of the named series, or NaN when unknown or
// empty.
func (t *Timeline) Max(name string) float64 {
	if t == nil {
		return math.NaN()
	}
	vs := t.Values(name)
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Last returns the most recent value of the named series, or NaN when
// unknown or empty.
func (t *Timeline) Last(name string) float64 {
	if t == nil {
		return math.NaN()
	}
	vs := t.Values(name)
	if len(vs) == 0 {
		return math.NaN()
	}
	return vs[len(vs)-1]
}

// WriteCSV writes the timeline as CSV: a `time,<series...>` header followed
// by one row per sample. A nil timeline writes nothing.
func (t *Timeline) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	if _, err := io.WriteString(w, "time"); err != nil {
		return err
	}
	for _, n := range t.names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for r := range t.times {
		if _, err := fmt.Fprintf(w, "%.9g", t.times[r]); err != nil {
			return err
		}
		for _, col := range t.cols {
			if _, err := fmt.Fprintf(w, ",%.9g", col[r]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// timelineJSON is the wire shape of a timeline.
type timelineJSON struct {
	Times  []float64    `json:"times"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// MarshalJSON renders the timeline as {"times": [...], "series": [{name,
// values}, ...]} preserving column order. A nil timeline renders as null.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	doc := timelineJSON{Times: t.times}
	for i, n := range t.names {
		doc.Series = append(doc.Series, seriesJSON{Name: n, Values: t.cols[i]})
	}
	return json.Marshal(doc)
}
