// Live HTTP exposition: a mux serving the registry in Prometheus and JSON
// form, the flight recorder as Chrome trace-event JSON, and the runtime's
// pprof profiles. All CLIs mount this behind a -http flag.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"clusterq/internal/obs/trace"
)

// Mux builds an http.ServeMux exposing:
//
//	/metrics       — registry in Prometheus text format
//	/metrics.json  — registry as JSON
//	/trace         — recorder as Chrome trace-event JSON (Perfetto-loadable);
//	                 ?drain=1 clears the event ring after reading
//	/debug/pprof/  — the runtime's pprof profiles
//
// Either reg or rec may be nil: the endpoints still answer with empty (but
// well-formed) documents, so a dashboard can poll before a run attaches.
func Mux(reg *Registry, rec *trace.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg == nil {
			return
		}
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			//lint:waive errsink reason="an HTTP response write has no useful error sink" until=2027-08-01
			fmt.Fprintln(w, `{"metrics":[]}`)
			return
		}
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var err error
		if r.URL.Query().Get("drain") == "1" {
			err = trace.WriteChromeTrace(w, rec.Drain())
		} else {
			err = rec.WriteChromeTrace(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr (e.g. ":8080" or "127.0.0.1:0"), serves Mux(reg,
// rec) on it in a background goroutine, and returns the bound address plus a
// stop function that closes the listener. The error is non-nil only if the
// listen itself failed.
func ListenAndServe(addr string, reg *Registry, rec *trace.Recorder) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Mux(reg, rec)}
	go srv.Serve(ln)                   //nolint:errcheck — Serve always returns non-nil on Close
	stop := func() { _ = srv.Close() } // shutdown is best-effort
	return ln.Addr().String(), stop, nil
}
