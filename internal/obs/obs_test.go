package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", ""); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // ≤0.1 ×2, (0.1,1] ×1, (1,10] ×1, overflow ×1
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", h.Sum())
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(9)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry must snapshot empty")
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	// Kind clash panics too.
	r.Counter("dual", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind clash did not panic")
			}
		}()
		r.Gauge("dual", "")
	}()
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "all events").Add(42)
	r.Gauge("util", "utilization").Set(0.8125)
	r.Histogram("wait", "seconds", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "events_total" || doc.Metrics[0].Value != 42 {
		t.Fatalf("counter snapshot wrong: %+v", doc.Metrics[0])
	}
	if doc.Metrics[2].Type != "histogram" || doc.Metrics[2].Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", doc.Metrics[2])
	}
}

// Golden-style check that the Prometheus exposition output parses: every
// non-comment line must be `name{labels}? value`, every metric must carry a
// TYPE line, and histogram buckets must be cumulative and le-labelled. This
// is a hand-rolled line check (no external deps, per the module's rules).
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events_arrival_total", "external arrivals").Add(17)
	r.Gauge("sim_power_watts", "average power").Set(1061.25)
	h := r.Histogram("solver_step", "step sizes", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	sampleRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	typeRE := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	helpRE := regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)

	types := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE"):
			if !typeRE.MatchString(line) {
				t.Errorf("malformed TYPE line: %q", line)
			}
			types++
		case strings.HasPrefix(line, "# HELP"):
			if !helpRE.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment: %q", line)
		default:
			if !sampleRE.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
		}
	}
	if types != 3 {
		t.Fatalf("got %d TYPE lines, want 3\n%s", types, out)
	}

	// Histogram invariants: cumulative buckets ending at +Inf == count.
	for _, want := range []string{
		`solver_step_bucket{le="0.1"} 1`,
		`solver_step_bucket{le="1"} 2`,
		`solver_step_bucket{le="+Inf"} 3`,
		`solver_step_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
