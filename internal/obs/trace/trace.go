// Package trace is clusterq's flight recorder: a fixed-capacity, typed
// ring buffer of job lifecycle events that assembles per-job spans with an
// exact queue/service/preempted/backoff decomposition of every sojourn.
//
// The package follows the observability layer's nil-is-a-no-op contract
// (enforced by the in-tree nilnoop analyzer): every exported pointer-receiver
// method returns immediately on a nil receiver, so instrumented code may call
// hooks unconditionally. The simulator nonetheless guards its hot-path call
// sites with an explicit nil check so the disabled recorder costs a single
// predictable branch per event.
//
// Memory is bounded by construction: events and completed spans live in
// fixed-capacity rings that overwrite their oldest entries (counting what was
// dropped), and per-job open-span records are recycled through a free list.
// Per-class aggregates are never dropped — they accumulate every closed span
// even after the span ring has wrapped.
package trace

import (
	"fmt"
	"math"
	"sync"
)

// Kind identifies a lifecycle event type.
type Kind uint8

const (
	// KindArrival marks a job entering the system (span opens, queueing
	// starts).
	KindArrival Kind = iota
	// KindServiceStart marks a server beginning (or resuming) work on the
	// job at a station.
	KindServiceStart
	// KindServiceStop marks the job completing its service visit at a
	// station and returning to a queue (or exiting).
	KindServiceStop
	// KindPreempt marks the job being forced off a server (priority
	// preemption or server breakdown) with work remaining.
	KindPreempt
	// KindTimeout marks the job's deadline firing while in system.
	KindTimeout
	// KindBackoff marks the job entering retry backoff after a timeout.
	KindBackoff
	// KindResume marks the job re-entering the system after backoff.
	KindResume
	// KindExit marks the job leaving the system; Value carries the Outcome.
	KindExit
	numKinds
)

var kindNames = [numKinds]string{
	"arrival", "service_start", "service_stop", "preempt",
	"timeout", "backoff", "resume", "exit",
}

// String returns the event kind's wire name (stable, used in exports).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Outcome classifies how a span closed.
type Outcome uint8

const (
	// OutcomeCompleted is a normal departure after finishing service.
	OutcomeCompleted Outcome = iota
	// OutcomeAbandoned is a deadline abandonment (retries exhausted or
	// retry disabled).
	OutcomeAbandoned
	// OutcomeDropped is an admission drop (shed at arrival or re-entry).
	OutcomeDropped
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"completed", "abandoned", "dropped"}

// String returns the outcome's wire name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Event is one recorded lifecycle event. Station is -1 for events not tied
// to a station (arrival, backoff, resume, exit). Value is kind-specific:
// the Outcome for KindExit, the attempt number for KindBackoff, otherwise 0.
type Event struct {
	T       float64 // simulated time, seconds
	Job     uint64  // job id (unique within a replication)
	Value   float64 // kind-specific payload
	Class   int32   // job class index
	Station int32   // tier index, or -1
	Kind    Kind
}

// Span is the assembled lifecycle of one job. The four components partition
// the job's time in system by what the job was doing:
//
//	Queue     — waiting in a station queue (or between stations) for a server
//	Service   — actively being served
//	Preempted — forced off a server with work remaining, waiting to resume
//	Backoff   — out of the system between a timeout-triggered retry and
//	            its re-entry
//
// Sojourn() is *defined* as the fixed-order sum of the components, so the
// decomposition is exact by construction; End-Arrival equals that sum up to
// float addition-order dust (the recorder accumulates each component across
// possibly many segments, and float addition is not associative). Tests
// assert the two agree to ~1e-9 relative.
type Span struct {
	Job       uint64
	Arrival   float64 // time the span opened
	End       float64 // time the span closed
	Queue     float64
	Service   float64
	Preempted float64
	Backoff   float64
	Class     int32
	Attempts  int32 // retry re-entries (0 for a first-attempt completion)
	Outcome   Outcome
}

// Sojourn returns the span's total time in system as the fixed-order sum
// Queue + Service + Preempted + Backoff. This is the canonical sojourn:
// the breakdown sums to it exactly, by definition.
func (s Span) Sojourn() float64 {
	return s.Queue + s.Service + s.Preempted + s.Backoff
}

// Breakdown aggregates closed spans of one class: counts by outcome and the
// summed components. Means divide by the total closed-span count.
type Breakdown struct {
	Class     int
	Completed int64
	Abandoned int64
	Dropped   int64
	Queue     float64
	Service   float64
	Preempted float64
	Backoff   float64
}

// Spans returns the total number of closed spans aggregated.
func (b Breakdown) Spans() int64 { return b.Completed + b.Abandoned + b.Dropped }

// Sojourn returns the summed sojourn time (fixed-order component sum).
func (b Breakdown) Sojourn() float64 { return b.Queue + b.Service + b.Preempted + b.Backoff }

func (b Breakdown) mean(sum float64) float64 {
	n := b.Spans()
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MeanQueue returns mean queueing time per closed span (NaN if none).
func (b Breakdown) MeanQueue() float64 { return b.mean(b.Queue) }

// MeanService returns mean service time per closed span (NaN if none).
func (b Breakdown) MeanService() float64 { return b.mean(b.Service) }

// MeanPreempted returns mean preempted time per closed span (NaN if none).
func (b Breakdown) MeanPreempted() float64 { return b.mean(b.Preempted) }

// MeanBackoff returns mean backoff time per closed span (NaN if none).
func (b Breakdown) MeanBackoff() float64 { return b.mean(b.Backoff) }

// MeanSojourn returns mean sojourn time per closed span (NaN if none).
func (b Breakdown) MeanSojourn() float64 { return b.mean(b.Sojourn()) }

// spanState is what an open span's clock is currently charging.
type spanState uint8

const (
	stateQueued spanState = iota
	stateService
	statePreempted
	stateBackoff
)

// openSpan tracks one in-flight job. fold charges the elapsed time since the
// last event to the current state's accumulator, then switches state.
type openSpan struct {
	arrival   float64
	lastT     float64
	queue     float64
	service   float64
	preempted float64
	backoff   float64
	class     int32
	attempts  int32
	state     spanState
}

func (o *openSpan) fold(t float64) {
	dt := t - o.lastT
	o.lastT = t
	if dt <= 0 {
		return
	}
	switch o.state {
	case stateQueued:
		o.queue += dt
	case stateService:
		o.service += dt
	case statePreempted:
		o.preempted += dt
	case stateBackoff:
		o.backoff += dt
	}
}

// Recorder is the flight recorder. Construct with NewRecorder; the zero
// value is not usable, but a nil *Recorder is a no-op on every method.
//
// All methods are safe for concurrent use (one mutex guards everything), so
// an HTTP exposition goroutine may snapshot or drain the recorder while the
// simulator is still feeding it.
type Recorder struct {
	mu sync.Mutex

	// events ring
	ev        []Event
	evHead    int
	evLen     int
	evDropped uint64

	// completed spans ring
	sp        []Span
	spHead    int
	spLen     int
	spDropped uint64

	open map[uint64]*openSpan
	free []*openSpan

	agg []Breakdown // indexed by class, grown on demand

	unmatched uint64 // events for jobs with no open span (should be zero)
}

// DefaultCapacity is the event-ring capacity NewRecorder uses when given a
// non-positive capacity.
const DefaultCapacity = 1 << 16

// NewRecorder returns a recorder whose event ring holds capacity events and
// whose span ring holds capacity/4 completed spans (at least 1024 each).
// Non-positive capacity selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	spCap := capacity / 4
	if capacity < 1024 {
		capacity = 1024
	}
	if spCap < 1024 {
		spCap = 1024
	}
	return &Recorder{
		ev:   make([]Event, capacity),
		sp:   make([]Span, spCap),
		open: make(map[uint64]*openSpan),
	}
}

// push appends to the event ring, overwriting (and counting) the oldest
// entry when full. Caller holds mu.
func (r *Recorder) push(e Event) {
	if r.evLen < len(r.ev) {
		r.ev[(r.evHead+r.evLen)%len(r.ev)] = e
		r.evLen++
		return
	}
	r.ev[r.evHead] = e
	r.evHead = (r.evHead + 1) % len(r.ev)
	r.evDropped++
}

// pushSpan appends to the span ring, overwriting the oldest when full.
// Caller holds mu.
func (r *Recorder) pushSpan(s Span) {
	if r.spLen < len(r.sp) {
		r.sp[(r.spHead+r.spLen)%len(r.sp)] = s
		r.spLen++
		return
	}
	r.sp[r.spHead] = s
	r.spHead = (r.spHead + 1) % len(r.sp)
	r.spDropped++
}

func (r *Recorder) allocOpen() *openSpan {
	if n := len(r.free); n > 0 {
		o := r.free[n-1]
		r.free = r.free[:n-1]
		*o = openSpan{}
		return o
	}
	return &openSpan{}
}

func (r *Recorder) lookup(job uint64) *openSpan {
	o := r.open[job]
	if o == nil {
		r.unmatched++
	}
	return o
}

// RecordArrival opens a span for the job in the queued state.
func (r *Recorder) RecordArrival(t float64, class int, job uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindArrival, Class: int32(class), Station: -1, Job: job})
	if old := r.open[job]; old != nil {
		// Duplicate id (should not happen): recycle the stale record.
		r.free = append(r.free, old)
		r.unmatched++
	}
	o := r.allocOpen()
	o.class = int32(class)
	o.arrival = t
	o.lastT = t
	o.state = stateQueued
	r.open[job] = o
}

// RecordServiceStart charges elapsed time and switches the span to the
// service state.
func (r *Recorder) RecordServiceStart(t float64, class int, job uint64, station int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindServiceStart, Class: int32(class), Station: int32(station), Job: job})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = stateService
	}
}

// RecordServiceStop charges elapsed service time and returns the span to the
// queued state (the job is between stations or about to exit).
func (r *Recorder) RecordServiceStop(t float64, class int, job uint64, station int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindServiceStop, Class: int32(class), Station: int32(station), Job: job})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = stateQueued
	}
}

// RecordPreempt charges elapsed service time and switches the span to the
// preempted state (forced off a server with work remaining).
func (r *Recorder) RecordPreempt(t float64, class int, job uint64, station int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindPreempt, Class: int32(class), Station: int32(station), Job: job})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = statePreempted
	}
}

// RecordTimeout charges elapsed time to whatever state the job was in when
// its deadline fired and parks the span in the queued state pending the
// simulator's retry/abandon decision (recorded at the same timestamp).
func (r *Recorder) RecordTimeout(t float64, class int, job uint64, station int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindTimeout, Class: int32(class), Station: int32(station), Job: job})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = stateQueued
	}
}

// RecordBackoff switches the span to the backoff state; attempt is the
// 1-based retry this backoff precedes.
func (r *Recorder) RecordBackoff(t float64, class int, job uint64, attempt int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindBackoff, Class: int32(class), Station: -1, Job: job, Value: float64(attempt)})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = stateBackoff
		o.attempts++
	}
}

// RecordResume charges elapsed backoff time and returns the span to the
// queued state as the job re-enters the system.
func (r *Recorder) RecordResume(t float64, class int, job uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindResume, Class: int32(class), Station: -1, Job: job})
	if o := r.lookup(job); o != nil {
		o.fold(t)
		o.state = stateQueued
	}
}

// RecordExit closes the span with the given outcome, appends it to the span
// ring, and folds it into the per-class aggregate.
func (r *Recorder) RecordExit(t float64, class int, job uint64, outcome Outcome) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(Event{T: t, Kind: KindExit, Class: int32(class), Station: -1, Job: job, Value: float64(outcome)})
	o := r.lookup(job)
	if o == nil {
		return
	}
	o.fold(t)
	sp := Span{
		Job:       job,
		Class:     o.class,
		Arrival:   o.arrival,
		End:       t,
		Queue:     o.queue,
		Service:   o.service,
		Preempted: o.preempted,
		Backoff:   o.backoff,
		Attempts:  o.attempts,
		Outcome:   outcome,
	}
	r.pushSpan(sp)
	for int(o.class) >= len(r.agg) {
		r.agg = append(r.agg, Breakdown{Class: len(r.agg)})
	}
	a := &r.agg[o.class]
	switch outcome {
	case OutcomeAbandoned:
		a.Abandoned++
	case OutcomeDropped:
		a.Dropped++
	default:
		a.Completed++
	}
	a.Queue += sp.Queue
	a.Service += sp.Service
	a.Preempted += sp.Preempted
	a.Backoff += sp.Backoff
	delete(r.open, job)
	r.free = append(r.free, o)
}

// Events returns a copy of the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.copyEventsLocked()
}

func (r *Recorder) copyEventsLocked() []Event {
	out := make([]Event, r.evLen)
	for i := 0; i < r.evLen; i++ {
		out[i] = r.ev[(r.evHead+i)%len(r.ev)]
	}
	return out
}

// Drain returns the buffered events, oldest first, and clears the event
// ring (open spans, closed spans, and aggregates are untouched).
func (r *Recorder) Drain() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.copyEventsLocked()
	r.evHead, r.evLen = 0, 0
	return out
}

// Spans returns a copy of the buffered closed spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.spLen)
	for i := 0; i < r.spLen; i++ {
		out[i] = r.sp[(r.spHead+i)%len(r.sp)]
	}
	return out
}

// Breakdowns returns a copy of the per-class aggregates, indexed by class.
// Classes that closed no spans have zero counts.
func (r *Recorder) Breakdowns() []Breakdown {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Breakdown, len(r.agg))
	copy(out, r.agg)
	return out
}

// Breakdown returns the aggregate for one class (zero-valued if the class
// closed no spans or is out of range).
func (r *Recorder) Breakdown(class int) Breakdown {
	if r == nil {
		return Breakdown{Class: class}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if class < 0 || class >= len(r.agg) {
		return Breakdown{Class: class}
	}
	return r.agg[class]
}

// EventsDropped returns how many events were overwritten before being read.
func (r *Recorder) EventsDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evDropped
}

// SpansDropped returns how many closed spans were overwritten before being
// read (aggregates still counted them).
func (r *Recorder) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spDropped
}

// OpenSpans returns the number of jobs currently in flight.
func (r *Recorder) OpenSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Unmatched returns the number of events that referenced a job with no open
// span (nonzero indicates an instrumentation bug in the caller).
func (r *Recorder) Unmatched() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.unmatched
}

// Reset clears all rings, open spans, aggregates, and drop counters,
// returning the recorder to its freshly constructed state.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evHead, r.evLen, r.evDropped = 0, 0, 0
	r.spHead, r.spLen, r.spDropped = 0, 0, 0
	for job, o := range r.open {
		r.free = append(r.free, o)
		delete(r.open, job)
	}
	r.agg = r.agg[:0]
	r.unmatched = 0
}
