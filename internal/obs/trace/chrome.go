// Chrome trace-event JSON export: the recorder's event log rendered as a
// Perfetto/chrome://tracing-loadable document. Service visits become "X"
// (complete) slices on per-tier tracks; arrivals, timeouts, backoffs,
// resumes, and exits become "i" (instant) markers on a lifecycle track.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the traceEvents array. Field order (and
// encoding/json's stable struct-field ordering) makes the output
// deterministic for golden-fixture tests.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`            // microseconds
	Dur  float64     `json:"dur,omitempty"` // microseconds, "X" only
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"` // instant scope
	Cat  string      `json:"cat,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Job     uint64  `json:"job,omitempty"`
	Class   int32   `json:"class"`
	Name    string  `json:"name,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Outcome string  `json:"outcome,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// lifecycleTid is the track instant markers land on; tier j maps to
// tid j+1+lifecycleTid.
const lifecycleTid = 0

const usPerSec = 1e6

// WriteChromeTrace renders the recorder's current event buffer as a Chrome
// trace-event JSON document. A nil recorder writes an empty (but valid)
// document. The recorder is snapshotted, not drained.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return WriteChromeTrace(w, nil)
	}
	return WriteChromeTrace(w, r.Events())
}

// WriteChromeTrace renders an event slice (oldest first, as returned by
// Recorder.Events or Drain) as a Chrome trace-event JSON document.
//
// Service visits are paired into "X" slices per (job, station): a
// service_start opens a slice that the next service_stop, preempt, or
// timeout for the same job closes. Slices still open when the log ends are
// dropped (the ring may have evicted their close events). All other kinds
// become thread-scoped instants on the lifecycle track.
func WriteChromeTrace(w io.Writer, events []Event) error {
	type openSlice struct {
		start   float64
		station int32
		class   int32
	}
	open := map[uint64]openSlice{}

	maxStation := int32(-1)
	for _, e := range events {
		if e.Station > maxStation {
			maxStation = e.Station
		}
	}

	out := make([]chromeEvent, 0, len(events)+int(maxStation)+2)
	// Track-name metadata first: lifecycle track, then one per tier.
	out = append(out, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: lifecycleTid,
		Args: &chromeArgs{Name: "lifecycle", Class: -1},
	})
	for j := int32(0); j <= maxStation; j++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: int(j) + 1 + lifecycleTid,
			Args: &chromeArgs{Name: fmt.Sprintf("tier %d", j), Class: -1},
		})
	}

	closeSlice := func(e Event) {
		sl, ok := open[e.Job]
		if !ok {
			return
		}
		delete(open, e.Job)
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("class%d job%d", sl.class, e.Job),
			Ph:   "X",
			Ts:   sl.start * usPerSec,
			Dur:  (e.T - sl.start) * usPerSec,
			Pid:  1,
			Tid:  int(sl.station) + 1 + lifecycleTid,
			Cat:  "service",
			Args: &chromeArgs{Job: e.Job, Class: sl.class},
		})
	}
	instant := func(e Event, args *chromeArgs) {
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s class%d", e.Kind, e.Class),
			Ph:   "i",
			Ts:   e.T * usPerSec,
			Pid:  1,
			Tid:  lifecycleTid,
			S:    "t",
			Cat:  "lifecycle",
			Args: args,
		})
	}

	for _, e := range events {
		switch e.Kind {
		case KindServiceStart:
			// A start while a slice is open (missed close in a wrapped
			// ring) closes the stale slice at its own start time.
			if _, ok := open[e.Job]; ok {
				delete(open, e.Job)
			}
			open[e.Job] = openSlice{start: e.T, station: e.Station, class: e.Class}
		case KindServiceStop, KindPreempt:
			closeSlice(e)
			if e.Kind == KindPreempt {
				instant(e, &chromeArgs{Job: e.Job, Class: e.Class})
			}
		case KindTimeout:
			closeSlice(e)
			instant(e, &chromeArgs{Job: e.Job, Class: e.Class})
		case KindExit:
			instant(e, &chromeArgs{Job: e.Job, Class: e.Class,
				Outcome: Outcome(e.Value).String()})
		case KindBackoff:
			instant(e, &chromeArgs{Job: e.Job, Class: e.Class, Value: e.Value})
		default: // arrival, resume
			instant(e, &chromeArgs{Job: e.Job, Class: e.Class})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: out, DisplayTimeUnit: "ms"})
}
