package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeTrace pairs service slices and renders instants from a
// synthetic lifecycle, then checks the document parses and has the expected
// shape.
func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(0)
	r.RecordArrival(0, 0, 1)
	r.RecordServiceStart(1, 0, 1, 0)
	r.RecordPreempt(2, 0, 1, 0) // closes slice [1,2] on tier 0
	r.RecordServiceStart(3, 0, 1, 0)
	r.RecordServiceStop(5, 0, 1, 0) // closes slice [3,5] on tier 0
	r.RecordServiceStart(5, 0, 1, 1)
	r.RecordServiceStop(6, 0, 1, 1) // closes slice [5,6] on tier 1
	r.RecordExit(6, 0, 1, OutcomeCompleted)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
			Args struct {
				Job     uint64 `json:"job"`
				Outcome string `json:"outcome"`
				Name    string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var slices, instants, meta int
	var durSum float64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			durSum += e.Dur
			if e.Tid == lifecycleTid {
				t.Errorf("slice on lifecycle track: %+v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices != 3 {
		t.Errorf("slices = %d, want 3", slices)
	}
	// Total service time is 1+2+1 = 4s → 4e6 µs across the slices.
	if durSum != 4e6 {
		t.Errorf("total slice duration = %g µs, want 4e6", durSum)
	}
	// arrival + preempt + exit
	if instants != 3 {
		t.Errorf("instants = %d, want 3", instants)
	}
	// lifecycle + tier 0 + tier 1
	if meta != 3 {
		t.Errorf("metadata events = %d, want 3", meta)
	}
	exit := doc.TraceEvents[len(doc.TraceEvents)-1]
	if !strings.HasPrefix(exit.Name, "exit") || exit.Args.Outcome != "completed" {
		t.Errorf("last event not the exit instant: %+v", exit)
	}
}

// TestWriteChromeTraceNilAndUnclosed: nil recorder emits a valid empty doc;
// slices with no close event are dropped, not emitted half-open.
func TestWriteChromeTraceNilAndUnclosed(t *testing.T) {
	var nilRec *Recorder
	var buf bytes.Buffer
	if err := nilRec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil recorder produced invalid JSON: %v", err)
	}

	buf.Reset()
	events := []Event{
		{T: 0, Kind: KindArrival, Job: 1, Station: -1},
		{T: 1, Kind: KindServiceStart, Job: 1, Station: 0},
		// no stop: ring may have wrapped past it
	}
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ph":"X"`) {
		t.Errorf("unclosed slice was emitted: %s", buf.String())
	}
}
