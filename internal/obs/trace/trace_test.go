package trace

import (
	"math"
	"testing"
)

// TestSpanStateMachine walks one job through every state and checks the
// component decomposition is exact.
func TestSpanStateMachine(t *testing.T) {
	r := NewRecorder(0)
	const job = 7

	r.RecordArrival(0, 1, job)                   // queued
	r.RecordServiceStart(2, 1, job, 0)           // queue += 2
	r.RecordPreempt(5, 1, job, 0)                // service += 3
	r.RecordServiceStart(9, 1, job, 0)           // preempted += 4
	r.RecordTimeout(10, 1, job, 0)               // service += 1
	r.RecordBackoff(10, 1, job, 1)               // queue += 0
	r.RecordResume(16, 1, job)                   // backoff += 6
	r.RecordServiceStart(18, 1, job, 1)          // queue += 2
	r.RecordServiceStop(20, 1, job, 1)           // service += 2
	r.RecordExit(20.5, 1, job, OutcomeCompleted) // queue += 0.5

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	check := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	check("Queue", sp.Queue, 4.5)
	check("Service", sp.Service, 6)
	check("Preempted", sp.Preempted, 4)
	check("Backoff", sp.Backoff, 6)
	check("Sojourn", sp.Sojourn(), sp.Queue+sp.Service+sp.Preempted+sp.Backoff)
	check("End-Arrival", sp.End-sp.Arrival, 20.5)
	if sp.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", sp.Attempts)
	}
	if sp.Outcome != OutcomeCompleted {
		t.Errorf("Outcome = %v, want completed", sp.Outcome)
	}
	if r.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d, want 0", r.OpenSpans())
	}
	if r.Unmatched() != 0 {
		t.Errorf("Unmatched = %d, want 0", r.Unmatched())
	}

	b := r.Breakdown(1)
	if b.Completed != 1 || b.Spans() != 1 {
		t.Errorf("breakdown counts: %+v", b)
	}
	check("breakdown sojourn", b.Sojourn(), sp.Sojourn())
	check("MeanQueue", b.MeanQueue(), 4.5)
	if !math.IsNaN(r.Breakdown(0).MeanSojourn()) {
		t.Errorf("empty class mean should be NaN")
	}
}

// TestRecorderOutcomes checks abandon and drop bookkeeping.
func TestRecorderOutcomes(t *testing.T) {
	r := NewRecorder(0)
	r.RecordArrival(0, 0, 1)
	r.RecordExit(0, 0, 1, OutcomeDropped) // admission drop: zero-length span
	r.RecordArrival(1, 0, 2)
	r.RecordTimeout(4, 0, 2, 0)
	r.RecordExit(4, 0, 2, OutcomeAbandoned)

	b := r.Breakdown(0)
	if b.Dropped != 1 || b.Abandoned != 1 || b.Completed != 0 {
		t.Fatalf("counts: %+v", b)
	}
	spans := r.Spans()
	if spans[0].Sojourn() != 0 {
		t.Errorf("dropped span sojourn = %g, want 0", spans[0].Sojourn())
	}
	if spans[1].Queue != 3 || spans[1].Sojourn() != 3 {
		t.Errorf("abandoned span: %+v", spans[1])
	}
}

// TestEventRingOverwrite checks drop-oldest semantics and the drop counter.
func TestEventRingOverwrite(t *testing.T) {
	r := NewRecorder(1024)
	n := 1100
	for i := 0; i < n; i++ {
		r.RecordArrival(float64(i), 0, uint64(i))
	}
	evs := r.Events()
	if len(evs) != 1024 {
		t.Fatalf("len(events) = %d, want 1024", len(evs))
	}
	if evs[0].Job != uint64(n-1024) || evs[len(evs)-1].Job != uint64(n-1) {
		t.Errorf("ring window [%d, %d], want [%d, %d]",
			evs[0].Job, evs[len(evs)-1].Job, n-1024, n-1)
	}
	if got := r.EventsDropped(); got != uint64(n-1024) {
		t.Errorf("EventsDropped = %d, want %d", got, n-1024)
	}
	drained := r.Drain()
	if len(drained) != 1024 {
		t.Fatalf("drain returned %d events", len(drained))
	}
	if len(r.Events()) != 0 {
		t.Errorf("ring not empty after drain")
	}
	if r.OpenSpans() != n {
		t.Errorf("drain must not touch open spans: %d", r.OpenSpans())
	}
}

// TestSpanRingOverwriteKeepsAggregates checks that the per-class aggregate
// counts every closed span even after the span ring wraps.
func TestSpanRingOverwriteKeepsAggregates(t *testing.T) {
	r := NewRecorder(1024) // span ring also 1024 (min)
	n := 1500
	for i := 0; i < n; i++ {
		r.RecordArrival(float64(i), 0, uint64(i))
		r.RecordExit(float64(i)+0.5, 0, uint64(i), OutcomeCompleted)
	}
	if got := r.Breakdown(0).Completed; got != int64(n) {
		t.Errorf("aggregate completed = %d, want %d", got, n)
	}
	if len(r.Spans()) != 1024 {
		t.Errorf("span ring holds %d, want 1024", len(r.Spans()))
	}
	if got := r.SpansDropped(); got != uint64(n-1024) {
		t.Errorf("SpansDropped = %d, want %d", got, n-1024)
	}
}

// TestRecorderNilSafe calls every exported method on a nil recorder.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordArrival(0, 0, 1)
	r.RecordServiceStart(0, 0, 1, 0)
	r.RecordServiceStop(0, 0, 1, 0)
	r.RecordPreempt(0, 0, 1, 0)
	r.RecordTimeout(0, 0, 1, 0)
	r.RecordBackoff(0, 0, 1, 1)
	r.RecordResume(0, 0, 1)
	r.RecordExit(0, 0, 1, OutcomeCompleted)
	if r.Events() != nil || r.Drain() != nil || r.Spans() != nil || r.Breakdowns() != nil {
		t.Error("nil recorder returned non-nil data")
	}
	if r.EventsDropped() != 0 || r.SpansDropped() != 0 || r.OpenSpans() != 0 || r.Unmatched() != 0 {
		t.Error("nil recorder returned nonzero counters")
	}
	if b := r.Breakdown(3); b.Class != 3 || b.Spans() != 0 {
		t.Errorf("nil Breakdown(3) = %+v", b)
	}
	r.Reset()
}

// TestRecorderReset returns the recorder to a fresh state.
func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0)
	r.RecordArrival(0, 0, 1)
	r.RecordArrival(0, 1, 2)
	r.RecordExit(1, 1, 2, OutcomeCompleted)
	r.Reset()
	if len(r.Events()) != 0 || len(r.Spans()) != 0 || len(r.Breakdowns()) != 0 || r.OpenSpans() != 0 {
		t.Error("Reset left state behind")
	}
	// Recycled open-span records must come back zeroed.
	r.RecordArrival(5, 0, 3)
	r.RecordExit(7, 0, 3, OutcomeCompleted)
	sp := r.Spans()[0]
	if sp.Queue != 2 || sp.Service != 0 || sp.Attempts != 0 {
		t.Errorf("recycled span leaked state: %+v", sp)
	}
}

// TestUnmatchedEvents counts events for unknown jobs without panicking.
func TestUnmatchedEvents(t *testing.T) {
	r := NewRecorder(0)
	r.RecordServiceStart(1, 0, 99, 0)
	r.RecordExit(2, 0, 99, OutcomeCompleted)
	if got := r.Unmatched(); got != 2 {
		t.Errorf("Unmatched = %d, want 2", got)
	}
	if len(r.Spans()) != 0 {
		t.Errorf("unknown job must not close a span")
	}
}

func TestKindAndOutcomeStrings(t *testing.T) {
	if KindArrival.String() != "arrival" || KindExit.String() != "exit" {
		t.Error("kind names drifted")
	}
	if OutcomeAbandoned.String() != "abandoned" {
		t.Error("outcome names drifted")
	}
	if Kind(200).String() == "" || Outcome(200).String() == "" {
		t.Error("out-of-range names empty")
	}
}
