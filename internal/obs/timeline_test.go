package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTimelineSampleAndStats(t *testing.T) {
	tl := NewTimeline("q", "util")
	tl.Sample(0, []float64{0, 0})
	tl.Sample(1, []float64{2, 0.5})
	tl.Sample(2, []float64{4, 1})
	if tl.Len() != 3 {
		t.Fatalf("len = %d, want 3", tl.Len())
	}
	if got := tl.Mean("q"); got != 2 {
		t.Fatalf("mean(q) = %g, want 2", got)
	}
	if got := tl.Max("q"); got != 4 {
		t.Fatalf("max(q) = %g, want 4", got)
	}
	if got := tl.Last("util"); got != 1 {
		t.Fatalf("last(util) = %g, want 1", got)
	}
	if !math.IsNaN(tl.Mean("nope")) {
		t.Fatal("unknown series must give NaN")
	}
	if got := tl.Times(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("times = %v", got)
	}
}

func TestTimelineRowReuseIsAllocationFriendly(t *testing.T) {
	tl := NewTimeline("a", "b")
	row := tl.Row()
	row[0], row[1] = 1, 2
	tl.Sample(0, row)
	row[0], row[1] = 3, 4
	tl.Sample(1, row)
	// The stored columns must not alias the scratch row.
	if vs := tl.Values("a"); vs[0] != 1 || vs[1] != 3 {
		t.Fatalf("series a = %v, want [1 3]", vs)
	}
}

func TestTimelinePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no series":  func() { NewTimeline() },
		"dup series": func() { NewTimeline("x", "x") },
		"bad width":  func() { NewTimeline("x").Sample(0, []float64{1, 2}) },
		"backwards": func() {
			tl := NewTimeline("x")
			tl.Sample(1, []float64{0})
			tl.Sample(0, []float64{0})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTimelineCSVAndJSON(t *testing.T) {
	tl := NewTimeline("q", "p")
	tl.Sample(0.5, []float64{1, 100})
	tl.Sample(1.5, []float64{2, 200})

	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "time,q,p" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 3 || lines[1] != "0.5,1,100" {
		t.Fatalf("csv rows = %v", lines[1:])
	}

	raw, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Times  []float64 `json:"times"`
		Series []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Times) != 2 || len(doc.Series) != 2 || doc.Series[1].Name != "p" || doc.Series[1].Values[1] != 200 {
		t.Fatalf("json round-trip = %+v", doc)
	}
}

func TestNilTimelineIsInert(t *testing.T) {
	var tl *Timeline
	tl.Sample(0, []float64{1})
	if tl.Len() != 0 || tl.Names() != nil || tl.Values("x") != nil || tl.Row() != nil {
		t.Fatal("nil timeline must be inert")
	}
	if !math.IsNaN(tl.Mean("x")) || !math.IsNaN(tl.Last("x")) || !math.IsNaN(tl.Max("x")) {
		t.Fatal("nil timeline stats must be NaN")
	}
}
