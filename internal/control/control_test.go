package control

import (
	"math"
	"reflect"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

func mkObs(t float64, rates ...float64) sim.PlanObservation {
	return sim.PlanObservation{Time: t, Stations: make([]sim.Observation, 3), Rates: rates}
}

func TestNewValidation(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	noSLA := c.Clone()
	for k := range noSLA.Classes {
		noSLA.Classes[k].SLA.MaxMeanDelay = 0
	}
	for _, tc := range []struct {
		name string
		c    *cluster.Cluster
		cfg  Config
	}{
		{"EnergySLA without SLA bounds", noSLA, Config{Objective: EnergySLA}},
		{"CostServers without SLA bounds", noSLA, Config{Objective: CostServers}},
		{"EnergyAggregate without bound", c, Config{Objective: EnergyAggregate}},
		{"DelayBudget without budget", c, Config{Objective: DelayBudget}},
		{"unknown objective", c, Config{Objective: Objective(99)}},
		{"smoothing above 1", c, Config{Smoothing: 1.5}},
		{"smoothing negative", c, Config{Smoothing: -0.5}},
		{"deadband at 1", c, Config{Deadband: 1}},
		{"margin absurd", c, Config{Margin: 10}},
	} {
		if _, err := New(tc.c, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The negative sentinels are explicit zeros, not errors.
	if _, err := New(c, Config{Deadband: -1, Margin: -1}); err != nil {
		t.Errorf("negative sentinels rejected: %v", err)
	}
	// Aggregate and budget objectives construct with their bound set.
	if _, err := New(c, Config{Objective: EnergyAggregate, MaxWeightedDelay: 3}); err != nil {
		t.Errorf("EnergyAggregate rejected: %v", err)
	}
	if _, err := New(c, Config{Objective: DelayBudget, PowerBudget: 2000}); err != nil {
		t.Errorf("DelayBudget rejected: %v", err)
	}
}

func TestObjectiveStrings(t *testing.T) {
	for o, want := range map[Objective]string{
		EnergySLA: "C3b", EnergyAggregate: "C3a", DelayBudget: "C2", CostServers: "C4",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
	if got := Objective(42).String(); got != "Objective(42)" {
		t.Errorf("unknown objective string %q", got)
	}
}

// TestEWMASkipsNonEstimates pins the estimator contract: NaN, Inf and
// negative window readings leave the estimate untouched; valid readings fold
// in with the configured smoothing.
func TestEWMASkipsNonEstimates(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	a, err := New(c, Config{Smoothing: 0.5, Deadband: -1})
	if err != nil {
		t.Fatal(err)
	}
	nominal := a.Estimates()
	a.DecidePlan(mkObs(10, math.NaN(), math.Inf(1), -3))
	if got := a.Estimates(); !reflect.DeepEqual(got, nominal) {
		t.Errorf("non-estimates moved the EWMA: %v vs %v", got, nominal)
	}
	a.DecidePlan(mkObs(20, 2*nominal[0], math.NaN(), math.NaN()))
	got := a.Estimates()
	if want := 1.5 * nominal[0]; math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("EWMA(0.5) after 2λ reading = %g, want %g", got[0], want)
	}
	if got[1] != nominal[1] || got[2] != nominal[2] {
		t.Errorf("NaN readings moved other classes: %v", got)
	}
}

// TestDeadbandHoldsQuietEstimates pins the hold path: after the initial
// solve, epochs whose estimates and backlog stay within the deadband return
// the zero decision (hold) without re-solving.
func TestDeadbandHoldsQuietEstimates(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	a, err := New(c, Config{Deadband: 0.1, Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	nominal := a.Estimates()
	first := a.DecidePlan(mkObs(100, nominal...))
	if len(first.Speeds) != len(c.Tiers) {
		t.Fatalf("initial decision has %d speeds, want %d", len(first.Speeds), len(c.Tiers))
	}
	hold := a.DecidePlan(mkObs(200, nominal...))
	if !reflect.DeepEqual(hold, sim.PlanDecision{}) {
		t.Errorf("quiet epoch did not hold: %+v", hold)
	}
	s := a.Stats()
	if s.Solves != 1 || s.Holds != 1 || s.Fallbacks != 0 {
		t.Errorf("stats %v, want solves=1 holds=1 fallbacks=0", s)
	}
	// A rate shift far beyond the deadband re-solves.
	shifted := make([]float64, len(nominal))
	for k, v := range nominal {
		shifted[k] = 1.6 * v
	}
	// Two epochs at the shifted rate: EWMA 0.5 reaches 1.3×, 13% above the
	// 10% deadband around the anchor.
	a.DecidePlan(mkObs(300, shifted...))
	if got := a.Stats().Solves; got != 2 {
		t.Errorf("shifted epoch did not re-solve: solves=%d", got)
	}
}

// TestBacklogBoostBreaksHold pins the drain term: a large queue re-solves
// even while the arrival-rate estimates sit exactly on the anchor.
func TestBacklogBoostBreaksHold(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	a, err := New(c, Config{Deadband: 0.1, Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	nominal := a.Estimates()
	a.DecidePlan(mkObs(100, nominal...))
	obs := mkObs(200, nominal...)
	obs.Stations[0].QueueLen = 10000
	a.DecidePlan(obs)
	s := a.Stats()
	if s.Holds != 0 || s.Solves+s.Fallbacks != 2 {
		t.Errorf("backlog surge held the plan: %v", s)
	}
}

// TestInfeasibleLoadFallsBack pins the fallback: estimates far beyond what
// maximum speeds can serve within the SLA bounds must produce the safe plan
// (every tier at its speed ceiling) rather than an error or a stale plan.
func TestInfeasibleLoadFallsBack(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	a, err := New(c, Config{Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	nominal := a.Estimates()
	huge := make([]float64, len(nominal))
	for k, v := range nominal {
		huge[k] = 1e4 * v
	}
	// Smoothing 0.5 halves the first step; two epochs get within 25% of
	// the (absurd) target, far past any feasible operating point.
	a.DecidePlan(mkObs(100, huge...))
	dec := a.DecidePlan(mkObs(200, huge...))
	if a.Stats().Fallbacks == 0 {
		t.Fatalf("infeasible load never fell back: %v", a.Stats())
	}
	_, hi := c.SpeedBounds()
	if !reflect.DeepEqual(dec.Speeds, hi) {
		t.Errorf("fallback speeds %v, want ceiling %v", dec.Speeds, hi)
	}
}

func TestStatsAndName(t *testing.T) {
	c := workload.Enterprise3Tier(1)
	a, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Name(); got != "model(C3b)" {
		t.Errorf("Name() = %q", got)
	}
	if got := (Stats{Solves: 3, Holds: 2, Fallbacks: 1}).String(); got != "solves=3 holds=2 fallbacks=1" {
		t.Errorf("Stats.String() = %q", got)
	}
}
