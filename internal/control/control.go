// Package control implements the model-driven online autoscaler: a plan-
// level simulator controller (sim.PlanController) that closes ROADMAP item
// 1's loop. At every control epoch it re-estimates per-class arrival rates
// from the sliding-window sensors (internal/obs/window, delivered through
// PlanObservation.Rates), smooths them, and re-runs the paper's offline
// optimizations — C2 (MinimizeDelay), C3a (MinimizeEnergy), C3b
// (MinimizeEnergyPerClass) or C4 (MinimizeCost) — against the live
// estimates, retuning per-tier speeds (and, under the cost objective,
// effective server counts) to the re-solved operating point.
//
// The controller is deliberately an MPC-without-the-P: the solvers already
// embed the queueing model, so each epoch's plan is the steady-state-optimal
// operating point for the currently estimated load. A relative-change
// deadband skips re-solves while the estimates are quiet, and an infeasible
// solve (estimated load beyond what even maximum speeds can serve within the
// bounds) falls back to maximum speeds with every server active — protect
// the SLA first, save energy when the model says it is safe.
//
// Determinism: decisions are pure functions of the observation stream and
// the configuration. The package draws no randomness and reads no clocks —
// the solvers' multi-start is a deterministic lattice — and it is inside the
// simdeterm and rngstream lint scopes to keep it that way, so a simulation
// driven by this controller is bit-reproducible from its seed.
package control

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/opt"
	"clusterq/internal/sim"
)

// Objective selects which of the paper's optimization problems the
// controller re-solves each epoch.
type Objective int

const (
	// EnergySLA re-solves C3b: minimize power subject to every class's SLA
	// mean-delay bound (read from the cluster's SLAs). The default.
	EnergySLA Objective = iota
	// EnergyAggregate re-solves C3a: minimize power subject to the
	// arrival-rate-weighted average delay staying within MaxWeightedDelay.
	EnergyAggregate
	// DelayBudget re-solves C2: minimize the weighted average delay
	// subject to the cluster's average power staying within PowerBudget.
	DelayBudget
	// CostServers re-solves C4: minimize provisioning cost over server
	// counts and speeds; the decision also resizes each tier's active pool
	// (parking the servers the plan does not need), capped at the
	// configured count — the simulator cannot buy hardware mid-run.
	CostServers
)

func (o Objective) String() string {
	switch o {
	case EnergySLA:
		return "C3b"
	case EnergyAggregate:
		return "C3a"
	case DelayBudget:
		return "C2"
	case CostServers:
		return "C4"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Config parameterizes the autoscaler.
type Config struct {
	// Objective selects the re-solved problem (default EnergySLA).
	Objective Objective
	// MaxWeightedDelay is the aggregate delay bound (required > 0 for
	// EnergyAggregate, unused otherwise).
	MaxWeightedDelay float64
	// PowerBudget is the average power cap in watts (required > 0 for
	// DelayBudget, unused otherwise).
	PowerBudget float64
	// Smoothing is the EWMA factor applied to each epoch's windowed rate
	// estimate, in (0, 1]: est ← Smoothing·λ̂ + (1−Smoothing)·est. Default
	// 0.5; 1 trusts each window reading outright.
	Smoothing float64
	// Deadband is the relative per-class estimate change below which the
	// controller holds the current plan instead of re-solving (default
	// 0.05). Any negative value disables the deadband — re-solve every
	// epoch — following the repo's negative-sentinel convention for
	// explicit zeros (see sim.ZeroWarmup).
	Deadband float64
	// Margin inflates every estimate before solving — the plan serves
	// λ̂·(1+Margin) — covering the estimation lag of the sliding window and
	// EWMA during load rises. The offline problems place the binding
	// delays AT their bounds, so an unmargined plan saturates on any
	// underestimate. Default 0.15; any negative value means an explicit
	// zero margin (the negative-sentinel convention again).
	Margin float64
	// Starts is the solvers' multi-start count (default: the solvers').
	Starts int
	// AugLag configures the solvers' inner augmented-Lagrangian solves.
	AugLag opt.AugLagOptions
}

// Controller is the model-driven autoscaler. Construct with New; it
// implements sim.PlanController and is stateful across epochs (estimates,
// deadband anchor), which is why the simulator restricts plan controllers to
// a single replication.
type Controller struct {
	base    *cluster.Cluster
	cfg     Config
	nominal []float64 // the cluster's configured λ, the cold-start estimate
	est     []float64 // EWMA-smoothed arrival-rate estimates
	anchor  []float64 // estimates at the last solve, the deadband reference
	anchorF float64   // margin·drain factor at the last solve
	lastT   float64   // previous epoch's time (drain-rate denominator)
	solved  bool      // an initial solve has produced a plan

	fallback sim.PlanDecision // max speeds (and full pools): the safe plan

	stats Stats
}

// Stats counts what the controller did over a run — how often the model was
// re-solved, how often the deadband held the plan, and how often an
// infeasible solve forced the maximum-speed fallback.
type Stats struct {
	Solves, Holds, Fallbacks int
}

func (s Stats) String() string {
	return fmt.Sprintf("solves=%d holds=%d fallbacks=%d", s.Solves, s.Holds, s.Fallbacks)
}

// New validates the configuration against the cluster and returns a
// controller. The cluster is cloned: later mutations of c do not affect the
// controller, and the controller never mutates c.
func New(c *cluster.Cluster, cfg Config) (*Controller, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Objective {
	case EnergySLA:
		any := false
		for _, cl := range c.Classes {
			if cl.SLA.HasMeanBound() {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("control: objective %v needs at least one class with an SLA mean-delay bound", cfg.Objective)
		}
	case EnergyAggregate:
		if !(cfg.MaxWeightedDelay > 0) {
			return nil, fmt.Errorf("control: objective %v needs MaxWeightedDelay > 0, got %g", cfg.Objective, cfg.MaxWeightedDelay)
		}
	case DelayBudget:
		if !(cfg.PowerBudget > 0) {
			return nil, fmt.Errorf("control: objective %v needs PowerBudget > 0, got %g", cfg.Objective, cfg.PowerBudget)
		}
	case CostServers:
		any := false
		for _, cl := range c.Classes {
			if cl.SLA.HasMeanBound() {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("control: objective %v needs at least one class with an SLA mean-delay bound", cfg.Objective)
		}
	default:
		return nil, fmt.Errorf("control: unknown objective %v", cfg.Objective)
	}
	switch {
	case cfg.Smoothing == 0:
		cfg.Smoothing = 0.5
	case !(cfg.Smoothing > 0) || cfg.Smoothing > 1:
		return nil, fmt.Errorf("control: smoothing %g out of (0, 1]", cfg.Smoothing)
	}
	switch {
	case cfg.Deadband == 0:
		cfg.Deadband = 0.05
	case cfg.Deadband < 0:
		cfg.Deadband = 0
	case !(cfg.Deadband < 1):
		return nil, fmt.Errorf("control: deadband %g must be below 1", cfg.Deadband)
	}
	switch {
	case cfg.Margin == 0:
		cfg.Margin = 0.15
	case cfg.Margin < 0:
		cfg.Margin = 0
	case !(cfg.Margin < 10):
		return nil, fmt.Errorf("control: margin %g is not a sane headroom fraction", cfg.Margin)
	}
	a := &Controller{
		base:    c.Clone(),
		cfg:     cfg,
		nominal: c.Lambdas(),
	}
	a.est = append([]float64(nil), a.nominal...)
	// The safe plan: every tier at its optimizer speed ceiling with the
	// full pool active. SpeedBounds' hi respects the configured MaxSpeed.
	_, hi := a.base.SpeedBounds()
	a.fallback = sim.PlanDecision{Speeds: hi}
	if cfg.Objective == CostServers {
		full := make([]int, len(a.base.Tiers))
		for j, t := range a.base.Tiers {
			full[j] = t.Servers
		}
		a.fallback.Servers = full
	}
	return a, nil
}

// Name implements sim.PlanController.
func (a *Controller) Name() string {
	return fmt.Sprintf("model(%v)", a.cfg.Objective)
}

// Stats returns the controller's decision counters.
func (a *Controller) Stats() Stats { return a.stats }

// Estimates returns a copy of the current smoothed per-class arrival-rate
// estimates (the nominal rates until window readings arrive).
func (a *Controller) Estimates() []float64 {
	return append([]float64(nil), a.est...)
}

// DecidePlan implements sim.PlanController: fold the epoch's windowed rate
// estimates into the EWMA, compute the margin·drain inflation factor, hold
// inside the deadband, otherwise re-solve the configured problem at the
// inflated estimates and return its operating point.
func (a *Controller) DecidePlan(obs sim.PlanObservation) sim.PlanDecision {
	for k := range a.est {
		if k >= len(obs.Rates) {
			break
		}
		r := obs.Rates[k]
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			continue // no estimate this epoch; keep the current one
		}
		a.est[k] += a.cfg.Smoothing * (r - a.est[k])
	}
	factor := (1 + a.cfg.Margin) * (1 + a.drainBoost(obs))
	if a.solved && a.withinDeadband(factor) {
		a.stats.Holds++
		return sim.PlanDecision{}
	}
	dec, ok := a.solve(factor)
	a.solved = true
	a.anchor = append(a.anchor[:0], a.est...)
	a.anchorF = factor
	if !ok {
		a.stats.Fallbacks++
		return a.fallback
	}
	a.stats.Solves++
	return dec
}

// drainBoost converts the observed backlog into an extra service-rate
// fraction. A steady-state re-solve is blind to accumulated queues: it
// provisions for the arrival rate and would carry any backlog forever (the
// very failure mode that makes pure steady-state MPC saturate after a load
// rise). Planning for the extra throughput that clears the waiting jobs
// within roughly one epoch drains the backlog instead. The boost is capped —
// a huge backlog wants the fallback's maximum speeds, not an infeasible
// solve at an absurd rate.
func (a *Controller) drainBoost(obs sim.PlanObservation) float64 {
	backlog := 0
	for _, st := range obs.Stations {
		backlog += st.QueueLen
	}
	epoch := obs.Time - a.lastT
	a.lastT = obs.Time
	if backlog == 0 || !(epoch > 0) {
		return 0
	}
	var lam float64
	for _, e := range a.est {
		lam += e
	}
	if !(lam > 0) {
		return 0
	}
	boost := float64(backlog) / (lam * epoch)
	if boost > 2 {
		boost = 2
	}
	return boost
}

// withinDeadband reports whether every class's estimate — and the overall
// inflation factor — is within the relative deadband of the last solve's
// anchor. A backlog surge therefore re-solves even while the arrival-rate
// estimates are quiet.
func (a *Controller) withinDeadband(factor float64) bool {
	if a.cfg.Deadband == 0 || a.anchor == nil {
		return false
	}
	if !(a.anchorF > 0) || math.Abs(factor-a.anchorF)/a.anchorF > a.cfg.Deadband {
		return false
	}
	for k, e := range a.est {
		ref := a.anchor[k]
		if ref == 0 {
			if e != 0 {
				return false
			}
			continue
		}
		if math.Abs(e-ref)/ref > a.cfg.Deadband {
			return false
		}
	}
	return true
}

// solve re-runs the configured optimization at the current estimates scaled
// by the margin·drain factor, returning ok=false when the problem is
// infeasible at that load (or the solver rejects it), in which case the
// caller applies the fallback.
func (a *Controller) solve(factor float64) (sim.PlanDecision, bool) {
	c := a.base.Clone()
	for k := range c.Classes {
		// A numerically dead class still needs a positive rate for the
		// evaluator; floor the estimate at 1% of nominal.
		lam := factor * a.est[k]
		if lam < 0.01*a.nominal[k] {
			lam = 0.01 * a.nominal[k]
		}
		c.Classes[k].Lambda = lam
	}
	var (
		sol *core.Solution
		err error
	)
	switch a.cfg.Objective {
	case EnergySLA:
		bounds := make([]float64, len(c.Classes))
		for k, cl := range c.Classes {
			bounds[k] = cl.SLA.MaxMeanDelay
		}
		sol, err = core.MinimizeEnergyPerClass(c, core.EnergyOptions{
			MaxClassDelay: bounds, Starts: a.cfg.Starts, AugLag: a.cfg.AugLag,
		})
	case EnergyAggregate:
		sol, err = core.MinimizeEnergy(c, core.EnergyOptions{
			MaxWeightedDelay: a.cfg.MaxWeightedDelay, Starts: a.cfg.Starts, AugLag: a.cfg.AugLag,
		})
	case DelayBudget:
		sol, err = core.MinimizeDelay(c, core.DelayOptions{
			EnergyBudget: a.cfg.PowerBudget, Starts: a.cfg.Starts, AugLag: a.cfg.AugLag,
		})
	case CostServers:
		sol, err = core.MinimizeCost(c, core.CostOptions{
			Starts: a.cfg.Starts, AugLag: a.cfg.AugLag,
		})
	}
	if err != nil || sol == nil {
		return sim.PlanDecision{}, false
	}
	dec := sim.PlanDecision{Speeds: sol.Cluster.Speeds()}
	if a.cfg.Objective == CostServers {
		dec.Servers = make([]int, len(sol.Cluster.Tiers))
		for j, t := range sol.Cluster.Tiers {
			n := t.Servers
			if max := a.base.Tiers[j].Servers; n > max {
				n = max
			}
			dec.Servers[j] = n
		}
	}
	return dec, true
}

// NoOp is a plan controller that holds every knob at every epoch — the
// perturbation-freedom baseline: attaching it must leave every simulation
// result bit-identical to a controller-free run.
type NoOp struct{}

// Name implements sim.PlanController.
func (NoOp) Name() string { return "noop" }

// DecidePlan implements sim.PlanController.
func (NoOp) DecidePlan(sim.PlanObservation) sim.PlanDecision { return sim.PlanDecision{} }
