package control

import (
	"fmt"
	"reflect"
	"testing"

	"clusterq/internal/obs/window"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// TestNoOpIsPerturbationFree pins satellite 3 from the control side, with
// the exported NoOp itself: attaching it (with window sensors) must leave
// the entire Result exactly equal to a controller-free run on both
// calendars. The comparison formats every field with %#v — the default
// float formatting is the shortest round-trippable representation, so two
// distinct bit patterns render distinctly — instead of reflect.DeepEqual,
// whose NaN ≠ NaN rule trips on the single-replication confidence
// half-widths that are legitimately NaN in BOTH results. The sim package
// pins the same property for the AdvanceTo-sliced step engine (it cannot
// import this package); NoOp returning the guaranteed-no-op zero decision
// is what ties the two tests together.
func TestNoOpIsPerturbationFree(t *testing.T) {
	if d := (NoOp{}).DecidePlan(sim.PlanObservation{}); !reflect.DeepEqual(d, sim.PlanDecision{}) {
		t.Fatalf("NoOp decision %+v is not the zero decision", d)
	}
	if (NoOp{}).Name() == "" {
		t.Fatal("NoOp has no name")
	}
	c := workload.Enterprise3Tier(1)
	base := sim.Options{
		Horizon: 2000, Replications: 1, Seed: 9,
		Warmup: sim.ZeroWarmup, // control events must not shift the warmup reset
	}
	for _, calKind := range []string{sim.CalendarHeap, sim.CalendarLadder} {
		o := base
		o.Calendar = calKind
		free, err := sim.Run(c, o)
		if err != nil {
			t.Fatal(err)
		}
		win, err := window.NewSet(window.Config{Width: 100}, len(c.Classes), len(c.Tiers))
		if err != nil {
			t.Fatal(err)
		}
		o.PlanController = NoOp{}
		o.ControlPeriod = 31
		o.Windows = win
		withNoOp, err := sim.Run(c, o)
		if err != nil {
			t.Fatal(err)
		}
		a, b := fmt.Sprintf("%#v", *free), fmt.Sprintf("%#v", *withNoOp)
		if a != b {
			t.Errorf("%s: NoOp plan controller perturbed the Result:\nfree: %s\nnoop: %s", calKind, a, b)
		}
	}
}
