// Package stats provides the statistical machinery used throughout clusterq:
// streaming moment accumulators, quantile estimation, batch-means confidence
// intervals for steady-state simulation output, and the special functions
// (gamma, incomplete beta, Student-t) they require.
//
// Everything is implemented from scratch on top of the standard library so
// the module stays dependency-free.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates count, mean and variance of a stream of observations
// using Welford's numerically stable online algorithm. The zero value is an
// empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN incorporates an observation with integer weight n ≥ 1, equivalent to
// calling Add(x) n times.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (parallel variance formula by
// Chan et al.). The other accumulator is left unchanged.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Count returns the number of observations seen so far.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean, or NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (divisor n-1), or NaN when
// fewer than two observations have been added.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance (divisor n), or NaN when empty.
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// Min returns the smallest observation, or NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Sum returns the running total of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Reset returns the accumulator to its empty state.
func (w *Welford) Reset() { *w = Welford{} }

// CI returns a two-sided Student-t confidence interval half-width for the
// mean at the given confidence level (e.g. 0.95). It returns NaN when fewer
// than two observations have been recorded.
func (w *Welford) CI(level float64) float64 {
	if w.n < 2 {
		return math.NaN()
	}
	t := TQuantile(1-(1-level)/2, float64(w.n-1))
	return t * w.StdErr()
}

// String summarizes the accumulator for diagnostics.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		w.n, w.Mean(), w.StdDev(), w.Min(), w.Max())
}

// TimeWeighted accumulates the time average of a piecewise-constant signal,
// such as queue length or instantaneous power in a discrete-event simulation.
// Call Observe(value, now) every time the signal changes; the value is held
// from the previous observation time until now.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	origin   float64
	min, max float64
}

// StartAt initializes the signal at time t with value v.
func (tw *TimeWeighted) StartAt(t, v float64) {
	tw.started = true
	tw.origin = t
	tw.lastT = t
	tw.lastV = v
	tw.area = 0
	tw.min, tw.max = v, v
}

// Observe records that the signal changed to value v at time t. The previous
// value is integrated over [lastT, t]. Observing before StartAt starts the
// signal at t.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.StartAt(t, v)
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted.Observe time went backwards: %g < %g", t, tw.lastT))
	}
	tw.area += tw.lastV * (t - tw.lastT)
	tw.lastT = t
	tw.lastV = v
	if v < tw.min {
		tw.min = v
	}
	if v > tw.max {
		tw.max = v
	}
}

// MeanAt returns the time average over [origin, t], extending the current
// value to t.
func (tw *TimeWeighted) MeanAt(t float64) float64 {
	if !tw.started || t <= tw.origin {
		return math.NaN()
	}
	area := tw.area + tw.lastV*(t-tw.lastT)
	return area / (t - tw.origin)
}

// Value returns the current signal value.
func (tw *TimeWeighted) Value() float64 { return tw.lastV }

// Elapsed returns the observation span up to the given time.
func (tw *TimeWeighted) Elapsed(t float64) float64 { return t - tw.origin }
