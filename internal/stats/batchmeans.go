package stats

import (
	"fmt"
	"math"
)

// BatchMeans implements the method of (non-overlapping) batch means for
// constructing confidence intervals on the steady-state mean of a correlated
// output sequence, the standard technique for single-run discrete-event
// simulation output analysis.
//
// Observations are grouped into fixed-size batches; batch averages are
// treated as approximately i.i.d. normal and fed to a Student-t interval.
type BatchMeans struct {
	batchSize int64
	cur       Welford // observations in the partially filled batch
	batches   Welford // completed batch means
	all       Welford // every observation, for the point estimate
}

// NewBatchMeans creates an analyzer with the given batch size (must be ≥ 1).
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize < 1 {
		panic(fmt.Sprintf("stats: batch size %d < 1", batchSize))
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation.
func (b *BatchMeans) Add(x float64) {
	b.all.Add(x)
	b.cur.Add(x)
	if b.cur.Count() == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur.Reset()
	}
}

// Count returns the total number of observations.
func (b *BatchMeans) Count() int64 { return b.all.Count() }

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.Count() }

// Mean returns the grand mean over all observations.
func (b *BatchMeans) Mean() float64 { return b.all.Mean() }

// CI returns the half-width of a Student-t confidence interval at the given
// level, computed from the completed batch means. It returns NaN when fewer
// than two batches have completed.
func (b *BatchMeans) CI(level float64) float64 {
	return b.batches.CI(level)
}

// RelativePrecision returns CI(level)/|Mean|, the relative half-width, or
// +Inf when the mean is indistinguishable from zero (a ratio against a mean
// of ±1e-300 is numeric noise, not precision). Useful as a sequential
// stopping criterion.
func (b *BatchMeans) RelativePrecision(level float64) float64 {
	m := b.Mean()
	if almostZero(m) {
		return math.Inf(1)
	}
	return b.CI(level) / math.Abs(m)
}

// Estimate bundles a point estimate with a confidence half-width, as produced
// by simulation replications or batch means.
type Estimate struct {
	Mean    float64 // point estimate
	HalfW   float64 // confidence half-width (NaN if not available)
	Level   float64 // confidence level the half-width corresponds to
	Samples int64   // observations behind the estimate
	Batches int64   // batches or replications behind the half-width
}

// HasCI reports whether the estimate carries a usable confidence half-width.
// Replication/batch counts below two leave HalfW as NaN; callers that treat
// Contains as a pass/fail check should first gate on HasCI, because Contains
// vacuously succeeds without an interval.
func (e Estimate) HasCI() bool {
	return !math.IsNaN(e.HalfW)
}

// Contains reports whether v lies within the confidence interval. It returns
// true when no half-width is available (see HasCI), so callers can use it as
// a soft check; strict validation should require HasCI() && Contains(v).
func (e Estimate) Contains(v float64) bool {
	if !e.HasCI() {
		return true
	}
	return v >= e.Mean-e.HalfW && v <= e.Mean+e.HalfW
}

// RelErr returns |Mean-v|/|v| (relative error against a reference value v),
// or the absolute error when v is indistinguishable from zero.
func (e Estimate) RelErr(v float64) float64 {
	if almostZero(v) {
		return math.Abs(e.Mean)
	}
	return math.Abs(e.Mean-v) / math.Abs(v)
}

func (e Estimate) String() string {
	if math.IsNaN(e.HalfW) {
		return fmt.Sprintf("%.6g (n=%d)", e.Mean, e.Samples)
	}
	return fmt.Sprintf("%.6g ± %.3g (%d%%, n=%d)", e.Mean, e.HalfW, int(e.Level*100), e.Samples)
}
