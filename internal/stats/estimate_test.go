package stats

import (
	"math"
	"testing"
)

func TestEstimateHasCI(t *testing.T) {
	with := Estimate{Mean: 2, HalfW: 0.5, Level: 0.95, Samples: 100, Batches: 5}
	if !with.HasCI() {
		t.Errorf("HasCI() = false for finite half-width %v", with.HalfW)
	}
	without := Estimate{Mean: 2, HalfW: math.NaN(), Samples: 1, Batches: 1}
	if without.HasCI() {
		t.Error("HasCI() = true for NaN half-width")
	}
}

func TestEstimateContainsWithoutCI(t *testing.T) {
	// Contains is documented as a soft check: with no interval it accepts
	// everything, which is exactly why validation must gate on HasCI.
	e := Estimate{Mean: 2, HalfW: math.NaN()}
	if !e.Contains(1e9) || !e.Contains(-1e9) {
		t.Error("Contains should vacuously accept any value when HalfW is NaN")
	}

	e = Estimate{Mean: 2, HalfW: 0.5}
	if !e.Contains(2.4) {
		t.Error("Contains(2.4) = false for 2 ± 0.5")
	}
	if e.Contains(2.6) {
		t.Error("Contains(2.6) = true for 2 ± 0.5")
	}
}

func TestRelErrNearZeroReference(t *testing.T) {
	e := Estimate{Mean: 0.25}
	// A reference of ±1e-300 is numerically zero; RelErr must fall back to
	// the absolute error instead of dividing by it (which would yield ~1e299).
	for _, v := range []float64{0, 1e-300, -1e-300} {
		if got := e.RelErr(v); got != 0.25 {
			t.Errorf("RelErr(%g) = %g, want absolute error 0.25", v, got)
		}
	}
	if got := e.RelErr(0.5); got != 0.5 {
		t.Errorf("RelErr(0.5) = %g, want 0.5", got)
	}
}

func TestRelativePrecisionNearZeroMean(t *testing.T) {
	for _, scale := range []float64{1e-300, -1e-300} {
		b := NewBatchMeans(2)
		for i := 0; i < 20; i++ {
			b.Add(scale * float64(1+i%3))
		}
		if got := b.RelativePrecision(0.95); !math.IsInf(got, 1) {
			t.Errorf("RelativePrecision with mean %g = %g, want +Inf", b.Mean(), got)
		}
	}

	b := NewBatchMeans(2)
	for i := 0; i < 20; i++ {
		b.Add(10 + float64(i%3))
	}
	got := b.RelativePrecision(0.95)
	if math.IsInf(got, 1) || math.IsNaN(got) || got < 0 {
		t.Errorf("RelativePrecision with mean %g = %g, want finite non-negative", b.Mean(), got)
	}
}

func TestAlmostZero(t *testing.T) {
	for _, x := range []float64{0, 1e-300, -1e-300, 1e-13, -1e-13} {
		if !almostZero(x) {
			t.Errorf("almostZero(%g) = false", x)
		}
	}
	for _, x := range []float64{1e-9, -1e-9, 1, math.Inf(1), math.NaN()} {
		if almostZero(x) {
			t.Errorf("almostZero(%g) = true", x)
		}
	}
}
