package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream without storing the
// observations, using the P² algorithm of Jain & Chlamtac (1985). It keeps
// five markers whose heights converge to the quantile as observations arrive.
type P2Quantile struct {
	p       float64
	count   int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments per observation
	initial []float64  // first five observations, before initialization
}

// NewP2Quantile creates an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile probability %g out of (0,1)", p))
	}
	return &P2Quantile{
		p:       p,
		inc:     [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		initial: make([]float64, 0, 5),
	}
}

// P returns the probability this estimator targets.
func (q *P2Quantile) P() float64 { return q.p }

// Count returns the number of observations seen.
func (q *P2Quantile) Count() int64 { return q.count }

// Add incorporates one observation.
func (q *P2Quantile) Add(x float64) {
	q.count++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			for i := 0; i < 5; i++ {
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}

	// Find the cell k containing x and update extreme heights.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}

	// Adjust interior markers if they drifted from their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic performs the piecewise-parabolic (P²) height prediction.
func (q *P2Quantile) parabolic(i int, d float64) float64 {
	num1 := q.pos[i] - q.pos[i-1] + d
	num2 := q.pos[i+1] - q.pos[i] - d
	den := q.pos[i+1] - q.pos[i-1]
	t1 := (q.heights[i+1] - q.heights[i]) / (q.pos[i+1] - q.pos[i])
	t2 := (q.heights[i] - q.heights[i-1]) / (q.pos[i] - q.pos[i-1])
	return q.heights[i] + d/den*(num1*t1+num2*t2)
}

// linear is the fallback linear height prediction.
func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the empirical quantile of what it has; with
// none it returns NaN.
func (q *P2Quantile) Value() float64 {
	if q.count == 0 {
		return math.NaN()
	}
	if len(q.initial) < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		// Nearest-rank, matching ExactQuantile: small-sample estimates must
		// agree with the exact definition tests compare against.
		idx := int(math.Ceil(q.p*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return q.heights[2]
}

// QuantileSet tracks several quantiles of the same stream.
type QuantileSet struct {
	est []*P2Quantile
}

// NewQuantileSet creates estimators for each probability.
func NewQuantileSet(ps ...float64) *QuantileSet {
	s := &QuantileSet{est: make([]*P2Quantile, len(ps))}
	for i, p := range ps {
		s.est[i] = NewP2Quantile(p)
	}
	return s
}

// Add incorporates one observation into every estimator.
func (s *QuantileSet) Add(x float64) {
	for _, e := range s.est {
		e.Add(x)
	}
}

// Value returns the estimate for the quantile with probability p, or NaN if
// no estimator was configured for p.
func (s *QuantileSet) Value(p float64) float64 {
	for _, e := range s.est {
		//lint:waive floateq reason="deliberate exact compare: p is a lookup key copied verbatim from configuration" until=2027-08-01
		if e.p == p {
			return e.Value()
		}
	}
	return math.NaN()
}

// ExactQuantile returns the empirical q-quantile of data (using the nearest-
// rank definition on a sorted copy). It is O(n log n) and intended for tests
// and small samples.
func ExactQuantile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
