package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 {
		t.Fatalf("empty count = %d", w.Count())
	}
	for name, v := range map[string]float64{
		"mean": w.Mean(), "var": w.Variance(), "min": w.Min(), "max": w.Max(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %g, want NaN", name, v)
		}
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if got := w.Mean(); !almostEq(got, 5, 1e-12) {
		t.Errorf("mean = %g, want 5", got)
	}
	// Population variance of this classic data set is 4.
	if got := w.PopVariance(); !almostEq(got, 4, 1e-12) {
		t.Errorf("pop variance = %g, want 4", got)
	}
	if got := w.Variance(); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("sample variance = %g, want %g", got, 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", w.Min(), w.Max())
	}
	if got := w.Sum(); !almostEq(got, 40, 1e-12) {
		t.Errorf("sum = %g, want 40", got)
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 {
		t.Errorf("mean = %g", w.Mean())
	}
	if !math.IsNaN(w.Variance()) {
		t.Errorf("variance of single obs = %g, want NaN", w.Variance())
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset: the naive sum-of-squares algorithm fails here.
	var w Welford
	offset := 1e9
	for _, x := range []float64{4, 7, 13, 16} {
		w.Add(offset + x)
	}
	if got := w.Variance(); !almostEq(got, 30, 1e-6) {
		t.Errorf("variance with large offset = %g, want 30", got)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(n1, n2 int) {
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64()*3 + 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.ExpFloat64()
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			t.Fatalf("merged count %d != %d", a.Count(), all.Count())
		}
		if !almostEq(a.Mean(), all.Mean(), 1e-10) {
			t.Errorf("merged mean %g != %g", a.Mean(), all.Mean())
		}
		if !almostEq(a.Variance(), all.Variance(), 1e-9) {
			t.Errorf("merged variance %g != %g", a.Variance(), all.Variance())
		}
		if a.Min() != all.Min() || a.Max() != all.Max() {
			t.Errorf("merged min/max %g/%g != %g/%g", a.Min(), a.Max(), all.Min(), all.Max())
		}
	}
	check(100, 250)
	check(0, 10)
	check(10, 0)
	check(1, 1)
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(2.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(2.5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Errorf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

// Property: mean is always within [min, max], variance is non-negative.
func TestWelfordInvariantsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			w.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		if w.Mean() < w.Min()-1e-9 || w.Mean() > w.Max()+1e-9 {
			return false
		}
		if n >= 2 && w.Variance() < -1e-9 {
			return false
		}
		return w.Count() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var small, large Welford
	for i := 0; i < 30; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 3000; i++ {
		large.Add(rng.NormFloat64())
	}
	cs, cl := small.CI(0.95), large.CI(0.95)
	if !(cl < cs) {
		t.Errorf("CI did not shrink with samples: %g vs %g", cs, cl)
	}
	if cl <= 0 || cs <= 0 {
		t.Errorf("CI half-widths must be positive: %g, %g", cs, cl)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 2) // value 2 on [0, 4)
	tw.Observe(4, 6) // value 6 on [4, 10)
	got := tw.MeanAt(10)
	want := (2*4 + 6*6) / 10.0
	if !almostEq(got, want, 1e-12) {
		t.Errorf("time mean = %g, want %g", got, want)
	}
	if tw.Value() != 6 {
		t.Errorf("current value = %g", tw.Value())
	}
}

func TestTimeWeightedAutoStart(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(5, 1)
	tw.Observe(7, 3)
	if got := tw.MeanAt(9); !almostEq(got, (1*2+3*2)/4.0, 1e-12) {
		t.Errorf("mean = %g", got)
	}
}

func TestTimeWeightedBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on time going backwards")
		}
	}()
	var tw TimeWeighted
	tw.StartAt(10, 1)
	tw.Observe(5, 2)
}

func TestTimeWeightedConstantSignal(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 3.25)
	for i := 1; i <= 10; i++ {
		tw.Observe(float64(i), 3.25)
	}
	if got := tw.MeanAt(10); !almostEq(got, 3.25, 1e-12) {
		t.Errorf("constant signal mean = %g", got)
	}
}
