package stats

import "math"

// zeroTol is the magnitude below which a computed mean is treated as zero by
// the relative-error helpers. Means in this package are averages of physical
// quantities (seconds, watts, requests) whose true scale is far above 1e-12;
// anything smaller is accumulated floating-point noise around an exact zero.
const zeroTol = 1e-12

// almostZero reports whether x is indistinguishable from zero at zeroTol.
// Relative measures (RelErr, RelativePrecision) switch to their degenerate
// form at this threshold instead of dividing by a noise-sized denominator.
func almostZero(x float64) bool {
	return math.Abs(x) < zeroTol
}
