package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [lo, hi) with overflow and
// underflow counters, used for distribution-shape diagnostics of simulated
// delays and energies.
type Histogram struct {
	lo, hi  float64
	width   float64
	bins    []int64
	under   int64
	over    int64
	total   int64
	moments Welford
}

// NewHistogram creates a histogram with n equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram spec [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]int64, n)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.moments.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // guard against floating-point edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the total number of observations, including out-of-range.
func (h *Histogram) Count() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }
func (h *Histogram) Overflow() int64  { return h.over }

// Mean returns the exact (not binned) mean of all observations.
func (h *Histogram) Mean() float64 { return h.moments.Mean() }

// CDFAt returns the empirical fraction of observations ≤ x, resolved at bin
// granularity (observations inside the bin containing x are counted
// proportionally by position).
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if x < h.lo {
		return float64(h.under) / float64(h.total) // approximation: underflow mass below lo
	}
	cum := h.under
	if x >= h.hi {
		for _, c := range h.bins {
			cum += c
		}
		if x >= h.moments.Max() {
			return 1
		}
		return float64(cum) / float64(h.total)
	}
	i := int((x - h.lo) / h.width)
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	for j := 0; j < i; j++ {
		cum += h.bins[j]
	}
	frac := (x - (h.lo + float64(i)*h.width)) / h.width
	return (float64(cum) + frac*float64(h.bins[i])) / float64(h.total)
}

// Sketch renders a compact ASCII bar chart, useful in CLI diagnostics.
func (h *Histogram) Sketch(rows int) string {
	if rows <= 0 {
		rows = len(h.bins)
	}
	var maxC int64 = 1
	for _, c := range h.bins {
		if c > maxC {
			maxC = c
		}
	}
	// Re-bin into at most `rows` rows.
	per := (len(h.bins) + rows - 1) / rows
	var sb strings.Builder
	for i := 0; i < len(h.bins); i += per {
		var c int64
		end := i + per
		if end > len(h.bins) {
			end = len(h.bins)
		}
		for j := i; j < end; j++ {
			c += h.bins[j]
		}
		bar := int(40 * float64(c) / float64(maxC*int64(per)))
		fmt.Fprintf(&sb, "%10.4g |%s %d\n", h.lo+float64(i)*h.width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
