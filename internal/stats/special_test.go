package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %g, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %g, want 1", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) {
		t.Error("negative parameter should return NaN")
	}
}

func TestRegIncBetaUniformCase(t *testing.T) {
	// I_x(1, 1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
}

func TestRegIncBetaClosedForms(t *testing.T) {
	// I_x(a, 1) = x^a and I_x(1, b) = 1-(1-x)^b.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, a := range []float64{0.5, 2, 5} {
			if got, want := RegIncBeta(a, 1, x), math.Pow(x, a); !almostEq(got, want, 1e-10) {
				t.Errorf("I_%g(%g,1) = %g, want %g", x, a, got, want)
			}
			if got, want := RegIncBeta(1, a, x), 1-math.Pow(1-x, a); !almostEq(got, want, 1e-10) {
				t.Errorf("I_%g(1,%g) = %g, want %g", x, a, got, want)
			}
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	f := func(a, b, x float64) bool {
		a = 0.5 + math.Mod(math.Abs(a), 10)
		b = 0.5 + math.Mod(math.Abs(b), 10)
		x = math.Mod(math.Abs(x), 1)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) {
			return true
		}
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959963984540054,
		0.995:  2.5758293035489004,
		0.8413: 0.99982,
		0.025:  -1.959963984540054,
	}
	for p, want := range cases {
		if got := NormalQuantile(p); !almostEq(got, want, 1e-4) {
			t.Errorf("Φ⁻¹(%g) = %g, want %g", p, got, want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ±Inf")
	}
}

func TestNormalRoundTrip(t *testing.T) {
	for _, x := range []float64{-3, -1.5, -0.1, 0, 0.7, 2.2, 4} {
		if got := NormalQuantile(NormalCDF(x)); !almostEq(got, x, 1e-9) {
			t.Errorf("round trip at %g gave %g", x, got)
		}
	}
}

func TestTCDFSymmetryAndCenter(t *testing.T) {
	for _, df := range []float64{1, 3, 10, 100} {
		if got := TCDF(0, df); !almostEq(got, 0.5, 1e-12) {
			t.Errorf("TCDF(0, %g) = %g", df, got)
		}
		for _, x := range []float64{0.5, 1.3, 2.7} {
			l, r := TCDF(-x, df), TCDF(x, df)
			if !almostEq(l+r, 1, 1e-10) {
				t.Errorf("TCDF symmetry broken at x=%g df=%g: %g + %g", x, df, l, r)
			}
		}
	}
}

func TestTCDFCauchyCase(t *testing.T) {
	// df=1 is the Cauchy distribution: F(x) = 1/2 + atan(x)/π.
	for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
		want := 0.5 + math.Atan(x)/math.Pi
		if got := TCDF(x, 1); !almostEq(got, want, 1e-10) {
			t.Errorf("TCDF(%g, 1) = %g, want %g", x, got, want)
		}
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Standard t-table values, two-sided 95% (p = 0.975).
	cases := []struct {
		df, want float64
	}{
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228},
		{30, 2.042}, {100, 1.984}, {1000, 1.962},
	}
	for _, c := range cases {
		if got := TQuantile(0.975, c.df); !almostEq(got, c.want, 2e-3) {
			t.Errorf("t(0.975, df=%g) = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{2, 7, 25} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.999, 0.1} {
			x := TQuantile(p, df)
			if got := TCDF(x, df); !almostEq(got, p, 1e-8) {
				t.Errorf("round trip p=%g df=%g: CDF(%g) = %g", p, df, x, got)
			}
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	z := NormalQuantile(0.975)
	tq := TQuantile(0.975, 1e6)
	if !almostEq(z, tq, 1e-4) {
		t.Errorf("large-df t quantile %g should approach normal %g", tq, z)
	}
}
