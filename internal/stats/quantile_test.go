package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2QuantileSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Error("empty estimator should return NaN")
	}
	q.Add(3)
	if q.Value() != 3 {
		t.Errorf("single obs value = %g", q.Value())
	}
	q.Add(1)
	q.Add(2)
	v := q.Value()
	if v < 1 || v > 3 {
		t.Errorf("small-sample median = %g outside data range", v)
	}
}

// TestP2QuantileSmallSampleMatchesExact pins the small-sample fallback to the
// nearest-rank definition: with fewer than five observations, Value must
// return exactly what ExactQuantile returns on the same data. The pre-fix
// fallback used a different rank formula and disagreed (e.g. p=0.5 on two
// samples picked the larger one).
func TestP2QuantileSmallSampleMatchesExact(t *testing.T) {
	data := []float64{7, 2, 9, 4} // insertion order deliberately unsorted
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95} {
		for n := 1; n <= len(data); n++ {
			q := NewP2Quantile(p)
			for _, x := range data[:n] {
				q.Add(x)
			}
			want := ExactQuantile(data[:n], p)
			if got := q.Value(); got != want {
				t.Errorf("p=%g n=%d: P2 small-sample = %g, ExactQuantile = %g", p, n, got, want)
			}
		}
	}
}

func TestP2QuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		q := NewP2Quantile(p)
		for i := 0; i < 200000; i++ {
			q.Add(rng.Float64())
		}
		if got := q.Value(); math.Abs(got-p) > 0.01 {
			t.Errorf("uniform %g-quantile = %g", p, got)
		}
	}
}

func TestP2QuantileExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := NewP2Quantile(0.95)
	for i := 0; i < 300000; i++ {
		q.Add(rng.ExpFloat64())
	}
	want := -math.Log(0.05) // 2.9957
	if got := q.Value(); math.Abs(got-want)/want > 0.03 {
		t.Errorf("exp 95th percentile = %g, want ≈%g", got, want)
	}
}

func TestP2QuantileMonotoneAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewQuantileSet(0.25, 0.5, 0.75, 0.95)
	for i := 0; i < 50000; i++ {
		s.Add(rng.NormFloat64())
	}
	q25, q50 := s.Value(0.25), s.Value(0.5)
	q75, q95 := s.Value(0.75), s.Value(0.95)
	if !(q25 < q50 && q50 < q75 && q75 < q95) {
		t.Errorf("quantiles not ordered: %g %g %g %g", q25, q50, q75, q95)
	}
	if !math.IsNaN(s.Value(0.33)) {
		t.Error("unconfigured quantile should be NaN")
	}
}

func TestP2QuantileInvalidP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%g) should panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestExactQuantile(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if got := ExactQuantile(data, 0.5); got != 3 {
		t.Errorf("median = %g, want 3", got)
	}
	if got := ExactQuantile(data, 0.01); got != 1 {
		t.Errorf("low quantile = %g, want 1", got)
	}
	if got := ExactQuantile(data, 1.0); got != 5 {
		t.Errorf("max quantile = %g, want 5", got)
	}
	if !math.IsNaN(ExactQuantile(nil, 0.5)) {
		t.Error("empty data should return NaN")
	}
	// Must not mutate caller's slice.
	if data[0] != 5 {
		t.Error("ExactQuantile mutated input")
	}
}

func TestBatchMeansBasics(t *testing.T) {
	b := NewBatchMeans(10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		b.Add(5 + rng.NormFloat64())
	}
	if b.Count() != 1000 || b.Batches() != 100 {
		t.Fatalf("count=%d batches=%d", b.Count(), b.Batches())
	}
	if math.Abs(b.Mean()-5) > 0.2 {
		t.Errorf("mean = %g", b.Mean())
	}
	ci := b.CI(0.95)
	if !(ci > 0 && ci < 1) {
		t.Errorf("ci = %g", ci)
	}
	if rp := b.RelativePrecision(0.95); !almostEq(rp, ci/b.Mean(), 1e-12) {
		t.Errorf("relative precision = %g", rp)
	}
}

func TestBatchMeansCICoversCorrelatedMean(t *testing.T) {
	// AR(1) sequence: naive i.i.d. CI would be far too small; batch means
	// with large batches should still cover the true mean most of the time.
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		b := NewBatchMeans(500)
		x := 0.0
		const phi = 0.9
		for i := 0; i < 50000; i++ {
			x = phi*x + rng.NormFloat64()
			b.Add(x) // true mean is 0
		}
		if math.Abs(b.Mean()) <= b.CI(0.95) {
			covered++
		}
	}
	if covered < trials*3/4 {
		t.Errorf("batch-means CI covered true mean only %d/%d times", covered, trials)
	}
}

func TestBatchMeansInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for batch size 0")
		}
	}()
	NewBatchMeans(0)
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Mean: 10, HalfW: 1, Level: 0.95, Samples: 100}
	if !e.Contains(10.5) || e.Contains(12) {
		t.Error("Contains misbehaves")
	}
	if got := e.RelErr(8); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("RelErr = %g", got)
	}
	if got := e.RelErr(0); got != 10 {
		t.Errorf("RelErr vs 0 = %g", got)
	}
	noCI := Estimate{Mean: 1, HalfW: math.NaN()}
	if !noCI.Contains(99) {
		t.Error("estimate without CI should soft-contain anything")
	}
}

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Errorf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Bin(0) != 2 { // 0 and 0.5
		t.Errorf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(9) != 1 { // 9.99
		t.Errorf("bin9 = %d", h.Bin(9))
	}
	if got := h.BinCenter(0); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("bin center = %g", got)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		h.Add(rng.Float64())
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := h.CDFAt(x); math.Abs(got-x) > 0.01 {
			t.Errorf("CDF(%g) = %g", x, got)
		}
	}
	if got := h.CDFAt(2); got != 1 {
		t.Errorf("CDF beyond max = %g", got)
	}
}

func TestHistogramSketchNonEmpty(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5} {
		h.Add(x)
	}
	if s := h.Sketch(4); len(s) == 0 {
		t.Error("empty sketch")
	}
}
