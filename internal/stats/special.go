package stats

import "math"

// This file implements the special functions needed for Student-t confidence
// intervals and goodness-of-fit checks: the regularized incomplete beta
// function (via Lentz's continued-fraction algorithm) and quantile functions
// for the normal and Student-t distributions.

// logBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], computed with the continued-fraction expansion
// (Numerical Recipes-style modified Lentz algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	// Use the symmetry relation to keep the continued fraction convergent.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	lnFront := a*math.Log(x) + b*math.Log(1-x) - logBeta(a, b)
	front := math.Exp(lnFront) / a
	return front * betaCF(a, b, x)
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	return h // converged to working precision or exhausted iterations
}

// NormalCDF returns the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1) using the Acklam rational
// approximation refined with one Halley step, accurate to ~1e-15.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// TCDF returns the cumulative distribution of the Student-t distribution with
// df degrees of freedom at x.
func TCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	ib := RegIncBeta(df/2, 0.5, df/(df+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// TQuantile returns the inverse CDF of the Student-t distribution with df
// degrees of freedom at probability p in (0, 1). It starts from the normal
// quantile with a Cornish-Fisher correction and polishes with Newton steps
// on TCDF.
func TQuantile(p, df float64) float64 {
	if df <= 0 || p <= 0 || p >= 1 {
		//lint:waive floateq reason="deliberate exact compare: 0.5 is exactly representable and the median is exactly 0" until=2027-08-01
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	}
	//lint:waive floateq reason="deliberate exact compare: 0.5 is exactly representable and the median is exactly 0" until=2027-08-01
	if p == 0.5 {
		return 0
	}
	// For large df the t distribution is essentially normal.
	z := NormalQuantile(p)
	x := z
	if df < 1e7 {
		// Cornish-Fisher expansion starting point.
		g1 := (z*z*z + z) / 4
		g2 := (5*z*z*z*z*z + 16*z*z*z + 3*z) / 96
		x = z + g1/df + g2/(df*df)
	}
	// Newton iterations: f(x) = TCDF(x) - p, f'(x) = t pdf.
	for i := 0; i < 50; i++ {
		f := TCDF(x, df) - p
		pdf := tPDF(x, df)
		if pdf == 0 {
			break
		}
		step := f / pdf
		x -= step
		if math.Abs(step) < 1e-12*(1+math.Abs(x)) {
			break
		}
	}
	return x
}

// tPDF returns the Student-t density with df degrees of freedom at x.
func tPDF(x, df float64) float64 {
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	lc := lg1 - lg2 - 0.5*math.Log(df*math.Pi)
	return math.Exp(lc - (df+1)/2*math.Log1p(x*x/df))
}
