package queueing

import (
	"fmt"
	"math"
)

// This file models the sleep-state power management alternative to DVFS: a
// server that powers off whenever it idles ("instant-off") and pays a setup
// time to wake for the first customer of each busy period. Delay follows
// Welch's M/G/1-with-setup result; the busy/setup/sleep time fractions follow
// from renewal (cycle) analysis and drive the energy accounting.

// MG1Setup is an M/G/1 queue whose server sleeps when idle and requires a
// Setup period before serving the first customer of each busy period.
type MG1Setup struct {
	Lambda  float64
	Service ServiceDist
	Setup   ServiceDist
}

// NewMG1Setup validates and returns the descriptor. The negated comparison
// also rejects a NaN arrival rate.
func NewMG1Setup(lambda float64, service, setup ServiceDist) (MG1Setup, error) {
	if !(lambda >= 0) || math.IsInf(lambda, 1) {
		return MG1Setup{}, fmt.Errorf("queueing: invalid arrival rate %g", lambda)
	}
	if service == nil || !(service.Mean() > 0) {
		return MG1Setup{}, fmt.Errorf("queueing: invalid service distribution")
	}
	if setup == nil || !(setup.Mean() > 0) {
		return MG1Setup{}, fmt.Errorf("queueing: invalid setup distribution")
	}
	return MG1Setup{Lambda: lambda, Service: service, Setup: setup}, nil
}

// Rho returns the serving utilization λE[X] (setup time excluded).
func (q MG1Setup) Rho() float64 { return q.Lambda * q.Service.Mean() }

// Stable reports whether ρ < 1 (setup does not consume capacity in the
// instant-off model: it only delays, because it happens while work waits).
func (q MG1Setup) Stable() bool { return q.Rho() < 1 }

// MeanWait returns Welch's mean waiting time for M/G/1 with setup:
//
//	E[W] = λE[X²]/(2(1−ρ)) + (2E[S] + λE[S²]) / (2(1 + λE[S]))
//
// — the plain P–K wait plus the setup penalty. For exponential setup with
// mean 1/α the penalty reduces to exactly 1/α.
func (q MG1Setup) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	pk := q.Lambda * q.Service.SecondMoment() / (2 * (1 - q.Rho()))
	es := q.Setup.Mean()
	penalty := (2*es + q.Lambda*q.Setup.SecondMoment()) / (2 * (1 + q.Lambda*es))
	return pk + penalty
}

// MeanResponse returns E[T] = E[W] + E[X].
func (q MG1Setup) MeanResponse() float64 {
	w := q.MeanWait()
	if math.IsInf(w, 1) {
		return w
	}
	return w + q.Service.Mean()
}

// SetupPenalty returns the extra mean wait the sleep policy costs compared
// with an always-on M/G/1.
func (q MG1Setup) SetupPenalty() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	plain, _ := NewMG1(q.Lambda, q.Service)
	return q.MeanWait() - plain.MeanWait()
}

// StateFractions is the long-run split of a sleeping server's time.
type StateFractions struct {
	Serving float64 // actively processing work (= ρ)
	Setup   float64 // warming up
	Sleep   float64 // powered down
}

// Fractions returns the long-run state fractions from cycle analysis: a
// cycle is sleep (mean 1/λ, memoryless arrivals) + setup (mean E[S]) + the
// busy period; work conservation fixes serving time at ρ of all time, so
//
//	E[cycle] = (1/λ + E[S]) / (1 − ρ),
//	f_sleep  = (1−ρ) / (1 + λE[S]),
//	f_setup  = (1−ρ)·λE[S] / (1 + λE[S]).
func (q MG1Setup) Fractions() StateFractions {
	rho := q.Rho()
	if rho >= 1 {
		return StateFractions{Serving: 1}
	}
	if q.Lambda == 0 {
		return StateFractions{Sleep: 1}
	}
	les := q.Lambda * q.Setup.Mean()
	return StateFractions{
		Serving: rho,
		Setup:   (1 - rho) * les / (1 + les),
		Sleep:   (1 - rho) / (1 + les),
	}
}

// SleepAveragePower returns the long-run power of an instant-off server:
// busy power while serving, setup power while warming up (typically the busy
// level), sleep power while down.
func (q MG1Setup) SleepAveragePower(busyW, setupW, sleepW float64) float64 {
	f := q.Fractions()
	return f.Serving*busyW + f.Setup*setupW + f.Sleep*sleepW
}

// SleepBreakEvenLoad returns the approximate load ρ* below which instant-off
// saves power over always-on for the given power levels, found by bisection
// on the power difference (always-on draws idleW when not serving). Returns
// 0 if sleeping never wins and 1 if it always wins on (0, 1).
func SleepBreakEvenLoad(service, setup ServiceDist, busyW, setupW, sleepW, idleW float64) float64 {
	diff := func(rho float64) float64 {
		lambda := rho / service.Mean()
		q := MG1Setup{Lambda: lambda, Service: service, Setup: setup}
		alwaysOn := rho*busyW + (1-rho)*idleW
		return q.SleepAveragePower(busyW, setupW, sleepW) - alwaysOn
	}
	const lo, hi = 1e-6, 1 - 1e-6
	dLo, dHi := diff(lo), diff(hi)
	if dLo >= 0 && dHi >= 0 {
		return 0
	}
	if dLo < 0 && dHi < 0 {
		return 1
	}
	a, b := lo, hi
	for i := 0; i < 100 && b-a > 1e-9; i++ {
		mid := (a + b) / 2
		if (diff(mid) < 0) == (dLo < 0) {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2
}
