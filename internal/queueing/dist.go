// Package queueing implements the analytical queueing theory the paper's
// delay model is built on: M/M/1, M/M/c (Erlang B/C), M/G/1
// (Pollaczek–Khinchine), multi-class priority queues (Cobham's formulas,
// preemptive and non-preemptive), stations with class-dependent demands, and
// feed-forward networks of stations with per-class end-to-end delays and a
// hypoexponential percentile approximation.
//
// Conventions used throughout the package:
//   - classes are indexed 0..K-1 with class 0 the HIGHEST priority;
//   - rates are in requests per unit time, times in the same time unit;
//   - a result of +Inf means the quantity diverges (unstable queue).
package queueing

import (
	"fmt"
	"math"
)

// ServiceDist describes a service-time distribution through the moments the
// analytical formulas need. CV2 is the squared coefficient of variation,
// Var/Mean²; SecondMoment is E[S²] = Var + Mean².
type ServiceDist interface {
	// Mean returns E[S] > 0.
	Mean() float64
	// SecondMoment returns E[S²].
	SecondMoment() float64
	// CV2 returns the squared coefficient of variation.
	CV2() float64
	// Scale returns the same distribution shape with the mean multiplied
	// by f > 0 (used when a server slows down or a demand factor applies).
	Scale(f float64) ServiceDist
	// String names the distribution for diagnostics.
	String() string
}

// Exponential is the memoryless service distribution with the given mean.
type Exponential struct{ M float64 }

// NewExponential returns an exponential service distribution with mean m.
func NewExponential(m float64) Exponential {
	mustPositiveMean("Exponential", m)
	return Exponential{M: m}
}

func (e Exponential) Mean() float64         { return e.M }
func (e Exponential) SecondMoment() float64 { return 2 * e.M * e.M }
func (e Exponential) CV2() float64          { return 1 }
func (e Exponential) Scale(f float64) ServiceDist {
	return Exponential{M: e.M * f}
}
func (e Exponential) String() string { return fmt.Sprintf("Exp(mean=%g)", e.M) }

// Deterministic is the constant service distribution.
type Deterministic struct{ M float64 }

// NewDeterministic returns a deterministic service distribution of value m.
func NewDeterministic(m float64) Deterministic {
	mustPositiveMean("Deterministic", m)
	return Deterministic{M: m}
}

func (d Deterministic) Mean() float64         { return d.M }
func (d Deterministic) SecondMoment() float64 { return d.M * d.M }
func (d Deterministic) CV2() float64          { return 0 }
func (d Deterministic) Scale(f float64) ServiceDist {
	return Deterministic{M: d.M * f}
}
func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.M) }

// Erlang is the sum of K exponential stages; CV² = 1/K < 1, modelling
// low-variability service such as fixed-size batch work.
type Erlang struct {
	M float64 // mean
	K int     // number of stages, ≥ 1
}

// NewErlang returns an Erlang-k distribution with the given mean.
func NewErlang(m float64, k int) Erlang {
	mustPositiveMean("Erlang", m)
	if k < 1 {
		panic(fmt.Sprintf("queueing: Erlang stages %d < 1", k))
	}
	return Erlang{M: m, K: k}
}

func (e Erlang) Mean() float64 { return e.M }
func (e Erlang) SecondMoment() float64 {
	// Var = m²/k, E[S²] = Var + m².
	return e.M * e.M * (1 + 1/float64(e.K))
}
func (e Erlang) CV2() float64 { return 1 / float64(e.K) }
func (e Erlang) Scale(f float64) ServiceDist {
	return Erlang{M: e.M * f, K: e.K}
}
func (e Erlang) String() string { return fmt.Sprintf("Erlang(mean=%g,k=%d)", e.M, e.K) }

// HyperExp is a two-phase hyperexponential distribution: with probability P
// the service is Exp(mean M1), otherwise Exp(mean M2). CV² ≥ 1, modelling
// bursty, heavy-tailed-ish service such as mixed small/large requests.
type HyperExp struct {
	P      float64 // probability of phase 1, in (0, 1)
	M1, M2 float64 // phase means
}

// NewHyperExp constructs a two-phase hyperexponential distribution. The
// negated comparisons also reject NaN, which fails every ordered comparison.
func NewHyperExp(p, m1, m2 float64) HyperExp {
	if !(p > 0) || !(p < 1) {
		panic(fmt.Sprintf("queueing: HyperExp phase probability %g out of (0,1)", p))
	}
	mustPositiveMean("HyperExp", m1)
	mustPositiveMean("HyperExp", m2)
	return HyperExp{P: p, M1: m1, M2: m2}
}

// NewHyperExpCV2 builds a balanced-means hyperexponential with the requested
// mean and squared coefficient of variation cv2 ≥ 1 (cv2 == 1 degenerates to
// exponential behaviour).
func NewHyperExpCV2(mean, cv2 float64) HyperExp {
	mustPositiveMean("HyperExp", mean)
	if !(cv2 >= 1) || math.IsInf(cv2, 1) {
		panic(fmt.Sprintf("queueing: hyperexponential requires finite CV² ≥ 1, got %g", cv2))
	}
	// Balanced means: p/m1 = (1-p)/m2. Standard construction.
	p := 0.5 * (1 + math.Sqrt((cv2-1)/(cv2+1)))
	m1 := mean / (2 * p)
	m2 := mean / (2 * (1 - p))
	return HyperExp{P: p, M1: m1, M2: m2}
}

func (h HyperExp) Mean() float64 { return h.P*h.M1 + (1-h.P)*h.M2 }
func (h HyperExp) SecondMoment() float64 {
	return 2 * (h.P*h.M1*h.M1 + (1-h.P)*h.M2*h.M2)
}
func (h HyperExp) CV2() float64 {
	m := h.Mean()
	return h.SecondMoment()/(m*m) - 1
}
func (h HyperExp) Scale(f float64) ServiceDist {
	return HyperExp{P: h.P, M1: h.M1 * f, M2: h.M2 * f}
}
func (h HyperExp) String() string {
	return fmt.Sprintf("HyperExp(p=%g,m1=%g,m2=%g)", h.P, h.M1, h.M2)
}

// Uniform is a uniform service distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// NewUniform returns a uniform service distribution on [lo, hi]. The
// negated comparisons also reject NaN endpoints.
func NewUniform(lo, hi float64) Uniform {
	if !(lo >= 0) || !(hi > lo) || math.IsInf(hi, 1) {
		panic(fmt.Sprintf("queueing: invalid uniform range [%g,%g]", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }
func (u Uniform) SecondMoment() float64 {
	m := u.Mean()
	v := (u.Hi - u.Lo) * (u.Hi - u.Lo) / 12
	return v + m*m
}
func (u Uniform) CV2() float64 {
	m := u.Mean()
	return (u.Hi - u.Lo) * (u.Hi - u.Lo) / 12 / (m * m)
}
func (u Uniform) Scale(f float64) ServiceDist {
	return Uniform{Lo: u.Lo * f, Hi: u.Hi * f}
}
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g]", u.Lo, u.Hi) }

func mustPositiveMean(kind string, m float64) {
	if !(m > 0) || math.IsInf(m, 1) || math.IsNaN(m) {
		panic(fmt.Sprintf("queueing: %s mean %g must be positive and finite", kind, m))
	}
}
