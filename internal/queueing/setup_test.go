package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMG1SetupExponentialPenaltyIsMeanSetup(t *testing.T) {
	// Gandhi/Harchol-Balter decomposition: exponential setup with mean
	// 1/α adds exactly 1/α to the M/M/1 wait.
	for _, lam := range []float64{0.2, 0.5, 0.8} {
		for _, setupMean := range []float64{0.5, 2, 10} {
			q, err := NewMG1Setup(lam, NewExponential(1), NewExponential(setupMean))
			if err != nil {
				t.Fatal(err)
			}
			if got := q.SetupPenalty(); !almostEq(got, setupMean, 1e-12) {
				t.Errorf("λ=%g setup=%g: penalty %g", lam, setupMean, got)
			}
		}
	}
}

func TestMG1SetupReducesToPKWithTinySetup(t *testing.T) {
	q, err := NewMG1Setup(0.6, NewErlang(1, 2), NewDeterministic(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewMG1(0.6, NewErlang(1, 2))
	if !almostEq(q.MeanWait(), plain.MeanWait(), 1e-6) {
		t.Errorf("vanishing setup: %g vs %g", q.MeanWait(), plain.MeanWait())
	}
}

func TestMG1SetupDeterministicSetup(t *testing.T) {
	// Deterministic setup of length s: penalty = (2s + λs²)/(2(1+λs)).
	lam, s := 0.5, 4.0
	q, _ := NewMG1Setup(lam, NewExponential(1), NewDeterministic(s))
	want := (2*s + lam*s*s) / (2 * (1 + lam*s))
	if got := q.SetupPenalty(); !almostEq(got, want, 1e-12) {
		t.Errorf("penalty %g, want %g", got, want)
	}
	if got := q.MeanResponse(); !almostEq(got, q.MeanWait()+1, 1e-12) {
		t.Errorf("response %g", got)
	}
}

func TestMG1SetupUnstable(t *testing.T) {
	q, _ := NewMG1Setup(2, NewExponential(1), NewExponential(1))
	if q.Stable() || !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.SetupPenalty(), 1) {
		t.Error("unstable queue should report +Inf")
	}
	f := q.Fractions()
	if f.Serving != 1 {
		t.Errorf("saturated fractions: %+v", f)
	}
}

func TestMG1SetupValidation(t *testing.T) {
	if _, err := NewMG1Setup(-1, NewExponential(1), NewExponential(1)); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewMG1Setup(1, nil, NewExponential(1)); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := NewMG1Setup(1, NewExponential(1), nil); err == nil {
		t.Error("nil setup accepted")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	f := func(l, s float64) bool {
		lam := 0.05 + math.Mod(math.Abs(l), 0.9)
		setup := 0.1 + math.Mod(math.Abs(s), 20)
		if math.IsNaN(lam + setup) {
			return true
		}
		q, err := NewMG1Setup(lam, NewExponential(1), NewExponential(setup))
		if err != nil {
			return false
		}
		fr := q.Fractions()
		if fr.Serving < 0 || fr.Setup < 0 || fr.Sleep < 0 {
			return false
		}
		if !almostEq(fr.Serving+fr.Setup+fr.Sleep, 1, 1e-9) {
			return false
		}
		// Serving fraction is exactly ρ (work conservation).
		return almostEq(fr.Serving, lam, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFractionsZeroTraffic(t *testing.T) {
	q, _ := NewMG1Setup(0, NewExponential(1), NewExponential(1))
	f := q.Fractions()
	if f.Sleep != 1 || f.Serving != 0 || f.Setup != 0 {
		t.Errorf("idle system fractions: %+v", f)
	}
}

func TestSleepAveragePower(t *testing.T) {
	q, _ := NewMG1Setup(0.5, NewExponential(1), NewExponential(2))
	f := q.Fractions()
	got := q.SleepAveragePower(200, 200, 10)
	want := f.Serving*200 + f.Setup*200 + f.Sleep*10
	if !almostEq(got, want, 1e-12) {
		t.Errorf("power %g, want %g", got, want)
	}
}

func TestSleepBreakEven(t *testing.T) {
	service := NewExponential(1)
	setup := NewExponential(1)
	// Deep sleep (10 W) against a high idle floor (100 W): sleeping wins
	// at low load; the break-even sits strictly inside (0, 1).
	be := SleepBreakEvenLoad(service, setup, 200, 200, 10, 100)
	if !(be > 0.05 && be < 0.95) {
		t.Fatalf("break-even = %g", be)
	}
	// Below break-even sleeping is cheaper; above it is not.
	check := func(rho float64, wantSleepCheaper bool) {
		q, _ := NewMG1Setup(rho, service, setup)
		sleepP := q.SleepAveragePower(200, 200, 10)
		onP := rho*200 + (1-rho)*100
		if (sleepP < onP) != wantSleepCheaper {
			t.Errorf("ρ=%g: sleep %g vs on %g (want cheaper=%v)", rho, sleepP, onP, wantSleepCheaper)
		}
	}
	check(be*0.5, true)
	check(be+0.8*(1-be), false)

	// Sleep power equal to idle power: sleeping never wins (setup burns
	// busy power for nothing).
	if got := SleepBreakEvenLoad(service, setup, 200, 200, 100, 100); got != 0 {
		t.Errorf("no-benefit break-even = %g, want 0", got)
	}
	// Free setup and zero sleep power: sleeping always wins.
	if got := SleepBreakEvenLoad(service, NewDeterministic(1e-12), 200, 0, 0, 100); got != 1 {
		t.Errorf("always-win break-even = %g, want 1", got)
	}
}
