package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHypoexpSingleStageIsExponential(t *testing.T) {
	h, err := NewHypoexponential([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 1, 3} {
		want := 1 - math.Exp(-2*x)
		if got := h.CDF(x); !almostEq(got, want, 1e-12) {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	if got := h.Quantile(0.5); !almostEq(got, math.Ln2/2, 1e-9) {
		t.Errorf("median = %g", got)
	}
}

func TestHypoexpTwoStageClosedForm(t *testing.T) {
	// Rates 1 and 2: F(t) = 1 − 2e^{−t} + e^{−2t}.
	h, err := NewHypoexponential([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 1, 2.5} {
		want := 1 - 2*math.Exp(-x) + math.Exp(-2*x)
		if got := h.CDF(x); !almostEq(got, want, 1e-10) {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	if !almostEq(h.Mean(), 1.5, 1e-12) {
		t.Errorf("mean = %g", h.Mean())
	}
	if !almostEq(h.Variance(), 1.25, 1e-12) {
		t.Errorf("variance = %g", h.Variance())
	}
}

func TestHypoexpEqualRatesIsErlang(t *testing.T) {
	// Equal rates are the Erlang special case; uniformization must match
	// the Erlang-2 CDF 1 − e^{−t}(1 + t) to near machine precision.
	h, err := NewHypoexponential([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 2, 4} {
		want := 1 - math.Exp(-x)*(1+x)
		if got := h.CDF(x); !almostEq(got, want, 1e-10) {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	// Three equal rates → Erlang-3.
	h3, err := NewHypoexponential([]float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	x := 1.5
	lt := 2 * x
	wantE3 := 1 - math.Exp(-lt)*(1+lt+lt*lt/2)
	if got := h3.CDF(x); !almostEq(got, wantE3, 1e-10) {
		t.Errorf("Erlang-3 CDF(%g) = %g, want %g", x, got, wantE3)
	}
}

func TestHypoexpNearEqualRatesStable(t *testing.T) {
	// The regime that breaks the partial-fraction closed form: rates that
	// differ in the 7th digit. The CDF must stay in [0,1], monotone, and
	// within a hair of the exact-equal-rates Erlang value.
	h, err := NewHypoexponential([]float64{1, 1 + 1e-7, 1 + 2e-7})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 8} {
		wantE3 := 1 - math.Exp(-x)*(1+x+x*x/2)
		if got := h.CDF(x); !almostEq(got, wantE3, 1e-6) {
			t.Errorf("near-equal CDF(%g) = %g, want ≈%g", x, got, wantE3)
		}
	}
}

func TestHypoexpLargeRateTimeProduct(t *testing.T) {
	// Λt far beyond exp underflow (Λt ≈ 5000): the left-truncated Poisson
	// entry must keep the tail accurate. Single stage ⇒ exact exponential.
	h, err := NewHypoexponential([]float64{1000, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// At t = 5 the fast stage is long done; survival ≈ e^{−0.5·t} modulo
	// the convolution with the fast stage.
	got := h.Survival(5)
	if !(got > 0 && got < 1) {
		t.Fatalf("survival out of range: %g", got)
	}
	// Exact two-stage formula in a well-separated regime:
	// S(t) = (r1 e^{−r2 t} − r2 e^{−r1 t})/(r1 − r2).
	want := (1000*math.Exp(-0.5*5) - 0.5*math.Exp(-1000*5)) / (1000 - 0.5)
	if !almostEq(got, want, 1e-9) {
		t.Errorf("survival = %g, want %g", got, want)
	}
}

func TestHypoexpCDFProperties(t *testing.T) {
	f := func(a, b, c float64) bool {
		r := []float64{
			0.2 + math.Mod(math.Abs(a), 5),
			0.2 + math.Mod(math.Abs(b), 5),
			0.2 + math.Mod(math.Abs(c), 5),
		}
		if math.IsNaN(r[0] + r[1] + r[2]) {
			return true
		}
		h, err := NewHypoexponential(r)
		if err != nil {
			return false
		}
		// CDF in [0,1], monotone, 0 at 0.
		if h.CDF(0) != 0 || h.CDF(-1) != 0 {
			return false
		}
		prev := 0.0
		for _, x := range []float64{0.1, 0.5, 1, 2, 5, 20} {
			v := h.CDF(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		// Quantile inverts CDF.
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
			q := h.Quantile(p)
			if !almostEq(h.CDF(q), p, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHypoexpQuantileEdges(t *testing.T) {
	h, _ := NewHypoexponential([]float64{1, 3})
	if h.Quantile(0) != 0 {
		t.Error("quantile at 0")
	}
	if !math.IsInf(h.Quantile(1), 1) {
		t.Error("quantile at 1")
	}
	if h.NumStages() != 2 {
		t.Error("stage count")
	}
}

func TestHypoexpInvalidInputs(t *testing.T) {
	if _, err := NewHypoexponential(nil); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := NewHypoexponential([]float64{0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewHypoexponential([]float64{-1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := HypoexpFromMeans([]float64{1, 0}); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestEndToEndQuantile(t *testing.T) {
	// Stage means 1 and 0.5 → rates 1 and 2; median of the two-stage sum.
	q, err := EndToEndQuantile([]float64{1, 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := NewHypoexponential([]float64{1, 2})
	if !almostEq(q, h.Quantile(0.5), 1e-9) {
		t.Errorf("quantile = %g", q)
	}
	// Unstable route gives +Inf, not an error.
	q, err = EndToEndQuantile([]float64{1, math.Inf(1)}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q, 1) {
		t.Errorf("unstable quantile = %g", q)
	}
}

func TestSurvivalComplementsCDF(t *testing.T) {
	h, _ := NewHypoexponential([]float64{0.5, 1.5, 4})
	for _, x := range []float64{0.3, 1, 5} {
		if !almostEq(h.CDF(x)+h.Survival(x), 1, 1e-12) {
			t.Errorf("CDF+Survival != 1 at %g", x)
		}
	}
}
