package queueing

import (
	"fmt"
	"math"
)

// ClassRouting is a per-class probabilistic (Markov) routing chain over the
// network's stations, generalizing the deterministic Route: a request enters
// at station j with probability Entry[j]; after completing service at
// station i it moves to station j with probability Next[i][j] and leaves the
// system with the remaining probability 1 − Σ_j Next[i][j].
//
// The expected number of visits to each station solves the traffic
// equations v = Entry + vᵀNext, and per-class performance follows from the
// visit rates exactly as for deterministic routes: station arrival rates are
// λ·v_j and the expected end-to-end delay is Σ_j v_j·T_j.
type ClassRouting struct {
	Entry []float64
	Next  [][]float64
}

// Validate checks stochastic consistency against the station count: Entry is
// a distribution, every Next row is substochastic, and the chain is
// transient (every request eventually leaves, i.e. the traffic equations
// have a finite non-negative solution).
func (r *ClassRouting) Validate(numStations int) error {
	if len(r.Entry) != numStations {
		return fmt.Errorf("queueing: routing entry vector has %d entries for %d stations", len(r.Entry), numStations)
	}
	var sum float64
	for j, p := range r.Entry {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("queueing: entry probability %g at station %d", p, j)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queueing: entry probabilities sum to %g", sum)
	}
	if len(r.Next) != numStations {
		return fmt.Errorf("queueing: routing matrix has %d rows for %d stations", len(r.Next), numStations)
	}
	for i, row := range r.Next {
		if len(row) != numStations {
			return fmt.Errorf("queueing: routing row %d has %d entries", i, len(row))
		}
		var rs float64
		for j, p := range row {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("queueing: transition probability %g at (%d,%d)", p, i, j)
			}
			rs += p
		}
		if rs > 1+1e-9 {
			return fmt.Errorf("queueing: routing row %d sums to %g > 1", i, rs)
		}
	}
	if _, err := r.VisitRates(); err != nil {
		return err
	}
	return nil
}

// ExitProbability returns 1 − Σ_j Next[i][j], the probability of leaving the
// system after service at station i.
func (r *ClassRouting) ExitProbability(i int) float64 {
	var rs float64
	for _, p := range r.Next[i] {
		rs += p
	}
	e := 1 - rs
	if e < 0 {
		return 0
	}
	return e
}

// VisitRates solves the traffic equations v = Entry + vᵀNext for the
// expected visit counts, returning an error when the chain is recurrent
// (requests never leave) or otherwise singular.
func (r *ClassRouting) VisitRates() ([]float64, error) {
	n := len(r.Entry)
	// (I − Nextᵀ)·v = Entry.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = -r.Next[j][i]
		}
		a[i][i] += 1
		b[i] = r.Entry[i]
	}
	v, err := solveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("queueing: traffic equations singular (requests never leave?): %w", err)
	}
	for j, x := range v {
		if x < -1e-9 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("queueing: visit rate %g at station %d; the routing chain is not transient", x, j)
		}
		if v[j] < 0 {
			v[j] = 0
		}
	}
	return v, nil
}

// solveDense solves a·x = b by Gaussian elimination with partial pivoting.
// It mutates its arguments (callers pass freshly built copies).
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in the column at or below the diagonal.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < n; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// RoutingFromRoute converts a deterministic route into the equivalent
// probabilistic chain (probability-1 transitions). Useful for tests and for
// mixing route styles in one network.
func RoutingFromRoute(route []int, numStations int) (*ClassRouting, error) {
	if len(route) == 0 {
		return nil, fmt.Errorf("queueing: empty route")
	}
	r := &ClassRouting{
		Entry: make([]float64, numStations),
		Next:  make([][]float64, numStations),
	}
	for i := range r.Next {
		r.Next[i] = make([]float64, numStations)
	}
	for _, j := range route {
		if j < 0 || j >= numStations {
			return nil, fmt.Errorf("queueing: route references station %d of %d", j, numStations)
		}
	}
	r.Entry[route[0]] = 1
	// A deterministic route with revisits is not expressible as a
	// station-level Markov chain in general (the next hop depends on the
	// position, not the station), so reject routes whose station has two
	// different successors.
	next := make(map[int]int)
	for i := 0; i+1 < len(route); i++ {
		if prev, ok := next[route[i]]; ok && prev != route[i+1] {
			return nil, fmt.Errorf("queueing: route visits station %d with different successors; not Markov", route[i])
		}
		next[route[i]] = route[i+1]
	}
	last := route[len(route)-1]
	if _, ok := next[last]; ok {
		return nil, fmt.Errorf("queueing: route's last station %d also has a successor; not Markov", last)
	}
	for i, j := range next {
		r.Next[i][j] = 1
	}
	return r, nil
}
