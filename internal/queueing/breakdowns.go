package queueing

import (
	"fmt"
	"math"
)

// Availability returns the steady-state fraction of time a fail-stop server
// is up, A = MTBF/(MTBF+MTTR), for exponential up-times with mean mtbf and
// exponential repair times with mean mttr. Both must be positive and finite.
func Availability(mtbf, mttr float64) (float64, error) {
	if !(mtbf > 0) || math.IsInf(mtbf, 1) {
		return 0, fmt.Errorf("queueing: MTBF %g must be positive and finite", mtbf)
	}
	if !(mttr > 0) || math.IsInf(mttr, 1) {
		return 0, fmt.Errorf("queueing: MTTR %g must be positive and finite", mttr)
	}
	return mtbf / (mtbf + mttr), nil
}

// MMcWithBreakdowns returns an M/M/c descriptor whose service capacity is
// degraded by server breakdowns with steady-state availability avail ∈ (0,1]:
// each server is effectively available a fraction avail of the time, so the
// c-server station behaves, in the mean, like an M/M/c queue with per-server
// rate μ·avail (equivalently: effective capacity c·avail at rate μ).
//
// This availability-weighted approximation is exact for the mean offered
// capacity but optimistic in the tail — it smears each outage over time
// instead of modeling the queue buildup during a repair interval, so
// predicted delays are a lower bound when MTTR is comparable to the mean
// service time or larger. See DESIGN.md "Failure model" for the comparison
// against the simulator's explicit breakdown/repair injection.
func MMcWithBreakdowns(lambda, mu float64, c int, avail float64) (MMc, error) {
	if !(avail > 0) || avail > 1 {
		return MMc{}, fmt.Errorf("queueing: availability %g out of (0, 1]", avail)
	}
	return NewMMc(lambda, mu*avail, c)
}
