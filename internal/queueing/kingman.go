package queueing

import (
	"fmt"
	"math"
)

// This file provides the G/G/1 and G/G/c approximations used for sanity
// bounds around the exact formulas: Kingman's heavy-traffic approximation
// and the Allen–Cunneen multi-server extension. They let callers reason
// about non-Poisson arrivals (e.g. the diurnal profiles the dynamic power
// management extension simulates) without leaving the analytical layer.

// GG1Kingman returns Kingman's approximation of the mean waiting time in a
// G/G/1 queue:
//
//	E[W] ≈ (ρ/(1−ρ)) · ((C_a² + C_s²)/2) · E[S]
//
// where C_a² and C_s² are the squared coefficients of variation of the
// interarrival and service times. Exact in heavy traffic for M/G/1 (it
// reduces to Pollaczek–Khinchine when C_a² = 1 and ρ → 1); an upper-bound
// flavored approximation elsewhere. Returns +Inf when ρ ≥ 1.
func GG1Kingman(lambda, ca2 float64, s ServiceDist) (float64, error) {
	if lambda < 0 || ca2 < 0 {
		return 0, fmt.Errorf("queueing: invalid G/G/1 parameters λ=%g Ca²=%g", lambda, ca2)
	}
	if s == nil || !(s.Mean() > 0) {
		return 0, fmt.Errorf("queueing: invalid service distribution")
	}
	rho := lambda * s.Mean()
	if rho >= 1 {
		return math.Inf(1), nil
	}
	return rho / (1 - rho) * (ca2 + s.CV2()) / 2 * s.Mean(), nil
}

// GGcAllenCunneen returns the Allen–Cunneen approximation of the mean wait
// in a G/G/c queue:
//
//	E[W] ≈ (C(c, a)/(cμ − λ)) · (C_a² + C_s²)/2
//
// i.e. the exact M/M/c wait scaled by the two-moment variability factor.
func GGcAllenCunneen(lambda, ca2 float64, s ServiceDist, c int) (float64, error) {
	if c < 1 {
		return 0, fmt.Errorf("queueing: server count %d < 1", c)
	}
	if lambda < 0 || ca2 < 0 {
		return 0, fmt.Errorf("queueing: invalid G/G/c parameters λ=%g Ca²=%g", lambda, ca2)
	}
	if s == nil || !(s.Mean() > 0) {
		return 0, fmt.Errorf("queueing: invalid service distribution")
	}
	mu := 1 / s.Mean()
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1), nil
	}
	base := ErlangC(c, a) / (float64(c)*mu - lambda)
	return base * (ca2 + s.CV2()) / 2, nil
}

// MMcK models the finite-buffer M/M/c/K queue (K ≥ c total places including
// those in service): arrivals finding the system full are lost. It is the
// loss-system view of a tier under admission control.
type MMcK struct {
	Lambda, Mu float64
	C, K       int
	probs      []float64 // steady-state p_0..p_K
}

// NewMMcK validates parameters and precomputes the steady-state
// distribution. The negated comparisons also reject NaN rates.
func NewMMcK(lambda, mu float64, c, k int) (*MMcK, error) {
	if !(lambda >= 0) || !(mu > 0) || math.IsInf(lambda, 1) || math.IsInf(mu, 1) || c < 1 || k < c {
		return nil, fmt.Errorf("queueing: invalid M/M/c/K parameters λ=%g μ=%g c=%d K=%d", lambda, mu, c, k)
	}
	q := &MMcK{Lambda: lambda, Mu: mu, C: c, K: k}
	// Unnormalized terms computed iteratively for numerical stability.
	terms := make([]float64, k+1)
	terms[0] = 1
	for n := 1; n <= k; n++ {
		rate := float64(n)
		if n > c {
			rate = float64(c)
		}
		terms[n] = terms[n-1] * lambda / (rate * mu)
	}
	var sum float64
	for _, t := range terms {
		sum += t
	}
	q.probs = terms
	for n := range q.probs {
		q.probs[n] /= sum
	}
	return q, nil
}

// ProbN returns the steady-state probability of n customers in the system.
func (q *MMcK) ProbN(n int) float64 {
	if n < 0 || n > q.K {
		return 0
	}
	return q.probs[n]
}

// BlockingProbability returns p_K, the fraction of arrivals lost.
func (q *MMcK) BlockingProbability() float64 { return q.probs[q.K] }

// Throughput returns the accepted arrival rate λ(1 − p_K).
func (q *MMcK) Throughput() float64 {
	return q.Lambda * (1 - q.BlockingProbability())
}

// MeanNumber returns E[N].
func (q *MMcK) MeanNumber() float64 {
	var e float64
	for n, p := range q.probs {
		e += float64(n) * p
	}
	return e
}

// MeanResponse returns the mean response time of ACCEPTED customers, by
// Little's law over the effective arrival rate.
func (q *MMcK) MeanResponse() float64 {
	thr := q.Throughput()
	if thr == 0 {
		return math.NaN()
	}
	return q.MeanNumber() / thr
}

// Utilization returns the per-server utilization λ(1−p_K)/(cμ).
func (q *MMcK) Utilization() float64 {
	return q.Throughput() / (float64(q.C) * q.Mu)
}
