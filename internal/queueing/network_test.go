package queueing

import (
	"math"
	"testing"
)

func threeTier(k int, speed float64) *Network {
	demands := make([]Demand, k)
	for i := range demands {
		demands[i] = Demand{Work: 1, CV2: 1}
	}
	mk := func(name string) *Station {
		return &Station{
			Name: name, Servers: 1, Speed: speed,
			Discipline: NonPreemptive,
			Demands:    append([]Demand(nil), demands...),
		}
	}
	return &Network{
		Stations: []*Station{mk("web"), mk("app"), mk("db")},
		Routes:   TandemRoutes(k, 3),
	}
}

func TestNetworkValidate(t *testing.T) {
	n := threeTier(2, 4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := threeTier(2, 4)
	bad.Routes[0] = []int{5}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range route accepted")
	}
	empty := &Network{}
	if err := empty.Validate(); err == nil {
		t.Error("empty network accepted")
	}
	noRoute := threeTier(2, 4)
	noRoute.Routes[1] = nil
	if err := noRoute.Validate(); err == nil {
		t.Error("empty route accepted")
	}
	mismatch := threeTier(2, 4)
	mismatch.Stations[0].Demands = mismatch.Stations[0].Demands[:1]
	if err := mismatch.Validate(); err == nil {
		t.Error("demand/class mismatch accepted")
	}
}

func TestTandemSingleClassMatchesSumOfMM1(t *testing.T) {
	// One class, three identical exponential tiers: with the Poisson
	// approximation the end-to-end delay is 3 × M/M/1 response (this is
	// exact for FCFS tandem by Burke's theorem).
	n := threeTier(1, 2) // μ = speed/work = 2
	lambda := []float64{1.2}
	bd, err := n.EndToEndDelays(lambda)
	if err != nil {
		t.Fatal(err)
	}
	mm1, _ := NewMM1(1.2, 2)
	want := 3 * mm1.MeanResponse()
	if !almostEq(bd.EndToEnd[0], want, 1e-12) {
		t.Errorf("end-to-end = %g, want %g", bd.EndToEnd[0], want)
	}
	for j := 0; j < 3; j++ {
		if !almostEq(bd.PerStation[0][j], mm1.MeanResponse(), 1e-12) {
			t.Errorf("station %d response = %g", j, bd.PerStation[0][j])
		}
		if !almostEq(bd.Wait[0][j], mm1.MeanWait(), 1e-12) {
			t.Errorf("station %d wait = %g", j, bd.Wait[0][j])
		}
	}
}

func TestNetworkPriorityOrdering(t *testing.T) {
	n := threeTier(3, 4)
	lambda := []float64{0.8, 0.8, 0.8}
	bd, err := n.EndToEndDelays(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !(bd.EndToEnd[0] < bd.EndToEnd[1] && bd.EndToEnd[1] < bd.EndToEnd[2]) {
		t.Errorf("end-to-end delays not ordered by priority: %v", bd.EndToEnd)
	}
}

func TestNetworkPartialRoute(t *testing.T) {
	// Class 1 skips the db tier; its delay must be smaller than the full
	// route at the same load, and the db tier must not see its traffic.
	n := threeTier(2, 4)
	n.Routes[1] = []int{0, 1}
	lambda := []float64{0.5, 0.5}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	bd, err := n.EndToEndDelays(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !(bd.EndToEnd[1] < bd.EndToEnd[0]) {
		t.Errorf("shorter route should be faster: %v", bd.EndToEnd)
	}
	// db tier (index 2) sees only class 0.
	at := n.arrivalAt(2, lambda)
	if at[0] != 0.5 || at[1] != 0 {
		t.Errorf("db arrivals = %v", at)
	}
}

func TestNetworkRevisits(t *testing.T) {
	// A route visiting station 0 twice doubles that station's load.
	n := threeTier(1, 4)
	n.Routes[0] = []int{0, 1, 0}
	lambda := []float64{0.5}
	at := n.arrivalAt(0, lambda)
	if at[0] != 1.0 {
		t.Errorf("revisited station load = %g, want 1", at[0])
	}
	bd, err := n.EndToEndDelays(lambda)
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end contains station 0's response twice.
	want := 2*bd.PerStation[0][0] + bd.PerStation[0][1]
	if !almostEq(bd.EndToEnd[0], want, 1e-12) {
		t.Errorf("end-to-end = %g, want %g", bd.EndToEnd[0], want)
	}
}

func TestNetworkStabilityAndBottleneck(t *testing.T) {
	n := threeTier(1, 2)
	n.Stations[1].Speed = 1 // app tier slowest → bottleneck
	if !n.Stable([]float64{0.9}) {
		t.Error("should be stable at λ=0.9")
	}
	if n.Stable([]float64{1.1}) {
		t.Error("should be unstable at λ=1.1")
	}
	u, idx := n.BottleneckUtilization([]float64{0.9})
	if idx != 1 {
		t.Errorf("bottleneck index = %d, want 1", idx)
	}
	if !almostEq(u, 0.9, 1e-12) {
		t.Errorf("bottleneck util = %g", u)
	}
}

func TestNetworkUnstableStationPropagates(t *testing.T) {
	n := threeTier(2, 1)
	bd, err := n.EndToEndDelays([]float64{0.6, 0.6}) // σ = 1.2 > 1
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(bd.EndToEnd[1], 1) {
		t.Error("low class should have infinite delay through saturated tiers")
	}
	if math.IsInf(bd.EndToEnd[0], 1) {
		t.Error("high class should stay finite (σ1 = 0.6 < 1)")
	}
}

func TestNetworkWrongLambdaCount(t *testing.T) {
	n := threeTier(2, 4)
	if _, err := n.EndToEndDelays([]float64{1}); err == nil {
		t.Error("wrong arrival vector length accepted")
	}
}

func TestNetworkClone(t *testing.T) {
	n := threeTier(2, 4)
	c := n.Clone()
	c.Stations[0].Speed = 99
	c.Routes[0][0] = 2
	c.Stations[1].Demands[0].Work = 77
	if n.Stations[0].Speed == 99 || n.Routes[0][0] == 2 || n.Stations[1].Demands[0].Work == 77 {
		t.Error("clone shares state with original")
	}
}

func TestMeanDelayAllClasses(t *testing.T) {
	d := []float64{1, 3}
	l := []float64{2, 1}
	// (2·1 + 1·3)/3 = 5/3.
	if got := MeanDelayAllClasses(d, l); !almostEq(got, 5.0/3, 1e-12) {
		t.Errorf("weighted delay = %g", got)
	}
	if !math.IsNaN(MeanDelayAllClasses(d, []float64{0, 0})) {
		t.Error("zero traffic should be NaN")
	}
}

func TestStationHelpers(t *testing.T) {
	s := &Station{Name: "x", Servers: 2, Speed: 4, Discipline: NonPreemptive,
		Demands: []Demand{{Work: 1, CV2: 1}, {Work: 2, CV2: 0.5}}}
	if err := s.Validate(2); err != nil {
		t.Fatal(err)
	}
	// Class 1: mean 2/4 = 0.5, CV² 0.5 → Erlang-2.
	d := s.ServiceDistFor(1)
	if !almostEq(d.Mean(), 0.5, 1e-12) || !almostEq(d.CV2(), 0.5, 1e-12) {
		t.Errorf("service dist: %v", d)
	}
	lam := []float64{1, 1}
	// ρ = (1·0.25 + 1·0.5)/2 = 0.375.
	if got := s.Utilization(lam); !almostEq(got, 0.375, 1e-12) {
		t.Errorf("util = %g", got)
	}
	// Min speed: (1·1 + 1·2)/2 = 1.5 work-units/s.
	if got := s.MinSpeedForStability(lam); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("min speed = %g", got)
	}
	if err := s.Validate(3); err == nil {
		t.Error("class mismatch accepted")
	}
}

func TestStationValidateErrors(t *testing.T) {
	cases := []*Station{
		{Name: "a", Servers: 0, Speed: 1, Demands: []Demand{{Work: 1}}},
		{Name: "b", Servers: 1, Speed: 0, Demands: []Demand{{Work: 1}}},
		{Name: "c", Servers: 1, Speed: 1, Demands: []Demand{{Work: 0}}},
		{Name: "d", Servers: 1, Speed: 1, Demands: []Demand{{Work: 1, CV2: -1}}},
	}
	for _, s := range cases {
		if err := s.Validate(1); err == nil {
			t.Errorf("station %q: invalid config accepted", s.Name)
		}
	}
}
