package queueing

import (
	"fmt"
	"math"
)

// Demand describes the work a request of one class brings to a station:
// Work is the mean amount of work in abstract work units; CV2 is the squared
// coefficient of variation of that work. A station running at speed s
// (work units per time) turns the demand into a service time with mean
// Work/s and the same CV².
type Demand struct {
	Work float64
	CV2  float64
}

// Station is a multi-server queueing station with a controllable speed: the
// model of one tier of the cluster. All servers in the station run at the
// same speed; Speed is the DVFS-controlled rate in work units per time.
type Station struct {
	Name       string
	Servers    int
	Speed      float64
	Discipline Discipline
	Demands    []Demand // indexed by class; len = number of classes
}

// Validate checks the station's structural parameters.
func (s *Station) Validate(numClasses int) error {
	if s.Servers < 1 {
		return fmt.Errorf("queueing: station %q has %d servers", s.Name, s.Servers)
	}
	if !(s.Speed > 0) {
		return fmt.Errorf("queueing: station %q has non-positive speed %g", s.Name, s.Speed)
	}
	if len(s.Demands) != numClasses {
		return fmt.Errorf("queueing: station %q has %d demands for %d classes",
			s.Name, len(s.Demands), numClasses)
	}
	for k, d := range s.Demands {
		if !(d.Work > 0) {
			return fmt.Errorf("queueing: station %q class %d has non-positive work %g", s.Name, k, d.Work)
		}
		if d.CV2 < 0 {
			return fmt.Errorf("queueing: station %q class %d has negative CV² %g", s.Name, k, d.CV2)
		}
	}
	return nil
}

// ServiceDistFor returns the service-time distribution of class k at the
// station's current speed: mean Work/Speed with the demand's CV², realized
// as Deterministic (CV²=0), Erlang (CV²<1), Exponential (CV²=1) or balanced
// hyperexponential (CV²>1).
func (s *Station) ServiceDistFor(k int) ServiceDist {
	d := s.Demands[k]
	return DistForCV2(d.Work/s.Speed, d.CV2)
}

// DistForCV2 constructs a service distribution with the given mean and
// squared coefficient of variation using the standard moment-matching
// recipes of queueing analysis.
func DistForCV2(mean, cv2 float64) ServiceDist {
	switch {
	case cv2 == 0:
		return NewDeterministic(mean)
	case cv2 < 1:
		// Erlang-k with k = round(1/cv²); exact when 1/cv² is integral.
		k := int(math.Round(1 / cv2))
		if k < 1 {
			k = 1
		}
		return NewErlang(mean, k)
	//lint:waive floateq reason="deliberate exact compare: CV^2 exactly 1 selects the exponential family" until=2027-08-01
	case cv2 == 1:
		return NewExponential(mean)
	default:
		return NewHyperExpCV2(mean, cv2)
	}
}

// ClassInputs builds the per-class queueing inputs for the station given the
// per-class arrival rates (indexed like Demands).
func (s *Station) ClassInputs(lambda []float64) []ClassInput {
	in := make([]ClassInput, len(s.Demands))
	for k := range s.Demands {
		in[k] = ClassInput{Lambda: lambda[k], Service: s.ServiceDistFor(k)}
	}
	return in
}

// Utilization returns the per-server utilization of the station under the
// given arrival rates.
func (s *Station) Utilization(lambda []float64) float64 {
	return AggregateUtilization(s.ClassInputs(lambda), s.Servers)
}

// ResponseTimes returns per-class mean waiting and response times at the
// station under the given per-class arrival rates.
func (s *Station) ResponseTimes(lambda []float64) (wait, resp []float64, err error) {
	return PriorityMMc(s.ClassInputs(lambda), s.Servers, s.Discipline)
}

// MinSpeedForStability returns the smallest speed at which the station is
// stable (utilization < 1) for the given arrival rates; callers should add
// headroom above it.
func (s *Station) MinSpeedForStability(lambda []float64) float64 {
	var work float64
	for k, d := range s.Demands {
		work += lambda[k] * d.Work
	}
	return work / float64(s.Servers)
}

// Clone returns a deep copy of the station; mutating the copy's Demands does
// not affect the original.
func (s *Station) Clone() *Station {
	c := *s
	c.Demands = append([]Demand(nil), s.Demands...)
	return &c
}
