package queueing

import (
	"fmt"
	"math"
)

// MM1 holds the closed-form metrics of an M/M/1 queue with arrival rate
// Lambda and service rate Mu.
type MM1 struct {
	Lambda, Mu float64
}

// NewMM1 validates the parameters and returns the queue descriptor. The
// negated comparisons reject NaN as well: NaN fails every ordered
// comparison, so `lambda < 0` alone would wave it through.
func NewMM1(lambda, mu float64) (MM1, error) {
	if !(lambda >= 0) || !(mu > 0) || math.IsInf(lambda, 1) || math.IsInf(mu, 1) {
		return MM1{}, fmt.Errorf("queueing: invalid M/M/1 parameters λ=%g μ=%g", lambda, mu)
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue has a steady state (ρ < 1).
func (q MM1) Stable() bool { return q.Rho() < 1 }

// MeanResponse returns E[T] = 1/(μ−λ), or +Inf when unstable.
func (q MM1) MeanResponse() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// MeanWait returns E[W] = ρ/(μ−λ), or +Inf when unstable.
func (q MM1) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Rho() / (q.Mu - q.Lambda)
}

// MeanNumber returns E[N] = ρ/(1−ρ) via Little's law.
func (q MM1) MeanNumber() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	rho := q.Rho()
	return rho / (1 - rho)
}

// ResponseQuantile returns the p-quantile of the response time, which is
// exponential with rate μ−λ: t_p = −ln(1−p)/(μ−λ).
func (q MM1) ResponseQuantile(p float64) float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / (q.Mu - q.Lambda)
}

// ProbN returns the steady-state probability of n customers in system,
// (1−ρ)ρⁿ.
func (q MM1) ProbN(n int) float64 {
	if !q.Stable() || n < 0 {
		return 0
	}
	rho := q.Rho()
	return (1 - rho) * math.Pow(rho, float64(n))
}

// MG1 holds the Pollaczek–Khinchine metrics of an M/G/1 queue.
type MG1 struct {
	Lambda  float64
	Service ServiceDist
}

// NewMG1 validates and returns an M/G/1 descriptor.
func NewMG1(lambda float64, s ServiceDist) (MG1, error) {
	if !(lambda >= 0) || math.IsInf(lambda, 1) {
		return MG1{}, fmt.Errorf("queueing: invalid arrival rate %g", lambda)
	}
	if s == nil || !(s.Mean() > 0) {
		return MG1{}, fmt.Errorf("queueing: invalid service distribution %v", s)
	}
	return MG1{Lambda: lambda, Service: s}, nil
}

// Rho returns the utilization λE[S].
func (q MG1) Rho() float64 { return q.Lambda * q.Service.Mean() }

// Stable reports whether ρ < 1.
func (q MG1) Stable() bool { return q.Rho() < 1 }

// MeanWait returns the Pollaczek–Khinchine mean waiting time
// λE[S²] / (2(1−ρ)), or +Inf when unstable.
func (q MG1) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Lambda * q.Service.SecondMoment() / (2 * (1 - q.Rho()))
}

// MeanResponse returns E[T] = E[W] + E[S].
func (q MG1) MeanResponse() float64 {
	w := q.MeanWait()
	if math.IsInf(w, 1) {
		return w
	}
	return w + q.Service.Mean()
}

// MeanNumber returns E[N] = λE[T] by Little's law.
func (q MG1) MeanNumber() float64 {
	t := q.MeanResponse()
	if math.IsInf(t, 1) {
		return t
	}
	return q.Lambda * t
}
