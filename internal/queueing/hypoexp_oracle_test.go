package queueing

import (
	"math"
	"math/rand"
	"testing"
)

// erlangCDF is the closed-form Erlang(n, r) distribution function
// 1 − e^{−rt} Σ_{m=0}^{n−1} (rt)^m/m!, the exact law of a hypoexponential
// with n repeated rates — the configuration where the partial-fraction form
// of the hypoexponential CDF degenerates, and therefore the sharpest oracle
// for the uniformization evaluator.
func erlangCDF(n int, r, t float64) float64 {
	if t <= 0 {
		return 0
	}
	rt := r * t
	term := 1.0
	sum := 1.0
	for m := 1; m < n; m++ {
		term *= rt / float64(m)
		sum += term
	}
	return 1 - math.Exp(-rt)*sum
}

func TestHypoexponentialMatchesErlangClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		const r = 2.5
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r
		}
		h, err := NewHypoexponential(rates)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mean := float64(n) / r
		for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
			tt := x * mean
			got := h.CDF(tt)
			want := erlangCDF(n, r, tt)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("n=%d t=%g: CDF = %.15g, Erlang closed form %.15g (diff %g)",
					n, tt, got, want, math.Abs(got-want))
			}
		}
	}
}

func TestHypoexponentialMatchesMonteCarlo(t *testing.T) {
	// Well-separated rates exercise the general (non-Erlang) path; a seeded
	// generator keeps the empirical CDF reproducible. With N=200k samples the
	// binomial standard error is below 0.0012, so a 0.01 tolerance is ~8σ.
	rates := []float64{10, 1, 0.1}
	h, err := NewHypoexponential(rates)
	if err != nil {
		t.Fatal(err)
	}

	const n = 200_000
	rng := rand.New(rand.NewSource(20110525))
	samples := make([]float64, n)
	for i := range samples {
		var s float64
		for _, r := range rates {
			s += rng.ExpFloat64() / r
		}
		samples[i] = s
	}

	for _, tt := range []float64{1, 5, 10, 11.1, 20, 40} {
		var below int
		for _, s := range samples {
			if s <= tt {
				below++
			}
		}
		emp := float64(below) / n
		got := h.CDF(tt)
		if math.Abs(got-emp) > 0.01 {
			t.Errorf("t=%g: CDF = %.5f, Monte Carlo %.5f (diff %g)",
				tt, got, emp, math.Abs(got-emp))
		}
	}
}
