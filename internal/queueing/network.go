package queueing

import (
	"fmt"
	"math"
)

// Network is a feed-forward network of stations. Every class k has a Route —
// the ordered list of station indices its requests visit. The canonical
// enterprise-application instance is the tandem route 0→1→…→J−1 for every
// class (use TandemRoutes). Per-class arrival processes are Poisson at the
// network entrance; downstream arrival processes are approximated as Poisson
// with the same rate (exact under product form, an approximation under
// priority scheduling — quantified by the simulator).
type Network struct {
	Stations []*Station
	Routes   [][]int
	// Routings optionally replaces a class's deterministic route with a
	// probabilistic (Markov) chain: a non-nil Routings[k] takes precedence
	// over Routes[k]. Length must equal the class count when set.
	Routings []*ClassRouting
}

// TandemRoutes returns routes sending each of k classes through stations
// 0..j−1 in order.
func TandemRoutes(k, j int) [][]int {
	routes := make([][]int, k)
	for i := range routes {
		r := make([]int, j)
		for s := range r {
			r[s] = s
		}
		routes[i] = r
	}
	return routes
}

// Validate checks structural consistency: station demand vectors sized to the
// class count, routes referencing existing stations, routing chains
// stochastic and transient.
func (n *Network) Validate() error {
	if len(n.Stations) == 0 {
		return fmt.Errorf("queueing: network has no stations")
	}
	if len(n.Routes) == 0 {
		return fmt.Errorf("queueing: network has no classes/routes")
	}
	k := len(n.Routes)
	if n.Routings != nil && len(n.Routings) != k {
		return fmt.Errorf("queueing: %d routings for %d classes", len(n.Routings), k)
	}
	for _, s := range n.Stations {
		if err := s.Validate(k); err != nil {
			return err
		}
	}
	for c, route := range n.Routes {
		if n.routing(c) != nil {
			if err := n.routing(c).Validate(len(n.Stations)); err != nil {
				return fmt.Errorf("class %d: %w", c, err)
			}
			continue
		}
		if len(route) == 0 {
			return fmt.Errorf("queueing: class %d has an empty route", c)
		}
		for _, j := range route {
			if j < 0 || j >= len(n.Stations) {
				return fmt.Errorf("queueing: class %d route references station %d of %d", c, j, len(n.Stations))
			}
		}
	}
	return nil
}

// NumClasses returns the number of customer classes.
func (n *Network) NumClasses() int { return len(n.Routes) }

// routing returns class k's probabilistic chain, or nil when it follows its
// deterministic route.
func (n *Network) routing(k int) *ClassRouting {
	if n.Routings == nil || k >= len(n.Routings) {
		return nil
	}
	return n.Routings[k]
}

// VisitRates returns the expected number of visits class k makes to each
// station: occurrence counts for deterministic routes, the traffic-equation
// solution for probabilistic routings.
func (n *Network) VisitRates(k int) ([]float64, error) {
	if r := n.routing(k); r != nil {
		return r.VisitRates()
	}
	v := make([]float64, len(n.Stations))
	for _, j := range n.Routes[k] {
		v[j]++
	}
	return v, nil
}

// arrivalAt returns the per-class arrival-rate vector seen by station j given
// the external per-class rates: λ_k times the expected visits of class k to
// station j.
func (n *Network) arrivalAt(j int, lambda []float64) []float64 {
	at := make([]float64, len(lambda))
	for k := range n.Routes {
		v, err := n.VisitRates(k)
		if err != nil {
			continue // surfaced by Validate; keep arrivals conservative here
		}
		at[k] = lambda[k] * v[j]
	}
	return at
}

// DelayBreakdown holds the per-class, per-station mean response times plus
// end-to-end totals.
type DelayBreakdown struct {
	// PerStation[k][j] is the mean response time class k spends at its
	// route position visiting station j (0 for stations not visited).
	PerStation [][]float64
	// Wait[k][j] is the waiting component of PerStation.
	Wait [][]float64
	// EndToEnd[k] is the sum along class k's route.
	EndToEnd []float64
}

// EndToEndDelays computes per-class mean end-to-end response times under the
// given external arrival rates. A class whose route crosses any unstable
// station gets +Inf.
func (n *Network) EndToEndDelays(lambda []float64) (*DelayBreakdown, error) {
	if len(lambda) != n.NumClasses() {
		return nil, fmt.Errorf("queueing: %d arrival rates for %d classes", len(lambda), n.NumClasses())
	}
	k := n.NumClasses()
	bd := &DelayBreakdown{
		PerStation: make([][]float64, k),
		Wait:       make([][]float64, k),
		EndToEnd:   make([]float64, k),
	}
	for c := 0; c < k; c++ {
		bd.PerStation[c] = make([]float64, len(n.Stations))
		bd.Wait[c] = make([]float64, len(n.Stations))
	}
	for j, s := range n.Stations {
		at := n.arrivalAt(j, lambda)
		wait, resp, err := s.ResponseTimes(at)
		if err != nil {
			return nil, fmt.Errorf("station %d (%s): %w", j, s.Name, err)
		}
		for c := 0; c < k; c++ {
			bd.PerStation[c][j] = resp[c]
			bd.Wait[c][j] = wait[c]
		}
	}
	for c := range n.Routes {
		v, err := n.VisitRates(c)
		if err != nil {
			return nil, fmt.Errorf("class %d: %w", c, err)
		}
		var sum float64
		for j, visits := range v {
			if visits > 0 {
				sum += visits * bd.PerStation[c][j]
			}
		}
		bd.EndToEnd[c] = sum
	}
	return bd, nil
}

// Stable reports whether every station is stable under the given external
// arrival rates.
func (n *Network) Stable(lambda []float64) bool {
	for j, s := range n.Stations {
		if s.Utilization(n.arrivalAt(j, lambda)) >= 1 {
			return false
		}
	}
	return true
}

// BottleneckUtilization returns the maximum per-server utilization across
// stations and the index of the bottleneck station.
func (n *Network) BottleneckUtilization(lambda []float64) (float64, int) {
	best, idx := math.Inf(-1), -1
	for j, s := range n.Stations {
		if u := s.Utilization(n.arrivalAt(j, lambda)); u > best {
			best, idx = u, j
		}
	}
	return best, idx
}

// Clone returns a deep copy of the network (stations, routes, routings).
func (n *Network) Clone() *Network {
	c := &Network{
		Stations: make([]*Station, len(n.Stations)),
		Routes:   make([][]int, len(n.Routes)),
	}
	for i, s := range n.Stations {
		c.Stations[i] = s.Clone()
	}
	for i, r := range n.Routes {
		c.Routes[i] = append([]int(nil), r...)
	}
	if n.Routings != nil {
		c.Routings = make([]*ClassRouting, len(n.Routings))
		for i, r := range n.Routings {
			if r == nil {
				continue
			}
			nr := &ClassRouting{Entry: append([]float64(nil), r.Entry...)}
			for _, row := range r.Next {
				nr.Next = append(nr.Next, append([]float64(nil), row...))
			}
			c.Routings[i] = nr
		}
	}
	return c
}

// MeanDelayAllClasses returns the arrival-rate-weighted average of the
// per-class end-to-end delays — the "all class" objective of the paper's
// aggregate formulations.
func MeanDelayAllClasses(delays, lambda []float64) float64 {
	var num, den float64
	for k := range delays {
		num += lambda[k] * delays[k]
		den += lambda[k]
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
