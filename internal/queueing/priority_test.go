package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func twoClasses(l1, l2, m1, m2 float64) []ClassInput {
	return []ClassInput{
		{Lambda: l1, Service: NewExponential(m1)},
		{Lambda: l2, Service: NewExponential(m2)},
	}
}

func TestPriorityMG1SingleClassMatchesPK(t *testing.T) {
	for _, d := range []Discipline{FCFS, NonPreemptive, PreemptiveResume} {
		cl := []ClassInput{{Lambda: 0.6, Service: NewExponential(1)}}
		wait, resp, err := PriorityMG1(cl, d)
		if err != nil {
			t.Fatal(err)
		}
		mg1, _ := NewMG1(0.6, NewExponential(1))
		if !almostEq(wait[0], mg1.MeanWait(), 1e-12) {
			t.Errorf("%v: single-class wait %g != P-K %g", d, wait[0], mg1.MeanWait())
		}
		if !almostEq(resp[0], mg1.MeanResponse(), 1e-12) {
			t.Errorf("%v: single-class response mismatch", d)
		}
	}
}

func TestPriorityMG1CobhamKnownValue(t *testing.T) {
	// Two exponential classes, λ1=λ2=0.25, E[S]=1 each:
	// ρ1=ρ2=0.25, R = (0.25·2 + 0.25·2)/2 = 0.5.
	// W1 = 0.5/(1·0.75) = 2/3; W2 = 0.5/(0.75·0.5) = 4/3.
	wait, resp, err := PriorityMG1(twoClasses(0.25, 0.25, 1, 1), NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(wait[0], 2.0/3, 1e-12) {
		t.Errorf("W1 = %g, want 2/3", wait[0])
	}
	if !almostEq(wait[1], 4.0/3, 1e-12) {
		t.Errorf("W2 = %g, want 4/3", wait[1])
	}
	if !almostEq(resp[0], wait[0]+1, 1e-12) || !almostEq(resp[1], wait[1]+1, 1e-12) {
		t.Error("responses should add the service mean")
	}
}

func TestPriorityMG1PreemptiveKnownValue(t *testing.T) {
	// Same setup. Preemptive-resume:
	// T1 = E[S1]/(1−0) + R1/((1)(1−σ1)), R1 = 0.25·2/2 = 0.25.
	// T1 = 1 + 0.25/0.75 = 4/3.
	// T2 = 1/(1−0.25) + 0.5/((0.75)(0.5)) = 4/3 + 4/3 = 8/3.
	_, resp, err := PriorityMG1(twoClasses(0.25, 0.25, 1, 1), PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(resp[0], 4.0/3, 1e-12) {
		t.Errorf("T1 = %g, want 4/3", resp[0])
	}
	if !almostEq(resp[1], 8.0/3, 1e-12) {
		t.Errorf("T2 = %g, want 8/3", resp[1])
	}
}

func TestPreemptiveHighClassIgnoresLowClass(t *testing.T) {
	// Under preemptive-resume the top class sees a private M/G/1:
	// its response must not depend on lower-class load at all.
	base := twoClasses(0.3, 0.1, 1, 1)
	loaded := twoClasses(0.3, 0.55, 1, 1)
	_, r1, err := PriorityMG1(base, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := PriorityMG1(loaded, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r1[0], r2[0], 1e-12) {
		t.Errorf("top-class response changed with low-class load: %g vs %g", r1[0], r2[0])
	}
	mg1, _ := NewMG1(0.3, NewExponential(1))
	if !almostEq(r1[0], mg1.MeanResponse(), 1e-12) {
		t.Errorf("top class should see a private M/M/1: %g vs %g", r1[0], mg1.MeanResponse())
	}
}

func TestNonPreemptiveHighClassSeesResidualOfLow(t *testing.T) {
	// Under non-preemptive priority the top class IS delayed by the
	// residual service of low-priority jobs: adding low load must
	// increase the top class's wait.
	base := twoClasses(0.3, 0.1, 1, 1)
	loaded := twoClasses(0.3, 0.5, 1, 1)
	w1, _, _ := PriorityMG1(base, NonPreemptive)
	w2, _, _ := PriorityMG1(loaded, NonPreemptive)
	if !(w2[0] > w1[0]) {
		t.Errorf("top-class wait should grow with low-class load: %g vs %g", w1[0], w2[0])
	}
}

// Work conservation (Kleinrock's conservation law): under any non-preemptive
// work-conserving discipline with exponential service,
// Σ ρ_k W_k is invariant. Compare priority vs FCFS.
func TestConservationLaw(t *testing.T) {
	f := func(a, b, c float64) bool {
		l1 := 0.05 + math.Mod(math.Abs(a), 0.3)
		l2 := 0.05 + math.Mod(math.Abs(b), 0.3)
		l3 := 0.05 + math.Mod(math.Abs(c), 0.25)
		if math.IsNaN(l1 + l2 + l3) {
			return true
		}
		classes := []ClassInput{
			{Lambda: l1, Service: NewExponential(1)},
			{Lambda: l2, Service: NewExponential(1)},
			{Lambda: l3, Service: NewExponential(1)},
		}
		if AggregateUtilization(classes, 1) >= 0.98 {
			return true
		}
		wNP, _, err := PriorityMG1(classes, NonPreemptive)
		if err != nil {
			return false
		}
		wF, _, err := PriorityMG1(classes, FCFS)
		if err != nil {
			return false
		}
		var sNP, sF float64
		for k, cl := range classes {
			rho := cl.Lambda * cl.Service.Mean()
			sNP += rho * wNP[k]
			sF += rho * wF[k]
		}
		return almostEq(sNP, sF, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPriorityOrderingInvariant(t *testing.T) {
	// With identical service distributions, higher priority classes must
	// never wait longer than lower ones, under both disciplines.
	f := func(a, b, c float64) bool {
		l1 := 0.02 + math.Mod(math.Abs(a), 0.3)
		l2 := 0.02 + math.Mod(math.Abs(b), 0.3)
		l3 := 0.02 + math.Mod(math.Abs(c), 0.3)
		if math.IsNaN(l1 + l2 + l3) {
			return true
		}
		classes := []ClassInput{
			{Lambda: l1, Service: NewExponential(1)},
			{Lambda: l2, Service: NewExponential(1)},
			{Lambda: l3, Service: NewExponential(1)},
		}
		if AggregateUtilization(classes, 1) >= 0.97 {
			return true
		}
		for _, d := range []Discipline{NonPreemptive, PreemptiveResume} {
			wait, _, err := PriorityMG1(classes, d)
			if err != nil {
				return false
			}
			if !(wait[0] <= wait[1]+1e-12 && wait[1] <= wait[2]+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPriorityMG1PartialStability(t *testing.T) {
	// σ1 = 0.5 < 1 but σ2 = 1.5: class 0 finite, class 1 diverges.
	wait, resp, err := PriorityMG1(twoClasses(0.5, 1.0, 1, 1), NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(wait[0], 1) {
		t.Error("high class should remain finite")
	}
	if !math.IsInf(wait[1], 1) || !math.IsInf(resp[1], 1) {
		t.Error("low class should diverge")
	}
	// FCFS: everyone diverges.
	wf, _, _ := PriorityMG1(twoClasses(0.5, 1.0, 1, 1), FCFS)
	if !math.IsInf(wf[0], 1) {
		t.Error("FCFS should diverge for all classes when overloaded")
	}
}

func TestPriorityMMcReducesToMG1(t *testing.T) {
	classes := twoClasses(0.2, 0.3, 1, 1)
	w1, r1, err := PriorityMMc(classes, 1, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	w2, r2, err := PriorityMG1(classes, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	for k := range classes {
		if !almostEq(w1[k], w2[k], 1e-12) || !almostEq(r1[k], r2[k], 1e-12) {
			t.Errorf("class %d: c=1 M/M/c %g/%g != M/G/1 %g/%g", k, w1[k], r1[k], w2[k], r2[k])
		}
	}
}

func TestPriorityMMcSingleClassMatchesErlangC(t *testing.T) {
	cl := []ClassInput{{Lambda: 1.2, Service: NewExponential(1)}}
	wait, _, err := PriorityMMc(cl, 2, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMMc(1.2, 1, 2)
	if !almostEq(wait[0], q.MeanWait(), 1e-12) {
		t.Errorf("single-class M/M/c priority wait %g != Erlang-C %g", wait[0], q.MeanWait())
	}
}

func TestPriorityMMcFCFSAllClassesEqualWait(t *testing.T) {
	classes := twoClasses(0.5, 0.7, 1, 1)
	wait, _, err := PriorityMMc(classes, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(wait[0], wait[1], 1e-12) {
		t.Errorf("FCFS waits differ: %g vs %g", wait[0], wait[1])
	}
}

func TestPriorityMMcOrdering(t *testing.T) {
	classes := []ClassInput{
		{Lambda: 0.5, Service: NewExponential(1)},
		{Lambda: 0.5, Service: NewExponential(1)},
		{Lambda: 0.4, Service: NewExponential(1)},
	}
	wait, _, err := PriorityMMc(classes, 2, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if !(wait[0] < wait[1] && wait[1] < wait[2]) {
		t.Errorf("waits not ordered: %v", wait)
	}
}

func TestPriorityMMcPreemptiveMultiServerRejected(t *testing.T) {
	if _, _, err := PriorityMMc(twoClasses(0.1, 0.1, 1, 1), 2, PreemptiveResume); err == nil {
		t.Error("preemptive multi-server should be rejected")
	}
}

func TestPriorityMMcZeroTraffic(t *testing.T) {
	classes := []ClassInput{
		{Lambda: 0, Service: NewExponential(2)},
		{Lambda: 0, Service: NewExponential(3)},
	}
	wait, resp, err := PriorityMMc(classes, 4, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	for k := range classes {
		if wait[k] != 0 {
			t.Errorf("class %d wait = %g with no traffic", k, wait[k])
		}
		if resp[k] != classes[k].Service.Mean() {
			t.Errorf("class %d response = %g", k, resp[k])
		}
	}
}

func TestValidateClassesErrors(t *testing.T) {
	if _, _, err := PriorityMG1(nil, FCFS); err == nil {
		t.Error("empty classes accepted")
	}
	bad := []ClassInput{{Lambda: -1, Service: NewExponential(1)}}
	if _, _, err := PriorityMG1(bad, FCFS); err == nil {
		t.Error("negative lambda accepted")
	}
	noSvc := []ClassInput{{Lambda: 1, Service: nil}}
	if _, _, err := PriorityMG1(noSvc, FCFS); err == nil {
		t.Error("nil service accepted")
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "FCFS" || NonPreemptive.String() != "non-preemptive" ||
		PreemptiveResume.String() != "preemptive-resume" {
		t.Error("discipline names wrong")
	}
	if Discipline(99).String() == "" {
		t.Error("unknown discipline should still render")
	}
}
