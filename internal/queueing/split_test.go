package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitDelayMatchesMM1(t *testing.T) {
	// Single pool: the split delay IS the M/M/1 response.
	d, err := SplitDelay(0.7, []float64{1}, []float64{0.7})
	if err != nil {
		t.Fatal(err)
	}
	mm1, _ := NewMM1(0.7, 1)
	if !almostEq(d, mm1.MeanResponse(), 1e-12) {
		t.Errorf("split delay %g vs M/M/1 %g", d, mm1.MeanResponse())
	}
}

func TestSplitDelayErrors(t *testing.T) {
	if _, err := SplitDelay(1, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := SplitDelay(0, []float64{1}, []float64{0}); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := SplitDelay(1, []float64{2}, []float64{-0.5}); err == nil {
		t.Error("negative split accepted")
	}
	if _, err := SplitDelay(1, []float64{2}, []float64{0.5}); err == nil {
		t.Error("non-conserving split accepted")
	}
	// Overloaded pool gives +Inf, not an error.
	d, err := SplitDelay(3, []float64{1, 9}, []float64{2, 1})
	if err != nil || !math.IsInf(d, 1) {
		t.Errorf("overload: %g, %v", d, err)
	}
}

func TestOptimalSplitSymmetricPools(t *testing.T) {
	// Identical pools: the optimum is the even split.
	x, d, err := OptimalSplit(1.5, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEq(v, 0.5, 1e-9) {
			t.Errorf("x[%d] = %g, want 0.5", i, v)
		}
	}
	mm1, _ := NewMM1(0.5, 1)
	if !almostEq(d, mm1.MeanResponse(), 1e-9) {
		t.Errorf("delay %g", d)
	}
}

func TestOptimalSplitLeavesSlowPoolIdleAtLowLoad(t *testing.T) {
	// A fast and a very slow pool: at low load everything goes to the
	// fast pool (using the slow pool would only add delay).
	x, _, err := OptimalSplit(0.2, []float64{10, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Errorf("slow pool got %g at low load", x[1])
	}
	if !almostEq(x[0], 0.2, 1e-9) {
		t.Errorf("fast pool got %g", x[0])
	}
	// At high load the slow pool wakes up.
	x2, _, err := OptimalSplit(9.5, []float64{10, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !(x2[1] > 0) {
		t.Error("slow pool still idle at high load")
	}
	active := ActivePools(x2, []float64{10, 0.5})
	if len(active) != 2 || active[0] != 1 {
		t.Errorf("active pools = %v", active)
	}
}

func TestOptimalSplitBeatsHeuristics(t *testing.T) {
	mus := []float64{8, 3, 1.5}
	for _, lam := range []float64{2, 5, 9, 11.5} {
		x, dOpt, err := OptimalSplit(lam, mus)
		if err != nil {
			t.Fatalf("λ=%g: %v", lam, err)
		}
		var sum float64
		for _, v := range x {
			sum += v
		}
		if !almostEq(sum, lam, 1e-9) {
			t.Errorf("λ=%g: split sums to %g", lam, sum)
		}
		dProp, err := SplitDelay(lam, mus, ProportionalSplit(lam, mus))
		if err != nil {
			t.Fatal(err)
		}
		dEq, err := SplitDelay(lam, mus, EqualSplit(lam, 3))
		if err != nil {
			t.Fatal(err)
		}
		if dOpt > dProp*(1+1e-9) {
			t.Errorf("λ=%g: optimal %g worse than proportional %g", lam, dOpt, dProp)
		}
		if dOpt > dEq*(1+1e-9) {
			t.Errorf("λ=%g: optimal %g worse than equal %g", lam, dOpt, dEq)
		}
	}
}

func TestOptimalSplitKKTStationarity(t *testing.T) {
	// All active pools must share the same marginal delay μ/(μ−x)².
	mus := []float64{6, 4, 2}
	x, _, err := OptimalSplit(7, mus)
	if err != nil {
		t.Fatal(err)
	}
	var alpha float64
	for i, v := range x {
		if v <= 0 {
			continue
		}
		m := mus[i] / ((mus[i] - v) * (mus[i] - v))
		if alpha == 0 {
			alpha = m
		} else if !almostEq(m, alpha, 1e-6) {
			t.Errorf("marginal delay of pool %d = %g, others %g", i, m, alpha)
		}
	}
}

func TestOptimalSplitAgainstGoldenSection(t *testing.T) {
	// Two pools: brute-force the 1-D optimum and compare.
	mus := []float64{5, 2}
	lam := 4.0
	best := math.Inf(1)
	for x0 := 0.0; x0 <= lam; x0 += 1e-4 {
		if x0 >= mus[0] || lam-x0 >= mus[1] {
			continue
		}
		d := x0/lam/(mus[0]-x0) + (lam-x0)/lam/(mus[1]-(lam-x0))
		if d < best {
			best = d
		}
	}
	_, dOpt, err := OptimalSplit(lam, mus)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(dOpt, best, 1e-5) {
		t.Errorf("waterfilling %g vs brute force %g", dOpt, best)
	}
}

func TestOptimalSplitErrors(t *testing.T) {
	if _, _, err := OptimalSplit(1, nil); err == nil {
		t.Error("no pools accepted")
	}
	if _, _, err := OptimalSplit(0, []float64{1}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := OptimalSplit(1, []float64{0}); err == nil {
		t.Error("zero pool rate accepted")
	}
	if _, _, err := OptimalSplit(3, []float64{1, 2}); err == nil {
		t.Error("overload accepted")
	}
}

func TestOptimalSplitPropertyQuick(t *testing.T) {
	f := func(a, b, c, l float64) bool {
		mus := []float64{
			0.5 + math.Mod(math.Abs(a), 8),
			0.5 + math.Mod(math.Abs(b), 8),
			0.5 + math.Mod(math.Abs(c), 8),
		}
		cap := mus[0] + mus[1] + mus[2]
		lam := (0.05 + 0.9*math.Mod(math.Abs(l), 1)) * cap
		if math.IsNaN(lam) {
			return true
		}
		x, dOpt, err := OptimalSplit(lam, mus)
		if err != nil {
			return false
		}
		// Feasible, conserving, stable, and no worse than proportional.
		var sum float64
		for i, v := range x {
			if v < 0 || v >= mus[i] {
				return false
			}
			sum += v
		}
		if !almostEq(sum, lam, 1e-6) {
			return false
		}
		dProp, err := SplitDelay(lam, mus, ProportionalSplit(lam, mus))
		if err != nil {
			return false
		}
		return dOpt <= dProp*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
