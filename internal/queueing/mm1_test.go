package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1KnownValues(t *testing.T) {
	q, err := NewMM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rho() != 0.5 || !q.Stable() {
		t.Fatalf("rho=%g stable=%v", q.Rho(), q.Stable())
	}
	if got := q.MeanResponse(); !almostEq(got, 2, 1e-12) {
		t.Errorf("E[T] = %g, want 2", got)
	}
	if got := q.MeanWait(); !almostEq(got, 1, 1e-12) {
		t.Errorf("E[W] = %g, want 1", got)
	}
	if got := q.MeanNumber(); !almostEq(got, 1, 1e-12) {
		t.Errorf("E[N] = %g, want 1", got)
	}
}

func TestMM1Unstable(t *testing.T) {
	q, _ := NewMM1(2, 1)
	if q.Stable() {
		t.Fatal("should be unstable")
	}
	for _, v := range []float64{q.MeanResponse(), q.MeanWait(), q.MeanNumber()} {
		if !math.IsInf(v, 1) {
			t.Errorf("unstable metric = %g, want +Inf", v)
		}
	}
}

func TestMM1InvalidParams(t *testing.T) {
	if _, err := NewMM1(-1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewMM1(1, 0); err == nil {
		t.Error("zero mu accepted")
	}
}

func TestMM1LittlesLaw(t *testing.T) {
	f := func(l, m float64) bool {
		lam := math.Mod(math.Abs(l), 5)
		mu := 0.1 + math.Mod(math.Abs(m), 10)
		if math.IsNaN(lam) || math.IsNaN(mu) || lam >= mu {
			return true
		}
		q, err := NewMM1(lam, mu)
		if err != nil {
			return true
		}
		return almostEq(q.MeanNumber(), lam*q.MeanResponse(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMM1ResponseQuantile(t *testing.T) {
	q, _ := NewMM1(0.5, 1)
	// Response is Exp(0.5); median = ln2/0.5.
	if got := q.ResponseQuantile(0.5); !almostEq(got, math.Ln2/0.5, 1e-9) {
		t.Errorf("median = %g", got)
	}
	if q.ResponseQuantile(0) != 0 {
		t.Error("quantile at 0")
	}
	if !math.IsInf(q.ResponseQuantile(1), 1) {
		t.Error("quantile at 1")
	}
}

func TestMM1ProbNSumsToOne(t *testing.T) {
	q, _ := NewMM1(0.7, 1)
	var sum float64
	for n := 0; n < 500; n++ {
		sum += q.ProbN(n)
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Errorf("Σ ProbN = %g", sum)
	}
	if q.ProbN(-1) != 0 {
		t.Error("ProbN(-1) should be 0")
	}
}

func TestMG1MatchesMM1ForExponential(t *testing.T) {
	mm1, _ := NewMM1(0.6, 1.2)
	mg1, err := NewMG1(0.6, NewExponential(1/1.2))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mg1.MeanWait(), mm1.MeanWait(), 1e-12) {
		t.Errorf("M/G/1 exp wait %g != M/M/1 %g", mg1.MeanWait(), mm1.MeanWait())
	}
	if !almostEq(mg1.MeanResponse(), mm1.MeanResponse(), 1e-12) {
		t.Errorf("M/G/1 exp response %g != M/M/1 %g", mg1.MeanResponse(), mm1.MeanResponse())
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	// Classic P-K result: M/D/1 waits are exactly half of M/M/1 waits.
	lam, mean := 0.8, 1.0
	md1, _ := NewMG1(lam, NewDeterministic(mean))
	mm1q, _ := NewMG1(lam, NewExponential(mean))
	if got, want := md1.MeanWait(), mm1q.MeanWait()/2; !almostEq(got, want, 1e-12) {
		t.Errorf("M/D/1 wait = %g, want %g", got, want)
	}
}

func TestMG1WaitIncreasesWithVariance(t *testing.T) {
	lam := 0.5
	prev := -1.0
	for _, cv2 := range []float64{0, 0.25, 1, 2, 8} {
		q, _ := NewMG1(lam, DistForCV2(1, cv2))
		w := q.MeanWait()
		if w <= prev {
			t.Errorf("wait not increasing with CV²: %g after %g", w, prev)
		}
		prev = w
	}
}

func TestMG1UnstableAndInvalid(t *testing.T) {
	q, _ := NewMG1(2, NewExponential(1))
	if q.Stable() || !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanNumber(), 1) {
		t.Error("unstable M/G/1 should report +Inf")
	}
	if _, err := NewMG1(-1, NewExponential(1)); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewMG1(1, nil); err == nil {
		t.Error("nil service accepted")
	}
}
