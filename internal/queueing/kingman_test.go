package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKingmanMatchesMM1InHeavyTraffic(t *testing.T) {
	// For M/M/1 (Ca²=Cs²=1) Kingman IS the exact wait ρ/(1−ρ)·E[S].
	for _, rho := range []float64{0.5, 0.8, 0.95} {
		w, err := GG1Kingman(rho, 1, NewExponential(1))
		if err != nil {
			t.Fatal(err)
		}
		mm1, _ := NewMM1(rho, 1)
		if !almostEq(w, mm1.MeanWait(), 1e-12) {
			t.Errorf("ρ=%g: Kingman %g vs exact %g", rho, w, mm1.MeanWait())
		}
	}
}

func TestKingmanMatchesPKForM_G_1(t *testing.T) {
	// With Poisson arrivals (Ca²=1), Kingman reduces exactly to P-K for
	// any service distribution: λE[S²]/(2(1−ρ)) = ρ/(1−ρ)·(1+Cs²)/2·E[S].
	for _, cv2 := range []float64{0, 0.5, 1, 3} {
		s := DistForCV2(1, cv2)
		w, err := GG1Kingman(0.7, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		mg1, _ := NewMG1(0.7, s)
		if !almostEq(w, mg1.MeanWait(), 1e-12) {
			t.Errorf("cv²=%g: Kingman %g vs P-K %g", cv2, w, mg1.MeanWait())
		}
	}
}

func TestKingmanLowVariabilityReducesWait(t *testing.T) {
	// Deterministic arrivals (Ca²=0) should halve the M/M/1 wait.
	wDet, _ := GG1Kingman(0.8, 0, NewExponential(1))
	wPois, _ := GG1Kingman(0.8, 1, NewExponential(1))
	if !almostEq(wDet, wPois/2, 1e-12) {
		t.Errorf("D/M/1-style wait %g should be half of %g", wDet, wPois)
	}
}

func TestKingmanUnstableAndInvalid(t *testing.T) {
	w, err := GG1Kingman(2, 1, NewExponential(1))
	if err != nil || !math.IsInf(w, 1) {
		t.Errorf("unstable: %g, %v", w, err)
	}
	if _, err := GG1Kingman(-1, 1, NewExponential(1)); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := GG1Kingman(1, -1, NewExponential(1)); err == nil {
		t.Error("negative Ca² accepted")
	}
	if _, err := GG1Kingman(1, 1, nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestAllenCunneenReducesToMMc(t *testing.T) {
	// Ca²=Cs²=1 gives exactly the M/M/c wait.
	q, _ := NewMMc(2.4, 1, 3)
	w, err := GGcAllenCunneen(2.4, 1, NewExponential(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w, q.MeanWait(), 1e-12) {
		t.Errorf("AC %g vs M/M/c %g", w, q.MeanWait())
	}
	// c=1 must agree with Kingman.
	w1, _ := GGcAllenCunneen(0.7, 0.5, NewErlang(1, 2), 1)
	wk, _ := GG1Kingman(0.7, 0.5, NewErlang(1, 2))
	if !almostEq(w1, wk, 1e-12) {
		t.Errorf("AC c=1 %g vs Kingman %g", w1, wk)
	}
}

func TestAllenCunneenSaturation(t *testing.T) {
	w, err := GGcAllenCunneen(5, 1, NewExponential(1), 3)
	if err != nil || !math.IsInf(w, 1) {
		t.Errorf("saturated: %g, %v", w, err)
	}
	if _, err := GGcAllenCunneen(1, 1, NewExponential(1), 0); err == nil {
		t.Error("zero servers accepted")
	}
}

func TestMMcKDistributionSumsToOne(t *testing.T) {
	q, err := NewMMcK(3, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for n := 0; n <= 10; n++ {
		sum += q.ProbN(n)
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("probabilities sum to %g", sum)
	}
	if q.ProbN(-1) != 0 || q.ProbN(11) != 0 {
		t.Error("out-of-range probabilities nonzero")
	}
}

func TestMMcKReducesToErlangB(t *testing.T) {
	// K = c is the pure loss system: blocking = Erlang-B.
	for _, a := range []float64{0.5, 2, 5} {
		for _, c := range []int{1, 3, 6} {
			q, err := NewMMcK(a, 1, c, c)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(q.BlockingProbability(), ErlangB(c, a), 1e-12) {
				t.Errorf("c=%d a=%g: blocking %g vs Erlang-B %g",
					c, a, q.BlockingProbability(), ErlangB(c, a))
			}
		}
	}
}

func TestMMcKApproachesMMcAsKGrows(t *testing.T) {
	// Large buffer: response of accepted jobs ≈ M/M/c response.
	q, err := NewMMcK(2.4, 1, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	mmc, _ := NewMMc(2.4, 1, 3)
	if !almostEq(q.MeanResponse(), mmc.MeanResponse(), 1e-6) {
		t.Errorf("large-K response %g vs M/M/c %g", q.MeanResponse(), mmc.MeanResponse())
	}
	if q.BlockingProbability() > 1e-9 {
		t.Errorf("large-K blocking %g", q.BlockingProbability())
	}
}

func TestMMcKOverloadedStillFinite(t *testing.T) {
	// The finite buffer keeps everything finite even at λ >> cμ.
	q, err := NewMMcK(50, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(q.BlockingProbability() > 0.9) {
		t.Errorf("overloaded blocking = %g", q.BlockingProbability())
	}
	if !(q.Throughput() < 2.001) {
		t.Errorf("throughput %g exceeds capacity", q.Throughput())
	}
	if math.IsNaN(q.MeanResponse()) || math.IsInf(q.MeanResponse(), 0) {
		t.Errorf("response %g", q.MeanResponse())
	}
	if u := q.Utilization(); u < 0.97 || u > 1 {
		t.Errorf("overloaded utilization = %g", u)
	}
}

func TestMMcKBlockingMonotoneInBuffer(t *testing.T) {
	f := func(raw float64) bool {
		lam := 0.5 + math.Mod(math.Abs(raw), 6)
		if math.IsNaN(lam) {
			return true
		}
		prev := 1.1
		for k := 2; k <= 20; k += 3 {
			q, err := NewMMcK(lam, 1, 2, k)
			if err != nil {
				return false
			}
			b := q.BlockingProbability()
			if b > prev+1e-12 { // more buffer, less loss
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMMcKInvalidParams(t *testing.T) {
	cases := []struct {
		lam, mu float64
		c, k    int
	}{
		{-1, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 3, 2},
	}
	for _, cse := range cases {
		if _, err := NewMMcK(cse.lam, cse.mu, cse.c, cse.k); err == nil {
			t.Errorf("accepted %+v", cse)
		}
	}
}
