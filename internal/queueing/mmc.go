package queueing

import (
	"fmt"
	"math"
)

// ErlangB returns the Erlang-B blocking probability B(c, a) for c servers and
// offered load a = λ/μ, computed with the numerically stable recurrence
// B(0,a)=1, B(c,a) = aB(c−1,a) / (c + aB(c−1,a)).
func ErlangB(c int, a float64) float64 {
	if c < 0 || a < 0 {
		return math.NaN()
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the Erlang-C delay probability C(c, a) — the probability an
// arriving customer must wait in an M/M/c queue with offered load a = λ/μ.
// It returns 1 when the queue is saturated (a ≥ c).
func ErlangC(c int, a float64) float64 {
	if c <= 0 || a < 0 {
		return math.NaN()
	}
	if a >= float64(c) {
		return 1
	}
	b := ErlangB(c, a)
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MMc holds the metrics of an M/M/c queue: arrival rate Lambda, per-server
// service rate Mu, and C servers.
type MMc struct {
	Lambda, Mu float64
	C          int
}

// NewMMc validates the parameters and returns the queue descriptor. The
// negated comparisons also reject NaN rates.
func NewMMc(lambda, mu float64, c int) (MMc, error) {
	if !(lambda >= 0) || !(mu > 0) || math.IsInf(lambda, 1) || math.IsInf(mu, 1) || c < 1 {
		return MMc{}, fmt.Errorf("queueing: invalid M/M/c parameters λ=%g μ=%g c=%d", lambda, mu, c)
	}
	return MMc{Lambda: lambda, Mu: mu, C: c}, nil
}

// OfferedLoad returns a = λ/μ (in Erlangs).
func (q MMc) OfferedLoad() float64 { return q.Lambda / q.Mu }

// Rho returns the per-server utilization a/c.
func (q MMc) Rho() float64 { return q.OfferedLoad() / float64(q.C) }

// Stable reports whether ρ < 1.
func (q MMc) Stable() bool { return q.Rho() < 1 }

// DelayProbability returns the Erlang-C probability that an arrival waits.
func (q MMc) DelayProbability() float64 { return ErlangC(q.C, q.OfferedLoad()) }

// MeanWait returns E[W] = C(c,a) / (cμ − λ), or +Inf when unstable.
func (q MMc) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.DelayProbability() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanResponse returns E[T] = E[W] + 1/μ.
func (q MMc) MeanResponse() float64 {
	w := q.MeanWait()
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/q.Mu
}

// MeanNumber returns E[N] = λE[T].
func (q MMc) MeanNumber() float64 {
	t := q.MeanResponse()
	if math.IsInf(t, 1) {
		return t
	}
	return q.Lambda * t
}

// WaitQuantile returns the p-quantile of the waiting time. In M/M/c the wait
// is 0 with probability 1−C(c,a) and exponential with rate cμ−λ otherwise.
func (q MMc) WaitQuantile(p float64) float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	pc := q.DelayProbability()
	if p <= 1-pc {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// P(W > t) = pc · e^{−(cμ−λ)t}; solve pc·e^{−rt} = 1−p.
	r := float64(q.C)*q.Mu - q.Lambda
	return -math.Log((1-p)/pc) / r
}
