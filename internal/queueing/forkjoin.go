package queueing

import (
	"fmt"
	"math"
)

// Fork-join queues model parallelized cluster jobs: an arrival forks into k
// sibling tasks, one per parallel M/M/1 queue (all fed by the same Poisson
// stream), and the job completes when the LAST sibling finishes. The join
// makes the k queues dependent, so exact analysis exists only for k ≤ 2;
// for larger k the Nelson–Tantawi scaling approximation is the standard
// tool, and internal/sim's SimulateForkJoin provides the ground truth.

// HarmonicNumber returns H_k = Σ_{i=1..k} 1/i, the mean of the maximum of k
// i.i.d. unit exponentials.
func HarmonicNumber(k int) float64 {
	var h float64
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

// ForkJoin2Exact returns the exact mean response time of a 2-queue fork-join
// system with per-queue arrival rate λ and service rate μ (Flatto–Hahn;
// popularized by Nelson–Tantawi):
//
//	R(2) = (1.5 − ρ/8) · R_{M/M/1},  ρ = λ/μ.
//
// It returns +Inf when ρ ≥ 1.
func ForkJoin2Exact(lambda, mu float64) (float64, error) {
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: invalid fork-join parameters λ=%g μ=%g", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1), nil
	}
	r1 := 1 / (mu - lambda)
	return (1.5 - rho/8) * r1, nil
}

// ForkJoinNelsonTantawi returns the Nelson–Tantawi approximation of the mean
// response time of a k-queue fork-join system (k ≥ 1):
//
//	R(k) ≈ [ H_k/H_2 + (4ρ/11)·(1 − H_k/H_2) ] · R(2)
//
// exact for k ≤ 2, within a few percent of simulation for k up to ~32. The
// first term is the independent-maximum scaling (which dominates at light
// load); the correction reflects that under load the sibling queues are
// positively correlated by their shared arrivals, so the join penalty grows
// more slowly than H_k.
func ForkJoinNelsonTantawi(k int, lambda, mu float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("queueing: fork width %d < 1", k)
	}
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: invalid fork-join parameters λ=%g μ=%g", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1), nil
	}
	if k == 1 {
		return 1 / (mu - lambda), nil
	}
	r2, err := ForkJoin2Exact(lambda, mu)
	if err != nil {
		return 0, err
	}
	if k == 2 {
		return r2, nil
	}
	hRatio := HarmonicNumber(k) / HarmonicNumber(2)
	return (hRatio + 4*rho/11*(1-hRatio)) * r2, nil
}

// ForkJoinSyncPenalty returns R(k)/R(1) under the Nelson–Tantawi
// approximation: the factor by which parallelizing a job across k nodes
// inflates its response time relative to the single-queue baseline at equal
// per-queue load — the price of the join barrier.
func ForkJoinSyncPenalty(k int, rho float64) (float64, error) {
	if rho < 0 || rho >= 1 {
		return 0, fmt.Errorf("queueing: utilization %g out of [0,1)", rho)
	}
	// Rates cancel in the ratio; use μ=1, λ=ρ.
	rk, err := ForkJoinNelsonTantawi(k, rho, 1)
	if err != nil {
		return 0, err
	}
	return rk * (1 - rho), nil // R(1) = 1/(1−ρ) with μ=1
}
