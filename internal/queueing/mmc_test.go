package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// B(c, a) textbook values.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 1.0 / 5}, // a²/2 / (1+a+a²/2) = 0.5/2.5
		{2, 2, 0.4},     // 2/(1+2+2)
		{0, 1, 1},       // no servers: always blocked
		{5, 0, 0},       // no load: never blocked
	}
	for _, c := range cases {
		if got := ErlangB(c.c, c.a); !almostEq(got, c.want, 1e-12) {
			t.Errorf("B(%d, %g) = %g, want %g", c.c, c.a, got, c.want)
		}
	}
	if !math.IsNaN(ErlangB(-1, 1)) || !math.IsNaN(ErlangB(1, -1)) {
		t.Error("invalid args should give NaN")
	}
}

func TestErlangBMonotone(t *testing.T) {
	f := func(raw float64) bool {
		a := math.Mod(math.Abs(raw), 20)
		if math.IsNaN(a) {
			return true
		}
		prev := 1.1
		for c := 0; c <= 30; c++ {
			b := ErlangB(c, a)
			if b < 0 || b > 1 || b > prev+1e-12 {
				return false // blocking must decrease with more servers
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// C(1, a) = a for a < 1 (M/M/1 delay probability is ρ).
	for _, a := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, a); !almostEq(got, a, 1e-12) {
			t.Errorf("C(1, %g) = %g", a, got)
		}
	}
	// Saturation.
	if got := ErlangC(2, 2.5); got != 1 {
		t.Errorf("saturated C = %g", got)
	}
	// C(2,1): B(2,1)=0.2, ρ=0.5 → 0.2/(1−0.5·0.8) = 1/3.
	if got := ErlangC(2, 1); !almostEq(got, 1.0/3, 1e-12) {
		t.Errorf("C(2,1) = %g, want 1/3", got)
	}
	if !math.IsNaN(ErlangC(0, 1)) {
		t.Error("C with zero servers should be NaN")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	m1, _ := NewMM1(0.7, 1)
	mc, err := NewMMc(0.7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mc.MeanWait(), m1.MeanWait(), 1e-12) {
		t.Errorf("M/M/c with c=1 wait %g != M/M/1 %g", mc.MeanWait(), m1.MeanWait())
	}
	if !almostEq(mc.MeanResponse(), m1.MeanResponse(), 1e-12) {
		t.Errorf("response mismatch")
	}
}

func TestMMcKnownValue(t *testing.T) {
	// M/M/2 with λ=1, μ=1: a=1, ρ=0.5, C=1/3, E[W] = (1/3)/(2−1) = 1/3.
	q, _ := NewMMc(1, 1, 2)
	if got := q.MeanWait(); !almostEq(got, 1.0/3, 1e-12) {
		t.Errorf("E[W] = %g, want 1/3", got)
	}
	if got := q.MeanResponse(); !almostEq(got, 4.0/3, 1e-12) {
		t.Errorf("E[T] = %g, want 4/3", got)
	}
}

func TestMMcPoolingBeatsSplitting(t *testing.T) {
	// A pooled M/M/2 always beats two separate M/M/1 at the same total load.
	lam, mu := 1.4, 1.0
	pooled, _ := NewMMc(lam, mu, 2)
	split, _ := NewMM1(lam/2, mu)
	if !(pooled.MeanResponse() < split.MeanResponse()) {
		t.Errorf("pooled %g should beat split %g", pooled.MeanResponse(), split.MeanResponse())
	}
}

func TestMMcUnstable(t *testing.T) {
	q, _ := NewMMc(5, 1, 3)
	if q.Stable() {
		t.Fatal("should be unstable")
	}
	if !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanResponse(), 1) || !math.IsInf(q.MeanNumber(), 1) {
		t.Error("unstable metrics should be +Inf")
	}
	if !math.IsInf(q.WaitQuantile(0.9), 1) {
		t.Error("unstable quantile should be +Inf")
	}
}

func TestMMcWaitQuantile(t *testing.T) {
	q, _ := NewMMc(1, 1, 2)
	pc := q.DelayProbability() // 1/3
	// Below the atom at zero.
	if got := q.WaitQuantile(0.5); got != 0 {
		t.Errorf("quantile below atom = %g, want 0", got)
	}
	// P(W ≤ t) = 0.9 → survival 0.1 = pc e^{−t(cμ−λ)}; t = ln(pc/0.1).
	want := math.Log(pc / 0.1)
	if got := q.WaitQuantile(0.9); !almostEq(got, want, 1e-9) {
		t.Errorf("0.9 quantile = %g, want %g", got, want)
	}
	if !math.IsInf(q.WaitQuantile(1), 1) {
		t.Error("quantile at 1 should be +Inf")
	}
}

func TestMMcLittlesLawQuick(t *testing.T) {
	f := func(l, m float64, cRaw uint8) bool {
		c := 1 + int(cRaw%8)
		lam := math.Mod(math.Abs(l), 5)
		mu := 0.2 + math.Mod(math.Abs(m), 3)
		if math.IsNaN(lam) || math.IsNaN(mu) || lam >= mu*float64(c) {
			return true
		}
		q, err := NewMMc(lam, mu, c)
		if err != nil {
			return true
		}
		return almostEq(q.MeanNumber(), lam*q.MeanResponse(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMMcInvalidParams(t *testing.T) {
	if _, err := NewMMc(1, 1, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewMMc(-1, 1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := NewMMc(1, -1, 2); err == nil {
		t.Error("negative mu accepted")
	}
}
