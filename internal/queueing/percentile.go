package queueing

import (
	"fmt"
	"math"
)

// Hypoexponential is the distribution of a sum of independent exponential
// stages with the given rates — the approximation this package uses for
// end-to-end delays (each tier's sojourn approximated as exponential with
// the matching mean). It powers the percentile-type SLA calculations.
//
// The CDF is evaluated by uniformization of the bidiagonal phase-type
// generator rather than the partial-fraction closed form: the closed form
// suffers catastrophic cancellation when stage rates are close, while
// uniformization is stable for any rate configuration, including repeated
// rates (Erlang stages).
type Hypoexponential struct {
	rates []float64
	unif  float64 // uniformization rate Λ = max rate
}

// NewHypoexponential builds the distribution from the stage rates (all > 0).
func NewHypoexponential(rates []float64) (*Hypoexponential, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("queueing: hypoexponential needs at least one stage")
	}
	rs := append([]float64(nil), rates...)
	unif := 0.0
	for i, r := range rs {
		if !(r > 0) || math.IsInf(r, 1) {
			return nil, fmt.Errorf("queueing: stage %d rate %g must be positive and finite", i, r)
		}
		if r > unif {
			unif = r
		}
	}
	return &Hypoexponential{rates: rs, unif: unif}, nil
}

// HypoexpFromMeans builds the distribution from per-stage mean sojourn times
// (each stage rate is the reciprocal of its mean). Non-positive or infinite
// means are rejected.
func HypoexpFromMeans(means []float64) (*Hypoexponential, error) {
	rates := make([]float64, 0, len(means))
	for i, m := range means {
		if !(m > 0) || math.IsInf(m, 1) {
			return nil, fmt.Errorf("queueing: stage %d mean %g must be positive and finite", i, m)
		}
		rates = append(rates, 1/m)
	}
	return NewHypoexponential(rates)
}

// Mean returns Σ 1/r_j.
func (h *Hypoexponential) Mean() float64 {
	var s float64
	for _, r := range h.rates {
		s += 1 / r
	}
	return s
}

// Variance returns Σ 1/r_j².
func (h *Hypoexponential) Variance() float64 {
	var s float64
	for _, r := range h.rates {
		s += 1 / (r * r)
	}
	return s
}

// Survival returns P(X > t), computed by uniformization: with Λ the maximum
// stage rate and P = I + Q/Λ the uniformized transition matrix over the
// transient (stage) states,
//
//	P(X > t) = Σ_m Poisson(Λt; m) · ‖v Pᵐ‖₁,  v = e₁.
//
// The series is truncated once the accumulated Poisson mass reaches 1−1e−13;
// for large Λt the Poisson weights are entered at the mode via logs to avoid
// underflow.
func (h *Hypoexponential) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	n := len(h.rates)
	lam := h.unif
	lt := lam * t

	// v holds the transient-state distribution after m uniformized steps;
	// its L1 norm is the survival conditional on m Poisson events.
	v := make([]float64, n)
	v[0] = 1
	step := func() float64 {
		// One multiplication by P: state j keeps mass with probability
		// 1−r_j/Λ and passes r_j/Λ forward; stage n−1 passes to absorption.
		carry := 0.0
		var norm float64
		for j := 0; j < n; j++ {
			p := h.rates[j] / lam
			out := v[j] * p
			v[j] = v[j]*(1-p) + carry
			carry = out
			norm += v[j]
		}
		return norm
	}

	// Poisson weight iteration. Left-truncate for large Λt so the first
	// weight does not underflow: start near the mode.
	m0 := 0
	if lt > 650 {
		m0 = int(lt - 10*math.Sqrt(lt))
		if m0 < 0 {
			m0 = 0
		}
	}
	// Advance v to step m0 (its norm only shrinks, so no accuracy loss).
	norm := 1.0
	for m := 0; m < m0; m++ {
		norm = step()
		if norm < 1e-300 {
			return 0
		}
	}
	// log w_{m0} = −Λt + m0·ln(Λt) − ln(m0!).
	lw, _ := math.Lgamma(float64(m0) + 1)
	logw := -lt + float64(m0)*math.Log(lt) - lw
	if m0 == 0 && lt == 0 {
		logw = 0
	}
	w := math.Exp(logw)

	surv := w * norm
	accW := w
	for m := m0 + 1; ; m++ {
		w *= lt / float64(m)
		norm = step()
		surv += w * norm
		accW += w
		if accW >= 1-1e-13 || (m > m0+10 && w*norm < 1e-18*(surv+1e-300)) {
			break
		}
		if m > m0+int(lt)+2000 { // safety bound; never reached in practice
			break
		}
	}
	if surv < 0 {
		return 0
	}
	if surv > 1 {
		return 1
	}
	return surv
}

// CDF returns P(X ≤ t).
func (h *Hypoexponential) CDF(t float64) float64 { return 1 - h.Survival(t) }

// Quantile returns the smallest t with CDF(t) ≥ p, found by bracketing and
// bisection (the CDF is continuous and strictly increasing on t > 0).
func (h *Hypoexponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket: the mean is a good scale; expand until the CDF crosses p.
	hi := h.Mean()
	if hi <= 0 {
		return math.NaN()
	}
	for h.CDF(hi) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if h.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// NumStages returns the number of exponential stages.
func (h *Hypoexponential) NumStages() int { return len(h.rates) }

// EndToEndQuantile approximates the p-quantile of a class's end-to-end delay
// from its per-station mean response times along its route, using the
// exponential-stage (hypoexponential) approximation. Returns +Inf if any
// stage mean is infinite (unstable station on the route).
func EndToEndQuantile(stageMeans []float64, p float64) (float64, error) {
	for _, m := range stageMeans {
		if math.IsInf(m, 1) {
			return math.Inf(1), nil
		}
	}
	h, err := HypoexpFromMeans(stageMeans)
	if err != nil {
		return 0, err
	}
	return h.Quantile(p), nil
}
