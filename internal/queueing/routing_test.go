package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

// retryChain builds a single-station chain with retry probability p.
func retryChain(p float64) *ClassRouting {
	return &ClassRouting{Entry: []float64{1}, Next: [][]float64{{p}}}
}

func TestVisitRatesRetryLoop(t *testing.T) {
	// Geometric retries: expected visits = 1/(1−p).
	for _, p := range []float64{0, 0.3, 0.9} {
		v, err := retryChain(p).VisitRates()
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(v[0], 1/(1-p), 1e-9) {
			t.Errorf("p=%g: visits %g, want %g", p, v[0], 1/(1-p))
		}
	}
}

func TestVisitRatesTandemChain(t *testing.T) {
	// 0→1→2→exit expressed as a chain: one visit each.
	r := &ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}},
	}
	v, err := r.VisitRates()
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{1, 1, 1} {
		if !almostEq(v[j], want, 1e-9) {
			t.Errorf("v[%d] = %g", j, v[j])
		}
	}
}

func TestVisitRatesBranching(t *testing.T) {
	// Enter at 0; then 50/50 to station 1 or 2; both exit.
	r := &ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 0.5, 0.5}, {0, 0, 0}, {0, 0, 0}},
	}
	v, err := r.VisitRates()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v[0], 1, 1e-9) || !almostEq(v[1], 0.5, 1e-9) || !almostEq(v[2], 0.5, 1e-9) {
		t.Errorf("visits = %v", v)
	}
	if got := r.ExitProbability(1); got != 1 {
		t.Errorf("exit prob = %g", got)
	}
	if got := r.ExitProbability(0); got != 0 {
		t.Errorf("exit prob at 0 = %g", got)
	}
}

func TestVisitRatesFeedbackToEarlierStation(t *testing.T) {
	// 0→1, then from 1: 30% back to 0, 70% exit.
	// v0 = 1 + 0.3·v1, v1 = v0 → v0 = v1 = 1/0.7.
	r := &ClassRouting{
		Entry: []float64{1, 0},
		Next:  [][]float64{{0, 1}, {0.3, 0}},
	}
	v, err := r.VisitRates()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / 0.7
	if !almostEq(v[0], want, 1e-9) || !almostEq(v[1], want, 1e-9) {
		t.Errorf("visits = %v, want %g each", v, want)
	}
}

func TestRoutingValidation(t *testing.T) {
	cases := map[string]*ClassRouting{
		"entry wrong size": {Entry: []float64{1}, Next: [][]float64{{0, 0}, {0, 0}}},
		"entry not dist":   {Entry: []float64{0.5, 0.2}, Next: [][]float64{{0, 0}, {0, 0}}},
		"negative entry":   {Entry: []float64{1.5, -0.5}, Next: [][]float64{{0, 0}, {0, 0}}},
		"row too big":      {Entry: []float64{1, 0}, Next: [][]float64{{0.7, 0.7}, {0, 0}}},
		"rows wrong count": {Entry: []float64{1, 0}, Next: [][]float64{{0, 0}}},
		"recurrent":        {Entry: []float64{1}, Next: [][]float64{{1}}},
	}
	for name, r := range cases {
		if err := r.Validate(2); name == "recurrent" {
			if err2 := r.Validate(1); err2 == nil {
				t.Errorf("%s: accepted", name)
			}
		} else if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := retryChain(0.5)
	if err := good.Validate(1); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestRoutingFromRoute(t *testing.T) {
	r, err := RoutingFromRoute([]int{0, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.VisitRates()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if !almostEq(v[j], 1, 1e-9) {
			t.Errorf("v[%d] = %g", j, v[j])
		}
	}
	// A route revisiting a station with different successors is not Markov.
	if _, err := RoutingFromRoute([]int{0, 1, 0, 2}, 3); err == nil {
		t.Error("non-Markov route accepted")
	}
	if _, err := RoutingFromRoute(nil, 3); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := RoutingFromRoute([]int{5}, 3); err == nil {
		t.Error("out-of-range route accepted")
	}
}

func TestNetworkWithRoutingMatchesDeterministicEquivalent(t *testing.T) {
	// A tandem expressed as a chain must give exactly the delays of the
	// deterministic tandem.
	det := threeTier(1, 2)
	chain := threeTier(1, 2)
	r, err := RoutingFromRoute([]int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	chain.Routings = []*ClassRouting{r}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	lam := []float64{1.2}
	bdDet, err := det.EndToEndDelays(lam)
	if err != nil {
		t.Fatal(err)
	}
	bdChain, err := chain.EndToEndDelays(lam)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(bdDet.EndToEnd[0], bdChain.EndToEnd[0], 1e-12) {
		t.Errorf("chain %g vs deterministic %g", bdChain.EndToEnd[0], bdDet.EndToEnd[0])
	}
}

func TestNetworkRetryLoopDelays(t *testing.T) {
	// Jackson single station with feedback p: arrival rate λ/(1−p),
	// expected E2E = v·T with v = 1/(1−p) and T the M/M/1 response at the
	// inflated rate.
	n := threeTier(1, 2)
	n.Stations = n.Stations[:1]
	p := 0.4
	n.Routings = []*ClassRouting{retryChain(p)}
	n.Routes = [][]int{{0}} // class count carrier; routing overrides
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	lam := 0.6
	bd, err := n.EndToEndDelays([]float64{lam})
	if err != nil {
		t.Fatal(err)
	}
	v := 1 / (1 - p)
	mm1, _ := NewMM1(lam*v, 2)
	want := v * mm1.MeanResponse()
	if !almostEq(bd.EndToEnd[0], want, 1e-9) {
		t.Errorf("retry-loop delay %g, want %g", bd.EndToEnd[0], want)
	}
	// Stability reflects the inflated load.
	if !n.Stable([]float64{lam}) {
		t.Error("should be stable")
	}
	if n.Stable([]float64{1.3}) { // 1.3/(1−0.4) = 2.17 > μ = 2
		t.Error("should be unstable with retries")
	}
}

func TestVisitRatesPropertyQuick(t *testing.T) {
	// Random substochastic 2×2 chains: visit rates exist, are ≥ entry, and
	// truncating the retry mass increases no rate.
	f := func(a, b, c, d, e float64) bool {
		u := func(x float64) float64 { return math.Mod(math.Abs(x), 1) * 0.45 }
		r := &ClassRouting{
			Entry: []float64{0.6, 0.4},
			Next:  [][]float64{{u(a), u(b)}, {u(c), u(d)}},
		}
		if math.IsNaN(u(a) + u(b) + u(c) + u(d) + u(e)) {
			return true
		}
		v, err := r.VisitRates()
		if err != nil {
			return false
		}
		if v[0] < r.Entry[0]-1e-9 || v[1] < r.Entry[1]-1e-9 {
			return false
		}
		// Scale all transitions down: visits must not increase.
		r2 := &ClassRouting{
			Entry: r.Entry,
			Next:  [][]float64{{u(a) / 2, u(b) / 2}, {u(c) / 2, u(d) / 2}},
		}
		v2, err := r2.VisitRates()
		if err != nil {
			return false
		}
		return v2[0] <= v[0]+1e-9 && v2[1] <= v[1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
