package queueing

import (
	"fmt"
	"math"
)

// Discipline selects the scheduling policy of a priority station.
type Discipline int

const (
	// FCFS serves all classes in arrival order (no priority).
	FCFS Discipline = iota
	// NonPreemptive serves the highest-priority waiting class next but
	// never interrupts a job in service.
	NonPreemptive
	// PreemptiveResume interrupts lower-priority service immediately and
	// resumes it later from where it stopped.
	PreemptiveResume
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "FCFS"
	case NonPreemptive:
		return "non-preemptive"
	case PreemptiveResume:
		return "preemptive-resume"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// ClassInput describes one customer class at a station: Poisson arrival rate
// and service-time distribution. Classes are ordered by priority, index 0
// highest.
type ClassInput struct {
	Lambda  float64
	Service ServiceDist
}

// PriorityMG1 computes per-class mean waiting and response times for a
// single-server queue with Poisson arrivals, general service, and the given
// discipline. The returned slices are indexed by class.
//
// Formulas (classes 0..K−1, 0 highest priority, ρ_k = λ_k E[S_k],
// σ_k = ρ_0 + … + ρ_k, R_k = Σ_{i≤k} λ_i E[S_i²]/2, R = R_{K−1}):
//
//	FCFS:               W_k = R / (1 − σ_{K−1})           (P–K, same for all k)
//	Non-preemptive:     W_k = R / ((1 − σ_{k−1})(1 − σ_k))  (Cobham)
//	Preemptive-resume:  T_k = E[S_k]/(1 − σ_{k−1}) + R_k/((1 − σ_{k−1})(1 − σ_k))
//
// Classes whose formula diverges (the relevant σ ≥ 1) get +Inf.
func PriorityMG1(classes []ClassInput, d Discipline) (wait, resp []float64, err error) {
	if err := validateClasses(classes); err != nil {
		return nil, nil, err
	}
	k := len(classes)
	wait = make([]float64, k)
	resp = make([]float64, k)

	sigma := make([]float64, k) // cumulative utilization through class i
	rk := make([]float64, k)    // cumulative residual work Σ λE[S²]/2
	cum, rcum := 0.0, 0.0
	for i, c := range classes {
		cum += c.Lambda * c.Service.Mean()
		rcum += c.Lambda * c.Service.SecondMoment() / 2
		sigma[i] = cum
		rk[i] = rcum
	}
	total := sigma[k-1]
	rTotal := rk[k-1]

	for i, c := range classes {
		es := c.Service.Mean()
		prev := 0.0
		if i > 0 {
			prev = sigma[i-1]
		}
		switch d {
		case FCFS:
			if total >= 1 {
				wait[i], resp[i] = math.Inf(1), math.Inf(1)
				continue
			}
			wait[i] = rTotal / (1 - total)
			resp[i] = wait[i] + es
		case NonPreemptive:
			if sigma[i] >= 1 || prev >= 1 {
				wait[i], resp[i] = math.Inf(1), math.Inf(1)
				continue
			}
			// Cobham: delayed by the residual of whoever is in
			// service, including lower-priority classes.
			wait[i] = rTotal / ((1 - prev) * (1 - sigma[i]))
			resp[i] = wait[i] + es
		case PreemptiveResume:
			if sigma[i] >= 1 || prev >= 1 {
				wait[i], resp[i] = math.Inf(1), math.Inf(1)
				continue
			}
			resp[i] = es/(1-prev) + rk[i]/((1-prev)*(1-sigma[i]))
			wait[i] = resp[i] - es
		default:
			return nil, nil, fmt.Errorf("queueing: unknown discipline %v", d)
		}
	}
	return wait, resp, nil
}

// PriorityMMc computes per-class mean waiting and response times for a
// c-server station under non-preemptive priority or FCFS.
//
// When all classes share the same exponential service time the non-preemptive
// result is exact (Kella–Yechiali):
//
//	W_k = C(c, a) / (cμ) · 1 / ((1 − σ_{k−1})(1 − σ_k))
//
// With class-dependent or non-exponential service the function applies the
// standard two-moment correction (1+CV²_agg)/2 on the aggregate service
// distribution and uses per-class σ; this is an approximation, validated by
// the simulator in internal/sim. PreemptiveResume with c > 1 has no usable
// closed form and returns an error; use c = 1 or the simulator.
func PriorityMMc(classes []ClassInput, c int, d Discipline) (wait, resp []float64, err error) {
	if err := validateClasses(classes); err != nil {
		return nil, nil, err
	}
	if c < 1 {
		return nil, nil, fmt.Errorf("queueing: server count %d < 1", c)
	}
	if c == 1 {
		return PriorityMG1(classes, d)
	}
	if d == PreemptiveResume {
		return nil, nil, fmt.Errorf("queueing: no closed form for preemptive-resume with %d > 1 servers", c)
	}

	k := len(classes)
	// Aggregate service distribution moments over the class mix.
	var lamTot, m1, m2 float64
	for _, cl := range classes {
		lamTot += cl.Lambda
		m1 += cl.Lambda * cl.Service.Mean()
		m2 += cl.Lambda * cl.Service.SecondMoment()
	}
	if lamTot == 0 {
		wait = make([]float64, k)
		resp = make([]float64, k)
		for i, cl := range classes {
			resp[i] = cl.Service.Mean()
		}
		return wait, resp, nil
	}
	m1 /= lamTot // aggregate E[S]
	m2 /= lamTot // aggregate E[S²]
	cv2 := m2/(m1*m1) - 1

	a := lamTot * m1 // offered load in Erlangs
	pd := ErlangC(c, a)
	// Base delay factor: mean wait of the aggregate M/M/c scaled by the
	// two-moment G-correction, with the (1−ρ) terms split per class below.
	base := (1 + cv2) / 2 * pd * m1 / float64(c)

	sigma := make([]float64, k)
	cum := 0.0
	for i, cl := range classes {
		cum += cl.Lambda * cl.Service.Mean() / float64(c)
		sigma[i] = cum
	}

	wait = make([]float64, k)
	resp = make([]float64, k)
	for i, cl := range classes {
		prev := 0.0
		if i > 0 {
			prev = sigma[i-1]
		}
		switch d {
		case FCFS:
			if sigma[k-1] >= 1 {
				wait[i], resp[i] = math.Inf(1), math.Inf(1)
				continue
			}
			wait[i] = base / (1 - sigma[k-1])
		case NonPreemptive:
			if sigma[i] >= 1 || prev >= 1 {
				wait[i], resp[i] = math.Inf(1), math.Inf(1)
				continue
			}
			wait[i] = base / ((1 - prev) * (1 - sigma[i]))
		default:
			return nil, nil, fmt.Errorf("queueing: unknown discipline %v", d)
		}
		resp[i] = wait[i] + cl.Service.Mean()
	}
	return wait, resp, nil
}

// AggregateUtilization returns σ = Σ λ_k E[S_k] / c for the class set.
func AggregateUtilization(classes []ClassInput, c int) float64 {
	var u float64
	for _, cl := range classes {
		u += cl.Lambda * cl.Service.Mean()
	}
	return u / float64(c)
}

func validateClasses(classes []ClassInput) error {
	if len(classes) == 0 {
		return fmt.Errorf("queueing: no classes")
	}
	for i, c := range classes {
		if c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
			return fmt.Errorf("queueing: class %d has invalid arrival rate %g", i, c.Lambda)
		}
		if c.Service == nil || !(c.Service.Mean() > 0) {
			return fmt.Errorf("queueing: class %d has invalid service distribution", i)
		}
	}
	return nil
}
