package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestExponentialMoments(t *testing.T) {
	e := NewExponential(2)
	if e.Mean() != 2 || !almostEq(e.SecondMoment(), 8, 1e-12) || e.CV2() != 1 {
		t.Errorf("exp moments: %g %g %g", e.Mean(), e.SecondMoment(), e.CV2())
	}
	s := e.Scale(3)
	if s.Mean() != 6 || s.CV2() != 1 {
		t.Errorf("scaled exp: %v", s)
	}
}

func TestDeterministicMoments(t *testing.T) {
	d := NewDeterministic(4)
	if d.Mean() != 4 || d.SecondMoment() != 16 || d.CV2() != 0 {
		t.Errorf("det moments: %g %g %g", d.Mean(), d.SecondMoment(), d.CV2())
	}
}

func TestErlangMoments(t *testing.T) {
	e := NewErlang(3, 4)
	if e.Mean() != 3 {
		t.Errorf("mean = %g", e.Mean())
	}
	if got := e.CV2(); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("cv2 = %g", got)
	}
	// Var = m²/k = 9/4; E[S²] = 9 + 2.25.
	if got := e.SecondMoment(); !almostEq(got, 11.25, 1e-12) {
		t.Errorf("second moment = %g", got)
	}
	// Erlang-1 is exponential.
	e1 := NewErlang(2, 1)
	ex := NewExponential(2)
	if !almostEq(e1.SecondMoment(), ex.SecondMoment(), 1e-12) {
		t.Error("Erlang-1 should match exponential")
	}
}

func TestHyperExpMoments(t *testing.T) {
	h := NewHyperExp(0.5, 1, 3)
	if got := h.Mean(); !almostEq(got, 2, 1e-12) {
		t.Errorf("mean = %g", got)
	}
	// E[S²] = 2(0.5·1 + 0.5·9) = 10.
	if got := h.SecondMoment(); !almostEq(got, 10, 1e-12) {
		t.Errorf("second moment = %g", got)
	}
	if got := h.CV2(); !almostEq(got, 10.0/4-1, 1e-12) {
		t.Errorf("cv2 = %g", got)
	}
}

func TestHyperExpCV2Construction(t *testing.T) {
	for _, cv2 := range []float64{1, 1.5, 2, 4, 10} {
		for _, mean := range []float64{0.5, 1, 7} {
			h := NewHyperExpCV2(mean, cv2)
			if got := h.Mean(); !almostEq(got, mean, 1e-9) {
				t.Errorf("cv2=%g mean: got %g want %g", cv2, got, mean)
			}
			if got := h.CV2(); !almostEq(got, cv2, 1e-9) {
				t.Errorf("mean=%g cv2: got %g want %g", mean, got, cv2)
			}
		}
	}
}

func TestUniformMoments(t *testing.T) {
	u := NewUniform(1, 3)
	if u.Mean() != 2 {
		t.Errorf("mean = %g", u.Mean())
	}
	// Var = (3-1)²/12 = 1/3.
	if got := u.SecondMoment(); !almostEq(got, 4+1.0/3, 1e-12) {
		t.Errorf("second moment = %g", got)
	}
}

func TestScalePreservesCV2(t *testing.T) {
	dists := []ServiceDist{
		NewExponential(1), NewDeterministic(2), NewErlang(1.5, 3),
		NewHyperExpCV2(2, 4), NewUniform(1, 2),
	}
	f := func(raw float64) bool {
		fac := 0.1 + math.Mod(math.Abs(raw), 10)
		if math.IsNaN(fac) {
			return true
		}
		for _, d := range dists {
			s := d.Scale(fac)
			if !almostEq(s.Mean(), d.Mean()*fac, 1e-9) {
				return false
			}
			if !almostEq(s.CV2(), d.CV2(), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistForCV2MatchesMoments(t *testing.T) {
	for _, cv2 := range []float64{0, 0.25, 0.5, 1, 2, 5} {
		d := DistForCV2(3, cv2)
		if !almostEq(d.Mean(), 3, 1e-9) {
			t.Errorf("cv2=%g: mean %g", cv2, d.Mean())
		}
		// Erlang rounding means CV² is matched exactly only when 1/cv2
		// is integral; all test values satisfy that.
		if !almostEq(d.CV2(), cv2, 1e-9) {
			t.Errorf("cv2=%g: got %g", cv2, d.CV2())
		}
	}
}

func TestInvalidDistsPanic(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { NewExponential(-1) },
		func() { NewExponential(math.Inf(1)) },
		func() { NewDeterministic(0) },
		func() { NewErlang(1, 0) },
		func() { NewHyperExp(0, 1, 1) },
		func() { NewHyperExp(1, 1, 1) },
		func() { NewHyperExpCV2(1, 0.5) },
		func() { NewUniform(2, 1) },
		func() { NewUniform(-1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
