package queueing

import (
	"math"
	"testing"
)

func TestAvailability(t *testing.T) {
	a, err := Availability(90, 10)
	if err != nil {
		t.Fatalf("Availability(90, 10): %v", err)
	}
	if math.Abs(a-0.9) > 1e-15 {
		t.Errorf("Availability(90, 10) = %g, want 0.9", a)
	}

	bad := [][2]float64{
		{0, 10}, {-1, 10}, {math.NaN(), 10}, {math.Inf(1), 10},
		{90, 0}, {90, -1}, {90, math.NaN()}, {90, math.Inf(1)},
	}
	for _, c := range bad {
		if _, err := Availability(c[0], c[1]); err == nil {
			t.Errorf("Availability(%g, %g): want error", c[0], c[1])
		}
	}
}

func TestMMcWithBreakdowns(t *testing.T) {
	// avail = 1 must reduce exactly to the nominal M/M/c.
	nom, err := NewMMc(1.5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MMcWithBreakdowns(1.5, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != nom {
		t.Errorf("avail=1: got %+v, want %+v", full, nom)
	}

	// Degraded capacity: service rate scales by avail, so the offered load
	// rises by 1/avail and the mean wait strictly exceeds the nominal one.
	deg, err := MMcWithBreakdowns(1.5, 1, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deg.Mu-0.8) > 1e-15 {
		t.Errorf("degraded μ = %g, want 0.8", deg.Mu)
	}
	if math.Abs(deg.OfferedLoad()-1.5/0.8) > 1e-12 {
		t.Errorf("degraded offered load = %g, want %g", deg.OfferedLoad(), 1.5/0.8)
	}
	if !(deg.MeanWait() > nom.MeanWait()) {
		t.Errorf("degraded MeanWait %g not above nominal %g", deg.MeanWait(), nom.MeanWait())
	}

	// Availability low enough to saturate the station must yield an unstable
	// (not invalid) queue: λ=1.5 against capacity 3·0.4=1.2.
	sat, err := MMcWithBreakdowns(1.5, 1, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Stable() {
		t.Error("λ=1.5, cμA=1.2 reported stable")
	}

	for _, a := range []float64{0, -0.1, 1.1, math.NaN(), math.Inf(1)} {
		if _, err := MMcWithBreakdowns(1.5, 1, 3, a); err == nil {
			t.Errorf("avail=%g: want error", a)
		}
	}
}
