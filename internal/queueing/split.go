package queueing

import (
	"fmt"
	"math"
	"sort"
)

// This file solves the dispatcher problem the paper's "collection of cluster
// computing resources" implies: Poisson traffic of rate λ must be split
// probabilistically across heterogeneous server pools, pool i being an
// M/M/1 queue with rate μ_i. The mean delay of a split x is
//
//	T(x) = Σ_i (x_i/λ) · 1/(μ_i − x_i),
//
// and the optimal split has the classic square-root (KKT waterfilling) form:
// active pools satisfy μ_i/(μ_i − x_i)² = α, i.e. x_i = μ_i − √(μ_i/α),
// with slow pools left unused until the load justifies waking them.

// SplitDelay returns the mean delay of a given split of rate λ across M/M/1
// pools with the given service rates. It returns +Inf if any pool is
// overloaded, and an error on structural problems.
func SplitDelay(lambda float64, mus, x []float64) (float64, error) {
	if len(mus) != len(x) || len(mus) == 0 {
		return 0, fmt.Errorf("queueing: split size %d vs %d pools", len(x), len(mus))
	}
	if lambda <= 0 {
		return 0, fmt.Errorf("queueing: non-positive total rate %g", lambda)
	}
	var sum, t float64
	for i := range x {
		if x[i] < -1e-12 {
			return 0, fmt.Errorf("queueing: negative split x[%d]=%g", i, x[i])
		}
		sum += x[i]
		if x[i] <= 0 {
			continue
		}
		if x[i] >= mus[i] {
			return math.Inf(1), nil
		}
		t += x[i] / lambda / (mus[i] - x[i])
	}
	if math.Abs(sum-lambda) > 1e-6*(1+lambda) {
		return 0, fmt.Errorf("queueing: split sums to %g, want %g", sum, lambda)
	}
	return t, nil
}

// OptimalSplit returns the delay-minimizing split of Poisson rate λ across
// parallel M/M/1 pools with service rates mus, and the resulting mean delay.
// Requires λ < Σ μ_i. Pools too slow to help at this load receive exactly 0.
func OptimalSplit(lambda float64, mus []float64) (x []float64, delay float64, err error) {
	if len(mus) == 0 {
		return nil, 0, fmt.Errorf("queueing: no pools")
	}
	if lambda <= 0 {
		return nil, 0, fmt.Errorf("queueing: non-positive total rate %g", lambda)
	}
	var cap float64
	for i, mu := range mus {
		if !(mu > 0) {
			return nil, 0, fmt.Errorf("queueing: pool %d rate %g must be positive", i, mu)
		}
		cap += mu
	}
	if lambda >= cap {
		return nil, 0, fmt.Errorf("queueing: rate %g at or above total capacity %g", lambda, cap)
	}

	// Assigned load as a function of the multiplier α:
	// x_i(α) = max(0, μ_i − √(μ_i/α)), strictly increasing in α once
	// active. Bisect α so the total equals λ.
	assigned := func(alpha float64) float64 {
		var s float64
		for _, mu := range mus {
			if v := mu - math.Sqrt(mu/alpha); v > 0 {
				s += v
			}
		}
		return s
	}
	// Bracket: below 1/μ_max nothing is assigned; grow until ≥ λ.
	muMax := 0.0
	for _, mu := range mus {
		if mu > muMax {
			muMax = mu
		}
	}
	lo := 1 / muMax
	hi := lo * 2
	for assigned(hi) < lambda {
		hi *= 2
		if math.IsInf(hi, 1) {
			return nil, 0, fmt.Errorf("queueing: failed to bracket the multiplier")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-15*hi; i++ {
		mid := (lo + hi) / 2
		if assigned(mid) < lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	alpha := (lo + hi) / 2

	x = make([]float64, len(mus))
	var sum float64
	for i, mu := range mus {
		if v := mu - math.Sqrt(mu/alpha); v > 0 {
			x[i] = v
			sum += v
		}
	}
	// Distribute the residual bisection error over active pools so the
	// split sums exactly to λ.
	if sum > 0 {
		f := lambda / sum
		for i := range x {
			x[i] *= f
		}
	}
	delay, err = SplitDelay(lambda, mus, x)
	return x, delay, err
}

// ProportionalSplit splits λ proportionally to pool capacity (the equal-
// utilization heuristic real dispatchers default to).
func ProportionalSplit(lambda float64, mus []float64) []float64 {
	var cap float64
	for _, mu := range mus {
		cap += mu
	}
	x := make([]float64, len(mus))
	for i, mu := range mus {
		x[i] = lambda * mu / cap
	}
	return x
}

// EqualSplit splits λ evenly across all pools (round-robin's fluid limit).
func EqualSplit(lambda float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = lambda / float64(n)
	}
	return x
}

// ActivePools returns the indices of pools receiving positive load, slowest
// first — useful for "when does the slow pool wake up" analyses.
func ActivePools(x []float64, mus []float64) []int {
	var idx []int
	for i, v := range x {
		if v > 1e-12 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return mus[idx[a]] < mus[idx[b]] })
	return idx
}
