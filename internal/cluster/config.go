package cluster

import (
	"encoding/json"
	"fmt"
	"strings"

	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// Config is the JSON-serializable description of a cluster, consumed by the
// cmd tools and examples. It mirrors the in-memory Cluster but with plain
// data fields for the interface-typed members (power model, discipline).
type Config struct {
	Tiers   []TierConfig  `json:"tiers"`
	Classes []ClassConfig `json:"classes"`
	Routes  [][]int       `json:"routes,omitempty"`
	// Routing optionally gives classes probabilistic routing chains; a
	// null entry keeps the class on its deterministic route.
	Routing []*RoutingConfig `json:"routing,omitempty"`
}

// RoutingConfig is the JSON form of a probabilistic routing chain.
type RoutingConfig struct {
	// Entry[j] is the probability of entering at tier j (sums to 1).
	Entry []float64 `json:"entry"`
	// Next[i][j] is the probability of moving to tier j after tier i;
	// the residual row mass is the exit probability.
	Next [][]float64 `json:"next"`
}

// TierConfig describes one tier.
type TierConfig struct {
	Name          string      `json:"name"`
	Servers       int         `json:"servers"`
	Speed         float64     `json:"speed"`
	MinSpeed      float64     `json:"min_speed,omitempty"`
	MaxSpeed      float64     `json:"max_speed,omitempty"`
	Discipline    string      `json:"discipline"` // "fcfs" | "nonpreemptive" | "preemptive"
	Power         PowerConfig `json:"power"`
	CostPerServer float64     `json:"cost_per_server,omitempty"`
	// Availability sets the tier's steady-state server availability directly
	// (in (0,1]; 0 or absent means always up). Alternatively give MTBF and
	// MTTR (both, in seconds) and A = MTBF/(MTBF+MTTR) is derived; setting
	// both forms is an error.
	Availability float64        `json:"availability,omitempty"`
	MTBF         float64        `json:"mtbf,omitempty"`
	MTTR         float64        `json:"mttr,omitempty"`
	Demands      []DemandConfig `json:"demands"`
}

// DemandConfig describes the work one class brings to one tier.
type DemandConfig struct {
	Work float64 `json:"work"`
	CV2  float64 `json:"cv2"`
}

// PowerConfig selects and parameterizes a power model.
type PowerConfig struct {
	Type string `json:"type"` // "powerlaw" | "linear" | "table"
	// powerlaw fields
	Idle  float64 `json:"idle,omitempty"`
	Kappa float64 `json:"kappa,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	// linear fields (Idle shared)
	Slope float64 `json:"slope,omitempty"`
	// table fields (Idle shared)
	Speeds []float64 `json:"speeds,omitempty"`
	BusyW  []float64 `json:"busy_watts,omitempty"`
}

// ClassConfig describes one customer class.
type ClassConfig struct {
	Name            string  `json:"name"`
	Lambda          float64 `json:"lambda"`
	MaxMeanDelay    float64 `json:"max_mean_delay,omitempty"`
	PercentileDelay float64 `json:"percentile_delay,omitempty"`
	Percentile      float64 `json:"percentile,omitempty"`
	PricePerRequest float64 `json:"price_per_request,omitempty"`
}

// ParseDiscipline maps a config string to a queueing discipline.
func ParseDiscipline(s string) (queueing.Discipline, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "nonpreemptive", "non-preemptive", "np":
		return queueing.NonPreemptive, nil
	case "fcfs", "fifo":
		return queueing.FCFS, nil
	case "preemptive", "preemptive-resume", "pr":
		return queueing.PreemptiveResume, nil
	default:
		return 0, fmt.Errorf("cluster: unknown discipline %q", s)
	}
}

// BuildPower constructs the power model a PowerConfig describes.
func BuildPower(pc PowerConfig) (power.Model, error) {
	switch strings.ToLower(strings.TrimSpace(pc.Type)) {
	case "", "powerlaw", "power-law":
		gamma := pc.Gamma
		if gamma == 0 {
			gamma = 3 // classic cubic DVFS default
		}
		return power.NewPowerLaw(pc.Idle, pc.Kappa, gamma)
	case "linear":
		return power.Linear{Idle: pc.Idle, Slope: pc.Slope}, nil
	case "table":
		return power.NewTable(pc.Idle, pc.Speeds, pc.BusyW)
	default:
		return nil, fmt.Errorf("cluster: unknown power model type %q", pc.Type)
	}
}

// Build materializes and validates the in-memory cluster the config
// describes.
func (cfg Config) Build() (*Cluster, error) {
	c := &Cluster{
		Tiers:   make([]*Tier, len(cfg.Tiers)),
		Classes: make([]Class, len(cfg.Classes)),
		Routes:  cfg.Routes,
	}
	for i, tc := range cfg.Tiers {
		d, err := ParseDiscipline(tc.Discipline)
		if err != nil {
			return nil, fmt.Errorf("tier %q: %w", tc.Name, err)
		}
		pm, err := BuildPower(tc.Power)
		if err != nil {
			return nil, fmt.Errorf("tier %q: %w", tc.Name, err)
		}
		demands := make([]queueing.Demand, len(tc.Demands))
		for k, dc := range tc.Demands {
			demands[k] = queueing.Demand{Work: dc.Work, CV2: dc.CV2}
		}
		avail := tc.Availability
		if tc.MTBF != 0 || tc.MTTR != 0 {
			if avail != 0 {
				return nil, fmt.Errorf("tier %q: give availability or mtbf/mttr, not both", tc.Name)
			}
			avail, err = queueing.Availability(tc.MTBF, tc.MTTR)
			if err != nil {
				return nil, fmt.Errorf("tier %q: %w", tc.Name, err)
			}
		}
		c.Tiers[i] = &Tier{
			Name: tc.Name, Servers: tc.Servers, Speed: tc.Speed,
			MinSpeed: tc.MinSpeed, MaxSpeed: tc.MaxSpeed,
			Discipline: d, Power: pm,
			CostPerServer: tc.CostPerServer, Availability: avail,
			Demands: demands,
		}
	}
	if cfg.Routing != nil {
		c.Routing = make([]*queueing.ClassRouting, len(cfg.Routing))
		for i, rc := range cfg.Routing {
			if rc == nil {
				continue
			}
			c.Routing[i] = &queueing.ClassRouting{Entry: rc.Entry, Next: rc.Next}
		}
	}
	for i, cc := range cfg.Classes {
		c.Classes[i] = Class{
			Name:   cc.Name,
			Lambda: cc.Lambda,
			SLA: SLA{
				MaxMeanDelay:    cc.MaxMeanDelay,
				PercentileDelay: cc.PercentileDelay,
				Percentile:      cc.Percentile,
				PricePerRequest: cc.PricePerRequest,
			},
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseConfig decodes a JSON cluster config and builds it.
func ParseConfig(data []byte) (*Cluster, error) {
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("cluster: parsing config: %w", err)
	}
	return cfg.Build()
}
