package cluster

import (
	"math"
	"testing"
)

func TestEffectiveAvailability(t *testing.T) {
	tier := testCluster().Tiers[0]
	if got := tier.EffectiveAvailability(); got != 1 {
		t.Errorf("zero availability resolves to %g, want 1", got)
	}
	tier.Availability = 0.9
	if got := tier.EffectiveAvailability(); got != 0.9 {
		t.Errorf("EffectiveAvailability = %g, want 0.9", got)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	for _, a := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1)} {
		c := testCluster()
		c.Tiers[1].Availability = a
		if err := c.Validate(); err == nil {
			t.Errorf("availability %g: want validation error", a)
		}
	}
	c := testCluster()
	c.Tiers[1].Availability = 1
	if err := c.Validate(); err != nil {
		t.Errorf("availability 1: %v", err)
	}
}

func TestAvailabilityOneMatchesUnset(t *testing.T) {
	base, err := Evaluate(testCluster())
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	for _, tier := range c.Tiers {
		tier.Availability = 1
	}
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.Delay {
		if m.Delay[k] != base.Delay[k] {
			t.Errorf("class %d delay %g != unset %g", k, m.Delay[k], base.Delay[k])
		}
	}
	if m.TotalPower != base.TotalPower {
		t.Errorf("power %g != unset %g", m.TotalPower, base.TotalPower)
	}
}

func TestAvailabilityDegradesDelayAndPower(t *testing.T) {
	base, err := Evaluate(testCluster())
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster()
	const a = 0.8
	for _, tier := range c.Tiers {
		tier.Availability = a
	}
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.Delay {
		if !(m.Delay[k] > base.Delay[k]) {
			t.Errorf("class %d delay %g not above nominal %g at A=%g", k, m.Delay[k], base.Delay[k], a)
		}
	}
	// Static power shrinks with the up fraction; the reported utilization is
	// the per-up-server busy fraction, a factor 1/A above nominal.
	if !almostEq(m.StaticPower, a*base.StaticPower, 1e-12) {
		t.Errorf("static power %g, want %g", m.StaticPower, a*base.StaticPower)
	}
	for j := range m.Tiers {
		if !almostEq(m.Tiers[j].Utilization, base.Tiers[j].Utilization/a, 1e-12) {
			t.Errorf("tier %d utilization %g, want %g", j, m.Tiers[j].Utilization, base.Tiers[j].Utilization/a)
		}
	}
	// The busy-server count is unchanged (same throughput, same per-request
	// work, same raw speed), so dynamic power matches the nominal run.
	if !almostEq(m.DynamicPower, base.DynamicPower, 1e-12) {
		t.Errorf("dynamic power %g, want %g", m.DynamicPower, base.DynamicPower)
	}
	// Per-request energy is charged at the raw operating speed.
	for k := range base.EnergyPerRequest {
		if m.EnergyPerRequest[k] != base.EnergyPerRequest[k] {
			t.Errorf("class %d energy/request %g != nominal %g", k, m.EnergyPerRequest[k], base.EnergyPerRequest[k])
		}
	}
}

func TestAvailabilityRaisesSpeedBounds(t *testing.T) {
	c := testCluster()
	for _, tier := range c.Tiers {
		tier.MinSpeed = 0
		tier.MaxSpeed = 0
	}
	loNom, _ := c.SpeedBounds()
	const a = 0.5
	for _, tier := range c.Tiers {
		tier.Availability = a
	}
	loDeg, _ := c.SpeedBounds()
	for j := range loNom {
		if !almostEq(loDeg[j], loNom[j]/a, 1e-9) {
			t.Errorf("tier %d stability floor %g, want %g (nominal %g / A)", j, loDeg[j], loNom[j]/a, loNom[j])
		}
	}
}
