// Package cluster models the paper's system: a service provider's collection
// of cluster computing resources (tiers of DVFS-capable servers) hosting an
// enterprise application for multiple priority classes of business customers,
// each with its own arrival rate and SLA.
//
// It combines internal/queueing (delays) and internal/power (energy) into the
// paper's first contribution: computing the average end-to-end delay and the
// average energy consumption per class (Evaluate), the substrate every
// optimization in internal/core runs on.
package cluster

import (
	"fmt"
	"math"

	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// SLA is the service-level agreement of one customer class: the guarantees
// the provider sells and the price the customer pays. Zero-valued fields mean
// "no such guarantee".
type SLA struct {
	// MaxMeanDelay bounds the class's mean end-to-end delay (seconds).
	MaxMeanDelay float64
	// PercentileDelay together with Percentile bounds the tail:
	// P(D ≤ PercentileDelay) ≥ Percentile, e.g. 95% of requests in 2 s.
	PercentileDelay float64
	Percentile      float64
	// PricePerRequest is the fee the customer pays per served request;
	// higher-paying classes receive higher priority.
	PricePerRequest float64
}

// HasMeanBound reports whether the SLA carries a mean-delay guarantee.
func (s SLA) HasMeanBound() bool { return s.MaxMeanDelay > 0 }

// HasPercentileBound reports whether the SLA carries a tail guarantee.
func (s SLA) HasPercentileBound() bool {
	return s.PercentileDelay > 0 && s.Percentile > 0 && s.Percentile < 1
}

// Validate checks the SLA's internal consistency.
func (s SLA) Validate() error {
	if s.MaxMeanDelay < 0 || s.PercentileDelay < 0 || s.PricePerRequest < 0 {
		return fmt.Errorf("cluster: negative SLA field")
	}
	if s.Percentile < 0 || s.Percentile >= 1 {
		if s.Percentile != 0 {
			return fmt.Errorf("cluster: percentile %g out of [0,1)", s.Percentile)
		}
	}
	if (s.Percentile > 0) != (s.PercentileDelay > 0) {
		return fmt.Errorf("cluster: percentile bound needs both a level and a delay")
	}
	return nil
}

// Class is one customer class. Classes are ordered by priority: index 0 in
// Cluster.Classes is served first at every tier.
type Class struct {
	Name   string
	Lambda float64 // Poisson arrival rate, requests per second
	SLA    SLA
}

// Tier is one stage of the enterprise application: a pool of identical
// DVFS-capable servers with a class-demand profile, a power model, and a
// provisioning cost.
type Tier struct {
	Name    string
	Servers int
	Speed   float64 // current operating speed, work units per second
	// MinSpeed and MaxSpeed bound the DVFS range the optimizers explore.
	MinSpeed, MaxSpeed float64
	Discipline         queueing.Discipline
	Power              power.Model
	// CostPerServer is the provisioning cost of one server at this tier
	// (used by the C4 cost minimization), in dollars per unit time.
	CostPerServer float64
	// Availability is the steady-state fraction of time each server is up,
	// A = MTBF/(MTBF+MTTR), in (0, 1]. Zero means "always up". The analytic
	// model folds it in as availability-weighted capacity — the tier serves
	// at Speed·A — which is exact in the mean but optimistic in the tail
	// (see DESIGN.md "Failure model"); the simulator injects explicit
	// breakdown/repair cycles instead via sim.Options.Failures.
	Availability float64
	// Demands[k] is the work class k brings to this tier.
	Demands []queueing.Demand
}

// EffectiveAvailability returns the tier's availability with the zero value
// resolved to 1 (always up).
func (t *Tier) EffectiveAvailability() float64 {
	if t.Availability == 0 {
		return 1
	}
	return t.Availability
}

// Station converts the tier to its queueing representation at its current
// speed, degraded by the tier's availability (Speed·A — the mean effective
// capacity of a pool whose servers are each up a fraction A of the time).
func (t *Tier) Station() *queueing.Station {
	return &queueing.Station{
		Name:       t.Name,
		Servers:    t.Servers,
		Speed:      t.Speed * t.EffectiveAvailability(),
		Discipline: t.Discipline,
		Demands:    append([]queueing.Demand(nil), t.Demands...),
	}
}

// Validate checks the tier against the number of classes.
func (t *Tier) Validate(numClasses int) error {
	if t.Power == nil {
		return fmt.Errorf("cluster: tier %q has no power model", t.Name)
	}
	if t.CostPerServer < 0 {
		return fmt.Errorf("cluster: tier %q has negative cost", t.Name)
	}
	if t.MinSpeed < 0 || (t.MaxSpeed > 0 && t.MaxSpeed < t.MinSpeed) {
		return fmt.Errorf("cluster: tier %q has invalid speed range [%g,%g]", t.Name, t.MinSpeed, t.MaxSpeed)
	}
	if t.MaxSpeed > 0 && (t.Speed < t.MinSpeed || t.Speed > t.MaxSpeed) {
		return fmt.Errorf("cluster: tier %q speed %g outside [%g,%g]", t.Name, t.Speed, t.MinSpeed, t.MaxSpeed)
	}
	// The negated comparison also rejects NaN.
	if t.Availability != 0 && (!(t.Availability > 0) || t.Availability > 1) {
		return fmt.Errorf("cluster: tier %q availability %g out of (0,1]", t.Name, t.Availability)
	}
	return t.Station().Validate(numClasses)
}

// Clone returns a deep copy of the tier.
func (t *Tier) Clone() *Tier {
	c := *t
	c.Demands = append([]queueing.Demand(nil), t.Demands...)
	return &c
}

// Cluster is the full system: tiers, classes, and per-class routes.
type Cluster struct {
	Tiers   []*Tier
	Classes []Class
	// Routes[k] lists the tier indices class k visits in order; nil means
	// every class traverses all tiers in order (the tandem default).
	Routes [][]int
	// Routing optionally gives a class a probabilistic (Markov) routing
	// chain instead of a deterministic route — retries, branches, loops.
	// A non-nil Routing[k] takes precedence over Routes[k]; length must
	// equal the class count when set.
	Routing []*queueing.ClassRouting
}

// NumClasses returns the number of customer classes.
func (c *Cluster) NumClasses() int { return len(c.Classes) }

// Lambdas returns the per-class arrival-rate vector.
func (c *Cluster) Lambdas() []float64 {
	l := make([]float64, len(c.Classes))
	for i, cl := range c.Classes {
		l[i] = cl.Lambda
	}
	return l
}

// TotalLambda returns the aggregate arrival rate.
func (c *Cluster) TotalLambda() float64 {
	var s float64
	for _, cl := range c.Classes {
		s += cl.Lambda
	}
	return s
}

// routes returns the effective routes, materializing the tandem default.
func (c *Cluster) routes() [][]int {
	if c.Routes != nil {
		return c.Routes
	}
	return queueing.TandemRoutes(len(c.Classes), len(c.Tiers))
}

// Route returns class k's effective route.
func (c *Cluster) Route(k int) []int { return c.routes()[k] }

// Network builds the queueing network for the cluster's current speeds.
func (c *Cluster) Network() *queueing.Network {
	st := make([]*queueing.Station, len(c.Tiers))
	for i, t := range c.Tiers {
		st[i] = t.Station()
	}
	return &queueing.Network{Stations: st, Routes: c.routes(), Routings: c.Routing}
}

// VisitRates returns the expected number of visits class k makes to each
// tier: occurrence counts along its route, or the traffic-equation solution
// of its routing chain. Invalid chains yield all-zero rates (Validate
// reports the underlying error).
func (c *Cluster) VisitRates(k int) []float64 {
	if c.Routing != nil && k < len(c.Routing) && c.Routing[k] != nil {
		v, err := c.Routing[k].VisitRates()
		if err != nil {
			return make([]float64, len(c.Tiers))
		}
		return v
	}
	v := make([]float64, len(c.Tiers))
	for _, j := range c.routes()[k] {
		v[j]++
	}
	return v
}

// Validate checks the full configuration.
func (c *Cluster) Validate() error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("cluster: no tiers")
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("cluster: no classes")
	}
	for i, cl := range c.Classes {
		if cl.Lambda < 0 || math.IsNaN(cl.Lambda) || math.IsInf(cl.Lambda, 0) {
			return fmt.Errorf("cluster: class %d (%s) invalid arrival rate %g", i, cl.Name, cl.Lambda)
		}
		if err := cl.SLA.Validate(); err != nil {
			return fmt.Errorf("class %d (%s): %w", i, cl.Name, err)
		}
	}
	for _, t := range c.Tiers {
		if err := t.Validate(len(c.Classes)); err != nil {
			return err
		}
	}
	if c.Routes != nil && len(c.Routes) != len(c.Classes) {
		return fmt.Errorf("cluster: %d routes for %d classes", len(c.Routes), len(c.Classes))
	}
	if c.Routing != nil && len(c.Routing) != len(c.Classes) {
		return fmt.Errorf("cluster: %d routing chains for %d classes", len(c.Routing), len(c.Classes))
	}
	return c.Network().Validate()
}

// Clone returns a deep copy of the cluster. Power models are shared (they
// are immutable).
func (c *Cluster) Clone() *Cluster {
	n := &Cluster{
		Tiers:   make([]*Tier, len(c.Tiers)),
		Classes: append([]Class(nil), c.Classes...),
	}
	for i, t := range c.Tiers {
		n.Tiers[i] = t.Clone()
	}
	if c.Routes != nil {
		n.Routes = make([][]int, len(c.Routes))
		for i, r := range c.Routes {
			n.Routes[i] = append([]int(nil), r...)
		}
	}
	if c.Routing != nil {
		n.Routing = make([]*queueing.ClassRouting, len(c.Routing))
		for i, r := range c.Routing {
			if r == nil {
				continue
			}
			nr := &queueing.ClassRouting{Entry: append([]float64(nil), r.Entry...)}
			for _, row := range r.Next {
				nr.Next = append(nr.Next, append([]float64(nil), row...))
			}
			n.Routing[i] = nr
		}
	}
	return n
}

// Speeds returns the current per-tier speed vector.
func (c *Cluster) Speeds() []float64 {
	s := make([]float64, len(c.Tiers))
	for i, t := range c.Tiers {
		s[i] = t.Speed
	}
	return s
}

// SetSpeeds assigns per-tier speeds (must match the tier count).
func (c *Cluster) SetSpeeds(s []float64) error {
	if len(s) != len(c.Tiers) {
		return fmt.Errorf("cluster: %d speeds for %d tiers", len(s), len(c.Tiers))
	}
	for i, t := range c.Tiers {
		t.Speed = s[i]
	}
	return nil
}

// SpeedBounds returns the per-tier (lo, hi) DVFS ranges for the optimizers:
// lo is lifted to just above the stability minimum (a speed below it can
// never be optimal), hi is the configured MaxSpeed or a generous multiple of
// the stability minimum when unset. A configured MaxSpeed is never exceeded;
// if a tier cannot be stabilized even at MaxSpeed, lo is pinned to hi and the
// tier's delays stay +Inf (the optimizers then report infeasibility).
func (c *Cluster) SpeedBounds() (lo, hi []float64) {
	lam := c.Lambdas()
	net := c.Network()
	lo = make([]float64, len(c.Tiers))
	hi = make([]float64, len(c.Tiers))
	for i, t := range c.Tiers {
		// MinSpeedForStability is in station-speed units; the station runs at
		// Speed·A, so the tier's nominal speed must clear stab/A.
		stab := net.Stations[i].MinSpeedForStability(perTierArrivals(c, i, lam)) /
			t.EffectiveAvailability()
		lo[i] = t.MinSpeed
		if lo[i] < stab*1.001 {
			lo[i] = stab * 1.001
		}
		hi[i] = t.MaxSpeed
		if hi[i] <= 0 {
			hi[i] = math.Max(stab*20, lo[i]*10)
		}
		if lo[i] > hi[i] {
			lo[i] = hi[i]
		}
	}
	return lo, hi
}

// perTierArrivals returns the per-class arrival vector tier j sees given the
// external rates: λ_k times class k's expected visits to tier j.
func perTierArrivals(c *Cluster, j int, lam []float64) []float64 {
	at := make([]float64, len(lam))
	for k := range c.Classes {
		at[k] = lam[k] * c.VisitRates(k)[j]
	}
	return at
}
