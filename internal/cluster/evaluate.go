package cluster

import (
	"fmt"
	"math"

	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// TierMetrics reports the analytical steady state of one tier.
type TierMetrics struct {
	Name        string
	Utilization float64 // per-server utilization ρ
	Power       power.Breakdown
}

// Metrics is the output of Evaluate: the paper's C1 quantities — per-class
// average end-to-end delay and average energy consumption — plus the
// aggregates the optimization problems constrain.
type Metrics struct {
	// Delay[k] is class k's mean end-to-end response time (+Inf if any
	// tier on its route is saturated).
	Delay []float64
	// WeightedDelay is the arrival-rate-weighted mean delay over classes —
	// the paper's "all class" delay objective.
	WeightedDelay float64
	// EnergyPerRequest[k] is the dynamic energy one class-k request
	// induces along its route (Joules).
	EnergyPerRequest []float64
	// TotalPower is the cluster's average power draw (Watts): the paper's
	// "average energy consumption" per unit time; static + dynamic.
	TotalPower float64
	// StaticPower and DynamicPower decompose TotalPower.
	StaticPower, DynamicPower float64
	// EnergyPerJob is TotalPower divided by the aggregate throughput:
	// average energy the cluster spends per served request, amortizing
	// the idle floor (J/request). NaN with zero traffic.
	EnergyPerJob float64
	// Tiers holds per-tier utilization and power.
	Tiers []TierMetrics
	// Breakdown holds the queueing detail (per-class per-station waits).
	Breakdown *queueing.DelayBreakdown
}

// Stable reports whether every class has a finite delay.
func (m *Metrics) Stable() bool {
	for _, d := range m.Delay {
		if math.IsInf(d, 1) {
			return false
		}
	}
	return true
}

// Evaluate computes the metrics of the cluster at its current speeds. It is
// the analytical core: delays from the priority queueing network, power from
// the per-tier utilization law.
func Evaluate(c *Cluster) (*Metrics, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lam := c.Lambdas()
	net := c.Network()
	bd, err := net.EndToEndDelays(lam)
	if err != nil {
		return nil, err
	}

	m := &Metrics{
		Delay:            bd.EndToEnd,
		WeightedDelay:    queueing.MeanDelayAllClasses(bd.EndToEnd, lam),
		EnergyPerRequest: make([]float64, len(c.Classes)),
		Tiers:            make([]TierMetrics, len(c.Tiers)),
		Breakdown:        bd,
	}

	for j, t := range c.Tiers {
		// rho is the per-up-server busy fraction (the station runs at the
		// availability-degraded capacity Speed·A). The fraction of *nominal*
		// servers busy is rho·A, which is what dynamic power scales with at
		// the raw operating speed; failed servers draw nothing, so the static
		// floor also shrinks by A.
		a := t.EffectiveAvailability()
		rho := net.Stations[j].Utilization(perTierArrivals(c, j, lam))
		br := power.StationBreakdown(t.Power, t.Speed, t.Servers, rho*a)
		br.Static *= a
		m.Tiers[j] = TierMetrics{Name: t.Name, Utilization: rho, Power: br}
		m.StaticPower += br.Static
		m.DynamicPower += br.Dynamic
	}
	m.TotalPower = m.StaticPower + m.DynamicPower

	for k := range c.Classes {
		var e float64
		for j, visits := range c.VisitRates(k) {
			if visits <= 0 {
				continue
			}
			t := c.Tiers[j]
			svc := t.Demands[k].Work / t.Speed
			e += visits * power.RequestEnergy(t.Power, t.Speed, svc)
		}
		m.EnergyPerRequest[k] = e
	}

	if tot := c.TotalLambda(); tot > 0 {
		m.EnergyPerJob = m.TotalPower / tot
	} else {
		m.EnergyPerJob = math.NaN()
	}
	return m, nil
}

// DelayQuantile approximates the p-quantile of class k's end-to-end delay
// from the evaluated per-station means, via the hypoexponential stage
// approximation. It must be called with the Metrics produced by Evaluate on
// the same cluster.
func DelayQuantile(c *Cluster, m *Metrics, k int, p float64) (float64, error) {
	if m.Breakdown == nil {
		return 0, fmt.Errorf("cluster: metrics carry no breakdown")
	}
	if k < 0 || k >= len(c.Classes) {
		return 0, fmt.Errorf("cluster: class index %d out of range", k)
	}
	// Stage means: one exponential stage per expected visit. Deterministic
	// routes contribute one stage per visit; probabilistic routings use
	// each tier's expected total contribution v_j·T_j as a single stage —
	// a coarser approximation (the visit count is itself random), which is
	// why percentile SLAs under routing chains deserve the simulator
	// cross-check.
	var means []float64
	if c.Routing != nil && k < len(c.Routing) && c.Routing[k] != nil {
		for j, visits := range c.VisitRates(k) {
			if visits > 0 {
				means = append(means, visits*m.Breakdown.PerStation[k][j])
			}
		}
	} else {
		route := c.Route(k)
		for _, j := range route {
			means = append(means, m.Breakdown.PerStation[k][j])
		}
	}
	return queueing.EndToEndQuantile(means, p)
}

// SLAReport records, per class, whether each SLA guarantee holds under the
// analytical model.
type SLAReport struct {
	Class          string
	MeanDelay      float64
	MeanBound      float64 // 0 when absent
	MeanOK         bool
	TailDelay      float64 // achieved quantile at the SLA percentile (0 when absent)
	TailBound      float64
	TailPercentile float64
	TailOK         bool
}

// Satisfied reports whether every present guarantee holds.
func (r SLAReport) Satisfied() bool { return r.MeanOK && r.TailOK }

// CheckSLAs evaluates every class's SLA against the analytical model.
func CheckSLAs(c *Cluster, m *Metrics) ([]SLAReport, error) {
	reports := make([]SLAReport, len(c.Classes))
	for k, cl := range c.Classes {
		r := SLAReport{Class: cl.Name, MeanDelay: m.Delay[k], MeanOK: true, TailOK: true}
		if cl.SLA.HasMeanBound() {
			r.MeanBound = cl.SLA.MaxMeanDelay
			r.MeanOK = m.Delay[k] <= cl.SLA.MaxMeanDelay
		}
		if cl.SLA.HasPercentileBound() {
			q, err := DelayQuantile(c, m, k, cl.SLA.Percentile)
			if err != nil {
				return nil, err
			}
			r.TailDelay = q
			r.TailBound = cl.SLA.PercentileDelay
			r.TailPercentile = cl.SLA.Percentile
			r.TailOK = q <= cl.SLA.PercentileDelay
		}
		reports[k] = r
	}
	return reports, nil
}

// TotalCost returns the provisioning cost of the cluster: Σ tiers
// servers × cost-per-server. This is the objective of the paper's C4
// problem (minimize the total cost of allocated resources).
func TotalCost(c *Cluster) float64 {
	var cost float64
	for _, t := range c.Tiers {
		cost += float64(t.Servers) * t.CostPerServer
	}
	return cost
}

// Revenue returns the per-unit-time revenue Σ λ_k × price_k.
func Revenue(c *Cluster) float64 {
	var rev float64
	for _, cl := range c.Classes {
		rev += cl.Lambda * cl.SLA.PricePerRequest
	}
	return rev
}
