package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"clusterq/internal/queueing"
)

const sampleJSON = `{
  "tiers": [
    {
      "name": "web", "servers": 2, "speed": 4,
      "min_speed": 1, "max_speed": 8,
      "discipline": "nonpreemptive",
      "power": {"type": "powerlaw", "idle": 100, "kappa": 10, "gamma": 3},
      "cost_per_server": 1.5,
      "demands": [{"work": 1, "cv2": 1}, {"work": 2, "cv2": 0.5}]
    },
    {
      "name": "db", "servers": 1, "speed": 5,
      "discipline": "fcfs",
      "power": {"type": "linear", "idle": 50, "slope": 20},
      "demands": [{"work": 0.5, "cv2": 1}, {"work": 3, "cv2": 2}]
    }
  ],
  "classes": [
    {"name": "gold", "lambda": 1, "max_mean_delay": 3, "price_per_request": 2},
    {"name": "bronze", "lambda": 0.5, "percentile_delay": 10, "percentile": 0.95}
  ]
}`

func TestParseConfigRoundTrip(t *testing.T) {
	c, err := ParseConfig([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tiers) != 2 || len(c.Classes) != 2 {
		t.Fatalf("shape: %d tiers, %d classes", len(c.Tiers), len(c.Classes))
	}
	if c.Tiers[0].Discipline != queueing.NonPreemptive {
		t.Error("web discipline")
	}
	if c.Tiers[1].Discipline != queueing.FCFS {
		t.Error("db discipline")
	}
	if c.Tiers[0].Power.BusyPower(2) != 100+10*8 {
		t.Errorf("powerlaw busy = %g", c.Tiers[0].Power.BusyPower(2))
	}
	if c.Tiers[1].Power.BusyPower(2) != 90 {
		t.Errorf("linear busy = %g", c.Tiers[1].Power.BusyPower(2))
	}
	if c.Classes[1].SLA.Percentile != 0.95 {
		t.Error("percentile SLA lost")
	}
	if c.Tiers[0].Demands[1].Work != 2 || c.Tiers[0].Demands[1].CV2 != 0.5 {
		t.Error("demands lost")
	}
	// The parsed cluster must evaluate.
	if _, err := Evaluate(c); err != nil {
		t.Fatal(err)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":          `{`,
		"unknown field":     `{"tiers": [], "classes": [], "bogus": 1}`,
		"unknown disc":      `{"tiers":[{"name":"a","servers":1,"speed":1,"discipline":"lifo","power":{"type":"linear"},"demands":[{"work":1,"cv2":1}]}],"classes":[{"name":"x","lambda":0.1}]}`,
		"unknown power":     `{"tiers":[{"name":"a","servers":1,"speed":1,"discipline":"fcfs","power":{"type":"quantum"},"demands":[{"work":1,"cv2":1}]}],"classes":[{"name":"x","lambda":0.1}]}`,
		"invalid structure": `{"tiers":[],"classes":[]}`,
	}
	for name, js := range cases {
		if _, err := ParseConfig([]byte(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseDisciplineAliases(t *testing.T) {
	aliases := map[string]queueing.Discipline{
		"":           queueing.NonPreemptive,
		"np":         queueing.NonPreemptive,
		"FCFS":       queueing.FCFS,
		"fifo":       queueing.FCFS,
		"preemptive": queueing.PreemptiveResume,
		"pr":         queueing.PreemptiveResume,
	}
	for s, want := range aliases {
		got, err := ParseDiscipline(s)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v", s, got, err)
		}
	}
}

func TestBuildPowerDefaults(t *testing.T) {
	// Empty type defaults to powerlaw with γ=3.
	m, err := BuildPower(PowerConfig{Idle: 10, Kappa: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.BusyPower(2) != 10+8 {
		t.Errorf("default gamma busy = %g", m.BusyPower(2))
	}
	// Table model.
	tb, err := BuildPower(PowerConfig{Type: "table", Idle: 5, Speeds: []float64{1, 2}, BusyW: []float64{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.BusyPower(1.5) != 15 {
		t.Errorf("table busy = %g", tb.BusyPower(1.5))
	}
}

func TestParseConfigWithRouting(t *testing.T) {
	js := `{
	  "tiers": [
	    {"name": "a", "servers": 1, "speed": 4, "discipline": "fcfs",
	     "power": {"type": "linear", "idle": 10, "slope": 1},
	     "demands": [{"work": 1, "cv2": 1}]}
	  ],
	  "classes": [{"name": "x", "lambda": 1}],
	  "routing": [{"entry": [1], "next": [[0.25]]}]
	}`
	c, err := ParseConfig([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	v := c.VisitRates(0)
	if !almostEq(v[0], 1/0.75, 1e-9) {
		t.Errorf("visit rate = %g, want %g", v[0], 1/0.75)
	}
	// Recurrent chain rejected at validation.
	bad := `{
	  "tiers": [
	    {"name": "a", "servers": 1, "speed": 4, "discipline": "fcfs",
	     "power": {"type": "linear", "idle": 10, "slope": 1},
	     "demands": [{"work": 1, "cv2": 1}]}
	  ],
	  "classes": [{"name": "x", "lambda": 1}],
	  "routing": [{"entry": [1], "next": [[1.0]]}]
	}`
	if _, err := ParseConfig([]byte(bad)); err == nil {
		t.Error("recurrent routing accepted")
	}
}

func TestConfigJSONSerializesBack(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(sampleJSON), &cfg); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseConfig(out)
	if err != nil {
		t.Fatalf("re-parsing marshaled config: %v", err)
	}
	if len(c2.Tiers) != 2 {
		t.Error("round trip lost tiers")
	}
}

func TestParseConfigAvailability(t *testing.T) {
	base := `{"tiers":[{"name":"a","servers":1,"speed":4,"discipline":"fcfs","power":{"type":"linear","idle":50,"slope":20},%s"demands":[{"work":1,"cv2":1}]}],"classes":[{"name":"x","lambda":0.5}]}`

	c, err := ParseConfig([]byte(fmt.Sprintf(base, `"availability":0.9,`)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Tiers[0].Availability != 0.9 {
		t.Errorf("availability = %g, want 0.9", c.Tiers[0].Availability)
	}

	c, err = ParseConfig([]byte(fmt.Sprintf(base, `"mtbf":90,"mttr":10,`)))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Tiers[0].Availability; math.Abs(got-0.9) > 1e-15 {
		t.Errorf("derived availability = %g, want 0.9", got)
	}

	for name, snippet := range map[string]string{
		"both forms":   `"availability":0.9,"mtbf":90,"mttr":10,`,
		"mtbf alone":   `"mtbf":90,`,
		"bad mttr":     `"mtbf":90,"mttr":-1,`,
		"out of range": `"availability":1.5,`,
	} {
		if _, err := ParseConfig([]byte(fmt.Sprintf(base, snippet))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
