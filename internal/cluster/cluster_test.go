package cluster

import (
	"math"
	"testing"

	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testCluster builds a 3-tier, 2-class cluster with unit work everywhere.
func testCluster() *Cluster {
	pm, _ := power.NewPowerLaw(100, 10, 3)
	mkTier := func(name string, servers int, speed float64) *Tier {
		return &Tier{
			Name: name, Servers: servers, Speed: speed,
			MinSpeed: 0.5, MaxSpeed: 10,
			Discipline: queueing.NonPreemptive, Power: pm,
			CostPerServer: 2,
			Demands: []queueing.Demand{
				{Work: 1, CV2: 1},
				{Work: 1, CV2: 1},
			},
		}
	}
	return &Cluster{
		Tiers: []*Tier{mkTier("web", 1, 4), mkTier("app", 1, 4), mkTier("db", 1, 4)},
		Classes: []Class{
			{Name: "gold", Lambda: 0.8, SLA: SLA{MaxMeanDelay: 2, PricePerRequest: 3}},
			{Name: "bronze", Lambda: 0.8, SLA: SLA{MaxMeanDelay: 5, PricePerRequest: 1}},
		},
	}
}

func TestClusterValidate(t *testing.T) {
	c := testCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCluster()
	bad.Tiers = nil
	if err := bad.Validate(); err == nil {
		t.Error("no tiers accepted")
	}
	bad2 := testCluster()
	bad2.Classes = nil
	if err := bad2.Validate(); err == nil {
		t.Error("no classes accepted")
	}
	bad3 := testCluster()
	bad3.Classes[0].Lambda = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	bad4 := testCluster()
	bad4.Tiers[0].Power = nil
	if err := bad4.Validate(); err == nil {
		t.Error("missing power model accepted")
	}
	bad5 := testCluster()
	bad5.Routes = [][]int{{0}}
	if err := bad5.Validate(); err == nil {
		t.Error("route/class count mismatch accepted")
	}
	bad6 := testCluster()
	bad6.Tiers[0].Speed = 20 // above MaxSpeed
	if err := bad6.Validate(); err == nil {
		t.Error("speed outside DVFS range accepted")
	}
}

func TestSLAValidation(t *testing.T) {
	good := SLA{MaxMeanDelay: 1, PercentileDelay: 2, Percentile: 0.95}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if !good.HasMeanBound() || !good.HasPercentileBound() {
		t.Error("bounds not detected")
	}
	if err := (SLA{Percentile: 0.95}).Validate(); err == nil {
		t.Error("percentile without delay accepted")
	}
	if err := (SLA{PercentileDelay: 1}).Validate(); err == nil {
		t.Error("delay without percentile accepted")
	}
	if err := (SLA{MaxMeanDelay: -1}).Validate(); err == nil {
		t.Error("negative bound accepted")
	}
	if err := (SLA{Percentile: 1.5, PercentileDelay: 1}).Validate(); err == nil {
		t.Error("percentile > 1 accepted")
	}
	none := SLA{}
	if none.HasMeanBound() || none.HasPercentileBound() {
		t.Error("empty SLA claims bounds")
	}
}

func TestEvaluateDelaysMatchNetwork(t *testing.T) {
	c := testCluster()
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := c.Network().EndToEndDelays(c.Lambdas())
	if err != nil {
		t.Fatal(err)
	}
	for k := range c.Classes {
		if !almostEq(m.Delay[k], bd.EndToEnd[k], 1e-12) {
			t.Errorf("class %d delay %g != network %g", k, m.Delay[k], bd.EndToEnd[k])
		}
	}
	if !(m.Delay[0] < m.Delay[1]) {
		t.Error("priority ordering violated")
	}
	if !m.Stable() {
		t.Error("cluster should be stable")
	}
}

func TestEvaluatePowerAccounting(t *testing.T) {
	c := testCluster()
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Static floor: 3 tiers × 1 server × 100 W.
	if !almostEq(m.StaticPower, 300, 1e-9) {
		t.Errorf("static power = %g", m.StaticPower)
	}
	// Dynamic: each tier ρ = 1.6·(1/4) = 0.4; gap = κ·s³ = 10·64 = 640;
	// per tier 0.4·640 = 256; total 768.
	if !almostEq(m.DynamicPower, 768, 1e-9) {
		t.Errorf("dynamic power = %g", m.DynamicPower)
	}
	if !almostEq(m.TotalPower, 1068, 1e-9) {
		t.Errorf("total power = %g", m.TotalPower)
	}
	var tierSum float64
	for _, tm := range m.Tiers {
		tierSum += tm.Power.Total()
		if !almostEq(tm.Utilization, 0.4, 1e-12) {
			t.Errorf("tier %s util = %g", tm.Name, tm.Utilization)
		}
	}
	if !almostEq(tierSum, m.TotalPower, 1e-9) {
		t.Errorf("tier power sum %g != total %g", tierSum, m.TotalPower)
	}
	// Energy per request: 3 tiers × gap·(1/4) = 3·160 = 480 J.
	for k := range c.Classes {
		if !almostEq(m.EnergyPerRequest[k], 480, 1e-9) {
			t.Errorf("class %d energy = %g", k, m.EnergyPerRequest[k])
		}
	}
	if !almostEq(m.EnergyPerJob, 1068/1.6, 1e-9) {
		t.Errorf("energy per job = %g", m.EnergyPerJob)
	}
}

func TestEvaluateZeroTraffic(t *testing.T) {
	c := testCluster()
	c.Classes[0].Lambda = 0
	c.Classes[1].Lambda = 0
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.DynamicPower != 0 {
		t.Errorf("dynamic power with no traffic = %g", m.DynamicPower)
	}
	if !math.IsNaN(m.EnergyPerJob) {
		t.Errorf("energy per job with no traffic = %g", m.EnergyPerJob)
	}
	if !math.IsNaN(m.WeightedDelay) {
		t.Errorf("weighted delay with no traffic = %g", m.WeightedDelay)
	}
}

func TestEvaluateFasterSpeedsLowerDelayRaisePower(t *testing.T) {
	slow := testCluster()
	fast := testCluster()
	if err := fast.SetSpeeds([]float64{6, 6, 6}); err != nil {
		t.Fatal(err)
	}
	ms, _ := Evaluate(slow)
	mf, _ := Evaluate(fast)
	if !(mf.WeightedDelay < ms.WeightedDelay) {
		t.Errorf("faster cluster should have lower delay: %g vs %g", mf.WeightedDelay, ms.WeightedDelay)
	}
	if !(mf.TotalPower > ms.TotalPower) {
		t.Errorf("faster cluster should draw more power: %g vs %g", mf.TotalPower, ms.TotalPower)
	}
}

func TestDelayQuantile(t *testing.T) {
	c := testCluster()
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	q50, err := DelayQuantile(c, m, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q95, err := DelayQuantile(c, m, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(0 < q50 && q50 < q95) {
		t.Errorf("quantiles not ordered: %g %g", q50, q95)
	}
	// The hypoexponential mean equals the sum of the per-stage means; its
	// median is below the mean for these shapes.
	if !(q50 < m.Delay[0]) {
		t.Errorf("median %g above mean %g", q50, m.Delay[0])
	}
	if _, err := DelayQuantile(c, m, 9, 0.5); err == nil {
		t.Error("out-of-range class accepted")
	}
}

func TestCheckSLAs(t *testing.T) {
	c := testCluster()
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := CheckSLAs(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	// gold bound is 2 s; delay at these speeds should satisfy it.
	if !reports[0].Satisfied() {
		t.Errorf("gold SLA should hold: %+v", reports[0])
	}
	// Tighten the gold bound beyond reach.
	c.Classes[0].SLA.MaxMeanDelay = 1e-6
	m2, _ := Evaluate(c)
	r2, _ := CheckSLAs(c, m2)
	if r2[0].Satisfied() {
		t.Error("impossible SLA reported as satisfied")
	}
	// Percentile SLA path.
	c.Classes[1].SLA = SLA{PercentileDelay: 100, Percentile: 0.95}
	m3, _ := Evaluate(c)
	r3, _ := CheckSLAs(c, m3)
	if !r3[1].TailOK || r3[1].TailDelay <= 0 {
		t.Errorf("loose tail SLA should hold: %+v", r3[1])
	}
}

func TestCostAndRevenue(t *testing.T) {
	c := testCluster()
	// 3 tiers × 1 server × $2.
	if got := TotalCost(c); !almostEq(got, 6, 1e-12) {
		t.Errorf("cost = %g", got)
	}
	// 0.8·3 + 0.8·1 = 3.2.
	if got := Revenue(c); !almostEq(got, 3.2, 1e-12) {
		t.Errorf("revenue = %g", got)
	}
}

func TestSpeedsRoundTrip(t *testing.T) {
	c := testCluster()
	want := []float64{2, 3, 5}
	if err := c.SetSpeeds(want); err != nil {
		t.Fatal(err)
	}
	got := c.Speeds()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("speed %d = %g", i, got[i])
		}
	}
	if err := c.SetSpeeds([]float64{1}); err == nil {
		t.Error("wrong-length speed vector accepted")
	}
}

func TestSpeedBounds(t *testing.T) {
	c := testCluster()
	lo, hi := c.SpeedBounds()
	if len(lo) != 3 || len(hi) != 3 {
		t.Fatal("wrong lengths")
	}
	for i := range lo {
		// Stability minimum is 1.6 work/s; MinSpeed 0.5 is below it, so
		// the bound must be lifted just above 1.6.
		if lo[i] < 1.6 || lo[i] > 1.7 {
			t.Errorf("lo[%d] = %g", i, lo[i])
		}
		if hi[i] != 10 {
			t.Errorf("hi[%d] = %g", i, hi[i])
		}
		if lo[i] >= hi[i] {
			t.Errorf("bounds inverted at %d", i)
		}
	}
	// Unbounded MaxSpeed gets a generous default.
	c2 := testCluster()
	c2.Tiers[0].MaxSpeed = 0
	c2.Tiers[0].Speed = 4
	_, hi2 := c2.SpeedBounds()
	if hi2[0] <= 10 {
		t.Errorf("default hi = %g, want generous", hi2[0])
	}
}

func TestClusterClone(t *testing.T) {
	c := testCluster()
	c.Routes = [][]int{{0, 1}, {0, 1, 2}}
	cl := c.Clone()
	cl.Tiers[0].Speed = 99
	cl.Classes[0].Lambda = 99
	cl.Routes[0][0] = 2
	cl.Tiers[1].Demands[0].Work = 42
	if c.Tiers[0].Speed == 99 || c.Classes[0].Lambda == 99 || c.Routes[0][0] == 2 ||
		c.Tiers[1].Demands[0].Work == 42 {
		t.Error("clone shares state")
	}
}

func TestPartialRoutesInCluster(t *testing.T) {
	c := testCluster()
	c.Routes = [][]int{{0, 1, 2}, {0}} // bronze only touches web
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.Delay[1] < m.Delay[0]) {
		t.Errorf("single-tier route should be faster: %v", m.Delay)
	}
	// Energy for bronze comes from one tier only.
	if !(m.EnergyPerRequest[1] < m.EnergyPerRequest[0]) {
		t.Errorf("energy not reduced on short route: %v", m.EnergyPerRequest)
	}
}
