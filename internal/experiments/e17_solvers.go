package experiments

import (
	"time"

	"clusterq/internal/core"
	"clusterq/internal/workload"
)

// E17 is the solver ablation: the Lagrangian dual decomposition (which
// exploits the model's separability across tiers — the structure the paper's
// analytical setting provides) against the general-purpose augmented
// Lagrangian, on identical C3a instances. Expected: identical solutions,
// with the dual orders of magnitude cheaper — evidence that the paper's
// "efficient" claim is structural, not solver luck.
type E17 struct{}

func (E17) ID() string { return "E17" }
func (E17) Title() string {
	return "Ablation — Lagrangian dual decomposition vs general augmented Lagrangian (C3a)"
}

func (E17) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	shapes := []struct{ j, k int }{{2, 2}, {3, 3}, {5, 3}, {8, 4}}
	if cfg.Quick {
		shapes = shapes[:3]
	}
	t := NewTable("MinimizeEnergy: dual decomposition vs augmented Lagrangian",
		"tiers", "classes",
		"dual: power W", "dual: ms", "dual: evals",
		"auglag: power W", "auglag: ms", "auglag: evals",
		"power gap")
	for _, sh := range shapes {
		c := workload.Scalable(sh.j, sh.k, 1)
		_, dWorst, err := delayRange(c)
		if err != nil {
			return nil, err
		}
		bound := dWorst * 0.5

		t0 := time.Now()
		dual, err := core.MinimizeEnergyDual(c, core.EnergyOptions{MaxWeightedDelay: bound})
		dualMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		alSol, err := core.MinimizeEnergy(c, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
		alMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return nil, err
		}
		gap := (alSol.Objective - dual.Objective) / dual.Objective
		t.AddRow(sh.j, sh.k,
			dual.Objective, dualMS, dual.Result.Evals,
			alSol.Objective, alMS, alSol.Result.Evals,
			Pct(gap))
	}
	return []*Table{t}, nil
}
