package experiments

import (
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// E14 is the dispatching extension: the provider's "collection of cluster
// computing resources" contains heterogeneous pools, and arriving traffic
// must be split across them. Compare the optimal (square-root/KKT) split
// against the proportional (equal-utilization) and equal (round-robin)
// heuristics across the load range, with the optimal split's delay verified
// by simulating each pool at its assigned rate (probabilistic splitting of a
// Poisson stream yields exact independent Poisson pools).
type E14 struct{}

func (E14) ID() string { return "E14" }
func (E14) Title() string {
	return "Extension — optimal traffic splitting across heterogeneous pools vs heuristics"
}

func (E14) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	mus := []float64{8, 3, 1.5} // heterogeneous pool rates
	capTotal := 12.5

	fracs := []float64{0.2, 0.4, 0.6, 0.8, 0.92}
	type point struct {
		dOpt, dProp, dEq, sim float64
		active                int
	}
	points, err := sweep(cfg, len(fracs), func(pi int) (point, error) {
		lam := fracs[pi] * capTotal
		x, dOpt, err := queueing.OptimalSplit(lam, mus)
		if err != nil {
			return point{}, err
		}
		dProp, err := queueing.SplitDelay(lam, mus, queueing.ProportionalSplit(lam, mus))
		if err != nil {
			return point{}, err
		}
		dEq, err := queueing.SplitDelay(lam, mus, queueing.EqualSplit(lam, len(mus)))
		if err != nil {
			return point{}, err
		}
		// Simulate the optimal split: each pool is an independent M/M/1
		// at its assigned rate; the overall mean delay is the rate-
		// weighted average.
		var simNum float64
		for i, xi := range x {
			if xi <= 0 {
				continue
			}
			pool := onePool(mus[i])
			pool.Classes[0].Lambda = xi
			res, err := sim.Run(pool, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 14 + uint64(i), Calendar: cfg.Calendar})
			if err != nil {
				return point{}, err
			}
			simNum += xi * res.Delay[0].Mean
		}
		return point{
			dOpt: dOpt, dProp: dProp, dEq: dEq, sim: simNum / lam,
			active: len(queueing.ActivePools(x, mus)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("mean delay (s) of the split policies; pools μ = 8/3/1.5",
		"load", "λ (req/s)", "optimal", "proportional", "equal", "active pools", "optimal (sim)")
	for i, frac := range fracs {
		p := points[i]
		t.AddRow(frac, frac*capTotal, p.dOpt, p.dProp, Cell(p.dEq), p.active, Cell(p.sim))
	}
	return []*Table{t}, nil
}

// onePool builds a single M/M/1 pool cluster with unit work and speed mu.
func onePool(mu float64) *cluster.Cluster {
	pm, _ := power.NewPowerLaw(50, 1, 2)
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "pool", Servers: 1, Speed: mu,
			Discipline: queueing.FCFS, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}},
		}},
		Classes: []cluster.Class{{Name: "x", Lambda: 1}},
	}
}

// E15 is the sleep-state extension: instant-off servers with setup times as
// the alternative (and complement) to DVFS. Sweep the load and compare the
// always-on cluster's power and delay against the sleeping one, analytic
// (Welch + cycle analysis) and simulated, and report the break-even load.
type E15 struct{}

func (E15) ID() string { return "E15" }
func (E15) Title() string {
	return "Extension — sleep states (instant-off + setup) vs always-on: power/delay trade-off"
}

func (E15) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	// Parameters chosen so the trade-off is visible: a long wake-up (four
	// service times, at busy power) against a moderate sleep saving puts
	// the break-even load strictly inside (0, 1) — sleep wins at light
	// load and loses once setup churn dominates.
	const (
		mu        = 1.0 // service rate at the operating speed
		setupMean = 4.0 // four mean service times to wake
		sleepW    = 60.0
	)
	pm, _ := power.NewPowerLaw(100, 50, 1) // idle 100, busy 150 at speed 1
	service := queueing.NewExponential(1 / mu)
	setup := queueing.NewExponential(setupMean)

	mk := func(lam float64) *cluster.Cluster {
		return &cluster.Cluster{
			Tiers: []*cluster.Tier{{
				Name: "t", Servers: 1, Speed: 1,
				Discipline: queueing.NonPreemptive, Power: pm,
				Demands: []queueing.Demand{{Work: 1, CV2: 1}},
			}},
			Classes: []cluster.Class{{Name: "a", Lambda: lam}},
		}
	}

	rhos := []float64{0.1, 0.25, 0.45, 0.65, 0.85}
	type point struct {
		onPower, mPower, mOn, mSleep float64
		res                          *sim.Result
	}
	points, err := sweep(cfg, len(rhos), func(i int) (point, error) {
		rho := rhos[i]
		lam := rho * mu
		mm1, _ := queueing.NewMM1(lam, mu)
		qs, err := queueing.NewMG1Setup(lam, service, setup)
		if err != nil {
			return point{}, err
		}
		res, err := sim.Run(mk(lam), sim.Options{
			Horizon: horizon, Replications: reps, Seed: cfg.Seed + 15, Calendar: cfg.Calendar,
			Sleep: []*sim.SleepConfig{{Setup: setup, SleepPower: sleepW}},
		})
		if err != nil {
			return point{}, err
		}
		return point{
			onPower: rho*pm.BusyPower(1) + (1-rho)*pm.IdlePower(1),
			mPower:  qs.SleepAveragePower(pm.BusyPower(1), pm.BusyPower(1), sleepW),
			mOn:     mm1.MeanResponse(), mSleep: qs.MeanResponse(), res: res,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("always-on vs instant-off (model and simulation)",
		"load", "on: power W", "sleep: power W (model)", "sleep: power W (sim)",
		"on: delay s", "sleep: delay s (model)", "sleep: delay s (sim)")
	for i, rho := range rhos {
		p := points[i]
		t.AddRow(rho, p.onPower, p.mPower,
			PlusMinus(p.res.TotalPower.Mean, p.res.TotalPower.HalfW),
			p.mOn, p.mSleep,
			PlusMinus(p.res.Delay[0].Mean, p.res.Delay[0].HalfW))
	}

	be := queueing.SleepBreakEvenLoad(service, setup, pm.BusyPower(1), pm.BusyPower(1), sleepW, pm.IdlePower(1))
	t2 := NewTable("break-even analysis", "quantity", "value")
	t2.AddRow("break-even load ρ* (sleep saves power below this)", be)
	t2.AddRow("delay penalty at ρ* (s, Welch)", func() float64 {
		q, _ := queueing.NewMG1Setup(be*mu, service, setup)
		return q.SetupPenalty()
	}())
	return []*Table{t, t2}, nil
}

// E16 is the tail-SLA extension of C3: how much more power a percentile
// guarantee costs than a mean guarantee of the same magnitude, with the
// achieved tail verified by simulation.
type E16 struct{}

func (E16) ID() string { return "E16" }
func (E16) Title() string {
	return "Extension — C3 with percentile (tail) bounds: power premium over mean bounds, sim-verified"
}

func (E16) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	horizon, reps := cfg.simScale()
	c := workload.Enterprise3Tier(1)

	// Bound scale: the best achievable bronze mean delay.
	_, hi := c.SpeedBounds()
	fast := c.Clone()
	if err := fast.SetSpeeds(hi); err != nil {
		return nil, err
	}
	mFast, err := cluster.Evaluate(fast)
	if err != nil {
		return nil, err
	}

	// Each bound multiplier is a self-contained sweep point (two solver
	// runs plus a verification simulation); the point returns its finished
	// table row.
	mults := []float64{3, 5, 8}
	rows, err := sweep(cfg, len(mults), func(i int) ([]any, error) {
		x := mFast.Delay[2] * mults[i]
		meanSol, err := core.MinimizeEnergyPerClass(c, core.EnergyOptions{
			MaxClassDelay: []float64{0, 0, x}, Starts: starts, AugLag: al,
		})
		if err != nil {
			return []any{x, "infeasible", "-", "-", "-", "-"}, nil
		}
		tailSol, err := core.MinimizeEnergyTail(c, core.TailOptions{
			Bounds: []core.TailBound{{}, {}, {Delay: x, Percentile: 0.95}},
			Starts: starts, AugLag: al,
		})
		if err != nil {
			return []any{x, meanSol.Objective, "infeasible", "-", "-", "-"}, nil
		}
		qModel, err := cluster.DelayQuantile(tailSol.Cluster, tailSol.Metrics, 2, 0.95)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(tailSol.Cluster, sim.Options{
			Horizon: horizon, Replications: reps, Seed: cfg.Seed + 16, Calendar: cfg.Calendar,
			Quantiles: []float64{0.95},
		})
		simQ := math.NaN()
		if err == nil {
			simQ = res.DelayQuantile[2][0.95]
		}
		premium := (tailSol.Objective - meanSol.Objective) / meanSol.Objective
		return []any{x, meanSol.Objective, tailSol.Objective, Pct(premium), qModel, Cell(simQ)}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("power to guarantee the bronze class a delay X: mean vs p95 bound",
		"X (s)", "mean-bound power (W)", "p95-bound power (W)", "premium",
		"achieved p95 (model)", "achieved p95 (sim)")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
