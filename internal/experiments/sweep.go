package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// sweep evaluates fn over n sweep points on a bounded worker pool and
// returns the results ordered by point index. It is the experiment layer's
// parallelism primitive: every reconstructed table that sweeps a load
// level, retry probability, or bound multiplier fans its points out here
// instead of looping serially.
//
// Determinism contract: fn(i) must be a pure function of the point index
// and the experiment config — in particular, every simulation seed must be
// derived from cfg.Seed and i (or a per-point constant) BEFORE any
// concurrency is involved, never from shared mutable state. Under that
// contract the returned slice is bit-identical whether the points run
// serially, fully in parallel, or in any interleaving; cfg.Workers only
// changes wall time.
//
// Error handling is schedule-independent too: when several points fail, the
// error of the LOWEST index is returned (annotated with its index), exactly
// what the serial loop would have surfaced first.
func sweep[R any](cfg Config, n int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	errs := make([]error, n)
	workers := cfg.sweepWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("sweep point %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep point %d: %w", i, err)
		}
	}
	return out, nil
}

// sweepWorkers resolves the Workers knob: 0 means one worker per CPU.
func (c Config) sweepWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
