package experiments

import (
	"clusterq/internal/cluster"
	"clusterq/internal/sim"
	"clusterq/internal/workload"

	"clusterq/internal/queueing"
)

// E18 is the retry (probabilistic routing) extension: a fraction of bronze
// requests fails at the database tier and retries the app→db leg. Retries
// inflate the effective load — capacity the provider never billed for — so
// delay and energy erode super-linearly in the retry probability, and the
// cluster saturates well before the nominal load suggests. Analytic (traffic
// equations + priority network) and simulated side by side.
type E18 struct{}

func (E18) ID() string { return "E18" }
func (E18) Title() string {
	return "Extension — retry storms under probabilistic routing: delay and energy vs retry probability"
}

// bronzeRetryRouting builds the 3-tier chains: gold and silver flow
// web→app→db and exit; bronze retries the app tier after db with
// probability p (a failed transaction replays its application logic).
func bronzeRetryRouting(p float64) []*queueing.ClassRouting {
	tandem := &queueing.ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}},
	}
	retry := &queueing.ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 1, 0}, {0, 0, 1}, {0, p, 0}},
	}
	return []*queueing.ClassRouting{tandem, tandem, retry}
}

func (E18) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	probs := []float64{0, 0.1, 0.25, 0.4, 0.5}
	type point struct {
		m      *cluster.Metrics
		res    *sim.Result
		visits float64
	}
	points, err := sweep(cfg, len(probs), func(i int) (point, error) {
		c := workload.CapacityFraction(workload.Enterprise3Tier(1), 0.7)
		c.Routing = bronzeRetryRouting(probs[i])
		m, err := cluster.Evaluate(c)
		if err != nil {
			return point{}, err
		}
		res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 18, Calendar: cfg.Calendar})
		if err != nil {
			return point{}, err
		}
		return point{m: m, res: res, visits: c.VisitRates(2)[2]}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("bronze retries the app→db leg with probability p (load 70%)",
		"retry p", "bronze visits db", "bronze delay model (s)", "bronze delay sim (s)",
		"gold delay model (s)", "power model (W)", "power sim (W)")
	for i, p := range probs {
		pt := points[i]
		t.AddRow(p, pt.visits,
			pt.m.Delay[2], PlusMinus(pt.res.Delay[2].Mean, pt.res.Delay[2].HalfW),
			pt.m.Delay[0], pt.m.TotalPower,
			PlusMinus(pt.res.TotalPower.Mean, pt.res.TotalPower.HalfW))
	}
	return []*Table{t}, nil
}
