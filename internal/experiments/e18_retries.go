package experiments

import (
	"clusterq/internal/cluster"
	"clusterq/internal/sim"
	"clusterq/internal/workload"

	"clusterq/internal/queueing"
)

// E18 is the retry (probabilistic routing) extension: a fraction of bronze
// requests fails at the database tier and retries the app→db leg. Retries
// inflate the effective load — capacity the provider never billed for — so
// delay and energy erode super-linearly in the retry probability, and the
// cluster saturates well before the nominal load suggests. Analytic (traffic
// equations + priority network) and simulated side by side.
type E18 struct{}

func (E18) ID() string { return "E18" }
func (E18) Title() string {
	return "Extension — retry storms under probabilistic routing: delay and energy vs retry probability"
}

// bronzeRetryRouting builds the 3-tier chains: gold and silver flow
// web→app→db and exit; bronze retries the app tier after db with
// probability p (a failed transaction replays its application logic).
func bronzeRetryRouting(p float64) []*queueing.ClassRouting {
	tandem := &queueing.ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 0}},
	}
	retry := &queueing.ClassRouting{
		Entry: []float64{1, 0, 0},
		Next:  [][]float64{{0, 1, 0}, {0, 0, 1}, {0, p, 0}},
	}
	return []*queueing.ClassRouting{tandem, tandem, retry}
}

func (E18) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	t := NewTable("bronze retries the app→db leg with probability p (load 70%)",
		"retry p", "bronze visits db", "bronze delay model (s)", "bronze delay sim (s)",
		"gold delay model (s)", "power model (W)", "power sim (W)")
	for _, p := range []float64{0, 0.1, 0.25, 0.4, 0.5} {
		c := workload.CapacityFraction(workload.Enterprise3Tier(1), 0.7)
		c.Routing = bronzeRetryRouting(p)
		m, err := cluster.Evaluate(c)
		if err != nil {
			return nil, err
		}
		visits := c.VisitRates(2)
		res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 18})
		if err != nil {
			return nil, err
		}
		t.AddRow(p, visits[2],
			m.Delay[2], PlusMinus(res.Delay[2].Mean, res.Delay[2].HalfW),
			m.Delay[0], m.TotalPower,
			PlusMinus(res.TotalPower.Mean, res.TotalPower.HalfW))
	}
	return []*Table{t}, nil
}
