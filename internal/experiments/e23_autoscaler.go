package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/control"
	"clusterq/internal/core"
	"clusterq/internal/obs/window"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// E23 closes ROADMAP item 1's loop: under three transient workloads — a
// diurnal ramp, a flash crowd, and a repeating multi-period staircase — it
// compares three operating strategies on the canonical cluster:
//
//   - static: one offline C3b solve provisioned for the scenario's PEAK
//     load (the conservative plan an operator ships without online
//     control), held for the whole run;
//   - reactive: the per-station utilization-target DVFS controller,
//     starting from the static-peak plan;
//   - model: the model-driven autoscaler (internal/control) re-solving C3b
//     each epoch against windowed arrival-rate estimates, starting from the
//     static-peak plan.
//
// Expected shape: the model controller tracks the load curve, so it spends
// close to the static plan's power only at the peak and far less elsewhere —
// beating static on energy at equal-or-better SLA misses — while the
// SLA-blind reactive policy saves power but concedes misses on the tightest
// class.
type E23 struct{}

func (E23) ID() string { return "E23" }
func (E23) Title() string {
	return "Extension — closing the loop: model-driven autoscaler vs static plan vs reactive DVFS under transient load"
}

// e23Row is one (scenario, strategy) cell in structured form, shared by the
// table rendering and the acceptance test pinning "model beats static".
type e23Row struct {
	scenario, strategy string
	power              float64 // mean cluster power (W)
	weighted           float64 // completion-weighted mean delay (s)
	misses             int     // classes whose mean delay exceeds their SLA bound
	worstFrac          float64 // max over bounded classes of delay/bound
	stats              control.Stats
	model              bool
}

func (E23) Run(cfg Config) ([]*Table, error) {
	rows, err := e23Rows(cfg)
	if err != nil {
		return nil, err
	}
	t := NewTable("transient strategies (simulated; static is provisioned for each scenario's peak)",
		"scenario", "strategy", "power (W)", "vs static", "weighted delay (s)", "SLA misses", "worst delay/bound", "solves/holds/fallbacks")
	staticPower := map[string]float64{}
	for _, r := range rows {
		if r.strategy == "static" {
			staticPower[r.scenario] = r.power
		}
	}
	for _, r := range rows {
		vs := "-"
		if sp, ok := staticPower[r.scenario]; ok && sp > 0 {
			vs = fmt.Sprintf("%+.1f%%", 100*(r.power-sp)/sp)
		}
		counters := "-"
		if r.model {
			counters = fmt.Sprintf("%d/%d/%d", r.stats.Solves, r.stats.Holds, r.stats.Fallbacks)
		}
		t.AddRow(r.scenario, r.strategy, r.power, vs, r.weighted, r.misses, r.worstFrac, counters)
	}
	return []*Table{t}, nil
}

// e23Scenario is one transient workload: its profiles and the peak factor
// the static plan provisions for.
type e23Scenario struct {
	name     string
	profiles []sim.Profile
	peak     float64
}

func e23Scenarios(base *cluster.Cluster, horizon float64) ([]e23Scenario, error) {
	ramp, err := workload.DiurnalProfiles(base, 0.45, horizon/4)
	if err != nil {
		return nil, err
	}
	flash, err := workload.FlashCrowdProfiles(base, 1.9, 0.45*horizon, 0.15*horizon)
	if err != nil {
		return nil, err
	}
	stairs, err := workload.StaircaseProfiles(base, []float64{0.55, 1.0, 1.4, 0.8}, horizon/2)
	if err != nil {
		return nil, err
	}
	return []e23Scenario{
		{"diurnal ramp", ramp, workload.PeakFactor(base, ramp)},
		{"flash crowd", flash, workload.PeakFactor(base, flash)},
		{"staircase", stairs, workload.PeakFactor(base, stairs)},
	}, nil
}

func e23Rows(cfg Config) ([]*e23Row, error) {
	starts, al := solverScale(cfg)
	horizon, _ := cfg.simScale()
	horizon *= 2 // cover several diurnal periods / the whole flash-crowd arc
	controlPeriod := horizon / 40
	base := workload.Enterprise3Tier(1)
	slaBounds := make([]float64, len(base.Classes))
	for k, cl := range base.Classes {
		slaBounds[k] = cl.SLA.MaxMeanDelay
	}

	scenarios, err := e23Scenarios(base, horizon)
	if err != nil {
		return nil, err
	}
	var rows []*e23Row
	for _, sc := range scenarios {
		// The static baseline: C3b provisioned for the scenario's peak.
		peakCluster := workload.ScaleArrivals(base, sc.peak)
		sol, err := core.MinimizeEnergyPerClass(peakCluster, core.EnergyOptions{
			MaxClassDelay: slaBounds, Starts: starts, AugLag: al,
		})
		if err != nil {
			return nil, fmt.Errorf("E23 %s: static peak solve: %w", sc.name, err)
		}
		staticCluster := base.Clone()
		if err := staticCluster.SetSpeeds(sol.Cluster.Speeds()); err != nil {
			return nil, err
		}

		// All three strategies run the identical workload: one replication
		// (the plan controller's contract), same seed, same profiles.
		opts := sim.Options{
			Horizon: horizon, Replications: 1, Seed: cfg.Seed + 23,
			Profiles: sc.profiles, Calendar: cfg.Calendar,
		}

		addRun := func(strategy string, o sim.Options, ctl *control.Controller) error {
			res, err := sim.Run(staticCluster, o)
			if err != nil {
				return fmt.Errorf("E23 %s/%s: %w", sc.name, strategy, err)
			}
			row := &e23Row{scenario: sc.name, strategy: strategy,
				power: res.TotalPower.Mean, weighted: res.WeightedDelay.Mean}
			for k, bound := range slaBounds {
				if !(bound > 0) {
					continue
				}
				frac := res.Delay[k].Mean / bound
				if frac > row.worstFrac {
					row.worstFrac = frac
				}
				if frac > 1 {
					row.misses++
				}
			}
			if ctl != nil {
				row.stats, row.model = ctl.Stats(), true
			}
			rows = append(rows, row)
			return nil
		}

		if err := addRun("static", opts, nil); err != nil {
			return nil, err
		}

		oReactive := opts
		oReactive.Controller = sim.UtilizationPolicy{Target: 0.7}
		oReactive.ControlPeriod = controlPeriod
		if err := addRun("reactive", oReactive, nil); err != nil {
			return nil, err
		}

		// Margin 0.35: C3b places the binding delays AT the SLA bounds, so
		// the plan needs enough rate headroom to absorb estimate lag on the
		// rising edge of each scenario — at 0.15 the tightest class grazes
		// its bound during ramps.
		ctl, err := control.New(base, control.Config{
			Objective: control.EnergySLA, Smoothing: 0.7, Margin: 0.35,
			Starts: starts, AugLag: al,
		})
		if err != nil {
			return nil, fmt.Errorf("E23 %s: controller: %w", sc.name, err)
		}
		win, err := window.NewSet(window.Config{Width: controlPeriod, Buckets: 8}, len(base.Classes), len(base.Tiers))
		if err != nil {
			return nil, err
		}
		oModel := opts
		oModel.PlanController = ctl
		oModel.ControlPeriod = controlPeriod
		oModel.Windows = win
		if err := addRun("model", oModel, ctl); err != nil {
			return nil, err
		}
	}
	// The experiment's headline claim, surfaced as an error if a future
	// change regresses it: on at least one scenario the model controller
	// must beat the static plan on energy at equal-or-better SLA misses.
	if !e23ModelWins(rows) {
		return rows, fmt.Errorf("E23: model controller beat the static plan on no scenario")
	}
	return rows, nil
}

// e23ModelWins reports whether at least one scenario has the model strategy
// strictly below the static plan's power at equal-or-fewer SLA misses.
func e23ModelWins(rows []*e23Row) bool {
	byScenario := map[string]map[string]*e23Row{}
	for _, r := range rows {
		if byScenario[r.scenario] == nil {
			byScenario[r.scenario] = map[string]*e23Row{}
		}
		byScenario[r.scenario][r.strategy] = r
	}
	for _, m := range byScenario {
		st, md := m["static"], m["model"]
		if st != nil && md != nil && md.power < st.power && md.misses <= st.misses {
			return true
		}
	}
	return false
}
