package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestE12ReactiveBetweenStatics(t *testing.T) {
	tables, err := E12{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("expected 3 strategy rows, got %d", len(rows))
	}
	parsePM := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
		if err != nil {
			t.Fatalf("cannot parse %q", cell)
		}
		return v
	}
	meanP := parsePM(rows[0][1])
	peakP := parsePM(rows[1][1])
	ctlP := parsePM(rows[2][1])
	meanD, _ := strconv.ParseFloat(rows[0][2], 64)
	peakD, _ := strconv.ParseFloat(rows[1][2], 64)
	ctlD, _ := strconv.ParseFloat(rows[2][2], 64)

	if !(peakP > meanP) {
		t.Errorf("peak provisioning should cost more power: %g vs %g", peakP, meanP)
	}
	if !(peakD < meanD) {
		t.Errorf("peak provisioning should be faster: %g vs %g", peakD, meanD)
	}
	// The reactive controller must land strictly between the statics on
	// delay while staying below peak power.
	if !(ctlD < meanD) {
		t.Errorf("reactive delay %g not better than static-mean %g", ctlD, meanD)
	}
	if !(ctlP < peakP*1.02) {
		t.Errorf("reactive power %g above static-peak %g", ctlP, peakP)
	}
}

func TestE13StaircaseMonotone(t *testing.T) {
	tables, err := E13{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	count := 0
	for _, row := range tables[0].Rows {
		c, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			continue
		}
		count++
		if c < prev {
			t.Errorf("cost fell with load: %v", tables[0].Rows)
		}
		prev = c
	}
	if count < 3 {
		t.Errorf("only %d feasible staircase points", count)
	}
}

func TestE14OptimalDominates(t *testing.T) {
	tables, err := E14{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	activePrev := 0
	for _, row := range tables[0].Rows {
		opt, err1 := strconv.ParseFloat(row[2], 64)
		prop, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable row %v", row)
		}
		if opt > prop*(1+1e-9) {
			t.Errorf("optimal %g worse than proportional %g", opt, prop)
		}
		active, _ := strconv.Atoi(row[5])
		if active < activePrev {
			t.Errorf("active pools shrank with load: %v", tables[0].Rows)
		}
		activePrev = active
		// Simulation agrees with the analytic optimal delay.
		simD, err := strconv.ParseFloat(row[6], 64)
		if err == nil && opt > 0 {
			rel := (simD - opt) / opt
			if rel < -0.15 || rel > 0.15 {
				t.Errorf("sim %g far from analytic %g", simD, opt)
			}
		}
	}
}

func TestE15SleepCrossover(t *testing.T) {
	tables, err := E15{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// At the lightest load sleep must save power; at the heaviest it must
	// cost power (the parameters put the break-even inside the sweep).
	firstOn, _ := strconv.ParseFloat(rows[0][1], 64)
	firstSleep, _ := strconv.ParseFloat(rows[0][2], 64)
	lastOn, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	lastSleep, _ := strconv.ParseFloat(rows[len(rows)-1][2], 64)
	if !(firstSleep < firstOn) {
		t.Errorf("sleep not saving at light load: %g vs %g", firstSleep, firstOn)
	}
	if !(lastSleep > lastOn) {
		t.Errorf("sleep not losing at heavy load: %g vs %g", lastSleep, lastOn)
	}
	// Sleep delays always exceed always-on delays.
	for _, row := range rows {
		on, _ := strconv.ParseFloat(row[4], 64)
		sl, _ := strconv.ParseFloat(row[5], 64)
		if !(sl > on) {
			t.Errorf("sleep delay %g not above always-on %g", sl, on)
		}
	}
	// Break-even sits strictly inside (0, 1).
	be, _ := strconv.ParseFloat(tables[1].Rows[0][1], 64)
	if !(be > 0.02 && be < 0.98) {
		t.Errorf("break-even = %g", be)
	}
}

func TestE17DualMatchesAugLag(t *testing.T) {
	tables, err := E17{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		dualP, err1 := strconv.ParseFloat(row[2], 64)
		alP, err2 := strconv.ParseFloat(row[5], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable row %v", row)
		}
		// The dual is exact; the general solver can only tie or lose.
		if alP < dualP*0.995 {
			t.Errorf("auglag %g beat the dual %g — separability assumption broken?", alP, dualP)
		}
		if dualP > alP*1.01 {
			t.Errorf("dual %g clearly worse than auglag %g", dualP, alP)
		}
		dualEv, _ := strconv.ParseFloat(row[4], 64)
		alEv, _ := strconv.ParseFloat(row[7], 64)
		if !(dualEv*10 < alEv) {
			t.Errorf("dual evals %g not far below auglag %g", dualEv, alEv)
		}
	}
}

func TestE18RetryErosion(t *testing.T) {
	tables, err := E18{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Bronze delay grows monotonically (and super-linearly) with the retry
	// probability; gold stays nearly flat; power grows.
	prevBronze, prevPower := 0.0, 0.0
	firstGold, lastGold := 0.0, 0.0
	for i, row := range rows {
		b, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			// "inf" row at high retry p: acceptable terminal state.
			if row[2] != "inf" {
				t.Fatalf("unparsable bronze delay %q", row[2])
			}
			continue
		}
		if b < prevBronze {
			t.Errorf("bronze delay fell with retries: %v", rows)
		}
		prevBronze = b
		g, _ := strconv.ParseFloat(row[4], 64)
		if i == 0 {
			firstGold = g
		}
		lastGold = g
		p, _ := strconv.ParseFloat(row[5], 64)
		if p < prevPower {
			t.Errorf("power fell with retries: %v", rows)
		}
		prevPower = p
	}
	if lastGold > firstGold*1.5 {
		t.Errorf("gold not shielded from the retry storm: %g → %g", firstGold, lastGold)
	}
}

func TestE19FleetGrowsWithEnergyPrice(t *testing.T) {
	tables, err := E19{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	prevServers, prevPower := 0, 1e18
	for _, row := range rows {
		parts := strings.Split(row[1], "/")
		if len(parts) != 3 {
			t.Fatalf("unparsable server column %q", row[1])
		}
		n := 0
		for _, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				t.Fatal(err)
			}
			n += v
		}
		if n < prevServers {
			t.Errorf("fleet shrank as energy price rose: %v", rows)
		}
		prevServers = n
		p, _ := strconv.ParseFloat(row[3], 64)
		if p > prevPower*1.01 {
			t.Errorf("power rose with energy price: %v", rows)
		}
		prevPower = p
	}
	// The sweep must actually trigger at least one fleet change.
	first := rows[0][1]
	last := rows[len(rows)-1][1]
	if first == last {
		t.Errorf("fleet never changed across the price sweep: %v", rows)
	}
}

func TestE20ForkJoinShapes(t *testing.T) {
	tables, err := E20{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// NT vs sim within 12% in quick mode, monotone in k per load column.
	rows := tables[0].Rows
	nCols := len(tables[0].Columns)
	for col := 1; col+1 < nCols; col += 2 {
		prev := 0.0
		for _, row := range rows {
			nt, err1 := strconv.ParseFloat(row[col], 64)
			simV, err2 := strconv.ParseFloat(row[col+1], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("unparsable row %v", row)
			}
			if nt < prev {
				t.Errorf("NT response fell with k: %v", rows)
			}
			prev = nt
			// Quick-mode horizons are short; heavy-load FJ estimates
			// carry real variance, so this is a sanity band, not the
			// few-percent claim (which E20's full run substantiates).
			if rel := (simV - nt) / nt; rel < -0.25 || rel > 0.25 {
				t.Errorf("col %d: sim %g vs NT %g", col, simV, nt)
			}
		}
	}
	// Penalty table: monotone in k, decreasing in load for k>1.
	pen := tables[1].Rows
	last := pen[len(pen)-1]
	lo, _ := strconv.ParseFloat(last[1], 64)
	hi, _ := strconv.ParseFloat(last[3], 64)
	if !(hi < lo) {
		t.Errorf("penalty did not shrink with load: %v", last)
	}
}

func TestE16TailPremiumPositive(t *testing.T) {
	tables, err := E16{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, row := range tables[0].Rows {
		meanP, err1 := strconv.ParseFloat(row[1], 64)
		tailP, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		saw = true
		if tailP < meanP*0.999 {
			t.Errorf("tail bound cheaper than mean bound: %g vs %g", tailP, meanP)
		}
		// The achieved model p95 must respect the bound X.
		x, _ := strconv.ParseFloat(row[0], 64)
		q, err := strconv.ParseFloat(row[4], 64)
		if err == nil && q > x*1.01 {
			t.Errorf("achieved p95 %g exceeds bound %g", q, x)
		}
	}
	if !saw {
		t.Error("no feasible tail rows")
	}
}
