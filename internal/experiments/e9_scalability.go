package experiments

import (
	"fmt"
	"time"

	"clusterq/internal/core"
	"clusterq/internal/workload"
)

// E9 reconstructs Fig. 6: solver efficiency — wall time and objective
// evaluations of the C3a optimization as the cluster grows in tiers and
// classes (the "efficient" claim of the abstract).
type E9 struct{}

func (E9) ID() string { return "E9" }
func (E9) Title() string {
	return "Fig. 6 — solver efficiency vs problem size (tiers × classes)"
}

func (E9) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	shapes := []struct{ j, k int }{{2, 2}, {3, 3}, {5, 3}, {5, 6}, {8, 4}}
	if cfg.Quick {
		shapes = shapes[:3]
	}
	t := NewTable("MinimizeEnergy solve cost by problem size",
		"tiers", "classes", "wall time (ms)", "objective evals", "power (W)", "delay bound met")
	for _, sh := range shapes {
		c := workload.Scalable(sh.j, sh.k, 1)
		// A mid-range bound: double the best achievable delay.
		_, dWorst, err := delayRange(c)
		if err != nil {
			return nil, err
		}
		bound := dWorst * 0.5
		startT := time.Now()
		sol, err := core.MinimizeEnergy(c, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
		elapsed := time.Since(startT)
		if err != nil {
			t.AddRow(sh.j, sh.k, Cell(float64(elapsed.Milliseconds())), "-", "error: "+err.Error(), "-")
			continue
		}
		met := sol.Metrics.WeightedDelay <= bound*1.002
		t.AddRow(sh.j, sh.k,
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			sol.Result.Evals, sol.Objective, yesNo(met))
	}
	return []*Table{t}, nil
}
