package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSweepOrderAndParallelEquivalence pins the sweep runner's determinism
// contract: results arrive in index order and are byte-identical whether the
// points run serially, on a bounded pool, or one-per-CPU. The point function
// here is a pure function of the index, so any scheduling dependence would
// show up as a mismatch.
func TestSweepOrderAndParallelEquivalence(t *testing.T) {
	const n = 37
	point := func(i int) (string, error) {
		return fmt.Sprintf("point-%03d", i*i), nil
	}
	serial, err := sweep(Config{Workers: 1}, n, point)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != n {
		t.Fatalf("serial sweep returned %d results, want %d", len(serial), n)
	}
	for i, got := range serial {
		if want := fmt.Sprintf("point-%03d", i*i); got != want {
			t.Fatalf("result %d = %q, want %q (order not preserved)", i, got, want)
		}
	}
	for _, workers := range []int{0, 2, 4, 64} {
		par, err := sweep(Config{Workers: workers}, n, point)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Errorf("workers=%d: result %d = %q differs from serial %q", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestSweepLowestIndexError verifies the schedule-independent error contract:
// when several points fail, the reported error is always the lowest failing
// index, no matter which worker finished first.
func TestSweepLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	var calls atomic.Int64
	_, err := sweep(Config{Workers: 4}, 20, func(i int) (int, error) {
		calls.Add(1)
		if i == 5 || i == 13 || i == 17 {
			return 0, fmt.Errorf("%w at %d", sentinel, i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("sweep with failing points returned nil error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the point error", err)
	}
	if !strings.Contains(err.Error(), "sweep point 5") {
		t.Errorf("error %q does not report the lowest failing index 5", err)
	}
}

// TestSweepSerialFallback checks that Workers<=1 really is the serial path:
// point i must not start before point i-1 finished, which a concurrent pool
// cannot guarantee.
func TestSweepSerialFallback(t *testing.T) {
	var running atomic.Int64
	_, err := sweep(Config{Workers: 1}, 10, func(i int) (int, error) {
		if running.Add(1) != 1 {
			t.Errorf("point %d observed another point in flight", i)
		}
		defer running.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
