package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// E8 reconstructs Table III: the C4 cost minimization — the cheapest server
// allocation meeting every priority class's SLA, against the uniform and
// load-proportional sizing baselines, with the SLAs verified by simulation.
type E8 struct{}

func (E8) ID() string { return "E8" }
func (E8) Title() string {
	return "Table III — min-cost allocation under priority SLAs (C4) vs sizing baselines, sim-verified"
}

func (E8) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	// Load the scenario heavily enough that single servers cannot meet the
	// SLAs — the sizing problem has to do real work.
	c := workload.ScaleArrivals(workload.Enterprise3Tier(1), 2.2)

	type row struct {
		name string
		sol  *core.Solution
		err  error
	}
	rows := []row{}
	greedy, err := core.MinimizeCost(c, core.CostOptions{Starts: boolToInt(cfg.Quick, 1, 3)})
	rows = append(rows, row{"greedy (paper)", greedy, err})
	uni, err := core.UniformCostBaseline(c, 64)
	rows = append(rows, row{"uniform", uni, err})
	prop, err := core.ProportionalCostBaseline(c, 64)
	rows = append(rows, row{"proportional", prop, err})

	t := NewTable("allocation comparison",
		"policy", "cost ($/h)", "servers web/app/db", "power (W)", "SLAs met (model)", "SLAs met (sim)")
	for _, r := range rows {
		if r.err != nil {
			t.AddRow(r.name, "error: "+r.err.Error(), "-", "-", "-", "-")
			continue
		}
		sol := r.sol
		counts := fmt.Sprintf("%d/%d/%d",
			sol.Cluster.Tiers[0].Servers, sol.Cluster.Tiers[1].Servers, sol.Cluster.Tiers[2].Servers)
		reports, err := cluster.CheckSLAs(sol.Cluster, sol.Metrics)
		if err != nil {
			return nil, err
		}
		modelOK := true
		for _, rep := range reports {
			modelOK = modelOK && rep.Satisfied()
		}
		simOK := "-"
		res, err := sim.Run(sol.Cluster, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 8, Calendar: cfg.Calendar})
		if err == nil {
			ok := true
			for k, cl := range sol.Cluster.Classes {
				if cl.SLA.HasMeanBound() && res.Delay[k].Mean > cl.SLA.MaxMeanDelay*1.05 {
					ok = false
				}
			}
			simOK = yesNo(ok)
		}
		t.AddRow(r.name, sol.Objective, counts, sol.Metrics.TotalPower, yesNo(modelOK), simOK)
	}

	// Per-class detail for the greedy solution.
	detail := NewTable("greedy allocation: per-class delays vs SLA bounds",
		"class", "bound (s)", "model delay (s)", "sim delay (s)")
	if greedy != nil {
		res, err := sim.Run(greedy.Cluster, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 9, Calendar: cfg.Calendar})
		for k, cl := range greedy.Cluster.Classes {
			simD := "-"
			if err == nil {
				simD = PlusMinus(res.Delay[k].Mean, res.Delay[k].HalfW)
			}
			detail.AddRow(cl.Name, cl.SLA.MaxMeanDelay, greedy.Metrics.Delay[k], simD)
		}
	}
	return []*Table{t, detail}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func boolToInt(b bool, ifTrue, ifFalse int) int {
	if b {
		return ifTrue
	}
	return ifFalse
}
