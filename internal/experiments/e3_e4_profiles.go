package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/workload"
)

// E3 reconstructs Fig. 1: per-class mean end-to-end delay as a function of
// the total arrival rate — the priority-separation figure: gold stays nearly
// flat while bronze blows up as the cluster saturates.
type E3 struct{}

func (E3) ID() string { return "E3" }
func (E3) Title() string {
	return "Fig. 1 — per-class mean delay vs load (priority separation)"
}

func (E3) Run(cfg Config) ([]*Table, error) {
	base := workload.Enterprise3Tier(1)
	t := NewTable("mean end-to-end delay (s) by class",
		"load", "total λ (req/s)", "gold", "silver", "bronze")
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		c := workload.CapacityFraction(base, frac)
		m, err := cluster.Evaluate(c)
		if err != nil {
			return nil, err
		}
		t.AddRow(frac, c.TotalLambda(), m.Delay[0], m.Delay[1], m.Delay[2])
	}
	return []*Table{t}, nil
}

// E4 reconstructs Fig. 2: cluster average power vs load at several fixed
// DVFS settings, plus the energy-per-job view that exposes the sweet spot
// (static power amortizes with load; dynamic power grows with speed).
type E4 struct{}

func (E4) ID() string { return "E4" }
func (E4) Title() string {
	return "Fig. 2 — average power and energy-per-job vs load at fixed speeds"
}

func (E4) Run(cfg Config) ([]*Table, error) {
	speeds := []float64{2.5, 4, 6}
	base := workload.Enterprise3Tier(1)

	tp := NewTable("cluster average power (W)", "load",
		fmt.Sprintf("speed %.3g", speeds[0]),
		fmt.Sprintf("speed %.3g", speeds[1]),
		fmt.Sprintf("speed %.3g", speeds[2]))
	tej := NewTable("energy per served request (J)", "load",
		fmt.Sprintf("speed %.3g", speeds[0]),
		fmt.Sprintf("speed %.3g", speeds[1]),
		fmt.Sprintf("speed %.3g", speeds[2]))

	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		rowP := []any{frac}
		rowE := []any{frac}
		for _, s := range speeds {
			c := workload.CapacityFraction(base, frac) // fractions measured at default speed 4
			if err := c.SetSpeeds([]float64{s, s, s}); err != nil {
				return nil, err
			}
			m, err := cluster.Evaluate(c)
			if err != nil {
				return nil, err
			}
			rowP = append(rowP, m.TotalPower)
			rowE = append(rowE, m.EnergyPerJob)
		}
		tp.AddRow(rowP...)
		tej.AddRow(rowE...)
	}
	return []*Table{tp, tej}, nil
}
