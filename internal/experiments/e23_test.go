package experiments

import "testing"

// TestE23ModelBeatsStatic pins the experiment's headline claim (and ISSUE
// 10's acceptance criterion): on at least one transient scenario the
// model-driven controller must beat the peak-provisioned static plan on
// energy at equal-or-better SLA misses.
func TestE23ModelBeatsStatic(t *testing.T) {
	rows, err := e23Rows(quickCfg())
	for _, r := range rows {
		extra := ""
		if r.model {
			extra = " " + r.stats.String()
		}
		t.Logf("%-12s %-8s power=%.1fW weighted=%.3fs misses=%d worst=%.2f%s",
			r.scenario, r.strategy, r.power, r.weighted, r.misses, r.worstFrac, extra)
	}
	if err != nil {
		t.Fatalf("e23Rows: %v", err)
	}
	if !e23ModelWins(rows) {
		t.Fatal("model controller beat the static plan on no scenario")
	}
}
