package experiments

import (
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// validationFracs are the bottleneck-utilization levels the validation tables
// sweep, matching the light-to-heavy progression evaluation sections use.
var validationFracs = []float64{0.3, 0.5, 0.7, 0.85}

// E1 reconstructs Table I: analytical vs simulated per-class mean end-to-end
// delay across load levels, with the relative model error — the "accurate"
// claim of the abstract, quantified.
type E1 struct{}

func (E1) ID() string { return "E1" }
func (E1) Title() string {
	return "Table I — model validation: per-class mean end-to-end delay, analytic vs simulation"
}

func (E1) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	base := workload.Enterprise3Tier(1)
	t := NewTable("per-class delay (s)",
		"load", "class", "analytic", "simulated (95% CI)", "rel. error")
	for _, frac := range validationFracs {
		c := workload.CapacityFraction(base, frac)
		m, err := cluster.Evaluate(c)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		for k, cl := range c.Classes {
			est := res.Delay[k]
			t.AddRow(frac, cl.Name, m.Delay[k], PlusMinus(est.Mean, est.HalfW), Pct(est.RelErr(m.Delay[k])))
		}
	}
	return []*Table{t}, nil
}

// E2 reconstructs Table II: analytical vs simulated average power and
// per-class energy per request.
type E2 struct{}

func (E2) ID() string { return "E2" }
func (E2) Title() string {
	return "Table II — model validation: average power and per-request energy, analytic vs simulation"
}

func (E2) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	base := workload.Enterprise3Tier(1)

	tp := NewTable("cluster average power (W)",
		"load", "analytic", "simulated (95% CI)", "rel. error")
	te := NewTable("per-request dynamic energy (J)",
		"load", "class", "analytic", "simulated (95% CI)", "rel. error")

	for _, frac := range validationFracs {
		c := workload.CapacityFraction(base, frac)
		m, err := cluster.Evaluate(c)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 2})
		if err != nil {
			return nil, err
		}
		tp.AddRow(frac, m.TotalPower,
			PlusMinus(res.TotalPower.Mean, res.TotalPower.HalfW),
			Pct(res.TotalPower.RelErr(m.TotalPower)))
		for k, cl := range c.Classes {
			est := res.EnergyPerRequest[k]
			te.AddRow(frac, cl.Name, m.EnergyPerRequest[k],
				PlusMinus(est.Mean, est.HalfW), Pct(est.RelErr(m.EnergyPerRequest[k])))
		}
	}
	return []*Table{tp, te}, nil
}

// MaxValidationError runs the E1 sweep and returns the worst relative delay
// error between model and simulation — used by tests to enforce the paper's
// "efficient and accurate" claim quantitatively.
func MaxValidationError(cfg Config) (float64, error) {
	horizon, reps := cfg.simScale()
	base := workload.Enterprise3Tier(1)
	worst := 0.0
	for _, frac := range validationFracs {
		c := workload.CapacityFraction(base, frac)
		m, err := cluster.Evaluate(c)
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 1})
		if err != nil {
			return 0, err
		}
		for k := range c.Classes {
			if e := res.Delay[k].RelErr(m.Delay[k]); !math.IsNaN(e) && e > worst {
				worst = e
			}
		}
	}
	return worst, nil
}
