package experiments

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/obs/window"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// validationFracs are the bottleneck-utilization levels the validation tables
// sweep, matching the light-to-heavy progression evaluation sections use.
var validationFracs = []float64{0.3, 0.5, 0.7, 0.85}

// validationPoint is one load level of the E1/E2 sweeps: the analytical
// metrics next to the simulated result at the same operating point.
type validationPoint struct {
	model *cluster.Metrics
	res   *sim.Result
}

// runValidationPoint evaluates one load fraction analytically and by
// simulation. The seed is a pure function of the config and the experiment
// constant, so points are safe to fan out via sweep.
func runValidationPoint(cfg Config, frac float64, seed uint64) (validationPoint, error) {
	horizon, reps := cfg.simScale()
	c := workload.CapacityFraction(workload.Enterprise3Tier(1), frac)
	m, err := cluster.Evaluate(c)
	if err != nil {
		return validationPoint{}, err
	}
	res, err := sim.Run(c, sim.Options{Horizon: horizon, Replications: reps, Seed: seed, Calendar: cfg.Calendar})
	if err != nil {
		return validationPoint{}, err
	}
	return validationPoint{model: m, res: res}, nil
}

// E1 reconstructs Table I: analytical vs simulated per-class mean end-to-end
// delay across load levels, with the relative model error — the "accurate"
// claim of the abstract, quantified.
type E1 struct{}

func (E1) ID() string { return "E1" }
func (E1) Title() string {
	return "Table I — model validation: per-class mean end-to-end delay, analytic vs simulation"
}

func (E1) Run(cfg Config) ([]*Table, error) {
	base := workload.Enterprise3Tier(1)
	points, err := sweep(cfg, len(validationFracs), func(i int) (validationPoint, error) {
		return runValidationPoint(cfg, validationFracs[i], cfg.Seed+1)
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("per-class delay (s)",
		"load", "class", "analytic", "simulated (95% CI)", "rel. error")
	for i, frac := range validationFracs {
		p := points[i]
		for k, cl := range base.Classes {
			est := p.res.Delay[k]
			t.AddRow(frac, cl.Name, p.model.Delay[k], SimEstimate(est), Pct(est.RelErr(p.model.Delay[k])))
		}
	}

	tw, err := e1WindowTable(cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{t, tw}, nil
}

// e1WindowFrac is the load level the window-sensor cross-check runs at: the
// moderate point where both the analytic model and the estimators are
// comfortably in their regime.
const e1WindowFrac = 0.7

// e1WindowTable cross-checks the streaming sliding-window estimators against
// ground truth on the E1 scenario: the windowed arrival-rate estimate against
// the offered λ, and the windowed mean sojourn against the long-run simulated
// delay. It is the experiment-level exercise of the sensor API the online
// controller will read.
func e1WindowTable(cfg Config) (*Table, error) {
	horizon, _ := cfg.simScale()
	c := workload.CapacityFraction(workload.Enterprise3Tier(1), e1WindowFrac)
	w, err := window.NewSet(window.Config{Width: horizon / 4}, len(c.Classes), len(c.Tiers))
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(c, sim.Options{
		Horizon: horizon, Replications: 1, Seed: cfg.Seed + 10, Calendar: cfg.Calendar,
		Windows: w, Probe: &sim.Probe{Period: horizon / 200},
	})
	if err != nil {
		return nil, err
	}
	tw := NewTable(
		fmt.Sprintf("window sensors vs ground truth (load %.0f%%, window %.4g s, 1 replication)",
			100*e1WindowFrac, w.Config().Width),
		"class", "λ offered", "window λ̂", "delay sim (s)",
		"window mean (s)", "window "+w.Config().QuantileLabel()+" (s)")
	for k, cl := range c.Classes {
		cs := w.Class(horizon, k)
		tw.AddRow(cl.Name, cl.Lambda, cs.Rate, SimEstimate(res.Delay[k]),
			cs.MeanSojourn, cs.TailSojourn)
	}
	return tw, nil
}

// E2 reconstructs Table II: analytical vs simulated average power and
// per-class energy per request.
type E2 struct{}

func (E2) ID() string { return "E2" }
func (E2) Title() string {
	return "Table II — model validation: average power and per-request energy, analytic vs simulation"
}

func (E2) Run(cfg Config) ([]*Table, error) {
	base := workload.Enterprise3Tier(1)
	points, err := sweep(cfg, len(validationFracs), func(i int) (validationPoint, error) {
		return runValidationPoint(cfg, validationFracs[i], cfg.Seed+2)
	})
	if err != nil {
		return nil, err
	}

	tp := NewTable("cluster average power (W)",
		"load", "analytic", "simulated (95% CI)", "rel. error")
	te := NewTable("per-request dynamic energy (J)",
		"load", "class", "analytic", "simulated (95% CI)", "rel. error")

	for i, frac := range validationFracs {
		p := points[i]
		tp.AddRow(frac, p.model.TotalPower,
			SimEstimate(p.res.TotalPower),
			Pct(p.res.TotalPower.RelErr(p.model.TotalPower)))
		for k, cl := range base.Classes {
			est := p.res.EnergyPerRequest[k]
			te.AddRow(frac, cl.Name, p.model.EnergyPerRequest[k],
				SimEstimate(est), Pct(est.RelErr(p.model.EnergyPerRequest[k])))
		}
	}
	return []*Table{tp, te}, nil
}

// MaxValidationError runs the E1 sweep and returns the worst relative delay
// error between model and simulation — used by tests to enforce the paper's
// "efficient and accurate" claim quantitatively.
func MaxValidationError(cfg Config) (float64, error) {
	points, err := sweep(cfg, len(validationFracs), func(i int) (validationPoint, error) {
		return runValidationPoint(cfg, validationFracs[i], cfg.Seed+1)
	})
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, p := range points {
		for k := range p.model.Delay {
			if e := p.res.Delay[k].RelErr(p.model.Delay[k]); !math.IsNaN(e) && e > worst {
				worst = e
			}
		}
	}
	return worst, nil
}
