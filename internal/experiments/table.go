package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"clusterq/internal/stats"
)

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is formatted with Cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats one value for a table cell: floats get a compact significant-
// digit rendering, NaN becomes "-", +Inf becomes "inf".
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		switch {
		case math.IsNaN(x):
			return "-"
		case math.IsInf(x, 1):
			return "inf"
		case math.IsInf(x, -1):
			return "-inf"
		case x == 0:
			return "0"
		case math.Abs(x) >= 1e5 || math.Abs(x) < 1e-3:
			return fmt.Sprintf("%.3g", x)
		default:
			return fmt.Sprintf("%.4g", x)
		}
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// Pct renders a ratio as a percentage cell, e.g. 0.0312 → "3.1%".
func Pct(ratio float64) string {
	if math.IsNaN(ratio) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*ratio)
}

// PlusMinus renders "mean ± halfwidth" for simulation estimates.
func PlusMinus(mean, halfw float64) string {
	if math.IsNaN(mean) {
		return "-"
	}
	if math.IsNaN(halfw) {
		return Cell(mean)
	}
	return fmt.Sprintf("%s ±%s", Cell(mean), Cell(halfw))
}

// SimEstimate renders a simulation estimate, flagging a missing confidence
// interval explicitly: a single-replication estimate prints "mean (no CI)"
// instead of a bare mean a reader could mistake for a validated value.
func SimEstimate(e stats.Estimate) string {
	if math.IsNaN(e.Mean) {
		return "-"
	}
	if !e.HasCI() {
		return Cell(e.Mean) + " (no CI)"
	}
	return fmt.Sprintf("%s ±%s", Cell(e.Mean), Cell(e.HalfW))
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (columns as the header row).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
