package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/obs/trace"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// e21Availabilities is the sweep axis: steady-state server availability from
// always-up down to heavily degraded.
var e21Availabilities = []float64{1, 0.98, 0.95, 0.9, 0.8}

// e21MTBF is the per-server mean time between failures used at every point;
// the MTTR is derived from the target availability (MTTR = MTBF·(1−A)/A).
// It is deliberately short against the ~0.2–0.5 s service times so repairs
// are fast-switching — the regime where the analytic availability-weighted
// capacity approximation is accurate; longer outages at the same A push the
// simulated delays above the analytic line (see DESIGN.md "Failure model").
const e21MTBF = 10.0

// e21Load is the bottleneck utilization of the nominal (failure-free)
// cluster. Low enough that the A=0.8 point stays stable at degraded capacity.
const e21Load = 0.55

// e21Cluster builds the simulation cluster for one sweep point. The cluster
// itself stays nominal — the simulator degrades through explicit
// breakdown/repair injection (sim.Options.Failures), not through the analytic
// Tier.Availability knob, so the two models stay independent.
func e21Cluster() *cluster.Cluster {
	return workload.CapacityFraction(workload.Enterprise3Tier(1), e21Load)
}

// e21Failures returns the per-tier failure configs realizing availability a,
// or nil for the always-up point.
func e21Failures(c *cluster.Cluster, a float64) []*sim.FailureConfig {
	if a >= 1 {
		return nil
	}
	fcs := make([]*sim.FailureConfig, len(c.Tiers))
	for j := range fcs {
		fcs[j] = &sim.FailureConfig{MTBF: e21MTBF, MTTR: e21MTBF * (1 - a) / a}
	}
	return fcs
}

// E21 is the failure extension: server breakdown/repair injection swept over
// availability, validated against the analytic availability-degraded model
// (Tier.Availability), then re-run with the full graceful-degradation
// pipeline — per-class deadlines, retry-with-backoff, and priority-aware
// admission control — to measure what each class actually gets when capacity
// keeps dropping out: goodput, timeout/retry/abandon/shed counts, and mean
// delay against the SLA.
type E21 struct{}

func (E21) ID() string { return "E21" }
func (E21) Title() string {
	return "Extension — failure injection: delay, power and per-class goodput vs server availability"
}

type e21Point struct {
	model    *cluster.Metrics // analytic, availability-degraded
	plain    *sim.Result      // breakdowns only
	degraded *sim.Result      // breakdowns + deadlines + shedding
}

func runE21Point(cfg Config, a float64, seed uint64) (e21Point, error) {
	horizon, reps := cfg.simScale()

	// Analytic side: the availability-weighted capacity model.
	ac := e21Cluster()
	if a < 1 {
		for _, t := range ac.Tiers {
			t.Availability = a
		}
	}
	m, err := cluster.Evaluate(ac)
	if err != nil {
		return e21Point{}, err
	}

	// Simulated side, run 1: explicit breakdown/repair only — every arrival
	// eventually completes, so delay and power compare one-to-one.
	c := e21Cluster()
	plain, err := sim.Run(c, sim.Options{
		Horizon: horizon, Replications: reps, Seed: seed, Calendar: cfg.Calendar,
		Failures: e21Failures(c, a),
	})
	if err != nil {
		return e21Point{}, err
	}

	// Run 2: the graceful-degradation pipeline on top. Deadlines sit a few
	// multiples above each class's nominal delay; bronze has no retry budget
	// and is first in line for shedding.
	degraded, err := sim.Run(c, sim.Options{
		Horizon: horizon, Replications: reps, Seed: seed + 1, Calendar: cfg.Calendar,
		Failures: e21Failures(c, a),
		Deadlines: []*sim.DeadlineConfig{
			{Deadline: 8, MaxRetries: 2, RetryBackoff: 0.5},
			{Deadline: 10, MaxRetries: 1, RetryBackoff: 1},
			{Deadline: 12},
		},
		Shedding: &sim.SheddingConfig{Threshold: 0.92, Period: 25},
	})
	if err != nil {
		return e21Point{}, err
	}
	return e21Point{model: m, plain: plain, degraded: degraded}, nil
}

// e21RecorderAvailability is the sweep point the flight-recorder breakdown
// table zooms into: degraded enough that preemption-by-breakdown and the
// retry machinery contribute visibly to sojourns.
const e21RecorderAvailability = 0.9

// runE21Recorder reruns the graceful-degradation scenario at one availability
// with the flight recorder attached (single replication, the recorder
// contract) and returns the per-class span breakdowns.
func runE21Recorder(cfg Config, a float64, seed uint64) (*trace.Recorder, error) {
	horizon, _ := cfg.simScale()
	c := e21Cluster()
	rec := trace.NewRecorder(1 << 17)
	_, err := sim.Run(c, sim.Options{
		Horizon: horizon, Replications: 1, Seed: seed, Calendar: cfg.Calendar,
		Recorder: rec,
		Failures: e21Failures(c, a),
		Deadlines: []*sim.DeadlineConfig{
			{Deadline: 8, MaxRetries: 2, RetryBackoff: 0.5},
			{Deadline: 10, MaxRetries: 1, RetryBackoff: 1},
			{Deadline: 12},
		},
		Shedding: &sim.SheddingConfig{Threshold: 0.92, Period: 25},
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

func (E21) Run(cfg Config) ([]*Table, error) {
	base := e21Cluster()
	points, err := sweep(cfg, len(e21Availabilities), func(i int) (e21Point, error) {
		return runE21Point(cfg, e21Availabilities[i], cfg.Seed+21)
	})
	if err != nil {
		return nil, err
	}

	tv := NewTable(
		fmt.Sprintf("breakdowns vs availability-degraded model (load %.0f%%, MTBF %g s)", 100*e21Load, e21MTBF),
		"avail", "class", "delay model (s)", "delay sim (s)", "rel. error",
		"power model (W)", "power sim (W)")
	tg := NewTable("graceful degradation: deadlines + retries + shedding",
		"avail", "class", "goodput (req/s)", "served frac",
		"timeouts", "retries", "abandoned", "shed", "delay sim (s)", "mean SLA")
	for i, a := range e21Availabilities {
		p := points[i]
		for k, cl := range base.Classes {
			est := p.plain.Delay[k]
			tv.AddRow(a, cl.Name, p.model.Delay[k], SimEstimate(est),
				Pct(est.RelErr(p.model.Delay[k])),
				p.model.TotalPower, SimEstimate(p.plain.TotalPower))

			d := p.degraded
			served := d.Goodput[k].Mean / cl.Lambda
			slaCell := "-"
			if cl.SLA.HasMeanBound() {
				if d.Delay[k].Mean <= cl.SLA.MaxMeanDelay {
					slaCell = "ok"
				} else {
					slaCell = "violated"
				}
			}
			tg.AddRow(a, cl.Name, SimEstimate(d.Goodput[k]), Pct(served),
				d.Timeouts[k], d.Retries[k], d.Abandoned[k], d.Shed[k],
				SimEstimate(d.Delay[k]), slaCell)
		}
	}

	// The flight-recorder zoom: where each class's sojourn actually goes
	// (queueing vs service vs breakdown-preempted vs retry backoff) at one
	// degraded point — the per-component story the aggregate delay column
	// cannot tell.
	rec, err := runE21Recorder(cfg, e21RecorderAvailability, cfg.Seed+210)
	if err != nil {
		return nil, err
	}
	tb := NewTable(
		fmt.Sprintf("flight recorder: mean sojourn breakdown at availability %.2g (1 replication)",
			e21RecorderAvailability),
		"class", "spans", "abandoned", "queue (s)", "service (s)",
		"preempted (s)", "backoff (s)", "sojourn (s)")
	for k, cl := range base.Classes {
		b := rec.Breakdown(k)
		tb.AddRow(cl.Name, b.Spans(), b.Abandoned,
			b.MeanQueue(), b.MeanService(), b.MeanPreempted(), b.MeanBackoff(),
			b.MeanSojourn())
	}
	return []*Table{tv, tg, tb}, nil
}

// MaxFailureValidationError runs E21's breakdown-only sweep and returns the
// worst relative delay error between the availability-degraded analytic model
// and the failure-injected simulation over the points with availability ≥
// minAvail — the quantitative accuracy handle the tests pin, mirroring
// MaxValidationError for the failure-free model.
func MaxFailureValidationError(cfg Config, minAvail float64) (float64, error) {
	points, err := sweep(cfg, len(e21Availabilities), func(i int) (e21Point, error) {
		return runE21Point(cfg, e21Availabilities[i], cfg.Seed+21)
	})
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for i, a := range e21Availabilities {
		if a < minAvail {
			continue
		}
		p := points[i]
		for k := range p.model.Delay {
			if e := p.plain.Delay[k].RelErr(p.model.Delay[k]); e > worst {
				worst = e
			}
		}
	}
	return worst, nil
}
