package experiments

import (
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// E10 is the discipline ablation (Fig. 7): per-class delays under FCFS,
// non-preemptive priority, and preemptive-resume priority at the same load —
// the case for priority scheduling the paper's SLA tiering rests on.
// FCFS and non-preemptive come from both model and simulation; preemptive-
// resume on multi-server tiers has no closed form, so its column is
// simulation-only (exactly why the simulator exists).
type E10 struct{}

func (E10) ID() string { return "E10" }
func (E10) Title() string {
	return "Fig. 7 — scheduling-discipline ablation: FCFS vs non-preemptive vs preemptive-resume"
}

func (E10) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	base := workload.CapacityFraction(workload.Enterprise3Tier(1), 0.8)

	withDiscipline := func(d queueing.Discipline) *cluster.Cluster {
		c := base.Clone()
		for _, t := range c.Tiers {
			t.Discipline = d
		}
		return c
	}

	t := NewTable("per-class mean end-to-end delay (s) at 80% load",
		"class", "FCFS model", "FCFS sim", "NP model", "NP sim", "PR sim")
	fcfs := withDiscipline(queueing.FCFS)
	np := withDiscipline(queueing.NonPreemptive)
	pr := withDiscipline(queueing.PreemptiveResume)

	mF, err := cluster.Evaluate(fcfs)
	if err != nil {
		return nil, err
	}
	mN, err := cluster.Evaluate(np)
	if err != nil {
		return nil, err
	}
	rF, err := sim.Run(fcfs, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 10, Calendar: cfg.Calendar})
	if err != nil {
		return nil, err
	}
	rN, err := sim.Run(np, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 11, Calendar: cfg.Calendar})
	if err != nil {
		return nil, err
	}
	rP, err := sim.Run(pr, sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 12, Calendar: cfg.Calendar})
	if err != nil {
		return nil, err
	}
	for k, cl := range base.Classes {
		t.AddRow(cl.Name,
			mF.Delay[k], PlusMinus(rF.Delay[k].Mean, rF.Delay[k].HalfW),
			mN.Delay[k], PlusMinus(rN.Delay[k].Mean, rN.Delay[k].HalfW),
			PlusMinus(rP.Delay[k].Mean, rP.Delay[k].HalfW))
	}
	return []*Table{t}, nil
}

// E11 is the power-exponent sensitivity ablation (Fig. 8): how the optimal
// DVFS operating point of the C3a problem shifts with the power law exponent
// γ, with κ renormalized so full-speed busy power stays constant — isolating
// the curvature effect. Higher γ makes fast speeds disproportionately
// expensive, pushing the optimum toward slower, flatter allocations.
type E11 struct{}

func (E11) ID() string { return "E11" }
func (E11) Title() string {
	return "Fig. 8 — sensitivity of the optimal operating point to the DVFS exponent γ"
}

func (E11) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	t := NewTable("C3a optimum vs power exponent (busy power at max speed held fixed)",
		"gamma", "power (W)", "mean speed", "speeds web/app/db", "delay (s)")
	base := workload.Enterprise3Tier(1)
	_, dWorst, err := delayRange(base)
	if err != nil {
		return nil, err
	}
	bound := dWorst * 0.4

	for _, gamma := range []float64{2, 2.5, 3} {
		c := base.Clone()
		for _, tier := range c.Tiers {
			pl, ok := tier.Power.(power.PowerLaw)
			if !ok {
				continue
			}
			// Keep busy power at MaxSpeed constant across γ:
			// κ' · s_maxᵞ' = κ · s_maxᵞ.
			top := pl.Kappa * math.Pow(tier.MaxSpeed, pl.Gamma)
			npl, err := power.NewPowerLaw(pl.Idle, top/math.Pow(tier.MaxSpeed, gamma), gamma)
			if err != nil {
				return nil, err
			}
			tier.Power = npl
		}
		sol, err := core.MinimizeEnergy(c, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
		if err != nil {
			t.AddRow(gamma, "infeasible", "-", "-", "-")
			continue
		}
		s := sol.Cluster.Speeds()
		mean := (s[0] + s[1] + s[2]) / 3
		t.AddRow(gamma, sol.Objective, mean,
			Cell(s[0])+"/"+Cell(s[1])+"/"+Cell(s[2]), sol.Metrics.WeightedDelay)
	}
	return []*Table{t}, nil
}
