package experiments

import (
	"fmt"

	"clusterq/internal/queueing"
	"clusterq/internal/sim"
)

// E20 is the fork-join extension: the cost of parallelizing a cluster job
// across k nodes when completion requires ALL subtasks (the join barrier).
// The table reports the synchronization penalty R(k)/R(1) from the
// Nelson–Tantawi approximation with simulation alongside — the quantitative
// answer to "how much of my k-way speedup does the straggler barrier eat?".
type E20 struct{}

func (E20) ID() string { return "E20" }
func (E20) Title() string {
	return "Extension — fork-join synchronization penalty R(k)/R(1), Nelson–Tantawi vs simulation"
}

func (E20) Run(cfg Config) ([]*Table, error) {
	horizon, reps := cfg.simScale()
	widths := []int{1, 2, 4, 8, 16}
	loads := []float64{0.3, 0.6, 0.85}
	if cfg.Quick {
		widths = widths[:4]
	}

	cols := []string{"k"}
	for _, rho := range loads {
		cols = append(cols, fmt.Sprintf("ρ=%.2g NT", rho), fmt.Sprintf("ρ=%.2g sim", rho))
	}
	t := NewTable("mean response time (s), μ=1 per node", cols...)
	// The (width × load) grid is one flat sweep: every cell simulates its
	// own fork-join system from a seed fixed by the config, independent of
	// every other cell.
	type cell struct {
		nt  float64
		est float64
	}
	cells, err := sweep(cfg, len(widths)*len(loads), func(i int) (cell, error) {
		k, rho := widths[i/len(loads)], loads[i%len(loads)]
		nt, err := queueing.ForkJoinNelsonTantawi(k, rho, 1)
		if err != nil {
			return cell{}, err
		}
		est, err := sim.SimulateForkJoin(k, rho, 1, horizon, reps, cfg.Seed+20)
		if err != nil {
			return cell{}, err
		}
		return cell{nt: nt, est: est.Mean}, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, k := range widths {
		row := []any{k}
		for li := range loads {
			c := cells[wi*len(loads)+li]
			row = append(row, c.nt, Cell(c.est))
		}
		t.AddRow(row...)
	}

	// The penalty view: how the join barrier scales with width and load.
	tp := NewTable("synchronization penalty R(k)/R(1) (Nelson–Tantawi)",
		"k", "ρ=0.1", "ρ=0.5", "ρ=0.9")
	for _, k := range widths {
		row := []any{k}
		for _, rho := range []float64{0.1, 0.5, 0.9} {
			p, err := queueing.ForkJoinSyncPenalty(k, rho)
			if err != nil {
				return nil, err
			}
			row = append(row, p)
		}
		tp.AddRow(row...)
	}
	return []*Table{t, tp}, nil
}
