package experiments

import (
	"fmt"

	"clusterq/internal/core"
	"clusterq/internal/power"
	"clusterq/internal/workload"
)

// E19 is the total-cost-of-ownership extension of C4: when electricity is
// priced into the objective, the cheapest SLA-compliant design shifts from a
// lean fleet at high DVFS speeds toward a larger fleet running slower
// (dynamic power is convex in speed, so splitting work across more servers
// saves watts). The experiment sweeps the energy price and reports the
// chosen fleet, speeds, power and cost split.
type E19 struct{}

func (E19) ID() string { return "E19" }
func (E19) Title() string {
	return "Extension — C4 with priced energy: fleet size and speeds vs electricity price"
}

func (E19) Run(cfg Config) ([]*Table, error) {
	c := workload.ScaleArrivals(workload.Enterprise3Tier(1), 2.2)
	// The canonical scenario's servers have a high idle floor (90–130 W)
	// against ~25 W of dynamic range — in that regime extra servers NEVER
	// pay (their idle floor swamps any cubic saving), and the optimal
	// fleet is price-invariant (verified by the hill climb declining every
	// candidate). The interesting trade-off needs energy-proportional
	// hardware: low idle, strong cubic dynamic term.
	for _, tier := range c.Tiers {
		pl, err := power.NewPowerLaw(25, 1.2, 3)
		if err != nil {
			return nil, err
		}
		tier.Power = pl
	}
	prices := []float64{0.0005, 0.002, 0.008, 0.03}
	if cfg.Quick {
		prices = prices[:3]
	}
	t := NewTable("TCO-optimal design vs energy price (SLA suite held fixed)",
		"energy price ($/W·h)", "servers web/app/db", "mean speed frac",
		"power (W)", "server cost ($/h)", "energy cost ($/h)", "total ($/h)")
	starts := 1
	if !cfg.Quick {
		starts = 2
	}
	for _, price := range prices {
		sol, err := core.MinimizeCost(c, core.CostOptions{EnergyPrice: price, Starts: starts})
		if err != nil {
			t.AddRow(price, "infeasible: "+err.Error(), "-", "-", "-", "-", "-")
			continue
		}
		counts := fmt.Sprintf("%d/%d/%d",
			sol.Cluster.Tiers[0].Servers, sol.Cluster.Tiers[1].Servers, sol.Cluster.Tiers[2].Servers)
		lo, hi := sol.Cluster.SpeedBounds()
		var frac float64
		for i, sp := range sol.Cluster.Speeds() {
			if hi[i] > lo[i] {
				frac += (sp - lo[i]) / (hi[i] - lo[i])
			}
		}
		frac /= float64(len(lo))
		serverCost := sol.Objective - price*sol.Metrics.TotalPower
		t.AddRow(price, counts, frac,
			sol.Metrics.TotalPower, serverCost, price*sol.Metrics.TotalPower, sol.Objective)
	}
	return []*Table{t}, nil
}
