package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/sim"
	"clusterq/internal/workload"
)

// E12 is the dynamic power management extension (the future-work direction
// the paper's static formulations point at): under a diurnal arrival
// profile, compare three operating strategies on the canonical cluster —
//
//   - static-mean: the C3a-optimal speeds for the long-run average load;
//   - static-peak: the C3a-optimal speeds for the peak load;
//   - reactive: start from static-mean and let a utilization-target DVFS
//     controller retune every 10 s.
//
// Expected shape: reactive achieves close to static-peak's delay at close to
// static-mean's power — the classic dynamic-voltage-scaling win.
type E12 struct{}

func (E12) ID() string { return "E12" }
func (E12) Title() string {
	return "Extension — dynamic DVFS control under diurnal load: static-mean vs static-peak vs reactive"
}

func (E12) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	horizon, reps := cfg.simScale()
	horizon *= 2 // cover several diurnal periods

	base := workload.Enterprise3Tier(1)
	meanLam := base.Lambdas()

	// Diurnal profiles per class: ±70% swing around each class's mean.
	period := horizon / 6
	profiles := make([]sim.Profile, len(base.Classes))
	for k, lam := range meanLam {
		p, err := sim.NewSinusoid(lam, 0.7*lam, period)
		if err != nil {
			return nil, err
		}
		profiles[k] = p
	}
	peakFactor := 1.7

	// Delay bound for the static optimizations: 2.5× the best achievable
	// at mean load.
	dBest, _, err := delayRange(base)
	if err != nil {
		return nil, err
	}
	bound := dBest * 2.5

	solMean, err := core.MinimizeEnergy(base, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
	if err != nil {
		return nil, err
	}
	peakCluster := workload.ScaleArrivals(base, peakFactor)
	solPeak, err := core.MinimizeEnergy(peakCluster, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
	if err != nil {
		return nil, err
	}
	// The peak allocation runs the MEAN-load cluster (same traffic model,
	// faster speeds).
	peakAtMean := base.Clone()
	if err := peakAtMean.SetSpeeds(solPeak.Cluster.Speeds()); err != nil {
		return nil, err
	}

	t := NewTable("strategies under a ±70% diurnal swing (simulated)",
		"strategy", "power (W)", "weighted delay (s)", "gold delay (s)", "bronze delay (s)")
	simOpts := sim.Options{Horizon: horizon, Replications: reps, Seed: cfg.Seed + 12, Profiles: profiles, Calendar: cfg.Calendar}

	addRow := func(name string, c *cluster.Cluster, o sim.Options) error {
		res, err := sim.Run(c, o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.AddRow(name,
			PlusMinus(res.TotalPower.Mean, res.TotalPower.HalfW),
			Cell(res.WeightedDelay.Mean),
			Cell(res.Delay[0].Mean), Cell(res.Delay[2].Mean))
		return nil
	}

	if err := addRow("static-mean", solMean.Cluster, simOpts); err != nil {
		return nil, err
	}
	if err := addRow("static-peak", peakAtMean, simOpts); err != nil {
		return nil, err
	}
	oCtl := simOpts
	oCtl.Controller = sim.UtilizationPolicy{Target: 0.6}
	oCtl.ControlPeriod = 10
	if err := addRow("reactive DVFS", solMean.Cluster, oCtl); err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// E13 is the provisioning-staircase extension: how the C4 minimum cost and
// allocation grow as traffic scales — capacity planning's answer to "when do
// I buy the next server, and at which tier?". Expected shape: a monotone
// staircase in cost with tier-targeted increments (the cheap web tier grows
// before the expensive db tier only when it is the binding resource).
type E13 struct{}

func (E13) ID() string { return "E13" }
func (E13) Title() string {
	return "Extension — minimum provisioning cost vs traffic scale (C4 staircase)"
}

func (E13) Run(cfg Config) ([]*Table, error) {
	t := NewTable("C4 minimum-cost allocation as traffic grows",
		"traffic ×", "total λ (req/s)", "cost ($/h)", "servers web/app/db", "power (W)", "binding class")
	factors := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5}
	if cfg.Quick {
		factors = factors[:4]
	}
	prevCost := 0.0
	for _, f := range factors {
		c := workload.ScaleArrivals(workload.Enterprise3Tier(1), f)
		sol, err := core.MinimizeCost(c, core.CostOptions{SkipSpeedTuning: cfg.Quick, Starts: 2})
		if err != nil {
			t.AddRow(f, c.TotalLambda(), "infeasible", "-", "-", "-")
			continue
		}
		counts := fmt.Sprintf("%d/%d/%d",
			sol.Cluster.Tiers[0].Servers, sol.Cluster.Tiers[1].Servers, sol.Cluster.Tiers[2].Servers)
		// Which class sits closest to its bound?
		binding, bindFrac := "-", 0.0
		for k, cl := range sol.Cluster.Classes {
			if !cl.SLA.HasMeanBound() {
				continue
			}
			frac := sol.Metrics.Delay[k] / cl.SLA.MaxMeanDelay
			if frac > bindFrac {
				bindFrac = frac
				binding = cl.Name
			}
		}
		t.AddRow(f, c.TotalLambda(), sol.Objective, counts, sol.Metrics.TotalPower, binding)
		if sol.Objective < prevCost {
			// Monotonicity check surfaced in the table itself.
			t.AddRow("", "", "WARNING: cost decreased with load", "", "", "")
		}
		prevCost = sol.Objective
	}
	return []*Table{t}, nil
}
