package experiments

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/sim"
	"clusterq/internal/sim/multi"
	"clusterq/internal/workload"
)

// e22Load is each replica's nominal bottleneck utilization before the
// per-generation speed scaling and failure injection shift it.
const e22Load = 0.55

// e22Generations defines the heterogeneous fleet: three cluster generations
// of the enterprise scenario, differing in server speed (the hardware
// generation), failure regime (aging hardware breaks down) and DVFS policy
// (only the newest generation runs the runtime controller).
var e22Generations = []struct {
	name         string
	speedFactor  float64
	availability float64 // < 1 attaches breakdown/repair on every tier
	dvfs         bool    // attach the reactive DVFS controller
}{
	{name: "gen1-legacy", speedFactor: 0.8, availability: 0.9},
	{name: "gen2-current", speedFactor: 1.0, availability: 1},
	{name: "gen3-dvfs", speedFactor: 1.25, availability: 1, dvfs: true},
}

// e22MTBF matches E21's fast-switching repair regime.
const e22MTBF = 10.0

// e22Cluster builds one generation's cluster: the enterprise scenario at the
// nominal load with every tier's speed — and its DVFS clamp range — scaled
// by the generation factor.
func e22Cluster(speedFactor float64) *cluster.Cluster {
	c := workload.CapacityFraction(workload.Enterprise3Tier(1), e22Load).Clone()
	for _, t := range c.Tiers {
		t.Speed *= speedFactor
		t.MinSpeed *= speedFactor
		t.MaxSpeed *= speedFactor
	}
	return c
}

// e22Fleet assembles the multi-cluster replicas for one run.
func e22Fleet(cfg Config) []multi.Replica {
	horizon, _ := cfg.simScale()
	replicas := make([]multi.Replica, len(e22Generations))
	for i, g := range e22Generations {
		c := e22Cluster(g.speedFactor)
		o := sim.Options{Horizon: horizon, Calendar: cfg.Calendar}
		if g.availability < 1 {
			o.Failures = e21Failures(c, g.availability)
		}
		if g.dvfs {
			o.Controller = sim.UtilizationPolicy{Target: 0.6}
			o.ControlPeriod = 25
		}
		replicas[i] = multi.Replica{
			Name:    g.name,
			Cluster: c,
			Options: o,
			Seed:    cfg.Seed + 220 + uint64(i),
		}
	}
	return replicas
}

// E22 is the shared-clock fleet experiment: three heterogeneous cluster
// generations — mixed server speeds, one aging generation with breakdowns,
// one new generation under runtime DVFS — advanced in global event-time
// order by the internal/sim/multi orchestrator, each replica on its own
// deterministic seed. It reports per-replica per-class delay and goodput,
// per-replica power and bottleneck utilization, and the fleet rollup; the
// point is the orchestration surface (the unlock for fleet-level control),
// with per-replica results bit-identical to standalone runs (pinned by the
// multi package's tests).
type E22 struct{}

func (E22) ID() string { return "E22" }
func (E22) Title() string {
	return "Extension — shared-clock fleet: heterogeneous cluster generations under one orchestrator"
}

func (E22) Run(cfg Config) ([]*Table, error) {
	replicas := e22Fleet(cfg)
	orch, err := multi.New(replicas)
	if err != nil {
		return nil, err
	}
	results, err := orch.Results()
	if err != nil {
		return nil, err
	}

	tc := NewTable(
		fmt.Sprintf("per-replica per-class results (shared clock, load %.0f%%)", 100*e22Load),
		"replica", "speed", "class", "delay (s)", "goodput (req/s)", "served frac")
	for i, res := range results {
		g := e22Generations[i]
		c := replicas[i].Cluster
		for k, cl := range c.Classes {
			tc.AddRow(g.name, fmt.Sprintf("x%.3g", g.speedFactor), cl.Name,
				res.Delay[k].Mean, res.Goodput[k].Mean,
				Pct(res.Goodput[k].Mean/cl.Lambda))
		}
	}

	tf := NewTable("fleet rollup",
		"replica", "policy", "power (W)", "weighted delay (s)", "completed", "worst tier util")
	for i, res := range results {
		g := e22Generations[i]
		policy := "static"
		switch {
		case g.dvfs:
			policy = "reactive DVFS"
		case g.availability < 1:
			policy = fmt.Sprintf("breakdowns A=%.2g", g.availability)
		}
		worst := 0.0
		for _, tr := range res.Tiers {
			if tr.Utilization.Mean > worst {
				worst = tr.Utilization.Mean
			}
		}
		var done int64
		for _, n := range res.Completed {
			done += n
		}
		tf.AddRow(g.name, policy, res.TotalPower.Mean, res.WeightedDelay.Mean, done, Pct(worst))
	}
	s := multi.Summarize(results)
	tf.AddRow("FLEET", fmt.Sprintf("%d replicas", len(results)),
		s.TotalPower, s.WeightedDelay, s.Completed, "-")
	return []*Table{tc, tf}, nil
}
