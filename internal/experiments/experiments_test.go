package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/stats"
)

func quickCfg() Config { return Config{Quick: true} }

func TestAllExperimentsRun(t *testing.T) {
	// Every experiment must run to completion in quick mode and emit at
	// least one non-empty table. This is the smoke test that keeps the
	// whole harness wired together.
	for _, e := range All() {
		e := e
		t.Run(e.ID(), func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID(), err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID())
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID(), tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: ragged row in %q: %v", e.ID(), tab.Title, row)
					}
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID() != "E5" {
		t.Fatalf("ByID(E5) = %v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunAndPrint(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndPrint(E3{}, quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "gold") {
		t.Errorf("unexpected output: %.200q", out)
	}
}

func TestE1ValidationAccuracy(t *testing.T) {
	// The headline claim: the analytic model tracks simulation. Even in
	// quick mode the worst per-class delay error across loads should stay
	// within 25% (full mode is far tighter; see EXPERIMENTS.md).
	worst, err := MaxValidationError(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.25 {
		t.Errorf("worst model-vs-sim delay error = %.1f%%", worst*100)
	}
	if worst == 0 {
		t.Error("suspiciously exact agreement; is the simulator running?")
	}
}

func TestE3PrioritySeparationShape(t *testing.T) {
	tables, err := E3{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Delay columns: gold < silver < bronze in every row, and bronze grows
	// monotonically with load.
	prevBronze := 0.0
	for _, row := range rows {
		g, _ := strconv.ParseFloat(row[2], 64)
		s, _ := strconv.ParseFloat(row[3], 64)
		b, _ := strconv.ParseFloat(row[4], 64)
		if !(g < s && s < b) {
			t.Errorf("row %v: not priority-ordered", row)
		}
		if b < prevBronze {
			t.Errorf("bronze delay fell with load: %v", row)
		}
		prevBronze = b
	}
	// Saturation shape: the last bronze delay is much larger than the first.
	first, _ := strconv.ParseFloat(rows[0][4], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][4], 64)
	if last < 5*first {
		t.Errorf("bronze delay did not blow up toward saturation: %g → %g", first, last)
	}
}

func TestE5OptimizerDominatesBaseline(t *testing.T) {
	tables, err := E5{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sawComparison := false
	for _, row := range tables[0].Rows {
		optD, err1 := strconv.ParseFloat(row[1], 64)
		baseD, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			continue // infeasible rows
		}
		sawComparison = true
		if optD > baseD*1.02 {
			t.Errorf("optimizer (%g) worse than baseline (%g) at budget %s", optD, baseD, row[0])
		}
	}
	if !sawComparison {
		t.Error("no feasible budget rows to compare")
	}
}

func TestE6OptimizerDominatesBaseline(t *testing.T) {
	tables, err := E6{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, row := range tables[0].Rows {
		optP, err1 := strconv.ParseFloat(row[1], 64)
		baseP, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		saw = true
		if optP > baseP*1.02 {
			t.Errorf("optimizer (%g W) worse than baseline (%g W) at bound %s", optP, baseP, row[0])
		}
	}
	if !saw {
		t.Error("no feasible bound rows to compare")
	}
}

func TestE7BronzeBindsWhenTight(t *testing.T) {
	tables, err := E7{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// The tightest bound row should list bronze among the binding classes.
	tightest := rows[0]
	if !strings.Contains(tightest[4], "bronze") && tightest[3] != "infeasible" {
		t.Errorf("tight bronze bound not binding: %v", tightest)
	}
	// Power must not increase as the bronze bound loosens.
	var prev float64 = 1e18
	for _, row := range rows {
		p, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			continue
		}
		if p > prev*1.03 {
			t.Errorf("power rose as bound loosened: %v", rows)
		}
		prev = p
	}
}

func TestE8GreedyCheapest(t *testing.T) {
	tables, err := E8{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	var greedy, uniform, prop float64 = -1, -1, -1
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(row[0], "greedy"):
			greedy = v
		case row[0] == "uniform":
			uniform = v
		case row[0] == "proportional":
			prop = v
		}
		// Every policy that produced a number must satisfy the model SLAs.
		if row[4] != "yes" {
			t.Errorf("%s allocation violates SLAs in the model: %v", row[0], row)
		}
	}
	if greedy < 0 {
		t.Fatal("greedy row missing")
	}
	if uniform > 0 && greedy > uniform {
		t.Errorf("greedy (%g) costs more than uniform (%g)", greedy, uniform)
	}
	if prop > 0 && greedy > prop*1.001 {
		t.Errorf("greedy (%g) costs more than proportional (%g)", greedy, prop)
	}
}

func TestE10DisciplineShape(t *testing.T) {
	tables, err := E10{}.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("expected 3 class rows, got %d", len(rows))
	}
	// Gold under NP must beat gold under FCFS (model columns 1 and 3).
	goldFCFS, _ := strconv.ParseFloat(rows[0][1], 64)
	goldNP, _ := strconv.ParseFloat(rows[0][3], 64)
	if !(goldNP < goldFCFS) {
		t.Errorf("priority did not help gold: FCFS %g vs NP %g", goldFCFS, goldNP)
	}
	// Bronze pays for it.
	bronzeFCFS, _ := strconv.ParseFloat(rows[2][1], 64)
	bronzeNP, _ := strconv.ParseFloat(rows[2][3], 64)
	if !(bronzeNP > bronzeFCFS) {
		t.Errorf("priority did not cost bronze: FCFS %g vs NP %g", bronzeFCFS, bronzeNP)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow(1.0, "x")
	tab.AddRow(0.000123456, 42)
	var buf bytes.Buffer
	if err := tab.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "0.000123") {
		t.Errorf("ascii output: %q", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Errorf("csv output: %q", buf.String())
	}
}

func TestCellFormatting(t *testing.T) {
	cases := map[string]string{
		Cell(0.0):            "0",
		Cell("s"):            "s",
		Cell(42):             "42",
		Pct(0.0312):          "3.1%",
		PlusMinus(1.5, 0.25): "1.5 ±0.25",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	if Cell(math.NaN()) != "-" {
		t.Error("NaN cell")
	}
	if Cell(math.Inf(1)) != "inf" {
		t.Error("Inf cell")
	}
}

func TestE21FailureValidationAccuracy(t *testing.T) {
	// The failure extension's accuracy claim: at mild degradation (A ≥ 0.9,
	// fast-switching repairs) the availability-weighted analytic model
	// tracks the breakdown-injected simulation within the same quick-mode
	// band E1 grants the failure-free model. Below that the approximation
	// is knowingly optimistic and no band is promised.
	worst, err := MaxFailureValidationError(quickCfg(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.25 {
		t.Errorf("worst model-vs-sim delay error at A ≥ 0.9 = %.1f%%", worst*100)
	}
	if worst == 0 {
		t.Error("suspiciously exact agreement; is the simulator injecting failures?")
	}
}

func TestSimEstimateRendering(t *testing.T) {
	with := stats.Estimate{Mean: 1.5, HalfW: 0.25}
	if got := SimEstimate(with); got != "1.5 ±0.25" {
		t.Errorf("SimEstimate with CI = %q", got)
	}
	// A missing interval must be flagged, not silently rendered as a bare
	// (seemingly validated) number.
	without := stats.Estimate{Mean: 1.5, HalfW: math.NaN()}
	if got := SimEstimate(without); got != "1.5 (no CI)" {
		t.Errorf("SimEstimate without CI = %q", got)
	}
	if got := SimEstimate(stats.Estimate{Mean: math.NaN()}); got != "-" {
		t.Errorf("SimEstimate NaN mean = %q", got)
	}
}
