package experiments

import (
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/core"
	"clusterq/internal/opt"
	"clusterq/internal/workload"
)

// quickAugLag shrinks the inner solves for quick mode so the full experiment
// suite stays test-friendly while exercising identical code.
func solverScale(cfg Config) (starts int, al opt.AugLagOptions) {
	if cfg.Quick {
		return 2, opt.AugLagOptions{OuterIters: 10, Inner: opt.NelderMeadOptions{MaxIters: 250}}
	}
	return 4, opt.AugLagOptions{}
}

// E5 reconstructs Fig. 3: the delay/energy trade-off frontier of problem C2 —
// minimized average delay across an energy-budget sweep, against the uniform
// (single-knob) baseline.
type E5 struct{}

func (E5) ID() string { return "E5" }
func (E5) Title() string {
	return "Fig. 3 — minimized average delay vs energy budget (C2), optimizer vs uniform baseline"
}

func (E5) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	// The asymmetric (heavy-db) scenario: on a symmetric cluster the
	// optimum is uniform and the two curves coincide.
	c := workload.Enterprise3TierHeavyDB(1)

	// Budget range: from just above the cheapest stable power to the
	// full-speed power. Each budget point is an independent solve, fanned
	// out by the sweep runner.
	lo, hi := budgetRange(c)
	fracs := []float64{0.05, 0.15, 0.3, 0.5, 0.75, 1.0}
	rows, err := sweep(cfg, len(fracs), func(i int) ([]any, error) {
		budget := lo + fracs[i]*(hi-lo)
		sol, err := core.MinimizeDelay(c, core.DelayOptions{EnergyBudget: budget, Starts: starts, AugLag: al})
		if err != nil {
			return []any{budget, "infeasible", "-", "-"}, nil
		}
		base, err := core.UniformDelayBaseline(c, budget)
		baseDelay := math.NaN()
		if err == nil {
			baseDelay = base.Objective
		}
		impr := math.NaN()
		if !math.IsNaN(baseDelay) && baseDelay > 0 {
			impr = (baseDelay - sol.Objective) / baseDelay
		}
		return []any{budget, sol.Objective, baseDelay, Pct(impr)}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("weighted mean delay (s)",
		"budget (W)", "optimized", "uniform baseline", "improvement")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// E6 reconstructs Fig. 4: minimized average power across an aggregate delay-
// bound sweep (problem C3a), against the uniform baseline.
type E6 struct{}

func (E6) ID() string { return "E6" }
func (E6) Title() string {
	return "Fig. 4 — minimized average power vs aggregate delay bound (C3a), optimizer vs uniform baseline"
}

func (E6) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	c := workload.Enterprise3TierHeavyDB(1) // see E5: asymmetry is the point
	dBest, dWorst, err := delayRange(c)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.15, 0.3, 0.5, 0.7, 0.9}
	rows, err := sweep(cfg, len(fracs), func(i int) ([]any, error) {
		bound := dBest + fracs[i]*(dWorst-dBest)
		sol, err := core.MinimizeEnergy(c, core.EnergyOptions{MaxWeightedDelay: bound, Starts: starts, AugLag: al})
		if err != nil {
			return []any{bound, "infeasible", "-", "-"}, nil
		}
		base, err := core.UniformEnergyBaseline(c, bound)
		basePower := math.NaN()
		if err == nil {
			basePower = base.Objective
		}
		sav := math.NaN()
		if !math.IsNaN(basePower) && basePower > 0 {
			sav = (basePower - sol.Objective) / basePower
		}
		return []any{bound, sol.Objective, basePower, Pct(sav)}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("cluster average power (W)",
		"delay bound (s)", "optimized", "uniform baseline", "savings")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// E7 reconstructs Fig. 5: problem C3b — minimized power as the LOW-priority
// class's delay bound tightens while the others stay loose, reporting which
// classes bind. The punchline: the cheap-to-serve classes never bind; energy
// is spent on the class priority cannot help.
type E7 struct{}

func (E7) ID() string { return "E7" }
func (E7) Title() string {
	return "Fig. 5 — minimized power vs per-class delay bounds (C3b), binding classes"
}

func (E7) Run(cfg Config) ([]*Table, error) {
	starts, al := solverScale(cfg)
	c := workload.Enterprise3Tier(1)

	// Best achievable per-class delays at max speed set the bound scale.
	_, hi := c.SpeedBounds()
	fast := c.Clone()
	if err := fast.SetSpeeds(hi); err != nil {
		return nil, err
	}
	mFast, err := cluster.Evaluate(fast)
	if err != nil {
		return nil, err
	}

	mults := []float64{1.15, 1.5, 2.5, 4, 7}
	rows, err := sweep(cfg, len(mults), func(i int) ([]any, error) {
		bounds := []float64{
			mFast.Delay[0] * 6, // loose
			mFast.Delay[1] * 6, // loose
			mFast.Delay[2] * mults[i],
		}
		sol, err := core.MinimizeEnergyPerClass(c, core.EnergyOptions{MaxClassDelay: bounds, Starts: starts, AugLag: al})
		if err != nil {
			return []any{bounds[2], bounds[0], bounds[1], "infeasible", "-"}, nil
		}
		binding := core.BindingClasses(sol, bounds, 0.03)
		names := ""
		for _, k := range binding {
			if names != "" {
				names += ","
			}
			names += c.Classes[k].Name
		}
		if names == "" {
			names = "(none)"
		}
		return []any{bounds[2], bounds[0], bounds[1], sol.Objective, names}, nil
	})
	if err != nil {
		return nil, err
	}
	t := NewTable("minimized power with per-class bounds",
		"bronze bound (s)", "gold bound (s)", "silver bound (s)", "power (W)", "binding classes")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// budgetRange returns the feasible power range [cheapest stable, full speed].
func budgetRange(c *cluster.Cluster) (lo, hi float64) {
	loS, hiS := c.SpeedBounds()
	a := c.Clone()
	if err := a.SetSpeeds(loS); err == nil {
		if m, err := cluster.Evaluate(a); err == nil {
			lo = m.TotalPower * 1.02
		}
	}
	b := c.Clone()
	if err := b.SetSpeeds(hiS); err == nil {
		if m, err := cluster.Evaluate(b); err == nil {
			hi = m.TotalPower
		}
	}
	return lo, hi
}

// delayRange returns [best achievable delay, delay at a slow stable point].
func delayRange(c *cluster.Cluster) (best, worst float64, err error) {
	loS, hiS := c.SpeedBounds()
	fast := c.Clone()
	if err := fast.SetSpeeds(hiS); err != nil {
		return 0, 0, err
	}
	mf, err := cluster.Evaluate(fast)
	if err != nil {
		return 0, 0, err
	}
	slowSpeeds := make([]float64, len(loS))
	for i := range loS {
		// A stable-but-leisurely operating point: 20% above the floor.
		slowSpeeds[i] = loS[i] + 0.2*(hiS[i]-loS[i])
	}
	slow := c.Clone()
	if err := slow.SetSpeeds(slowSpeeds); err != nil {
		return 0, 0, err
	}
	ms, err := cluster.Evaluate(slow)
	if err != nil {
		return 0, 0, err
	}
	if !ms.Stable() {
		return mf.WeightedDelay, mf.WeightedDelay * 10, nil
	}
	return mf.WeightedDelay, ms.WeightedDelay, nil
}
