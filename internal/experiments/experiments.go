// Package experiments reproduces the paper's evaluation: one experiment per
// reconstructed table/figure (see DESIGN.md for the index), each emitting
// plain-text tables and CSV. Experiments come in two fidelities: full (the
// numbers quoted in EXPERIMENTS.md) and quick (shorter simulations, used by
// tests and benchmarks to exercise identical code paths fast).
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config controls an experiment run.
type Config struct {
	// Quick selects reduced simulation horizons/replications so the whole
	// suite runs in seconds (tests, benches). Full mode is the default.
	Quick bool
	// Seed offsets all simulation seeds for reproducibility studies.
	Seed uint64
	// Workers bounds how many sweep points run concurrently within one
	// experiment (see sweep): 0 selects one worker per CPU, 1 runs the
	// points serially. The output is identical at every setting — sweep
	// seeds are derived per point, so parallelism only changes wall time.
	Workers int
	// Calendar selects the simulator's event-calendar implementation for
	// every experiment run (sim.CalendarHeap, sim.CalendarLadder, or empty
	// for the default). Results are bit-identical either way; the knob
	// exists so the whole suite can be benchmarked on either scheduler.
	Calendar string
}

// simScale returns (horizon, replications) for the fidelity level.
func (c Config) simScale() (float64, int) {
	if c.Quick {
		return 4000, 2
	}
	return 30000, 5
}

// Experiment is one reconstructed table or figure.
type Experiment interface {
	// ID is the experiment key, e.g. "E1".
	ID() string
	// Title describes the paper artifact it reconstructs.
	Title() string
	// Run executes the experiment and returns its tables.
	Run(cfg Config) ([]*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		E1{}, E2{}, E3{}, E4{}, E5{}, E6{}, E7{}, E8{}, E9{}, E10{}, E11{},
		E12{}, E13{}, E14{}, E15{}, E16{}, E17{}, E18{}, E19{}, E20{}, E21{},
		E22{}, E23{},
	}
}

// ByID returns the experiment with the given ID (case-sensitive), or an
// error listing the valid IDs.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range All() {
		if e.ID() == id {
			return e, nil
		}
		ids = append(ids, e.ID())
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAndPrint runs an experiment and renders all its tables to w.
func RunAndPrint(e Experiment, cfg Config, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID(), e.Title()); err != nil {
		return err
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID(), err)
	}
	for _, t := range tables {
		if err := t.WriteASCII(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
