package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// NilNoop enforces the observability layer's contract that a nil receiver is
// a no-op: every exported pointer-receiver method in internal/obs — and on
// any type elsewhere whose doc comment promises nil-is-a-no-op — must begin
// with a nil-receiver guard. The contract is what lets instrumented code run
// unconditionally with observability off; one unguarded method turns a
// disabled probe into a panic.
//
// A method with an empty body or an unnamed (unused) receiver is trivially
// nil-safe and passes. Guards must be the first statement, so the property
// is checkable locally: `if x == nil { ... }` (possibly `||` with more
// conditions).
var NilNoop = &Analyzer{
	Name: "nilnoop",
	Doc: "exported pointer-receiver methods on nil-is-a-no-op types must " +
		"start with a nil-receiver guard",
	Run: runNilNoop,
}

// nilNoopDocRe recognizes type docs that promise the contract, e.g. "a nil
// *Counter is a no-op" or "nil is a no-op".
var nilNoopDocRe = regexp.MustCompile(`(?is)nil\s+(\*?\w+\s+)?is\s+a\s+no-op|no-op\s+on\s+a\s+nil`)

func runNilNoop(pass *Pass) error {
	wholePkg := isObsPackage(pass.Path)
	promised := map[string]bool{}
	if !wholePkg {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gd, ok := n.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					return true
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					if doc != nil && nilNoopDocRe.MatchString(doc.Text()) {
						promised[ts.Name.Name] = true
					}
				}
				return true
			})
		}
		if len(promised) == 0 {
			return nil
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			recvName, typeName, isPtr := receiverInfo(fd)
			if !isPtr {
				continue
			}
			if !wholePkg && !promised[typeName] {
				continue
			}
			if recvName == "" || recvName == "_" || fd.Body == nil || len(fd.Body.List) == 0 {
				continue // unused receiver or empty body: trivially nil-safe
			}
			if !startsWithNilGuard(fd.Body, recvName) {
				pass.Reportf(fd.Pos(),
					"exported method (*%s).%s must start with `if %s == nil` — "+
						"the type promises a nil receiver is a no-op",
					typeName, fd.Name.Name, recvName)
			}
		}
	}
	return nil
}

// isObsPackage reports whether the package is in the observability layer —
// internal/obs or any package beneath it (obs/trace, obs/window, ...) —
// where the contract covers every exported pointer-receiver method.
func isObsPackage(pkgPath string) bool {
	const root = "internal/obs"
	if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
		return true
	}
	if i := strings.Index(pkgPath, "/"+root); i >= 0 {
		rest := pkgPath[i+1+len(root):]
		return rest == "" || strings.HasPrefix(rest, "/")
	}
	return false
}

// receiverInfo extracts the receiver variable name, base type name, and
// whether the receiver is a pointer.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	t := field.Type
	if st, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = st.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		typeName = x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	return recvName, typeName, isPtr
}

// startsWithNilGuard reports whether the body's first statement is an
// if-statement whose condition checks recvName == nil (alone or as the first
// operand of a || chain).
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condChecksNil(ifStmt.Cond, recvName)
}

func condChecksNil(cond ast.Expr, recvName string) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LOR {
			return condChecksNil(c.X, recvName) || condChecksNil(c.Y, recvName)
		}
		if c.Op != token.EQL {
			return false
		}
		return isIdentNamed(c.X, recvName) && isNilIdent(c.Y) ||
			isIdentNamed(c.Y, recvName) && isNilIdent(c.X)
	case *ast.ParenExpr:
		return condChecksNil(c.X, recvName)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
