package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory the files came from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages without the go toolchain or
// network access. Standard-library imports are checked from GOROOT source;
// module-local imports are resolved inside Root.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet
	// Module is the module path (e.g. "clusterq"); imports under it
	// resolve relative to Root. When empty the loader runs in tree mode:
	// any import whose directory exists under Root resolves there — the
	// layout linttest fixtures use.
	Module string
	// Root is the module root directory (or the fixture tree root).
	Root string
	// IncludeTests adds in-package _test.go files to loaded target
	// packages (dependencies always load without tests).
	IncludeTests bool

	std  types.ImporterFrom
	deps map[string]*depEntry
}

type depEntry struct {
	pkg     *types.Package
	err     error
	loading bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(module, root string, includeTests bool) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		Module:       module,
		Root:         root,
		IncludeTests: includeTests,
		std:          importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		deps:         make(map[string]*depEntry),
	}
}

// localDir maps an import path to a directory under Root, or "" when the
// path is not module-local.
func (l *Loader) localDir(path string) string {
	if l.Module != "" {
		if path == l.Module {
			return l.Root
		}
		if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
			return filepath.Join(l.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	// Tree mode: resolve any import that exists under Root.
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom, routing module-local paths to
// the tree and everything else to the GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	local := l.localDir(path)
	if local == "" {
		return l.std.ImportFrom(path, dir, 0)
	}
	if e, ok := l.deps[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &depEntry{loading: true}
	l.deps[path] = e
	e.pkg, e.err = l.check(path, local, false)
	e.loading = false
	return e.pkg, e.err
}

// parseDir parses the package's .go files in name order, optionally
// including in-package _test.go files.
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// External test packages (package foo_test) are a separate
		// compilation unit; skip their files no matter the parse order.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	return files, nil
}

// check type-checks the files of one directory as the named package.
func (l *Loader) check(path, dir string, withTests bool) (*types.Package, error) {
	files, err := l.parseDir(dir, withTests)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	info := newInfo()
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load parses and type-checks the package in dir under the given import
// path, including test files when the loader is configured to.
func (l *Loader) Load(path, dir string) (*Package, error) {
	files, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	info := newInfo()
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}
