package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimDeterm enforces bit-reproducibility of the discrete-event simulator:
// inside internal/sim and internal/core no wall-clock reads, no global
// math/rand stream, and no map iteration whose order can leak into results
// (float accumulation, slice building, or event scheduling inside a map
// range). These are the three classic sources of run-to-run drift in a DES;
// the probe-identity and cross-GOMAXPROCS tests catch instances after the
// fact, this analyzer rejects them at review time.
var SimDeterm = &Analyzer{
	Name: "simdeterm",
	Doc: "forbid wall-clock time, the global math/rand stream, and " +
		"order-sensitive map iteration in simulation packages",
	Scope: []string{"internal/sim", "internal/sim/multi", "internal/core", "internal/control"},
	Run:   runSimDeterm,
}

// wallClockFuncs are the time package functions that read the wall clock or
// schedule on it. time.Duration arithmetic and constants stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand functions that build seeded private
// streams — the deterministic way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runSimDeterm(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// pkgOf resolves a selector's base identifier to an imported package name,
// or "" when the selector is not a package qualifier.
func pkgOf(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch pkgOf(pass, sel) {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock: simulation code must be "+
					"deterministic from its seed (use simulated time)",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global math/rand stream: derive a seeded "+
					"generator (sim.NewRNG or rand.New) instead",
				sel.Sel.Name)
		}
	}
}

// checkMapRange flags ranging over a map when the loop body accumulates
// floats into, or appends to, state declared outside the loop, or schedules
// events — all places where Go's randomized map order becomes visible in
// results.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.exprType(lhs)) && declaredBefore(pass, lhs, rng.Pos()) {
						pass.Reportf(n.Pos(),
							"float accumulation across a map range: iteration "+
								"order perturbs the rounding (collect keys and sort, "+
								"or accumulate over a slice)")
						return false
					}
				}
			case token.ASSIGN:
				for i, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) &&
						i < len(n.Lhs) && declaredBefore(pass, n.Lhs[i], rng.Pos()) {
						pass.Reportf(n.Pos(),
							"append inside a map range builds an order-dependent "+
								"slice: collect keys and sort before iterating")
						return false
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && schedulingNames[sel.Sel.Name] {
				pass.Reportf(n.Pos(),
					"event scheduling (%s) inside a map range makes the event "+
						"order depend on map iteration: sort the keys first",
					sel.Sel.Name)
				return false
			}
		}
		return true
	})
}

// schedulingNames are method names that enqueue simulator events; calling
// them per map entry bakes map order into the event calendar.
var schedulingNames = map[string]bool{
	"at": true, "push": true, "Push": true, "schedule": true, "Schedule": true,
}

func (p *Pass) exprType(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredBefore reports whether the expression is (or dereferences to) an
// object declared before pos — i.e. state that outlives the loop body.
func declaredBefore(pass *Pass, e ast.Expr, pos token.Pos) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			return obj != nil && obj.Pos() < pos
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
