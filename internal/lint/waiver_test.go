package lint_test

import (
	"go/token"
	"strings"
	"testing"
	"time"

	"clusterq/internal/lint"
)

func parse(t *testing.T, text string) lint.Waiver {
	t.Helper()
	w, ok := lint.ParseWaiver(text, token.Position{Filename: "x.go", Line: 1})
	if !ok {
		t.Fatalf("ParseWaiver(%q) did not recognize a waiver", text)
	}
	return w
}

func TestParseWaiverWellFormed(t *testing.T) {
	w := parse(t, `//lint:waive floateq,simdeterm reason="two analyzers, one site" until=2026-12-01`)
	if w.Err != "" || w.Legacy {
		t.Fatalf("well-formed waiver rejected: err=%q legacy=%v", w.Err, w.Legacy)
	}
	if len(w.Analyzers) != 2 || w.Analyzers[0] != "floateq" || w.Analyzers[1] != "simdeterm" {
		t.Errorf("analyzers = %v", w.Analyzers)
	}
	if w.Reason != "two analyzers, one site" {
		t.Errorf("reason = %q", w.Reason)
	}
	if !w.Until.Equal(time.Date(2026, 12, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("until = %v", w.Until)
	}
}

func TestParseWaiverMalformed(t *testing.T) {
	cases := []struct {
		text, errFrag string
	}{
		{`//lint:waive floateq until=2026-12-01`, "missing reason"},
		{`//lint:waive floateq reason="x"`, "missing until"},
		{`//lint:waive floateq reason="x" until=December`, "unparseable until date"},
		{`//lint:waive floateq reason=unquoted until=2026-12-01`, "quoted string"},
		{`//lint:waive floateq reason="" until=2026-12-01`, "empty reason"},
	}
	for _, c := range cases {
		w := parse(t, c.text)
		if w.Err == "" {
			t.Errorf("ParseWaiver(%q): no error, want %q", c.text, c.errFrag)
			continue
		}
		if !strings.Contains(w.Err, c.errFrag) {
			t.Errorf("ParseWaiver(%q): err = %q, want fragment %q", c.text, w.Err, c.errFrag)
		}
		if w.Expired(time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("ParseWaiver(%q): malformed waivers report via CheckWaivers, not Expired", c.text)
		}
	}
}

func TestParseWaiverLegacy(t *testing.T) {
	w := parse(t, `//lint:floateq deliberate exact compare`)
	if !w.Legacy {
		t.Fatal("legacy syntax not recognized")
	}
	if len(w.Analyzers) != 1 || w.Analyzers[0] != "floateq" {
		t.Errorf("analyzers = %v", w.Analyzers)
	}
}

func TestParseWaiverNotAWaiver(t *testing.T) {
	for _, text := range []string{
		"// plain prose",
		"//go:embed file.txt",
		"// mentions lint: but is prose",
	} {
		if _, ok := lint.ParseWaiver(text, token.Position{}); ok {
			t.Errorf("ParseWaiver(%q) = true, want false", text)
		}
	}
}

// TestWaiverExpiryBoundary pins the exclusive-until semantics: a waiver dies
// at 00:00 UTC of its until day, so it is expired on that day itself and
// alive the full day before.
func TestWaiverExpiryBoundary(t *testing.T) {
	w := parse(t, `//lint:waive floateq reason="boundary" until=2026-07-01`)
	if w.Err != "" {
		t.Fatal(w.Err)
	}
	cases := []struct {
		now     time.Time
		expired bool
	}{
		{time.Date(2026, 6, 30, 0, 0, 0, 0, time.UTC), false},
		{time.Date(2026, 6, 30, 23, 59, 59, 0, time.UTC), false},
		{time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC), true}, // expired today
		{time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC), true},
		{time.Date(2026, 7, 2, 0, 0, 0, 0, time.UTC), true},
	}
	for _, c := range cases {
		if got := w.Expired(c.now); got != c.expired {
			t.Errorf("Expired(%s) = %v, want %v", c.now, got, c.expired)
		}
	}
}
