package lint_test

import (
	"testing"

	"clusterq/internal/lint"
	"clusterq/internal/lint/linttest"
)

const fixtures = "testdata/src"

func TestSimDeterm(t *testing.T) {
	linttest.Run(t, fixtures, lint.SimDeterm,
		"simdeterm/internal/sim",
		"simdeterm/other", // out of scope: the wall-clock read there must pass
	)
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, fixtures, lint.FloatEq, "floateq/pkg")
}

func TestNilNoop(t *testing.T) {
	linttest.Run(t, fixtures, lint.NilNoop,
		"nilnoop/internal/obs",
		"nilnoop/internal/obs/trace",
		"nilnoop/docpkg",
	)
}

func TestErrSink(t *testing.T) {
	linttest.Run(t, fixtures, lint.ErrSink, "errsink/pkg")
}

func TestCtorValidate(t *testing.T) {
	linttest.Run(t, fixtures, lint.CtorValidate, "ctorvalidate/internal/queueing")
}
