package lint_test

import (
	"testing"

	"clusterq/internal/lint"
	"clusterq/internal/lint/linttest"
)

const fixtures = "testdata/src"

func TestSimDeterm(t *testing.T) {
	linttest.Run(t, fixtures, lint.SimDeterm,
		"simdeterm/internal/sim",
		"simdeterm/internal/sim/multi",
		"simdeterm/internal/control",
		"simdeterm/other", // out of scope: the wall-clock read there must pass
	)
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, fixtures, lint.FloatEq, "floateq/pkg")
}

func TestNilNoop(t *testing.T) {
	linttest.Run(t, fixtures, lint.NilNoop,
		"nilnoop/internal/obs",
		"nilnoop/internal/obs/trace",
		"nilnoop/docpkg",
	)
}

func TestErrSink(t *testing.T) {
	linttest.Run(t, fixtures, lint.ErrSink, "errsink/pkg")
}

func TestCtorValidate(t *testing.T) {
	linttest.Run(t, fixtures, lint.CtorValidate, "ctorvalidate/internal/queueing")
}

func TestMapIter(t *testing.T) {
	linttest.Run(t, fixtures, lint.MapIter,
		"mapiter/internal/sim",
		"mapiter/pkg", // out of scope: the float accumulation there must pass
	)
}

func TestRNGStream(t *testing.T) {
	linttest.Run(t, fixtures, lint.RNGStream,
		"rngstream/internal/sim",
		"rngstream/internal/control",
	)
}

// hotallocTranscript is a canned `go build -gcflags=-m=2` output for the
// hotalloc fixture: an allowlisted escape (doubled the way -m=2 doubles its
// reporting), an unlisted one, and an escape in a non-hot-path file that
// must be ignored.
const hotallocTranscript = `# sim
./engine.go:6:9: &calendar{} escapes to heap:
./engine.go:6:9:   flow: ~r0 = &{storage for &calendar{}}:
./engine.go:6:9: &calendar{} escapes to heap
./engine.go:12:9: &tracker{} escapes to heap
./helper.go:9:9: &ignored{} escapes to heap
./ladder.go:10:14: make([][]int, nb) escapes to heap
./ladder.go:16:9: &spill{} escapes to heap
`

// hotallocAllow admits the calendar escape and the ladder rung's reusable
// bucket table, and carries one stale entry the transcript no longer
// reports.
const hotallocAllow = `
engine.go: &calendar{} escapes to heap
engine.go: &ghost{} escapes to heap
ladder.go: make([][]int, nb) escapes to heap
`

func TestHotAlloc(t *testing.T) {
	restore := lint.SetHotAllocForTest([]byte(hotallocTranscript), hotallocAllow)
	defer restore()
	facts := linttest.Run(t, fixtures, lint.HotAlloc, "hotalloc/internal/sim")

	const pkg = "hotalloc/internal/sim"
	for _, fn := range []string{"newCalendar", "leak", "ladderRung.initRung", "newSpill"} {
		if _, ok := facts.Get(pkg, fn, "hotpath"); !ok {
			t.Errorf("missing hotpath fact for %s", fn)
		}
	}
	if _, ok := facts.Get(pkg, "makeIgnored", "hotpath"); ok {
		t.Error("helper.go is not a hot-path file; makeIgnored must not carry a hotpath fact")
	}
	for _, fn := range []string{"newCalendar", "leak", "ladderRung.initRung", "newSpill"} {
		if _, ok := facts.Get(pkg, fn, "allocates"); !ok {
			t.Errorf("missing allocates fact for %s (allowlisted or not, the escape is a fact)", fn)
		}
	}
	if _, ok := facts.Get(pkg, "makeIgnored", "allocates"); ok {
		t.Error("off-hot-path escape must not export an allocates fact")
	}
}

func TestSyncGuard(t *testing.T) {
	// The obs package must be analyzed first: the experiments fixture relies
	// on its exported atomicfield fact crossing the package boundary.
	facts := linttest.Run(t, fixtures, lint.SyncGuard,
		"syncguard/internal/obs",
		"syncguard/internal/experiments",
	)
	if _, ok := facts.Get("syncguard/internal/obs", "Counter.N", "atomicfield"); !ok {
		t.Error("missing atomicfield fact for Counter.N")
	}
	if _, ok := facts.Get("syncguard/internal/obs", "Guarded", "containslock"); !ok {
		t.Error("missing containslock fact for Guarded")
	}
	if _, ok := facts.Get("syncguard/internal/obs", "Counter", "containslock"); ok {
		t.Error("Counter holds no lock; it must not carry a containslock fact")
	}
}

func TestWaiverHygiene(t *testing.T) {
	linttest.RunWaiverCheck(t, fixtures, "waive/pkg")
}
