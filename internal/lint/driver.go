package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// skipDir names directories the package walk never descends into, matching
// the go tool's behavior.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// ExpandPatterns resolves go-style package patterns (".", "./...",
// "./internal/sim") against cwd into package directories containing Go
// files, sorted for deterministic output.
func ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(cwd, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if path != base && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(cwd, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// dependencyOrder sorts loaded packages so every package follows its
// imports (restricted to the analyzed set): the order that makes the shared
// fact store sound — by the time a pass runs, the facts of everything it
// imports are in the store. Ties break on import path, keeping the order
// deterministic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycles cannot happen in valid Go; guard anyway
		}
		state[p.Path] = 1
		imports := p.Types.Imports()
		paths := make([]string, 0, len(imports))
		for _, imp := range imports {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// Collect loads every package directory, analyzes them in dependency order
// with a shared fact store, runs waiver hygiene checks, and returns all
// diagnostics sorted by position. now anchors waiver expiry.
func Collect(root, module string, dirs []string, analyzers []*Analyzer, now time.Time) ([]Diagnostic, error) {
	loader := NewLoader(module, root, true)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := module
		if rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(pkgPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := NewFactStore()
	var diags []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		diags = append(diags, CheckWaivers(pkg, now, known)...)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, err := RunAt(a, pkg, now, facts)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	// Relativize filenames to the module root for stable, portable output.
	for i := range diags {
		if r, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(r)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// WriteText prints diagnostics one per line in file:line:col order — the
// grep-able format the lint Makefile target and editors consume.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// RunDirs loads each package directory and applies every in-scope analyzer,
// writing diagnostics to w in file:line:col order. It returns the number of
// diagnostics; a load or analysis failure aborts with an error.
//
// It is the text-format pipeline behind Main, kept as an exported entry
// point for embedding.
func RunDirs(w io.Writer, root, module string, dirs []string, analyzers []*Analyzer) (int, error) {
	diags, err := Collect(root, module, dirs, analyzers, time.Now())
	if err != nil {
		return 0, err
	}
	if err := WriteText(w, diags); err != nil {
		return len(diags), err
	}
	return len(diags), nil
}

// Main is the clusterqlint entry point, factored out of package main so
// tests can drive it. It parses driver flags (-format=text|sarif) from args,
// treats the rest as package patterns (default ./...), and returns the
// process exit code: 0 clean, 1 findings, 2 usage or load failure. The exit
// codes are format-independent: CI can generate SARIF and still gate on the
// code.
func Main(w, errw io.Writer, cwd string, args []string) int {
	fs := flag.NewFlagSet("clusterqlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	format := fs.String("format", "text", "output format: text or sarif")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Diagnostics to errw are best-effort: the exit code carries the result.
	cwd, err := filepath.Abs(cwd)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	root, module, err := FindModule(cwd)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	dirs, err := ExpandPatterns(cwd, patterns)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	analyzers := All()
	diags, err := Collect(root, module, dirs, analyzers, time.Now())
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	switch *format {
	case "text":
		if err := WriteText(w, diags); err != nil {
			_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
			return 2
		}
	case "sarif":
		if err := WriteSARIF(w, analyzers, diags); err != nil {
			_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
			return 2
		}
	default:
		_, _ = fmt.Fprintf(errw, "clusterqlint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}
	if len(diags) > 0 {
		_, _ = fmt.Fprintf(errw, "clusterqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
