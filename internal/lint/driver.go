package lint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// skipDir names directories the package walk never descends into, matching
// the go tool's behavior.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// ExpandPatterns resolves go-style package patterns (".", "./...",
// "./internal/sim") against cwd into package directories containing Go
// files, sorted for deterministic output.
func ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(cwd, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if path != base && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(cwd, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// RunDirs loads each package directory and applies every in-scope analyzer,
// writing diagnostics to w in file:line:col order. It returns the number of
// diagnostics; a load or analysis failure aborts with an error.
func RunDirs(w io.Writer, root, module string, dirs []string, analyzers []*Analyzer) (int, error) {
	loader := NewLoader(module, root, true)
	total := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return total, err
		}
		pkgPath := module
		if rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(pkgPath, dir)
		if err != nil {
			return total, err
		}
		var diags []Diagnostic
		for _, a := range analyzers {
			if !a.AppliesTo(pkgPath) {
				continue
			}
			ds, err := Run(a, pkg)
			if err != nil {
				return total, err
			}
			diags = append(diags, ds...)
		}
		sort.Slice(diags, func(i, j int) bool {
			a, b := diags[i].Pos, diags[j].Pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			if _, err := fmt.Fprintln(w, rel); err != nil {
				return total, err
			}
		}
		total += len(diags)
	}
	return total, nil
}

// Main is the clusterqlint entry point, factored out of package main so
// tests can drive it. It returns the process exit code: 0 clean, 1 findings,
// 2 usage or load failure.
func Main(w, errw io.Writer, cwd string, args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	// Diagnostics to errw are best-effort: the exit code carries the result.
	cwd, err := filepath.Abs(cwd)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	root, module, err := FindModule(cwd)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	dirs, err := ExpandPatterns(cwd, args)
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	n, err := RunDirs(w, root, module, dirs, All())
	if err != nil {
		_, _ = fmt.Fprintln(errw, "clusterqlint:", err)
		return 2
	}
	if n > 0 {
		_, _ = fmt.Fprintf(errw, "clusterqlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
