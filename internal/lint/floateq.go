package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
)

// FloatEq flags == and != between floating-point operands, and switches on a
// float tag. Rounding makes exact float equality a correctness trap in
// queueing/optimization code, so comparisons must go through a tolerance
// helper or carry an explicit //lint:floateq waiver.
//
// Two deliberate carve-outs keep the signal high:
//
//   - comparing against an exact untyped zero ("was this ever set") is
//     allowed — zero is exactly representable and the idiom is pervasive in
//     option structs;
//   - _test.go files are exempt: tests assert exact values on purpose
//     (golden outputs, identity checks).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on float operands and switches on float tags outside " +
		"tolerance helpers",
	Run: runFloatEq,
}

// toleranceHelperRe matches function names that exist to compare floats with
// a tolerance; their bodies may use exact comparisons (fast paths, NaN
// handling).
var toleranceHelperRe = regexp.MustCompile(`(?i)(approx|almost|close|within|toler|floateq)`)

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.InTestFile(fd.Pos()) || toleranceHelperRe.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkFloatCmp(pass, n)
				case *ast.SwitchStmt:
					if n.Tag != nil && isFloat(pass.exprType(n.Tag)) {
						pass.Reportf(n.Pos(),
							"switch on a float tag compares exactly: use if/else "+
								"with a tolerance helper")
					}
				}
				return true
			})
		}
	}
	return nil
}

func checkFloatCmp(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloat(pass.exprType(b.X)) && !isFloat(pass.exprType(b.Y)) {
		return
	}
	if isExactZero(pass, b.X) || isExactZero(pass, b.Y) {
		return
	}
	pass.Reportf(b.Pos(),
		"%s on float operands compares bit patterns: use a tolerance helper "+
			"(or waive with //lint:floateq and a reason)", b.Op)
}

// isExactZero reports whether the expression is a compile-time constant
// equal to zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
