package lint_test

import (
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"strings"
	"testing"

	"clusterq/internal/lint"
)

var updateSARIF = flag.Bool("update-sarif", false, "rewrite testdata/golden.sarif")

// TestWriteSARIFGolden renders a fixed diagnostic set and compares it byte
// for byte against the checked-in golden log. Regenerate deliberately with
//
//	go test ./internal/lint -run TestWriteSARIFGolden -update-sarif
//
// and review the diff: the golden file is the SARIF compatibility contract.
func TestWriteSARIFGolden(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/sim/engine.go", Line: 46, Column: 5},
			Message:  "example finding one",
			Analyzer: "floateq",
		},
		{
			Pos:      token.Position{Filename: "internal/obs/serve.go", Line: 1},
			Message:  `finding with "quotes" and a \ backslash`,
			Analyzer: "waive",
		},
	}
	var buf strings.Builder
	if err := lint.WriteSARIF(&buf, lint.All(), diags); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/golden.sarif"
	if *updateSARIF {
		if err := os.WriteFile(golden, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("SARIF output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), want)
	}
}

// sarifShape is the subset of the 2.1.0 schema GitHub code scanning requires;
// the shape test decodes the real driver output into it.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestMainSARIFFindings drives the real pipeline over the seeded bad module:
// same exit code as text mode, but the stream is a valid code-scanning log.
func TestMainSARIFFindings(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, "testdata/badmod", []string{"-format", "sarif"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (format must not change gating)\nstderr:\n%s",
			code, errw.String())
	}
	var log sarifShape
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "clusterqlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	for _, a := range lint.All() {
		if !ruleIDs[a.Name] {
			t.Errorf("rules missing analyzer %s", a.Name)
		}
	}
	if !ruleIDs["waive"] {
		t.Error("rules missing the waive pseudo-analyzer")
	}
	if len(run.Results) == 0 {
		t.Fatal("badmod produced no results")
	}
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result ruleId %q has no matching rule", r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("level = %q, want error", r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine = %d, want >= 1", loc.Region.StartLine)
		}
		uri := loc.ArtifactLocation.URI
		if uri == "" || strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") {
			t.Errorf("uri %q must be relative with forward slashes", uri)
		}
	}
}

// TestMainSARIFClean checks the empty-results log on the clean module, still
// exit 0.
func TestMainSARIFClean(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, "testdata/goodmod", []string{"-format", "sarif"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errw.String())
	}
	var log sarifShape
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run must emit one run with zero results")
	}
}

func TestMainUnknownFormatExitTwo(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, "testdata/goodmod", []string{"-format", "yaml"})
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown -format") {
		t.Errorf("stderr should name the bad format: %q", errw.String())
	}
}
