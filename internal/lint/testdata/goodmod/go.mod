module goodmod

go 1.24
