// Package goodmod is violation-free; the driver must exit 0 here.
package goodmod

import (
	"fmt"
	"io"
)

func Dump(w io.Writer) error {
	_, err := fmt.Fprintln(w, "checked")
	return err
}
