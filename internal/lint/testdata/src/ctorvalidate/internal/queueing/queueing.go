package queueing

import (
	"errors"
	"fmt"
	"math"
)

type Queue struct {
	lambda float64
	mu     float64
}

func NewUnchecked(lambda float64) *Queue { // want `constructor NewUnchecked does not validate float64 parameter "lambda"`
	return &Queue{lambda: lambda}
}

func NewNaNBlind(mu float64) (*Queue, error) { // want `constructor NewNaNBlind does not validate float64 parameter "mu"`
	if mu < 0 { // plain < lets NaN through: not a validation
		return nil, errors.New("negative mu")
	}
	return &Queue{mu: mu}, nil
}

func NewRaw(rates []float64) *Queue { // want `constructor NewRaw does not validate \[\]float64 parameter "rates"`
	return &Queue{lambda: rates[0]}
}

func NewNegated(lambda float64) (*Queue, error) {
	if !(lambda > 0) || math.IsInf(lambda, 1) { // NaN-safe: NaN fails the inner comparison
		return nil, fmt.Errorf("invalid rate %g", lambda)
	}
	return &Queue{lambda: lambda}, nil
}

func NewExplicit(mu float64) (*Queue, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) || mu <= 0 {
		return nil, errors.New("invalid service rate")
	}
	return &Queue{mu: mu}, nil
}

func NewPool(rates []float64) (*Queue, error) {
	for _, r := range rates {
		if !(r > 0) {
			return nil, fmt.Errorf("invalid rate %g", r)
		}
	}
	return &Queue{lambda: rates[0]}, nil
}

func NewScaled(rates []float64, factor float64) (*Queue, error) {
	if !(factor > 0) {
		return nil, errors.New("invalid factor")
	}
	rs := append([]float64(nil), rates...) // defensive copy aliases the parameter
	return NewPool(rs)
}

func NewViaHelper(lambda float64) (*Queue, error) {
	if err := checkRate(lambda); err != nil {
		return nil, err
	}
	return &Queue{lambda: lambda}, nil
}

func checkRate(x float64) error {
	if math.IsNaN(x) || !(x >= 0) {
		return errors.New("invalid rate")
	}
	return nil
}

func NewSized(n int) *Queue { // non-float parameters are out of scope
	return &Queue{lambda: float64(n)}
}

func newInternal(lambda float64) *Queue { // unexported: out of scope
	return &Queue{lambda: lambda}
}

func Clone(q *Queue, scale float64) *Queue { // not a New*/Must* constructor
	return &Queue{lambda: q.lambda * scale, mu: q.mu}
}

//lint:waive ctorvalidate reason="fixture: dimensionless ratio, waiver must suppress" until=2099-01-01
func NewWaived(ratio float64) *Queue {
	return &Queue{lambda: ratio}
}
