package pkg

func equalBad(a, b float64) bool {
	return a == b // want `== on float operands compares bit patterns`
}

func notEqualBad(a, b float64) bool {
	return a != b // want `!= on float operands compares bit patterns`
}

func switchBad(x float64) int {
	switch x { // want `switch on a float tag compares exactly`
	case 1:
		return 1
	default:
		return 0
	}
}

func zeroProbe(x float64) bool {
	return x == 0 // exact zero is representable: allowed
}

func intCompare(a, b int) bool {
	return a == b // not floats: allowed
}

func almostEqual(a, b float64) bool {
	if a == b { // tolerance helper by name: exempt
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func waivedCompare(a, b float64) bool {
	//lint:waive floateq reason="fixture: deliberate exact compare" until=2099-01-01
	return a == b
}
