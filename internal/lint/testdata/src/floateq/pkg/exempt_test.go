package pkg

func exactInTest(a, b float64) bool {
	return a == b // _test.go files assert exact values on purpose: exempt
}
