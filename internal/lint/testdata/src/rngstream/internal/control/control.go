// The autoscaler corpus: internal/control draws no randomness by contract,
// and the rngstream scope extension makes sure any stream that ever appears
// there follows the split discipline. The cases mirror the sim corpus in
// controller shape: a per-epoch jitter stream minted from another stream's
// draws, an indexed registry store, and a generator captured by a worker.
package control

import (
	"math/rand"

	"rngstream/internal/sim"
)

type epochState struct {
	jitter []*sim.RNG
}

// Minting a stream from an existing stream's draw is an un-audited split.
func mintFromDraw(r *sim.RNG) *rand.Rand {
	return rand.New(rand.NewSource(int64(r.Uint64()))) // want `rand\.New from a non-seed value` `rand\.NewSource from a non-seed value`
}

// Seed-derived construction is the audited entry point: silent.
func mintFromConfig(seed int64) rand.Source {
	return rand.NewSource(seed)
}

// Split results are append-only; an indexed store reorders every stream
// split after it.
func storeByIndex(s *epochState, root *sim.RNG) {
	s.jitter[0] = root.Split() // want `RNG stream stored by index`
}

func appendStream(s *epochState, root *sim.RNG) {
	s.jitter = append(s.jitter, root.Split()) // the canonical idiom: silent
}

// A generator captured by a spawned worker is a shared stream and a race.
func captureAcrossSpawn(root *sim.RNG, done chan struct{}) {
	go func() {
		_ = root.Uint64() // want `RNG "root" is shared across goroutines`
		close(done)
	}()
}

func splitBeforeSpawn(root *sim.RNG, done chan struct{}) {
	go func(r *sim.RNG) { // the split happens before the spawn: silent
		_ = r.Uint64()
		close(done)
	}(root.Split())
}
