package sim

// Minimal mirror of the real internal/sim RNG surface: construction and
// splitting inside rng.go are the audited primitives and are never flagged.

type RNG struct{ s uint64 }

func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

func (r *RNG) Uint64() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
