package sim

import "math/rand"

type state struct {
	streams []*RNG
}

type options struct {
	Seed uint64
}

// Un-audited constructions: a stream minted from another stream's draws.

func handRolledSplit(r *RNG) *RNG {
	return NewRNG(r.Uint64()) // want `NewRNG from a non-seed value constructs an un-audited RNG stream`
}

func stdlibFromDraw(r *RNG) *rand.Rand {
	return rand.New(rand.NewSource(int64(r.Uint64()))) // want `rand\.New from a non-seed value` `rand\.NewSource from a non-seed value`
}

// Seed-derived constructions are the audited entry points: false-positive
// cases the carve-out must keep silent.

func fromSeed(seed uint64) *RNG { return NewRNG(seed) }

func fromOptions(o options, rep int) *RNG { return NewRNG(o.Seed + uint64(rep)) }

func fromConstant() *RNG { return NewRNG(7) } // a literal IS a seed

// Stream registry discipline: append-only, never indexed stores.

func appendStream(s *state, root *RNG) {
	s.streams = append(s.streams, root.Split()) // the canonical idiom: silent
}

func indexedStore(s *state, root *RNG) {
	s.streams[0] = root.Split() // want `RNG stream stored by index`
}

// Goroutine discipline: no generator crosses a spawn boundary by capture.

func sharedAcrossGoroutines(root *RNG, done chan struct{}) {
	go func() {
		_ = root.Uint64() // want `RNG "root" is shared across goroutines`
		close(done)
	}()
}

func splitBeforeSpawn(root *RNG, done chan struct{}) {
	go func(r *RNG) { // the split happens before the spawn: silent
		_ = r.Uint64()
		close(done)
	}(root.Split())
}
