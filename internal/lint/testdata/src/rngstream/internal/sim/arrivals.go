package sim

// arrivals.go mirrors the batched arrival pregeneration: a refill loop that
// takes many draws from the per-class stream is still ONE stream — draws are
// not constructions and must stay silent. Minting a throwaway generator from
// a draw inside the refill (a tempting "local RNG" shortcut) forks an
// un-audited stream and is flagged.

type arrivalQueue struct {
	times [4]float64
	n     int
}

// refillBatch is the canonical batched idiom: chunked draws, one stream.
func refillBatch(q *arrivalQueue, r *RNG) {
	for q.n < len(q.times) {
		q.times[q.n] = float64(r.Uint64()) // a draw, not a stream: silent
		q.n++
	}
}

// refillForkedStream hand-rolls a per-refill generator from a draw: the new
// stream's overlap with its parent is unaudited.
func refillForkedStream(q *arrivalQueue, r *RNG) {
	local := NewRNG(r.Uint64()) // want `NewRNG from a non-seed value constructs an un-audited RNG stream`
	for q.n < len(q.times) {
		q.times[q.n] = float64(local.Uint64())
		q.n++
	}
}
