// Package experiments exercises the cross-package fact flow: Counter.N was
// exported as an "atomicfield" fact while analyzing syncguard/internal/obs,
// so a plain write in this importer is flagged even though the atomic access
// lives in another package.
package experiments

import obs "syncguard/internal/obs"

func Reset(c *obs.Counter) {
	c.N = 0 // want `non-atomic write of Counter\.N`
}

func Snapshot(c *obs.Counter) int64 {
	return c.Load() // through the atomic API: silent
}
