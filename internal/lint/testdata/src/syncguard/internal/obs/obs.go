package obs

import (
	"sync"
	"sync/atomic"
)

// Counter.N is accessed through sync/atomic in Inc, making every plain
// access to it a data race.

type Counter struct{ N int64 }

func (c *Counter) Inc() { atomic.AddInt64(&c.N, 1) }

func (c *Counter) Load() int64 { return atomic.LoadInt64(&c.N) }

func (c *Counter) Mixed() int64 {
	c.N++    // want `non-atomic increment of Counter\.N`
	c.N = 0  // want `non-atomic write of Counter\.N`
	v := c.N // want `non-atomic read of Counter\.N`
	return v
}

// WaitGroup discipline.

func SpawnBad(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `WaitGroup\.Add inside the goroutine it accounts for`
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	wg.Add(1) // want `WaitGroup\.Add after Wait on the same WaitGroup`
	go func() { defer wg.Done(); work() }()
	wg.Wait()
}

func SpawnGood(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1) // Add before the spawn: silent
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Copied locks.

type Guarded struct {
	mu sync.Mutex
	v  int
}

func (g *Guarded) Get() int { // pointer receiver: silent
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g Guarded) Peek() int { // want `value receiver copies a lock-containing type`
	return g.v
}

func resetAll(gs []Guarded) {
	for i := range gs { // index range: silent
		gs[i].v = 0
	}
	for _, g := range gs { // want `range value copies a lock-containing type`
		_ = g.v
	}
}

func snapshot(g Guarded) int { // want `by-value parameter copies a lock-containing type`
	return g.v
}

func alias(p *Guarded) {
	g := *p // want `assignment copies a lock-containing type`
	_ = g.v
}
