package sim // want `stale hotalloc allowlist entry "engine.go: &ghost\{\} escapes to heap"`

type calendar struct{ events []int }

func newCalendar() *calendar {
	return &calendar{} // allowlisted escape: silent
}

type tracker struct{ n int }

func leak() *tracker {
	return &tracker{} // want `new heap escape on the pooled hot path: engine.go: &tracker\{\} escapes to heap`
}
