package sim

// helper.go is not one of the hot-path files: its escapes in the canned
// compiler transcript must be ignored (the deliberate false-positive case).

type ignored struct{ v int }

func makeIgnored() *ignored {
	return &ignored{} // escapes, but off the hot path: silent
}
