package sim

// ladder.go mirrors the second calendar implementation: the rung bucket
// table is a live-set-bounded allocation the allowlist admits; any other
// escape in the file fails, same as the real ladder queue.

type ladderRung struct{ buckets [][]int }

func (r *ladderRung) initRung(nb int) {
	r.buckets = make([][]int, nb) // allowlisted escape: silent
}

type spill struct{ t float64 }

func newSpill() *spill {
	return &spill{} // want `new heap escape on the pooled hot path: ladder.go: &spill\{\} escapes to heap`
}
