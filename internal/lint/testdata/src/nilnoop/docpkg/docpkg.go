// Package docpkg checks the doc-comment trigger: outside internal/obs only
// types that promise nil-is-a-no-op are held to the guard requirement.
package docpkg

// A Probe records samples. A nil *Probe is a no-op.
type Probe struct{ xs []float64 }

func (p *Probe) Record(x float64) { // want `exported method \(\*Probe\)\.Record must start with`
	p.xs = append(p.xs, x)
}

func (p *Probe) Len() int {
	if p == nil {
		return 0
	}
	return len(p.xs)
}

// Plain makes no promise about nil receivers.
type Plain struct{ n int }

func (p *Plain) Bump() { p.n++ } // no contract: allowed
