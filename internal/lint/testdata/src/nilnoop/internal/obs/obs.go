// Package obs mimics the observability layer: every exported
// pointer-receiver method must tolerate a nil receiver.
package obs

type Counter struct{ n int64 }

func (c *Counter) Inc() { // want `exported method \(\*Counter\)\.Inc must start with`
	c.n++
}

func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

func (c *Counter) AddIf(d int64, ok bool) {
	if c == nil || !ok { // guard may share a || chain: allowed
		return
	}
	c.n += d
}

func (c *Counter) Reset() {} // empty body is trivially nil-safe: allowed

func (*Counter) Kind() string { return "counter" } // unused receiver: allowed

func (c Counter) Snapshot() int64 { return c.n } // value receiver: allowed

func (c *Counter) bump() { c.n++ } // unexported: outside the contract

//lint:waive nilnoop reason="fixture: waiver on the line above must suppress" until=2099-01-01
func (c *Counter) Waived() { c.n++ }
