// Package trace mimics the flight recorder: it lives under internal/obs, so
// the nil-is-a-no-op contract covers every exported pointer-receiver method —
// the simulator calls the Record* hooks with whatever recorder (possibly nil)
// the caller attached.
package trace

type Recorder struct {
	events int
	open   map[uint64]float64
}

func (r *Recorder) RecordArrival(t float64, class int, job uint64) {
	if r == nil {
		return
	}
	r.events++
	r.open[job] = t
}

func (r *Recorder) RecordExit(t float64, class int, job uint64) { // want `exported method \(\*Recorder\)\.RecordExit must start with`
	r.events++
	delete(r.open, job)
}

func (r *Recorder) RecordBackoff(t float64, class int, job uint64, attempt int32) {
	if r == nil || attempt < 0 { // guard first in a || chain: allowed
		return
	}
	r.events++
}

func (r *Recorder) Events() int { // want `exported method \(\*Recorder\)\.Events must start with`
	return r.events
}

func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.open)
}

// guarded late: the check must be the FIRST statement to be locally checkable
func (r *Recorder) Reset() { // want `exported method \(\*Recorder\)\.Reset must start with`
	n := 0
	if r == nil {
		return
	}
	r.events = n
}

func (r *Recorder) resize(n int) { r.events = n } // unexported: outside the contract

func (*Recorder) Kind() string { return "recorder" } // unused receiver: allowed
