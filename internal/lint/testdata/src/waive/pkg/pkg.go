// Package pkg seeds one of every waiver-hygiene violation for the "waive"
// pseudo-analyzer corpus. The harness anchors expiry at linttest.Now
// (2026-07-01 12:00 UTC), so the until dates below are boundary-exact.
package pkg

func compare(a, b float64) bool {
	//lint:floateq pre-expiry-era comment // want `legacy waiver syntax //lint:floateq`
	eq := a == b

	//lint:waive floateq until=2099-01-01 // want `malformed waiver: missing reason`
	eq = a == b

	//lint:waive floateq reason="no expiry attached" // want `malformed waiver: missing until`
	eq = a == b

	//lint:waive floateq reason="bad date" until=soon // want `unparseable until date "soon"`
	eq = a == b

	//lint:waive floateq reason=bare words until=2099-01-01 // want `reason must be a quoted string`
	eq = a == b

	//lint:waive floateq reason="" until=2099-01-01 // want `empty reason`
	eq = a == b

	//lint:waive nosuchanalyzer reason="typo in the name" until=2099-01-01 // want `waiver names unknown analyzer "nosuchanalyzer"`
	eq = a == b

	// Expired on the until day itself: the bound is exclusive, and Now falls
	// exactly on it.
	//lint:waive floateq reason="boundary case" until=2026-07-01 // want `waiver expired on 2026-07-01 \(reason was: boundary case\)`
	eq = a == b

	// Still live: expires the day after Now. No hygiene finding.
	//lint:waive floateq reason="one day of life left" until=2026-07-02
	eq = a == b

	// Well-formed and far-future: the shape every real waiver has.
	//lint:waive floateq reason="deliberate exact compare" until=2099-01-01
	eq = a == b

	return eq
}
