// Package other sits outside internal/sim and internal/core, so simdeterm
// must not apply here at all.
package other

import "time"

func Stamp() time.Time { return time.Now() }
