// The autoscaler corpus: internal/control's determinism contract says plan
// decisions are pure functions of the observation stream, so the package
// sits inside the simdeterm scope. These are the violations the scope
// extension must catch in controller-shaped code.
package control

import (
	"math/rand"
	"time"
)

type planner struct{ est map[string]float64 }

// Timing a solve with the wall clock leaks real time into the decision.
func timedSolve(p *planner) time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	_ = len(p.est)        // stand-in for the solver call
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// Jittering a decision from the global stream breaks bit-reproducibility.
func jitteredSpeed(speed float64) float64 {
	return speed * (1 + 0.01*rand.Float64()) // want `rand\.Float64 uses the global math/rand stream`
}

// Folding estimates out of a map makes the rounding depend on map order.
func totalEstimate(p *planner) float64 {
	var lam float64
	for _, v := range p.est {
		lam += v // want `float accumulation across a map range`
	}
	return lam
}

// The audited shape: estimates live in a class-indexed slice, so the fold
// order is fixed.
func totalEstimateSlice(est []float64) float64 {
	var lam float64
	for _, v := range est {
		lam += v
	}
	return lam
}

// A seeded private generator is allowed (construction discipline is
// rngstream's to police).
func seededProbe(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
