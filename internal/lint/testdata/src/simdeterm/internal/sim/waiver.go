package sim

import "time"

func waivedClock() time.Time {
	//lint:simdeterm fixture: waiver on the line above must suppress
	return time.Now()
}

//lint:simdeterm fixture: the waiver only reaches one line down
func tooFarAbove() time.Time {
	_ = 0
	return time.Now() // want `time\.Now reads the wall clock`
}
