package sim

import "time"

func waivedClock() time.Time {
	//lint:waive simdeterm reason="fixture: waiver on the line above must suppress" until=2099-01-01
	return time.Now()
}

//lint:waive simdeterm reason="fixture: the waiver only reaches one line down" until=2099-01-01
func tooFarAbove() time.Time {
	_ = 0
	return time.Now() // want `time\.Now reads the wall clock`
}
