// Package multi mirrors the shared-clock orchestrator: the same determinism
// invariants apply one level up — replica selection and fleet bookkeeping
// must be pure functions of the replica seeds and simulated event times,
// never of the host clock, the global rand stream, or map iteration order.
package multi

import (
	"math/rand"
	"time"
)

type replication struct{ next float64 }

func (r *replication) peek() float64      { return r.next }
func (r *replication) schedule(t float64) { r.next = t }

// pickEarliest scans an ordered replica slice — index order breaks ties, so
// slice iteration is the deterministic selection primitive: allowed.
func pickEarliest(reps []*replication) int {
	best := 0
	for i, r := range reps {
		if r.peek() < reps[best].peek() {
			best = i
		}
	}
	return best
}

func paceFleetWallClock(reps []*replication) {
	t := time.Now() // want `time\.Now reads the wall clock`
	reps[0].schedule(float64(t.Unix()))
}

func jitterSeedsGlobalStream(reps []*replication) {
	for _, r := range reps {
		r.schedule(rand.Float64()) // want `rand\.Float64 uses the global math/rand stream`
	}
}

func seedReplica(r *replication, seed int64) {
	rng := rand.New(rand.NewSource(seed)) // private per-replica stream: allowed
	r.schedule(rng.ExpFloat64())
}

func advanceOverMap(byName map[string]*replication, now float64) {
	for _, r := range byName {
		r.schedule(now + 1) // want `event scheduling \(schedule\) inside a map range`
	}
}

func fleetPowerOverMap(powerByName map[string]float64) float64 {
	total := 0.0
	for _, p := range powerByName {
		total += p // want `float accumulation across a map range`
	}
	return total
}

func fleetPowerOverSlice(powers []float64) float64 {
	total := 0.0
	for _, p := range powers {
		total += p // replica order is the slice order: allowed
	}
	return total
}
