package sim

import (
	"math/rand"
	"time"
)

type calendar struct{ events []float64 }

func (c *calendar) schedule(t float64) { c.events = append(c.events, t) }

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func globalStream() float64 {
	return rand.Float64() // want `rand\.Float64 uses the global math/rand stream`
}

func seededStream(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors build private streams: allowed
	return r.Float64()
}

func durationMath(d time.Duration) time.Duration {
	return 2 * d // Duration arithmetic never reads the clock: allowed
}

func sumOverMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation across a map range`
	}
	return total
}

func buildOverMap(m map[string]float64) []float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v) // want `append inside a map range builds an order-dependent slice`
	}
	return xs
}

func scheduleOverMap(c *calendar, m map[string]float64) {
	for _, v := range m {
		c.schedule(v) // want `event scheduling \(schedule\) inside a map range`
	}
}

func countOverMap(m map[string]float64) int {
	n := 0
	for range m {
		n++ // order-independent counting: allowed
	}
	return n
}

func sumOverSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v // slice iteration order is fixed: allowed
	}
	return total
}

// Breakdown/repair injection is driven by the same calendar as every other
// event: failure times must come from the replication's seeded streams and
// simulated time, never from the host environment.

func scheduleBreakdownWallClock(c *calendar) {
	t := time.Now() // want `time\.Now reads the wall clock`
	c.schedule(float64(t.Unix()))
}

func drawFailureGlobalStream(c *calendar, now float64) {
	c.schedule(now + rand.ExpFloat64()) // want `rand\.ExpFloat64 uses the global math/rand stream`
}

func drawFailureSeeded(c *calendar, r *rand.Rand, now, mtbf float64) {
	c.schedule(now + mtbf*r.ExpFloat64()) // method on a private stream: allowed
}

func scheduleRepairsOverMap(c *calendar, mttrByTier map[int]float64, now float64) {
	for _, mttr := range mttrByTier {
		c.schedule(now + mttr) // want `event scheduling \(schedule\) inside a map range`
	}
}
