// Package pkg is outside mapiter's scope (internal/sim, internal/experiments,
// internal/opt): the same order-sensitive code must stay unflagged here.
package pkg

func FloatAccum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // out of scope: no diagnostic
	}
	return total
}
