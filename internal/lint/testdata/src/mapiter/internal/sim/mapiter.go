package sim

import (
	"fmt"
	"io"
	"sort"
)

// Order-sensitive sinks inside a map range: each must be flagged.

func floatAccum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation across a map range`
	}
	return total
}

func floatAccumLonghand(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `float accumulation across a map range`
	}
	return total
}

func unsortedAppend(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append inside a map range builds a slice in map-iteration order`
	}
	return keys
}

func emitInOrder(w io.Writer, m map[int]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%d=%g\n", k, v) // want `fmt\.Fprintf inside a map range emits output in map-iteration order`
	}
}

type tracer struct{}

func (tracer) WriteString(s string) (int, error) { return len(s), nil }

func methodEmit(tr tracer, m map[int]bool) {
	for k := range m {
		tr.WriteString(fmt.Sprint(k)) // want `WriteString call inside a map range writes in map-iteration order`
	}
}

func channelSend(m map[int]float64, out chan float64) {
	for _, v := range m {
		out <- v // want `channel send inside a map range delivers values in map-iteration order`
	}
}

// The canonical safe idiom — collect, sort, then iterate — must NOT fire:
// this is the deliberate false-positive case for the sorted-key suppression.

func sortedKeys(m map[int]float64) float64 {
	var keys []int
	for k := range m {
		keys = append(keys, k) // collected only: sorted two lines down
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Order-free uses of a map range stay silent.

func intCount(m map[int]float64) int {
	n := 0
	for range m {
		n++ // integer accumulation is commutative and exact
	}
	return n
}

func keyedCopy(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v // writes into a keyed sink: order-free
	}
	return out
}

func localAppend(m map[int]float64) int {
	for range m {
		var scratch []int
		scratch = append(scratch, 1) // loop-local slice never escapes an iteration
		_ = scratch
	}
	return 0
}
