package pkg

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func dropFprintf(w io.Writer) {
	fmt.Fprintf(w, "x=%d\n", 1) // want `fmt\.Fprintf error discarded`
}

func dropCopy(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want `io\.Copy error discarded`
}

func dropFlush(w *bufio.Writer) {
	w.Flush() // want `Flush error discarded`
}

func dropDeferredClose(f *os.File) {
	defer f.Close() // want `Close error discarded`
	fmt.Println("working")
}

func dropEncode(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want `Encode error discarded`
}

func blankAssign(w *bufio.Writer) {
	_ = w.Flush() // visible discard: allowed
}

func checked(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "done"); err != nil {
		return err
	}
	return nil
}

func builderNeverFails() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d", 2) // strings.Builder cannot fail: allowed
	return sb.String()
}

func bufferNeverFails(b *bytes.Buffer) {
	b.WriteString("x") // bytes.Buffer cannot fail: allowed
}

func stderrBestEffort() {
	fmt.Fprintln(os.Stderr, "diagnostic") // best-effort stream: allowed
}

func waived(w io.Writer) {
	//lint:waive errsink reason="fixture: best-effort write, waiver must suppress" until=2099-01-01
	fmt.Fprintln(w, "best effort")
}
