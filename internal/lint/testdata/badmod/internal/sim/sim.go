package sim

import "time"

func Stamp() time.Time {
	return time.Now() // simdeterm violation
}
