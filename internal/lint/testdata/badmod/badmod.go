// Package badmod seeds one violation per universally-scoped analyzer so the
// driver tests can assert a non-zero exit code.
package badmod

import (
	"fmt"
	"io"
)

func Dump(w io.Writer) {
	fmt.Fprintln(w, "unchecked") // errsink violation
}

func Same(a, b float64) bool {
	return a == b // floateq violation
}
