package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests.
// The structures below are the minimal subset a code-scanning upload needs:
// one run, one tool driver with a rule per analyzer (plus the "waive"
// pseudo-rule for waiver-hygiene findings), and one result per diagnostic
// with a physical location. URIs are module-root-relative with forward
// slashes, which is what Collect already produces.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Rules cover every
// registered analyzer plus the "waive" pseudo-analyzer so each result's
// ruleId resolves; results keep the text format's ordering (file:line:col).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               "waive",
		ShortDescription: sarifMessage{Text: "waiver hygiene: //lint:waive needs a known analyzer, a reason, and an unexpired until date"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; clamp file-scope findings
		}
		region := sarifRegion{StartLine: line}
		if d.Pos.Column > 0 {
			region.StartColumn = d.Pos.Column
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region:           region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "clusterqlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
