package lint

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc is the compile-time twin of the runtime AllocsPerRun gate
// (TestSteadyStateAllocationsBounded): it runs the compiler's escape
// analysis (`go build -gcflags=-m=2`) over internal/sim and fails on any
// heap escape in the pooled hot path — engine.go, pool.go, deque.go,
// station.go, arrivals.go, ladder.go — that is not recorded in the checked-in
// allowlist (hotalloc_allow.txt). The allowlist is exact in both
// directions: a new escape fails lint until it is either eliminated or
// deliberately admitted, and a stale entry (an escape the compiler no
// longer reports) fails lint until it is removed, so the list always equals
// the real allocation profile of the hot path.
//
// Entries are line-number free ("engine.go: &event{} escapes to heap"), so
// unrelated edits that shift lines do not churn the list. The analyzer also
// exports two fact families for downstream consumers: "hotpath" on every
// function declared in a hot-path file, and "allocates" on every hot-path
// function the compiler reports a heap escape in.
//
// The escape output is served from the go build cache: after the first
// compile the go command replays the stored compiler diagnostics, so a warm
// lint run costs milliseconds (CI shares the build cache between the lint
// and bench jobs for the same reason).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "no unlisted heap escape in the pooled simulator hot path " +
		"(go build -gcflags=-m=2 vs the checked-in allowlist)",
	Scope: []string{"internal/sim"},
	Run:   runHotAlloc,
}

// hotPathFiles are the allocation-free-by-design files of the event loop.
var hotPathFiles = map[string]bool{
	"engine.go": true, "pool.go": true, "deque.go": true,
	"station.go": true, "arrivals.go": true, "ladder.go": true,
}

//go:embed hotalloc_allow.txt
var hotAllocAllowRaw string

// escapeOutput obtains the escape-analysis diagnostics for the package in
// dir. Tests swap it for a canned transcript via SetHotAllocForTest.
var escapeOutput = func(dir string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotalloc: go build -gcflags=-m=2 in %s: %v\n%s", dir, err, out)
	}
	return out, nil
}

// hotAllocAllowlist returns the active allowlist entries; tests may override
// the raw text.
var hotAllocAllowOverride *string

func hotAllocAllowlist() map[string]bool {
	raw := hotAllocAllowRaw
	if hotAllocAllowOverride != nil {
		raw = *hotAllocAllowOverride
	}
	allow := map[string]bool{}
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow
}

// SetHotAllocForTest replaces the escape-analysis source and allowlist for
// the duration of a test; the returned func restores the real ones.
func SetHotAllocForTest(output []byte, allowlist string) (restore func()) {
	prevOut := escapeOutput
	escapeOutput = func(string) ([]byte, error) { return output, nil }
	hotAllocAllowOverride = &allowlist
	return func() {
		escapeOutput = prevOut
		hotAllocAllowOverride = nil
	}
}

// escapeLineRe matches one compiler escape diagnostic:
//
//	internal/sim/engine.go:121:9: &event{} escapes to heap:
//	internal/sim/arrivals.go:64:4: moved to heap: low
//
// The trailing colon of -m=2's "explained" form is normalized away, as are
// line and column.
var escapeLineRe = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.*?(?:escapes to heap|moved to heap.*?)):?$`)

// escape is one normalized heap-escape site.
type escape struct {
	file      string // basename
	line, col int
	entry     string // "file.go: message" allowlist form
}

// parseEscapes extracts the hot-path heap escapes from raw -m=2 output,
// deduplicating the compiler's doubled reporting (-m=2 prints each site once
// with its flow explanation and once in plain -m form).
func parseEscapes(out []byte) []escape {
	var escapes []escape
	dedup := map[escape]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := filepath.Base(m[1])
		if !hotPathFiles[base] {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		e := escape{file: base, line: ln, col: col, entry: base + ": " + m[4]}
		if dedup[e] {
			continue
		}
		dedup[e] = true
		escapes = append(escapes, e)
	}
	sort.Slice(escapes, func(i, j int) bool {
		if escapes[i].file != escapes[j].file {
			return escapes[i].file < escapes[j].file
		}
		if escapes[i].line != escapes[j].line {
			return escapes[i].line < escapes[j].line
		}
		return escapes[i].col < escapes[j].col
	})
	return escapes
}

func runHotAlloc(pass *Pass) error {
	// Index the package's files by basename, for positioning findings and
	// for fact export.
	fileByBase := map[string]*ast.File{}
	hasHotFile := false
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		fileByBase[base] = f
		if hotPathFiles[base] {
			hasHotFile = true
		}
	}
	// A sim package without the hot-path files (a fixture module, say) has no
	// hot path to gate: skip the compile and the staleness audit entirely.
	if !hasHotFile {
		return nil
	}
	// Export "hotpath" facts for every function declared in a hot file.
	for base, f := range fileByBase {
		if !hotPathFiles[base] {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				pass.Facts.Export(pass.Path, funcObjectName(fd), "hotpath", base)
			}
		}
	}

	out, err := escapeOutput(pass.Dir)
	if err != nil {
		return err
	}
	escapes := parseEscapes(out)
	allow := hotAllocAllowlist()

	seen := map[string]bool{}
	for _, e := range escapes {
		seen[e.entry] = true
		f := fileByBase[e.file]
		pos := token.Position{Filename: e.file, Line: e.line, Column: e.col}
		if f != nil {
			pos.Filename = pass.Fset.Position(f.Pos()).Filename
		}
		// Export the allocation fact on the enclosing function, listed or
		// not: the profile is a fact, the allowlist is a policy.
		if f != nil {
			if fn := enclosingFunc(pass, f, pos.Line); fn != "" {
				pass.Facts.Export(pass.Path, fn, "allocates", e.entry)
			}
		}
		if allow[e.entry] {
			continue
		}
		pass.ReportAt(pos,
			"new heap escape on the pooled hot path: %s — eliminate it (the "+
				"event loop is allocation-free by design, see pool.go) or admit "+
				"it in internal/lint/hotalloc_allow.txt", e.entry)
	}
	// Stale entries: the compiler no longer reports them, so the allowlist
	// overstates the allocation profile. Keep the two in lockstep.
	var stale []string
	for entry := range allow {
		if !seen[entry] {
			stale = append(stale, entry)
		}
	}
	sort.Strings(stale)
	for _, entry := range stale {
		base, _, _ := strings.Cut(entry, ":")
		pos := token.Position{Filename: base, Line: 1, Column: 1}
		if f := fileByBase[base]; f != nil {
			pos.Filename = pass.Fset.Position(f.Pos()).Filename
		}
		pass.ReportAt(pos,
			"stale hotalloc allowlist entry %q: the compiler no longer "+
				"reports this escape — remove it from hotalloc_allow.txt", entry)
	}
	return nil
}

// funcObjectName renders a FuncDecl as a fact object name: "F" for
// functions, "T.M" for methods.
func funcObjectName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// enclosingFunc names the function declaration spanning the given line of
// the file, or "" when the line is at file scope.
func enclosingFunc(pass *Pass, f *ast.File, line int) string {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		start := pass.Fset.Position(fd.Pos()).Line
		end := pass.Fset.Position(fd.End()).Line
		if line >= start && line <= end {
			return funcObjectName(fd)
		}
	}
	return ""
}
