package lint_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"clusterq/internal/lint"
)

func TestMainFindingsExitOne(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, "testdata/badmod", nil)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	for _, frag := range []string{"[errsink]", "[floateq]", "[simdeterm]"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing a %s finding:\n%s", frag, out.String())
		}
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %q", errw.String())
	}
}

func TestMainCleanExitZero(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, "testdata/goodmod", nil)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

func TestMainNoModuleExitTwo(t *testing.T) {
	var out, errw strings.Builder
	code := lint.Main(&out, &errw, t.TempDir(), nil)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (no go.mod anywhere above a temp dir)", code)
	}
	if !strings.Contains(errw.String(), "go.mod") {
		t.Errorf("stderr should mention the missing go.mod: %q", errw.String())
	}
}

// TestClusterqlintBinary builds the real cmd/clusterqlint binary and checks
// its process exit code against the seeded bad fixture, end to end.
func TestClusterqlintBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root, _, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "clusterqlint")
	build := exec.Command(goBin, "build", "-o", bin, "./cmd/clusterqlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	bad := exec.Command(bin, "./...")
	bad.Dir = filepath.Join(root, "internal", "lint", "testdata", "badmod")
	out, err := bad.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("bad fixture: err = %v, want exit code 1\n%s", err, out)
	}

	good := exec.Command(bin, "./...")
	good.Dir = filepath.Join(root, "internal", "lint", "testdata", "goodmod")
	if out, err := good.CombinedOutput(); err != nil {
		t.Fatalf("good fixture: %v (want exit 0)\n%s", err, out)
	}
}
