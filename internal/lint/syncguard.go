package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncGuard polices the concurrency primitives the lock-free observability
// registry and the parallel sweep/replication runners depend on:
//
//   - sync.WaitGroup misuse: wg.Add called inside the goroutine it accounts
//     for (races with Wait — the counter can hit zero before the goroutine
//     starts) and wg.Add sequenced after wg.Wait in the same block (reuse
//     without re-synchronization).
//   - Copied locks: a value of a type that (transitively) contains a
//     sync.Mutex, RWMutex, WaitGroup, Once, Cond or a sync/atomic value
//     type must not be copied — value receivers, by-value parameters, deref
//     copies, and range-value copies split the lock state. Named types
//     containing locks are exported as "containslock" facts so importers
//     are checked against types defined elsewhere.
//   - Mixed atomic/non-atomic access: a struct field accessed through
//     sync/atomic functions (atomic.AddInt64(&s.n, 1) style) is exported as
//     an "atomicfield" fact; any plain read or write of the same field — in
//     this package or a downstream one — is flagged. Mixed access is a data
//     race the race detector only catches when both sides happen to run.
var SyncGuard = &Analyzer{
	Name: "syncguard",
	Doc: "WaitGroup Add/Wait ordering, no copied locks, no mixed " +
		"atomic/non-atomic access to the same field",
	Scope: []string{
		"internal/obs", "internal/obs/trace", "internal/obs/window",
		"internal/experiments", "internal/sim",
	},
	Run: runSyncGuard,
}

func runSyncGuard(pass *Pass) error {
	// Fact export pass: atomic fields and lock-containing named types.
	exportAtomicFieldFacts(pass)
	exportContainsLockFacts(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkAddInGoroutine(pass, n)
			case *ast.BlockStmt:
				checkAddAfterWait(pass, n)
			case *ast.FuncDecl:
				checkLockCopyFunc(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
				checkPlainWriteToAtomicField(pass, n)
			case *ast.IncDecStmt:
				checkIncDecAtomicField(pass, n)
			case *ast.SelectorExpr:
				checkPlainReadOfAtomicField(pass, n)
			}
			return true
		})
	}
	return nil
}

// ---------- WaitGroup discipline ----------

// wgCall matches a method call wg.<name>() on a sync.WaitGroup and returns
// the receiver's root object.
func wgCall(pass *Pass, call *ast.CallExpr, name string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	t := pass.exprType(sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" ||
		named.Obj().Name() != "WaitGroup" {
		return nil
	}
	return rootObject(pass, sel.X)
}

// checkAddInGoroutine flags wg.Add inside a `go func(){...}` literal when wg
// is declared outside the literal: Wait can observe a zero counter before
// the goroutine runs Add, so the wait is vacuous.
func checkAddInGoroutine(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.GoStmt); ok && inner != g {
			return false // nested spawns are their own GoStmt visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := wgCall(pass, call, "Add")
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"WaitGroup.Add inside the goroutine it accounts for: Wait can "+
				"return before this Add runs — call Add before the go "+
				"statement")
		return true
	})
}

// checkAddAfterWait flags wg.Add sequenced after wg.Wait on the same
// WaitGroup in one statement block: reusing a WaitGroup without external
// synchronization races new Adds against the returning Wait.
func checkAddAfterWait(pass *Pass, block *ast.BlockStmt) {
	waited := map[types.Object]bool{}
	for _, st := range block.List {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if obj := wgCall(pass, call, "Wait"); obj != nil {
			waited[obj] = true
			continue
		}
		if obj := wgCall(pass, call, "Add"); obj != nil && waited[obj] {
			pass.Reportf(call.Pos(),
				"WaitGroup.Add after Wait on the same WaitGroup: reuse "+
					"without re-synchronization races the new Add against "+
					"the returning Wait — use a fresh WaitGroup per round")
		}
	}
}

// ---------- copied locks ----------

// syncLockTypes are the sync types whose values must not be copied after
// first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

// containsLock walks a type structurally for embedded sync primitives or
// sync/atomic value types. The named-type cache doubles as a cycle guard.
func containsLock(t types.Type, seen map[*types.Named]bool) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				return syncLockTypes[obj.Name()]
			case "sync/atomic":
				return true // every sync/atomic value type is no-copy
			}
		}
		if seen[t] {
			return false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[t] = true
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

// lockType reports whether values of t must not be copied, consulting the
// structural walk (which crosses packages through go/types) and exporting
// nothing itself.
func lockType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false // pointers to locks copy fine
	}
	return containsLock(t, map[*types.Named]bool{})
}

// exportContainsLockFacts publishes "containslock" facts for the package's
// named struct types, so fact-consuming tools (and tests) can see the
// no-copy surface without re-walking the type graph.
func exportContainsLockFacts(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if containsLock(named.Underlying(), map[*types.Named]bool{named: true}) {
			pass.Facts.Export(pass.Path, name, "containslock", "true")
		}
	}
}

// checkLockCopyFunc flags by-value lock parameters and value receivers.
func checkLockCopyFunc(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := pass.exprType(fd.Recv.List[0].Type); lockType(t) {
			pass.Reportf(fd.Recv.Pos(),
				"value receiver copies a lock-containing type %s: use a "+
					"pointer receiver", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.exprType(field.Type); lockType(t) {
			pass.Reportf(field.Pos(),
				"by-value parameter copies a lock-containing type %s: pass a "+
					"pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkLockCopyRange flags `for _, v := range s` where v copies a
// lock-containing element.
func checkLockCopyRange(pass *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	if t := pass.exprType(rng.Value); lockType(t) {
		pass.Reportf(rng.Value.Pos(),
			"range value copies a lock-containing type %s per iteration: "+
				"range over indices or pointers",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// checkLockCopyAssign flags x := *p and x := y copies of lock-containing
// values (assignment through a dereference or of another variable).
func checkLockCopyAssign(pass *Pass, n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		switch rhs.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue // composite literals etc. initialize, not copy
		}
		if t := pass.exprType(rhs); lockType(t) {
			pass.Reportf(n.Pos(),
				"assignment copies a lock-containing type %s: share a "+
					"pointer instead", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return
		}
	}
}

// ---------- mixed atomic/non-atomic access ----------

// atomicFuncs are the sync/atomic package functions that take &x.field.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"AddUintptr": true, "LoadInt32": true, "LoadInt64": true,
	"LoadUint32": true, "LoadUint64": true, "LoadUintptr": true,
	"LoadPointer": true, "StoreInt32": true, "StoreInt64": true,
	"StoreUint32": true, "StoreUint64": true, "StoreUintptr": true,
	"StorePointer": true, "SwapInt32": true, "SwapInt64": true,
	"SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
	"SwapPointer": true, "CompareAndSwapInt32": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
	"CompareAndSwapPointer": true,
}

// fieldFactObject renders a field selection as the fact-object name
// "Struct.field", or "" when the selection is not a named-struct field.
func fieldFactObject(pass *Pass, sel *ast.SelectorExpr) (pkgPath, object string) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name() + "." + s.Obj().Name()
}

// exportAtomicFieldFacts records every field the package accesses through a
// sync/atomic function.
func exportAtomicFieldFacts(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgOf(pass, sel) != "sync/atomic" || !atomicFuncs[sel.Sel.Name] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			fsel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, obj := fieldFactObject(pass, fsel); obj != "" {
				pass.Facts.Export(pkg, obj, "atomicfield", "true")
			}
			return true
		})
	}
}

// atomicField reports whether the selection resolves to a field some
// analyzed package accesses atomically.
func atomicField(pass *Pass, sel *ast.SelectorExpr) bool {
	pkg, obj := fieldFactObject(pass, sel)
	if obj == "" {
		return false
	}
	_, ok := pass.Facts.Get(pkg, obj, "atomicfield")
	return ok
}

// insideAtomicArg reports whether the selector is the &-operand of a
// sync/atomic call — the legitimate access.
func insideAtomicArg(pass *Pass, f *ast.File, sel *ast.SelectorExpr) bool {
	inside := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inside {
			return !inside
		}
		cs, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pkgOf(pass, cs) != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == sel {
				inside = true
			}
		}
		return !inside
	})
	return inside
}

func reportMixedAtomic(pass *Pass, sel *ast.SelectorExpr, how string) {
	_, obj := fieldFactObject(pass, sel)
	pass.Reportf(sel.Pos(),
		"non-atomic %s of %s, which is accessed with sync/atomic elsewhere: "+
			"mixed access is a data race — use the atomic API on every access",
		how, obj)
}

// checkPlainWriteToAtomicField flags assignments whose LHS is an atomic
// field accessed without the atomic API.
func checkPlainWriteToAtomicField(pass *Pass, n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		if sel, ok := lhs.(*ast.SelectorExpr); ok && atomicField(pass, sel) {
			reportMixedAtomic(pass, sel, "write")
		}
	}
}

func checkIncDecAtomicField(pass *Pass, n *ast.IncDecStmt) {
	if sel, ok := n.X.(*ast.SelectorExpr); ok && atomicField(pass, sel) {
		reportMixedAtomic(pass, sel, "increment")
	}
}

// checkPlainReadOfAtomicField flags bare reads. Writes and increments are
// reported by the statement-level checks; reads are recognized by exclusion
// (a selector that is neither an atomic-call operand nor an assignment
// target).
func checkPlainReadOfAtomicField(pass *Pass, sel *ast.SelectorExpr) {
	if !atomicField(pass, sel) {
		return
	}
	// Find the file for the containment query.
	var file *ast.File
	for _, f := range pass.Files {
		if f.Pos() <= sel.Pos() && sel.End() <= f.End() {
			file = f
			break
		}
	}
	if file == nil || insideAtomicArg(pass, file, sel) || isWriteTarget(file, sel) {
		return
	}
	reportMixedAtomic(pass, sel, "read")
}

// isWriteTarget reports whether the selector is an assignment LHS or an
// inc/dec operand (those are reported as writes, not reads).
func isWriteTarget(f *ast.File, sel *ast.SelectorExpr) bool {
	target := false
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if lhs == sel {
					target = true
				}
			}
		case *ast.IncDecStmt:
			if n.X == sel {
				target = true
			}
		case *ast.UnaryExpr:
			// &x.f aliasing: taking the address is how the atomic API is
			// used; non-atomic aliasing through & is beyond this check.
			if n.Op == token.AND && n.X == sel {
				target = true
			}
		}
		return !target
	})
	return target
}
