package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter is the second-generation determinism-dataflow analyzer: it flags
// `for range` over a map wherever the iteration order can reach a result — a
// slice built across iterations, a float accumulator, an emitted trace or
// report (fmt/io/hash writes), or a channel send. Go randomizes map order on
// purpose; any of these sinks turns that randomization into run-to-run
// drift, which is exactly the bug class the golden-hash experiments exist to
// rule out.
//
// The canonical safe idiom — collect the keys, sort them, iterate the
// sorted slice — is recognized and suppressed: a map range that appends to a
// slice which is later (in the same function) passed to sort.* or
// slices.Sort* does not fire. Integer accumulation (commutative, exact) and
// writes into other maps (keyed, so order-free) are likewise not flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid map iteration whose order can reach results, hashes, or " +
		"emitted traces (sorted-key collection is recognized and allowed)",
	Scope: []string{"internal/sim", "internal/experiments", "internal/opt"},
	Run:   runMapIter,
}

// emitterFuncs are fmt functions that emit formatted output; calling one
// inside a map range writes in map order. (Sprintf is pure and exempt.)
var emitterFuncs = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
}

// emitterMethods are method names that write to an output stream, a hash, or
// an encoder — order-visible sinks whatever the receiver type.
var emitterMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true, "Encode": true,
	"Sum": true, "Sum64": true, "Sum32": true,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkOneMapRange(pass, rng, fd.Body)
				return true
			})
		}
	}
	return nil
}

// checkOneMapRange inspects the loop body for order-sensitive sinks. fnBody
// is the enclosing function body, scanned for the sorted-afterwards
// suppression.
func checkOneMapRange(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapIterAssign(pass, rng, n, fnBody)
		case *ast.SendStmt:
			if declaredBefore(pass, n.Chan, rng.Pos()) {
				pass.Reportf(n.Pos(),
					"channel send inside a map range delivers values in "+
						"map-iteration order: sort the keys first")
				return false
			}
		case *ast.CallExpr:
			checkMapIterCall(pass, n)
		}
		return true
	})
}

func checkMapIterAssign(pass *Pass, rng *ast.RangeStmt, n *ast.AssignStmt, fnBody *ast.BlockStmt) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range n.Lhs {
			if isFloat(pass.exprType(lhs)) && declaredBefore(pass, lhs, rng.Pos()) {
				pass.Reportf(n.Pos(),
					"float accumulation across a map range: iteration order "+
						"perturbs the rounding and the sum reaches the result "+
						"(sort the keys, or accumulate over a slice)")
				return
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range n.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
				continue
			}
			lhs := n.Lhs[i]
			if !declaredBefore(pass, lhs, rng.Pos()) {
				continue
			}
			if obj := rootObject(pass, lhs); obj != nil && sortedAfter(pass, fnBody, rng.End(), obj) {
				continue // collect-then-sort: the canonical safe idiom
			}
			pass.Reportf(n.Pos(),
				"append inside a map range builds a slice in map-iteration "+
					"order: sort it (sort.* / slices.Sort*) before use, or "+
					"iterate sorted keys")
			return
		}
		// x = x + v float accumulation spelled longhand.
		if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if bin, ok := n.Rhs[0].(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB) &&
				isFloat(pass.exprType(n.Lhs[0])) &&
				declaredBefore(pass, n.Lhs[0], rng.Pos()) &&
				sameRootObject(pass, n.Lhs[0], bin.X) {
				pass.Reportf(n.Pos(),
					"float accumulation across a map range: iteration order "+
						"perturbs the rounding and the sum reaches the result "+
						"(sort the keys, or accumulate over a slice)")
			}
		}
	}
}

func checkMapIterCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkgOf(pass, sel) == "fmt" {
		if emitterFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"fmt.%s inside a map range emits output in map-iteration "+
					"order: sort the keys first", sel.Sel.Name)
		}
		return
	}
	// Method calls on writers, hashes, encoders: order-visible sinks.
	if pkgOf(pass, sel) == "" && emitterMethods[sel.Sel.Name] {
		if _, isMethod := pass.Info.Selections[sel]; isMethod {
			pass.Reportf(call.Pos(),
				"%s call inside a map range writes in map-iteration order "+
					"(traces, hashes and encoders are order-sensitive): sort "+
					"the keys first", sel.Sel.Name)
		}
	}
}

// rootObject resolves an expression to the object of its base identifier
// (x, x.f, x[i] all resolve to x).
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func sameRootObject(pass *Pass, a, b ast.Expr) bool {
	oa, ob := rootObject(pass, a), rootObject(pass, b)
	return oa != nil && oa == ob
}

// sortedAfter reports whether, anywhere in the function body after the given
// position, the object is passed to a sort.* or slices.* call — the signal
// that the map range only collected keys for sorted iteration.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgOf(pass, sel) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
