// Package lint is clusterq's in-tree static-analysis suite: five analyzers
// that enforce the repository invariants no compiler checks — simulator
// determinism, NaN-safe numerics, the observability layer's nil-means-no-op
// contract, unchecked writer errors, and constructor input validation.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers could migrate to the upstream framework
// verbatim, but the implementation is standard-library only: packages are
// parsed with go/parser and type-checked with go/types, resolving standard
// library imports from GOROOT source and module-local imports from the
// repository tree. See Loader.
//
// Suppression: any diagnostic can be waived by a comment of the form
//
//	//lint:<analyzer> <reason>
//
// on the flagged line or on the line directly above it. A reason is not
// syntactically required but reviewers should treat a bare waiver as a bug.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Scope restricts the analyzer to packages whose import path ends in
	// one of these suffixes (e.g. "internal/sim"). Empty means every
	// package.
	Scope []string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the analyzed package
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	waivers map[string]map[int]bool // filename -> line -> waived for this analyzer
	diags   []Diagnostic
}

// waiverRe matches //lint:name1,name2 optionally followed by a reason.
var waiverRe = regexp.MustCompile(`^//lint:([a-z0-9_,]+)(\s|$)`)

// buildWaivers indexes the //lint:<name> comments of every file: a waiver
// suppresses diagnostics of the named analyzers on its own line and on the
// line below (the "comment above the statement" style).
func (p *Pass) buildWaivers() {
	p.waivers = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := waiverRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				covered := false
				for _, n := range names {
					if n == p.Analyzer.Name {
						covered = true
					}
				}
				if !covered {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.waivers[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.waivers[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
}

// waived reports whether a diagnostic at pos is suppressed by a waiver.
func (p *Pass) waived(pos token.Position) bool {
	return p.waivers[pos.Filename][pos.Line]
}

// Reportf records one diagnostic unless a //lint:<name> waiver covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.waived(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzer over a loaded package and returns its findings
// sorted by source position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	pass.buildWaivers()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i].Pos, pass.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return pass.diags, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterm,
		FloatEq,
		NilNoop,
		ErrSink,
		CtorValidate,
	}
}
