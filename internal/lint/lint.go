// Package lint is clusterq's in-tree static-analysis suite: nine analyzers
// that enforce the repository invariants no compiler checks — simulator
// determinism, NaN-safe numerics, the observability layer's nil-means-no-op
// contract, unchecked writer errors, constructor input validation, map-order
// dataflow into results (mapiter), the RNG-stream discipline (rngstream),
// the pooled hot path's allocation budget (hotalloc), and mutex/atomic/
// WaitGroup misuse (syncguard).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, facts) so the analyzers could migrate to the upstream
// framework verbatim, but the implementation is standard-library only:
// packages are parsed with go/parser and type-checked with go/types,
// resolving standard library imports from GOROOT source and module-local
// imports from the repository tree. See Loader.
//
// # Waivers
//
// Any diagnostic can be waived by a comment of the form
//
//	//lint:waive <analyzer>[,<analyzer>...] reason="why this is safe" until=2026-12-01
//
// on the flagged line or on the line directly above it. Both attributes are
// mandatory: a waiver must say why the finding is a false positive (or a
// deliberate exception) and when it should be re-examined. The until date is
// an exclusive expiry — the waiver stops suppressing at 00:00 UTC of that
// day, and from then on the expired waiver itself is reported as a finding,
// so stale exceptions fail the build instead of rotting silently. Malformed
// waivers (missing reason, missing or unparseable until, unknown analyzer
// name) and pre-expiry-era legacy waivers (//lint:<analyzer> <reason>) are
// reported too; see CheckWaivers.
//
// # Facts
//
// Analyzers can export facts about package-level objects ("function
// allocates", "field is accessed atomically") into a FactStore shared across
// the whole run. The driver analyzes packages in dependency order, so a
// pass over a package sees every fact its imports exported — the mechanism
// syncguard uses to follow atomic fields across package boundaries and
// hotalloc uses to publish the hot-path allocation profile.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Scope restricts the analyzer to packages whose import path ends in
	// one of these suffixes (e.g. "internal/sim"). Empty means every
	// package.
	Scope []string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A FactStore carries exported object facts across packages within one
// analysis run. Facts are keyed by (package path, object, fact name), where
// object is a package-level name ("NewRNG"), a method ("Registry.Counter"),
// or a struct field ("Histogram.n"). The driver hands the same store to
// every pass, analyzing packages in dependency order so importers observe
// the facts of their imports.
type FactStore struct {
	facts map[factKey]string
}

type factKey struct {
	pkg, object, name string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]string)}
}

// Export records (or overwrites) one fact. A nil store ignores the export,
// so analyzers need no "is a store attached" branches.
func (s *FactStore) Export(pkgPath, object, name, value string) {
	if s == nil {
		return
	}
	s.facts[factKey{pkgPath, object, name}] = value
}

// Get looks one fact up. A nil store has no facts.
func (s *FactStore) Get(pkgPath, object, name string) (string, bool) {
	if s == nil {
		return "", false
	}
	v, ok := s.facts[factKey{pkgPath, object, name}]
	return v, ok
}

// A Fact is one exported (pkg, object, name, value) tuple, for enumeration.
type Fact struct {
	Pkg, Object, Name, Value string
}

// All returns every exported fact with the given name, sorted by package
// then object — the deterministic view the fact-export tests assert on.
func (s *FactStore) All(name string) []Fact {
	if s == nil {
		return nil
	}
	var out []Fact
	for k, v := range s.facts {
		if k.name == name {
			out = append(out, Fact{Pkg: k.pkg, Object: k.object, Name: k.name, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the analyzed package
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the directory the package's files were loaded from (needed by
	// analyzers that consult the toolchain, like hotalloc).
	Dir string
	// Now anchors waiver-expiry decisions; the driver sets it once per run
	// so a single invocation cannot straddle midnight.
	Now time.Time
	// Facts is the run-wide fact store (may be nil for isolated runs).
	Facts *FactStore

	waivers map[string]map[int]bool // filename -> line -> waived for this analyzer
	diags   []Diagnostic
}

// A Waiver is one parsed //lint:waive comment.
type Waiver struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	Until     time.Time // exclusive expiry day, UTC
	// Err describes why the waiver is malformed ("" when well-formed).
	Err string
	// Legacy marks a pre-expiry-era //lint:<analyzer> comment.
	Legacy bool
}

// Expired reports whether the waiver no longer suppresses at the given time:
// the until day is an exclusive bound, so a waiver with until=2026-12-01 is
// dead on 2026-12-01 itself (the "expired today" boundary).
func (w *Waiver) Expired(now time.Time) bool {
	if w.Err != "" || w.Legacy {
		return false // malformed waivers are reported separately
	}
	day := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
	return !day.Before(w.Until)
}

// waiverRe matches the comment head of the current waiver syntax.
var waiverRe = regexp.MustCompile(`^//lint:waive\s+([a-zA-Z0-9_,]+)\s*(.*)$`)

// legacyWaiverRe matches the pre-expiry syntax //lint:<name> <reason>, kept
// only to report its use; it no longer suppresses anything.
var legacyWaiverRe = regexp.MustCompile(`^//lint:([a-z0-9_,]+)(\s|$)`)

// waiverAttrRe matches one key=value attribute; reasons are double-quoted Go
// strings so they can contain spaces.
var waiverAttrRe = regexp.MustCompile(`(reason|until)=("(?:[^"\\]|\\.)*"|\S*)`)

// ParseWaiver parses one comment as a waiver. The second return is false
// when the comment is not waiver-shaped at all (ordinary prose).
func ParseWaiver(text string, pos token.Position) (Waiver, bool) {
	w := Waiver{Pos: pos}
	if m := waiverRe.FindStringSubmatch(text); m != nil {
		w.Analyzers = strings.Split(m[1], ",")
		attrs := map[string]string{}
		rest := m[2]
		for _, am := range waiverAttrRe.FindAllStringSubmatch(rest, -1) {
			attrs[am[1]] = am[2]
		}
		reason, ok := attrs["reason"]
		switch {
		case !ok:
			w.Err = `missing reason="..."`
		case !strings.HasPrefix(reason, `"`):
			w.Err = `reason must be a quoted string: reason="..."`
		case len(reason) <= 2:
			w.Err = "empty reason"
		default:
			w.Reason = reason[1 : len(reason)-1]
		}
		until, ok := attrs["until"]
		switch {
		case !ok:
			if w.Err == "" {
				w.Err = "missing until=YYYY-MM-DD"
			}
		default:
			t, err := time.ParseInLocation("2006-01-02", until, time.UTC)
			if err != nil {
				if w.Err == "" {
					w.Err = fmt.Sprintf("unparseable until date %q (want YYYY-MM-DD)", until)
				}
			} else {
				w.Until = t
			}
		}
		return w, true
	}
	if m := legacyWaiverRe.FindStringSubmatch(text); m != nil {
		w.Analyzers = strings.Split(m[1], ",")
		w.Legacy = true
		return w, true
	}
	return Waiver{}, false
}

// Waivers parses every waiver-shaped comment of the package, well-formed or
// not, in position order.
func Waivers(pkg *Package) []Waiver {
	var out []Waiver
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if w, ok := ParseWaiver(c.Text, pkg.Fset.Position(c.Pos())); ok {
					out = append(out, w)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// CheckWaivers reports the waiver hygiene findings of one package: legacy
// syntax, malformed attributes, unknown analyzer names, and expired waivers.
// These diagnostics carry the pseudo-analyzer name "waive" and cannot
// themselves be waived — an expired or broken waiver must be fixed, not
// suppressed.
func CheckWaivers(pkg *Package, now time.Time, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: "waive",
		})
	}
	for _, w := range Waivers(pkg) {
		switch {
		case w.Legacy:
			report(w.Pos,
				"legacy waiver syntax //lint:%s: use //lint:waive %s reason=\"...\" until=YYYY-MM-DD",
				strings.Join(w.Analyzers, ","), strings.Join(w.Analyzers, ","))
			continue
		case w.Err != "":
			report(w.Pos, "malformed waiver: %s", w.Err)
			continue
		}
		for _, name := range w.Analyzers {
			if !known[name] {
				report(w.Pos, "waiver names unknown analyzer %q", name)
			}
		}
		if w.Expired(now) {
			report(w.Pos, "waiver expired on %s (reason was: %s): fix the finding or re-justify with a new until date",
				w.Until.Format("2006-01-02"), w.Reason)
		}
	}
	return diags
}

// buildWaivers indexes the well-formed, unexpired //lint:waive comments of
// every file: a waiver suppresses diagnostics of the named analyzers on its
// own line and on the line below (the "comment above the statement" style).
func (p *Pass) buildWaivers() {
	p.waivers = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, ok := ParseWaiver(c.Text, p.Fset.Position(c.Pos()))
				if !ok || w.Legacy || w.Err != "" || w.Expired(p.Now) {
					continue
				}
				covered := false
				for _, n := range w.Analyzers {
					if n == p.Analyzer.Name {
						covered = true
					}
				}
				if !covered {
					continue
				}
				lines := p.waivers[w.Pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.waivers[w.Pos.Filename] = lines
				}
				lines[w.Pos.Line] = true
				lines[w.Pos.Line+1] = true
			}
		}
	}
}

// waived reports whether a diagnostic at pos is suppressed by a waiver.
func (p *Pass) waived(pos token.Position) bool {
	return p.waivers[pos.Filename][pos.Line]
}

// Reportf records one diagnostic unless a //lint:waive comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportAt records a diagnostic at an explicit source position — the entry
// point for analyzers whose findings come from outside the AST (hotalloc
// positions come from compiler output). Waivers apply exactly as for
// Reportf.
func (p *Pass) ReportAt(position token.Position, format string, args ...any) {
	if p.waived(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzer over a loaded package with the wall clock as the
// waiver-expiry anchor and no shared fact store. Findings come back sorted
// by source position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunAt(a, pkg, time.Now(), nil)
}

// RunAt is Run with an explicit expiry anchor and fact store — what the
// driver and the fixture harness call so waiver expiry is testable and facts
// flow between packages.
func RunAt(a *Analyzer, pkg *Package, now time.Time, facts *FactStore) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Dir:      pkg.Dir,
		Now:      now,
		Facts:    facts,
	}
	pass.buildWaivers()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterm,
		FloatEq,
		NilNoop,
		ErrSink,
		CtorValidate,
		MapIter,
		RNGStream,
		HotAlloc,
		SyncGuard,
	}
}

// KnownAnalyzers returns the waiver-name universe: every analyzer in All.
func KnownAnalyzers() map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}
