// Package linttest drives lint analyzers over fixture packages and checks
// their diagnostics against `// want "regexp"` comments in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in a tree whose directory layout doubles as the import-path
// space (Loader tree mode), so an analyzer with a Scope like "internal/sim"
// is exercised by placing the fixture under e.g. testdata/src/simdeterm/
// internal/sim. Expectations are written at the end of the offending line:
//
//	total += v // want `float accumulation across a map range`
//
// Every diagnostic must be claimed by a want on its line, and every want
// must be claimed by a diagnostic; scope rules are applied exactly as the
// clusterqlint driver applies them, so an out-of-scope fixture with no want
// comments asserts the analyzer stays silent there.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"clusterq/internal/lint"
)

// Now is the fixed waiver-expiry anchor every harness run uses, so fixture
// waivers behave identically on any day the tests run. Fixtures that must
// stay live use until=2099-01-01; expiry fixtures use dates around this one.
var Now = time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

// wantRe captures everything after "want" in a comment; the remainder must
// be one or more Go-quoted strings (backquoted or double-quoted).
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package beneath root and verifies the analyzer's
// diagnostics match the // want comments exactly. Packages are analyzed in
// the order given with one shared fact store — list a corpus's dependency
// packages first and their facts are visible to the importers, exactly as
// the dependency-ordered clusterqlint driver guarantees. The store is
// returned for fact-export assertions.
func Run(t *testing.T, root string, a *lint.Analyzer, pkgs ...string) *lint.FactStore {
	t.Helper()
	facts := lint.NewFactStore()
	check(t, root, pkgs, func(pkg *lint.Package) ([]lint.Diagnostic, error) {
		if !a.AppliesTo(pkg.Path) {
			return nil, nil
		}
		return lint.RunAt(a, pkg, Now, facts)
	})
	return facts
}

// RunWaiverCheck verifies the waiver-hygiene diagnostics (pseudo-analyzer
// "waive") of each fixture package against its // want comments, with Now as
// the expiry anchor.
func RunWaiverCheck(t *testing.T, root string, pkgs ...string) {
	t.Helper()
	known := lint.KnownAnalyzers()
	check(t, root, pkgs, func(pkg *lint.Package) ([]lint.Diagnostic, error) {
		return lint.CheckWaivers(pkg, Now, known), nil
	})
}

// check is the shared load-run-claim loop behind Run and RunWaiverCheck.
func check(t *testing.T, root string, pkgs []string,
	run func(*lint.Package) ([]lint.Diagnostic, error)) {
	t.Helper()
	loader := lint.NewLoader("", root, true)
	for _, path := range pkgs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		pkg, err := loader.Load(path, dir)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := run(pkg)
		if err != nil {
			t.Fatalf("run on %s: %v", path, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", path, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: want %q: no matching diagnostic",
					w.pos.Filename, w.pos.Line, w.re)
			}
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message, reporting whether one was found.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment of the package into positioned
// expectations. Comments where "want" is not followed by a quoted string are
// ignored (ordinary prose).
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rest := strings.TrimSpace(m[1])
				if rest == "" || (rest[0] != '"' && rest[0] != '`') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v",
							pos.Filename, pos.Line, c.Text, err)
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquote %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v",
							pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
