package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink flags writer-shaped calls whose error return is silently dropped —
// the call appears as a bare statement, a defer, or a go statement and its
// last result is an error. A truncated metrics file or event trace that
// "succeeded" is exactly the bug class PR 1 fixed by hand in sim.Run's trace
// writer; this analyzer keeps it fixed.
//
// Escape hatches, in preference order: handle the error; assign it to blank
// (`_ = w.Flush()`), which is visible in review; or waive the line with
// //lint:errsink and a reason. Exempt targets: strings.Builder and
// bytes.Buffer (documented to never fail) and os.Stderr/os.Stdout —
// best-effort diagnostics have nowhere to report their own failure.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc: "flag discarded error returns from Write/Flush/Close/Encode-style " +
		"calls and fmt.Fprint* / io helpers",
	Run: runErrSink,
}

// writerMethodNames are method names whose dropped error means lost output.
var writerMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "WriteCSV": true, "WriteJSON": true, "WriteASCII": true,
	"WritePrometheus": true, "Flush": true, "Close": true, "Encode": true,
	"Sync": true,
}

// writerPkgFuncs are package-level functions routed through an io.Writer.
var writerPkgFuncs = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":  {"WriteString": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
}

func runErrSink(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call != nil {
				checkErrSinkCall(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkErrSinkCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	name := sel.Sel.Name
	if pkg := pkgOf(pass, sel); pkg != "" {
		if writerPkgFuncs[pkg][name] && !exemptWriter(pass, firstArg(call)) {
			pass.Reportf(call.Pos(),
				"%s.%s error discarded: a failed write silently truncates "+
					"output (check it, assign to _, or waive with //lint:errsink)",
				pkg, name)
		}
		return
	}
	if writerMethodNames[name] && !exemptWriter(pass, sel.X) {
		pass.Reportf(call.Pos(),
			"%s error discarded: a failed write/flush/close silently "+
				"truncates output (check it, assign to _, or waive with "+
				"//lint:errsink)", name)
	}
}

func firstArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

// exemptWriter reports whether writing to target cannot meaningfully fail:
// strings.Builder and bytes.Buffer document that they never return an error,
// and os.Stderr/os.Stdout are best-effort diagnostic streams with nowhere to
// report their own failure.
func exemptWriter(pass *Pass, target ast.Expr) bool {
	if target == nil {
		return false
	}
	if sel, ok := target.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
			(sel.Sel.Name == "Stderr" || sel.Sel.Name == "Stdout") {
			return true
		}
	}
	t := pass.exprType(target)
	if t == nil {
		return false
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// returnsError reports whether the call's last result is of type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
