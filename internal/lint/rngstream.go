package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// RNGStream enforces the RNG-stream discipline that keeps feature-gated
// simulator extensions golden-hash compatible (established by the failure-
// injection PR and documented in internal/sim/sim.go):
//
//  1. New generator streams come only from the split helper — (*RNG).Split
//     in internal/sim/rng.go — or directly from a replication seed. A
//     hand-rolled NewRNG(r.Uint64()) is an un-audited split that silently
//     consumes draws from an existing stream and shifts every later one.
//  2. Streams are append-only: split results are appended after every
//     existing stream (s.xRNG = append(s.xRNG, root.Split())), never stored
//     by index. An indexed store reorders the split sequence and changes
//     every stream split after it, breaking bit-reproducibility of runs
//     with the reordered feature off.
//  3. No generator is shared across goroutines: a `go func(){...}` literal
//     must not capture an *RNG (or *math/rand.Rand) declared outside it —
//     the data race the parallel-replication runner in run.go is structured
//     to avoid. Handing a freshly split generator to the goroutine as an
//     argument is fine; the split then happens before the spawn.
var RNGStream = &Analyzer{
	Name: "rngstream",
	Doc: "RNG streams must be created via the split helper (or a seed), " +
		"appended after existing streams, and never shared across goroutines",
	Scope: []string{"internal/sim", "internal/control"},
	Run:   runRNGStream,
}

func runRNGStream(pass *Pass) error {
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		inRNGFile := filename == "rng.go"
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !inRNGFile {
					checkRNGConstruction(pass, n)
				}
			case *ast.AssignStmt:
				checkRNGIndexedStore(pass, n)
			case *ast.GoStmt:
				checkRNGGoroutineCapture(pass, n)
			}
			return true
		})
	}
	return nil
}

// isRNGType reports whether t is (a pointer to) the simulator's RNG type or
// math/rand's Rand.
func isRNGType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name, path := named.Obj().Name(), named.Obj().Pkg().Path()
	switch {
	case name == "RNG" && (path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")):
		return true
	case name == "Rand" && (path == "math/rand" || path == "math/rand/v2"):
		return true
	}
	return false
}

// seedDerived reports whether the expression plausibly derives from a
// replication seed rather than an existing stream: a compile-time constant
// (a literal IS a seed), or an identifier or selector whose name mentions
// "seed", possibly offset by integer arithmetic or conversions (seed,
// o.Seed+uint64(r), cfg.Seed...).
func seedDerived(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "seed")
	case *ast.BinaryExpr:
		return seedDerived(pass, x.X) || seedDerived(pass, x.Y)
	case *ast.CallExpr: // conversions like uint64(seed+r)
		if len(x.Args) == 1 {
			if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() {
				return seedDerived(pass, x.Args[0])
			}
		}
	case *ast.ParenExpr:
		return seedDerived(pass, x.X)
	}
	return false
}

// checkRNGConstruction flags stream constructions outside rng.go that do not
// derive from a seed: NewRNG(...) in the sim package and rand.New /
// rand.NewSource / rand.NewPCG / rand.NewChaCha8 calls.
func checkRNGConstruction(pass *Pass, call *ast.CallExpr) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "NewRNG" {
			return
		}
		// Only the sim package's own NewRNG counts.
		if fn, ok := pass.Info.Uses[fun].(*types.Func); !ok || fn.Pkg() == nil ||
			fn.Pkg() != pass.Pkg {
			return
		}
		name = "NewRNG"
	case *ast.SelectorExpr:
		switch pkgOf(pass, fun) {
		case "math/rand", "math/rand/v2":
		default:
			return
		}
		switch fun.Sel.Name {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			name = "rand." + fun.Sel.Name
		default:
			return
		}
	default:
		return
	}
	for _, arg := range call.Args {
		if !seedDerived(pass, arg) {
			pass.Reportf(call.Pos(),
				"%s from a non-seed value constructs an un-audited RNG "+
					"stream: derive streams with the split helper "+
					"((*RNG).Split in rng.go) or directly from a replication "+
					"seed", name)
			return
		}
	}
	if len(call.Args) == 0 {
		pass.Reportf(call.Pos(),
			"%s without a seed constructs a nondeterministic stream: pass a "+
				"replication seed or use the split helper", name)
	}
}

// splitCall reports whether the expression contains a .Split() call on an
// RNG receiver.
func splitCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Split" {
			return true
		}
		if isRNGType(pass.exprType(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// checkRNGIndexedStore flags split results stored through an index
// expression: the append-only discipline keeps the relative order of every
// existing stream fixed.
func checkRNGIndexedStore(pass *Pass, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if _, ok := lhs.(*ast.IndexExpr); !ok {
			continue
		}
		if splitCall(pass, n.Rhs[i]) {
			pass.Reportf(n.Pos(),
				"RNG stream stored by index: streams are append-only "+
					"(s.x = append(s.x, r.Split())) so existing streams never "+
					"move and feature-off runs stay bit-identical")
		}
	}
}

// checkRNGGoroutineCapture flags `go func(){...}` literals whose body uses
// an RNG declared outside the literal — a shared stream and a data race.
func checkRNGGoroutineCapture(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || reported[obj] || !isRNGType(obj.Type()) {
			return true
		}
		// Declared inside the literal (parameter or local): private stream.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"RNG %q is shared across goroutines: generators are not "+
				"concurrency-safe and shared draws destroy determinism — "+
				"split a stream before the spawn and pass it in", id.Name)
		return true
	})
}
