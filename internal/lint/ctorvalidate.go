package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtorValidate checks that exported constructors in the analytical packages
// (internal/queueing, internal/core) validate every rate-like float
// parameter NaN-safely before use. `x < 0` does NOT reject NaN (every
// ordered comparison with NaN is false), so the accepted validation forms
// are:
//
//   - math.IsNaN(x) / math.IsInf(x, ...)
//   - the negated-comparison idiom !(x > 0), which is false for NaN
//   - passing x (or the whole slice) to a helper named must*/check*/
//     validate*, or delegating the slice to another constructor
//   - for []float64 parameters, ranging over the slice and validating the
//     element by the rules above
//
// A NaN arrival rate that slips through a constructor surfaces hundreds of
// lines later as a NaN delay or a non-converging solver; rejecting it at the
// boundary is the paper's "garbage in, error out" discipline.
var CtorValidate = &Analyzer{
	Name: "ctorvalidate",
	Doc: "exported New*/Must* constructors must reject non-finite rate " +
		"parameters NaN-safely before use",
	Scope: []string{"internal/queueing", "internal/core"},
	Run:   runCtorValidate,
}

func runCtorValidate(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			name := fd.Name.Name
			if !fd.Name.IsExported() ||
				!(strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must")) {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			checkCtor(pass, fd)
		}
	}
	return nil
}

func checkCtor(pass *Pass, fd *ast.FuncDecl) {
	for _, field := range fd.Type.Params.List {
		floatParam, slice := floatParamKind(pass, field.Type)
		if !floatParam {
			continue
		}
		for _, nm := range field.Names {
			if nm.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[nm]
			if obj == nil {
				continue
			}
			if !paramValidated(pass, fd.Body, obj, slice) {
				kind := "float64"
				if slice {
					kind = "[]float64"
				}
				pass.Reportf(nm.Pos(),
					"constructor %s does not validate %s parameter %q "+
						"NaN-safely: use !(x > 0)-style checks or math.IsNaN/IsInf "+
						"(plain x < 0 lets NaN through)",
					fd.Name.Name, kind, nm.Name)
			}
		}
	}
}

// floatParamKind classifies a parameter type: (true, false) for float64/
// float32, (true, true) for a slice of them, (false, _) otherwise.
func floatParamKind(pass *Pass, t ast.Expr) (isFloat bool, isSlice bool) {
	tv, ok := pass.Info.Types[t]
	if !ok {
		return false, false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0, false
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0, true
	}
	return false, false
}

// validatorHelperPrefixes name same-package functions that encapsulate
// validation; passing the parameter to one counts.
var validatorHelperPrefixes = []string{"must", "Must", "check", "Check", "validate", "Validate", "valid"}

func isValidatorHelper(name string) bool {
	for _, p := range validatorHelperPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// paramValidated walks the constructor body for an accepted NaN-safe
// validation of the parameter object. For slices, defensive copies
// (`rs := append([]float64(nil), rates...)`) count as the parameter too.
func paramValidated(pass *Pass, body *ast.BlockStmt, param types.Object, slice bool) bool {
	objs := map[types.Object]bool{param: true}
	if slice {
		collectAliases(pass, body, param, objs)
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callValidates(pass, n, objs, slice) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			// !(param > 0), !(param >= lo && ...): any negated comparison
			// mentioning the param is NaN-safe — NaN fails the inner
			// comparison, so the negation catches it.
			if n.Op == token.NOT && exprMentionsAny(pass, n.X, objs) && containsComparison(n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging over the slice (or a copy) and validating the element.
			if slice && exprIsAnyObj(pass, n.X, objs) {
				if elem := rangeValueObj(pass, n); elem != nil &&
					paramValidated(pass, n.Body, elem, false) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// collectAliases adds local variables initialized from expressions that
// mention the slice parameter (copies, sub-slices) to objs.
func collectAliases(pass *Pass, body *ast.BlockStmt, param types.Object, objs map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if exprMentions(pass, as.Rhs[i], param) {
				if obj := pass.Info.Defs[id]; obj != nil {
					objs[obj] = true
				}
			}
		}
		return true
	})
}

// callValidates reports whether the call is an accepted validation of the
// parameter (or an alias of it): math.IsNaN/IsInf(param...), a must*/check*/
// validate* helper receiving it, or (for slices) delegation to another
// New*/Must* constructor.
func callValidates(pass *Pass, call *ast.CallExpr, objs map[types.Object]bool, slice bool) bool {
	receivesParam := false
	for _, arg := range call.Args {
		if exprIsAnyObj(pass, arg, objs) {
			receivesParam = true
			break
		}
	}
	if !receivesParam {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkgOf(pass, fun) == "math" &&
			(fun.Sel.Name == "IsNaN" || fun.Sel.Name == "IsInf") {
			return true
		}
	case *ast.Ident:
		if isValidatorHelper(fun.Name) {
			return true
		}
		if slice && (strings.HasPrefix(fun.Name, "New") || strings.HasPrefix(fun.Name, "Must")) {
			return true
		}
	}
	return false
}

// exprIsAnyObj reports whether e resolves to one of the given objects.
func exprIsAnyObj(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && objs[obj]
}

// exprMentionsAny reports whether e mentions any of the given objects.
func exprMentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	for obj := range objs {
		if exprMentions(pass, e, obj) {
			return true
		}
	}
	return false
}

// exprMentions reports whether any identifier inside e resolves to obj.
func exprMentions(pass *Pass, e ast.Expr, obj types.Object) bool {
	mentions := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			mentions = true
			return false
		}
		return !mentions
	})
	return mentions
}

// containsComparison reports whether e contains an ordered comparison.
func containsComparison(e ast.Expr) bool {
	has := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				has = true
				return false
			}
		}
		return !has
	})
	return has
}

// rangeValueObj returns the object of the range statement's value variable
// (for `for _, v := range xs`), or the key variable when it is the only one.
func rangeValueObj(pass *Pass, n *ast.RangeStmt) types.Object {
	if n.Value != nil {
		if id, ok := n.Value.(*ast.Ident); ok {
			return pass.Info.Defs[id]
		}
	}
	if n.Key != nil {
		if id, ok := n.Key.(*ast.Ident); ok {
			return pass.Info.Defs[id]
		}
	}
	return nil
}
