package opt

import (
	"math"
	"testing"
)

func traceBox(t *testing.T) Box {
	t.Helper()
	b, err := NewBox([]float64{-5, -5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkTrace(t *testing.T, res Result, name string) {
	t.Helper()
	if len(res.Trace) == 0 {
		t.Fatalf("%s: empty convergence trace", name)
	}
	// The trace covers every outer iteration, in order, with monotone
	// cumulative evaluation counts bounded by the final total.
	for i, e := range res.Trace {
		if e.Iter != i {
			t.Fatalf("%s: trace[%d].Iter = %d", name, i, e.Iter)
		}
		if math.IsNaN(e.F) {
			t.Fatalf("%s: trace[%d].F is NaN", name, i)
		}
		if i > 0 && e.Evals < res.Trace[i-1].Evals {
			t.Fatalf("%s: trace[%d].Evals %d < previous %d", name, i, e.Evals, res.Trace[i-1].Evals)
		}
		if e.Evals > res.Evals {
			t.Fatalf("%s: trace[%d].Evals %d exceeds total %d", name, i, e.Evals, res.Evals)
		}
	}
	// The last recorded objective must be close to the final answer — the
	// trace ends where the solver ends.
	last := res.Trace[len(res.Trace)-1].F
	if math.Abs(last-res.F) > 1e-6*(1+math.Abs(res.F)) {
		t.Fatalf("%s: trace ends at f=%g but result is f=%g", name, last, res.F)
	}
}

func TestProjectedGradientTrace(t *testing.T) {
	res := ProjectedGradient(sphere, traceBox(t), []float64{3, -4}, ProjGradOptions{})
	checkTrace(t, res, "projgrad")
	if !res.Converged {
		t.Fatal("projected gradient did not converge on the sphere")
	}
	// Progress must be real: the first recorded objective is far worse than
	// the last, and step sizes are positive.
	if res.Trace[0].F <= res.Trace[len(res.Trace)-1].F {
		t.Fatalf("no recorded progress: %g → %g", res.Trace[0].F, res.Trace[len(res.Trace)-1].F)
	}
	for i, e := range res.Trace {
		if e.Step <= 0 {
			t.Fatalf("trace[%d].Step = %g, want > 0", i, e.Step)
		}
		if e.Violation != 0 {
			t.Fatalf("unconstrained solver recorded violation %g", e.Violation)
		}
	}
}

func TestNelderMeadTrace(t *testing.T) {
	res := NelderMead(sphere, traceBox(t), []float64{4, 4}, NelderMeadOptions{})
	checkTrace(t, res, "neldermead")
	// The simplex x-spread must shrink toward the tolerance.
	first, last := res.Trace[0].Step, res.Trace[len(res.Trace)-1].Step
	if !(last < first) {
		t.Fatalf("simplex spread did not shrink: %g → %g", first, last)
	}
}

func TestAugmentedLagrangianTrace(t *testing.T) {
	// Minimize x+y subject to x+y ≥ 1 (i.e. 1−x−y ≤ 0): optimum on the
	// constraint boundary, so early iterates violate it and the trace must
	// record shrinking violations and growing penalties.
	f := func(x []float64) float64 { return x[0] + x[1] }
	g := Constraint(func(x []float64) float64 { return 1 - x[0] - x[1] })
	res := AugmentedLagrangian(f, []Constraint{g}, traceBox(t), []float64{-3, -3}, AugLagOptions{})
	checkTrace(t, res, "auglag")
	if math.Abs(res.F-1) > 1e-3 {
		t.Fatalf("auglag f = %g, want ≈ 1", res.F)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Step < res.Trace[i-1].Step {
			t.Fatalf("penalty µ shrank at trace[%d]: %g < %g",
				i, res.Trace[i].Step, res.Trace[i-1].Step)
		}
	}
	if last := res.Trace[len(res.Trace)-1].Violation; last > 1e-4 {
		t.Fatalf("final recorded violation %g, want ≈ 0", last)
	}
}

func TestMultiStartKeepsWinnersTrace(t *testing.T) {
	res := MultiStart(func(x0 []float64) Result {
		return NelderMead(sphere, traceBox(t), x0, NelderMeadOptions{})
	}, traceBox(t), 4)
	checkTrace(t, res, "multistart")
}
