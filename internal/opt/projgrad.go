package opt

import "math"

// ProjGradOptions configures projected gradient descent.
type ProjGradOptions struct {
	MaxIters int     // default 500
	GTol     float64 // stop when the projected step norm falls below this; default 1e-9
	Step0    float64 // initial step size; default 1 (scaled by backtracking)
}

func (o *ProjGradOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.GTol <= 0 {
		o.GTol = 1e-9
	}
	if o.Step0 <= 0 {
		o.Step0 = 1
	}
}

// ProjectedGradient minimizes f over the box by gradient descent with
// projection onto the box and Armijo backtracking. Gradients are numerical
// (central differences). It is the workhorse for the smooth convex-ish
// speed-allocation problems; Nelder–Mead covers the non-smooth cases.
func ProjectedGradient(f Objective, box Box, x0 []float64, opts ProjGradOptions) Result {
	opts.defaults()
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	x := box.Project(append([]float64(nil), x0...))
	fx := eval(x)
	step := opts.Step0

	iters := 0
	converged := false
	var trace []TraceEntry
	for ; iters < opts.MaxIters; iters++ {
		g := Gradient(f, x)
		evals += 2 * len(x)

		// Scale the first step to the box so one step cannot jump across
		// the entire feasible region.
		if iters == 0 {
			gn := norm2(g)
			if gn > 0 {
				maxW := 0.0
				for i := range x {
					if w := box.Width(i); w > maxW {
						maxW = w
					}
				}
				if maxW > 0 {
					step = math.Min(step, 0.25*maxW/gn)
				}
			}
		}

		// Backtracking line search on the projected step.
		improved := false
		for bt := 0; bt < 40; bt++ {
			trial := make([]float64, len(x))
			for i := range x {
				trial[i] = x[i] - step*g[i]
			}
			box.Project(trial)
			ft := eval(trial)

			// Armijo condition against the projected displacement.
			var desc float64
			for i := range x {
				desc += g[i] * (x[i] - trial[i])
			}
			if ft <= fx-1e-4*desc && ft < fx {
				// Accept; try growing the step next iteration.
				var moved float64
				for i := range x {
					moved = math.Max(moved, math.Abs(trial[i]-x[i]))
				}
				x, fx = trial, ft
				step *= 1.5
				improved = true
				if moved <= opts.GTol*(1+norm2(x)) {
					converged = true
				}
				break
			}
			step /= 2
			if step < 1e-18 {
				break
			}
		}
		trace = append(trace, TraceEntry{Iter: iters, F: fx, Step: step, Evals: evals})
		if converged {
			break
		}
		if !improved {
			// No descent direction found: either at a stationary point or
			// the gradient is unusable (e.g. infeasibility wall).
			converged = true
			break
		}
	}
	return Result{X: x, F: fx, Iters: iters, Evals: evals, Converged: converged, Trace: trace}
}
