// Package opt is a from-scratch numerical optimization toolkit built for the
// paper's resource-allocation problems: golden-section and bisection in one
// dimension, Nelder–Mead and projected gradient descent with box constraints
// in many, an augmented-Lagrangian method for inequality-constrained
// problems, and a deterministic multi-start wrapper. It is stdlib-only.
//
// All solvers minimize. Objectives may return +Inf to mark infeasible points
// (e.g. an unstable queueing configuration); the solvers treat such points as
// uniformly bad and retreat from them.
package opt

import (
	"fmt"
	"math"
)

// Objective is a scalar function of a vector.
type Objective func(x []float64) float64

// TraceEntry is one point of a solver's convergence trace: the state at the
// end of one (outer) iteration. The Step field is solver-specific scale
// information — the line-search step for projected gradient, the simplex
// x-spread for Nelder–Mead, the penalty weight µ for the augmented
// Lagrangian, and the dual bracket width for the decomposed solvers.
type TraceEntry struct {
	Iter      int     // 0-based (outer) iteration index
	F         float64 // incumbent objective value
	Violation float64 // max inequality-constraint violation (0 when unconstrained)
	Step      float64 // solver step scale (see above)
	Evals     int     // cumulative objective evaluations so far
}

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64 // best point found
	F         float64   // objective at X
	Iters     int       // outer iterations performed
	Evals     int       // objective evaluations
	Converged bool      // tolerance met before the iteration cap
	// Trace records per-iteration convergence (objective, constraint
	// violation, step scale) for plotting solver behavior. Multi-start
	// wrappers keep the winning start's trace.
	Trace []TraceEntry
}

func (r Result) String() string {
	return fmt.Sprintf("f=%.6g at %v (iters=%d evals=%d converged=%v)",
		r.F, r.X, r.Iters, r.Evals, r.Converged)
}

// Box holds per-coordinate lower and upper bounds.
type Box struct {
	Lo, Hi []float64
}

// NewBox validates the bounds and returns the box.
func NewBox(lo, hi []float64) (Box, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return Box{}, fmt.Errorf("opt: bound lengths %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if !(lo[i] <= hi[i]) {
			return Box{}, fmt.Errorf("opt: bounds inverted at %d: [%g, %g]", i, lo[i], hi[i])
		}
	}
	return Box{Lo: lo, Hi: hi}, nil
}

// Dim returns the dimensionality.
func (b Box) Dim() int { return len(b.Lo) }

// Project clamps x into the box in place and returns it.
func (b Box) Project(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Contains reports whether x lies inside the box (inclusive).
func (b Box) Contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the box midpoint.
func (b Box) Center() []float64 {
	c := make([]float64, b.Dim())
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// Width returns hi−lo per coordinate.
func (b Box) Width(i int) float64 { return b.Hi[i] - b.Lo[i] }

// Gradient approximates ∇f at x by central differences with a relative step.
// Evaluations that hit +Inf fall back to one-sided differences.
func Gradient(f Objective, x []float64) []float64 {
	g := make([]float64, len(x))
	xx := append([]float64(nil), x...)
	fx := math.NaN() // computed lazily for one-sided fallbacks
	for i := range x {
		h := 1e-6 * (1 + math.Abs(x[i]))
		xx[i] = x[i] + h
		fp := f(xx)
		xx[i] = x[i] - h
		fm := f(xx)
		xx[i] = x[i]
		switch {
		case !math.IsInf(fp, 1) && !math.IsInf(fm, 1):
			g[i] = (fp - fm) / (2 * h)
		case math.IsInf(fp, 1) && !math.IsInf(fm, 1):
			if math.IsNaN(fx) {
				fx = f(x)
			}
			g[i] = (fx - fm) / h
		case !math.IsInf(fp, 1) && math.IsInf(fm, 1):
			if math.IsNaN(fx) {
				fx = f(x)
			}
			g[i] = (fp - fx) / h
		default:
			g[i] = 0 // surrounded by infeasibility; no usable direction
		}
	}
	return g
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
