package opt

import (
	"fmt"
	"math"
)

// GoldenSection minimizes a unimodal scalar function on [lo, hi] to the given
// x-tolerance. It is derivative-free and robust to +Inf plateaus at the
// interval edges as long as the function is finite somewhere inside.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (x, fx float64, evals int) {
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949 // (√5−1)/2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	evals = 2
	for b-a > tol*(1+math.Abs(a)+math.Abs(b)) {
		if fc < fd || (math.IsInf(fd, 1) && !math.IsInf(fc, 1)) {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
		evals++
		if evals > 500 {
			break
		}
	}
	if fc < fd {
		return c, fc, evals
	}
	return d, fd, evals
}

// Bisect finds a root of a continuous function g on [lo, hi] where
// g(lo) and g(hi) have opposite signs, to the given x-tolerance.
func Bisect(g func(float64) float64, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	glo, ghi := g(lo), g(hi)
	if glo == 0 {
		return lo, nil
	}
	if ghi == 0 {
		return hi, nil
	}
	if math.Signbit(glo) == math.Signbit(ghi) {
		return 0, fmt.Errorf("opt: no sign change on [%g, %g] (g=%g, %g)", lo, hi, glo, ghi)
	}
	for i := 0; i < 200 && hi-lo > tol*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		gm := g(mid)
		if gm == 0 {
			return mid, nil
		}
		if math.Signbit(gm) == math.Signbit(glo) {
			lo, glo = mid, gm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// BisectDecreasing finds x in [lo, hi] with g(x) = target for a
// non-increasing g, handling the common resource-allocation shape where
// g(lo) ≥ target ≥ g(hi) (e.g. delay as a function of speed). It returns an
// error when the target is outside the achievable range.
func BisectDecreasing(g func(float64) float64, target, lo, hi, tol float64) (float64, error) {
	glo, ghi := g(lo), g(hi)
	if glo < target {
		return 0, fmt.Errorf("opt: target %g above range (g(lo)=%g)", target, glo)
	}
	if ghi > target {
		return 0, fmt.Errorf("opt: target %g below range (g(hi)=%g)", target, ghi)
	}
	return Bisect(func(x float64) float64 {
		v := g(x)
		if math.IsInf(v, 1) {
			return 1 // treat infeasible as "above target"
		}
		return v - target
	}, lo, hi, tol)
}
