package opt

import (
	"math"
	"sort"
)

// NelderMeadOptions configures the simplex solver.
type NelderMeadOptions struct {
	MaxIters int     // default 200·dim
	FTol     float64 // stop when the simplex f-spread falls below this; default 1e-10
	XTol     float64 // stop when the simplex x-spread falls below this; default 1e-9
	// InitStep scales the initial simplex relative to the box width
	// (default 0.1).
	InitStep float64
}

func (o *NelderMeadOptions) defaults(dim int) {
	if o.MaxIters <= 0 {
		o.MaxIters = 200 * dim
	}
	if o.FTol <= 0 {
		o.FTol = 1e-10
	}
	if o.XTol <= 0 {
		o.XTol = 1e-9
	}
	if o.InitStep <= 0 {
		o.InitStep = 0.1
	}
}

type nmVertex struct {
	x []float64
	f float64
}

// NelderMead minimizes f over the box starting from x0, projecting every
// trial point into the box (a simple and effective way to respect bounds
// with a derivative-free method).
func NelderMead(f Objective, box Box, x0 []float64, opts NelderMeadOptions) Result {
	dim := box.Dim()
	opts.defaults(dim)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus one perturbed vertex per dimension.
	start := box.Project(append([]float64(nil), x0...))
	simplex := make([]nmVertex, dim+1)
	simplex[0] = nmVertex{x: append([]float64(nil), start...), f: eval(start)}
	for i := 0; i < dim; i++ {
		v := append([]float64(nil), start...)
		step := opts.InitStep * box.Width(i)
		if step == 0 {
			step = opts.InitStep * (1 + math.Abs(start[i]))
		}
		v[i] += step
		if v[i] > box.Hi[i] { // reflect inside
			v[i] = start[i] - step
		}
		box.Project(v)
		simplex[i+1] = nmVertex{x: v, f: eval(v)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	iters := 0
	converged := false
	var trace []TraceEntry
	for ; iters < opts.MaxIters; iters++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[dim]

		// Convergence: f-spread and x-spread of the simplex.
		fSpread := math.Abs(worst.f - best.f)
		var xSpread float64
		for i := 0; i < dim; i++ {
			d := math.Abs(worst.x[i] - best.x[i])
			if d > xSpread {
				xSpread = d
			}
		}
		trace = append(trace, TraceEntry{Iter: iters, F: best.f, Step: xSpread, Evals: evals})
		if fSpread <= opts.FTol*(1+math.Abs(best.f)) && xSpread <= opts.XTol*(1+norm2(best.x)) {
			converged = true
			break
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, dim)
		for _, v := range simplex[:dim] {
			for i := range centroid {
				centroid[i] += v.x[i]
			}
		}
		for i := range centroid {
			centroid[i] /= float64(dim)
		}

		mix := func(c float64) []float64 {
			p := make([]float64, dim)
			for i := range p {
				p[i] = centroid[i] + c*(centroid[i]-worst.x[i])
			}
			return box.Project(p)
		}

		refl := mix(alpha)
		fr := eval(refl)
		switch {
		case fr < best.f:
			// Try to expand.
			exp := mix(gamma)
			fe := eval(exp)
			if fe < fr {
				simplex[dim] = nmVertex{x: exp, f: fe}
			} else {
				simplex[dim] = nmVertex{x: refl, f: fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = nmVertex{x: refl, f: fr}
		default:
			// Contract toward the centroid.
			con := mix(-rho)
			fc := eval(con)
			if fc < worst.f {
				simplex[dim] = nmVertex{x: con, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					box.Project(simplex[i].x)
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}

	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{
		X: simplex[0].x, F: simplex[0].f,
		Iters: iters, Evals: evals, Converged: converged,
		Trace: trace,
	}
}
