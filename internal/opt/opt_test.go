package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func mustBox(t *testing.T, lo, hi []float64) Box {
	t.Helper()
	b, err := NewBox(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoxBasics(t *testing.T) {
	b := mustBox(t, []float64{0, -1}, []float64{2, 1})
	if b.Dim() != 2 {
		t.Fatal("dim")
	}
	x := b.Project([]float64{-5, 0.5})
	if x[0] != 0 || x[1] != 0.5 {
		t.Errorf("project = %v", x)
	}
	if !b.Contains([]float64{1, 0}) || b.Contains([]float64{3, 0}) {
		t.Error("contains misbehaves")
	}
	c := b.Center()
	if c[0] != 1 || c[1] != 0 {
		t.Errorf("center = %v", c)
	}
	if b.Width(0) != 2 {
		t.Error("width")
	}
	if _, err := NewBox([]float64{1}, []float64{0}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewBox(nil, nil); err == nil {
		t.Error("empty box accepted")
	}
	if _, err := NewBox([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGradientQuadratic(t *testing.T) {
	// f = x² + 3y²; ∇f(1, 2) = (2, 12).
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[1]*x[1] }
	g := Gradient(f, []float64{1, 2})
	if !almostEq(g[0], 2, 1e-5) || !almostEq(g[1], 12, 1e-5) {
		t.Errorf("gradient = %v", g)
	}
}

func TestGradientInfeasibleSide(t *testing.T) {
	// f is +Inf for x > 1: one-sided difference must kick in near the wall.
	f := func(x []float64) float64 {
		if x[0] > 1 {
			return math.Inf(1)
		}
		return -x[0]
	}
	g := Gradient(f, []float64{1 - 1e-8})
	if !almostEq(g[0], -1, 1e-3) {
		t.Errorf("one-sided gradient = %v", g)
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, fx, evals := GoldenSection(f, -10, 10, 1e-10)
	if !almostEq(x, 1.7, 1e-7) {
		t.Errorf("argmin = %g", x)
	}
	if fx > 1e-12 {
		t.Errorf("min = %g", fx)
	}
	if evals <= 0 || evals > 500 {
		t.Errorf("evals = %d", evals)
	}
}

func TestGoldenSectionWithInfEdge(t *testing.T) {
	// Queueing-style objective: +Inf left of 1 (instability), then convex.
	f := func(x float64) float64 {
		if x <= 1 {
			return math.Inf(1)
		}
		return 1/(x-1) + x
	}
	// True minimum at x = 2.
	x, _, _ := GoldenSection(f, 0, 10, 1e-10)
	if !almostEq(x, 2, 1e-6) {
		t.Errorf("argmin = %g, want 2", x)
	}
}

func TestBisect(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 2, 1e-9) {
		t.Errorf("root = %g", x)
	}
	// Exact endpoints.
	x, err = Bisect(func(x float64) float64 { return x }, 0, 1, 0)
	if err != nil || x != 0 {
		t.Errorf("root at lo: %g, %v", x, err)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 0); err == nil {
		t.Error("no sign change accepted")
	}
}

func TestBisectDecreasing(t *testing.T) {
	// g(x) = 10/x, target 2 → x = 5.
	g := func(x float64) float64 { return 10 / x }
	x, err := BisectDecreasing(g, 2, 0.1, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 5, 1e-8) {
		t.Errorf("x = %g", x)
	}
	if _, err := BisectDecreasing(g, 200, 0.1, 100, 0); err == nil {
		t.Error("unreachable high target accepted")
	}
	if _, err := BisectDecreasing(g, 0.01, 0.1, 100, 0); err == nil {
		t.Error("unreachable low target accepted")
	}
	// Infeasible (+Inf) left region treated as above-target.
	gInf := func(x float64) float64 {
		if x < 1 {
			return math.Inf(1)
		}
		return 10 / x
	}
	x, err = BisectDecreasing(gInf, 2, 0.5, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 5, 1e-8) {
		t.Errorf("x with inf region = %g", x)
	}
}

func TestNelderMeadSphere(t *testing.T) {
	box := mustBox(t, []float64{-5, -5, -5}, []float64{5, 5, 5})
	r := NelderMead(sphere, box, []float64{3, -4, 2}, NelderMeadOptions{})
	if r.F > 1e-8 {
		t.Errorf("sphere min = %g at %v", r.F, r.X)
	}
	if !r.Converged {
		t.Error("should converge")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	box := mustBox(t, []float64{-2, -2}, []float64{2, 2})
	r := NelderMead(rosenbrock, box, []float64{-1.2, 1}, NelderMeadOptions{MaxIters: 5000})
	if !almostEq(r.X[0], 1, 1e-3) || !almostEq(r.X[1], 1, 1e-3) {
		t.Errorf("rosenbrock argmin = %v (f=%g)", r.X, r.F)
	}
}

func TestNelderMeadRespectsBox(t *testing.T) {
	// Unconstrained minimum at (−3, −3) lies outside the box; solution
	// must land on the boundary (0, 0).
	f := func(x []float64) float64 {
		return (x[0]+3)*(x[0]+3) + (x[1]+3)*(x[1]+3)
	}
	box := mustBox(t, []float64{0, 0}, []float64{5, 5})
	r := NelderMead(f, box, []float64{2, 2}, NelderMeadOptions{})
	if !box.Contains(r.X) {
		t.Fatalf("solution %v escaped the box", r.X)
	}
	if !almostEq(r.X[0], 0, 1e-4) || !almostEq(r.X[1], 0, 1e-4) {
		t.Errorf("boundary argmin = %v", r.X)
	}
}

func TestNelderMeadInfeasibleRegions(t *testing.T) {
	// +Inf for x+y > 1.5 (queueing stability wall); min of −x−y sits on it.
	f := func(x []float64) float64 {
		if x[0]+x[1] > 1.5 {
			return math.Inf(1)
		}
		return -x[0] - x[1]
	}
	box := mustBox(t, []float64{0, 0}, []float64{2, 2})
	r := NelderMead(f, box, []float64{0.1, 0.1}, NelderMeadOptions{MaxIters: 2000})
	if !almostEq(r.X[0]+r.X[1], 1.5, 1e-3) {
		t.Errorf("wall argmin = %v (sum=%g)", r.X, r.X[0]+r.X[1])
	}
}

func TestProjectedGradientSphere(t *testing.T) {
	box := mustBox(t, []float64{-5, -5, -5, -5}, []float64{5, 5, 5, 5})
	r := ProjectedGradient(sphere, box, []float64{4, -3, 2, -1}, ProjGradOptions{})
	if r.F > 1e-8 {
		t.Errorf("sphere min = %g at %v", r.F, r.X)
	}
}

func TestProjectedGradientBoundary(t *testing.T) {
	f := func(x []float64) float64 { return (x[0]-10)*(x[0]-10) + x[1]*x[1] }
	box := mustBox(t, []float64{0, -1}, []float64{3, 1})
	r := ProjectedGradient(f, box, []float64{1, 0.5}, ProjGradOptions{})
	if !almostEq(r.X[0], 3, 1e-5) {
		t.Errorf("boundary solution = %v", r.X)
	}
	if !box.Contains(r.X) {
		t.Error("escaped box")
	}
}

func TestProjectedGradientIllConditioned(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 100*x[1]*x[1] }
	box := mustBox(t, []float64{-2, -2}, []float64{2, 2})
	r := ProjectedGradient(f, box, []float64{1.5, 1.5}, ProjGradOptions{MaxIters: 2000})
	if r.F > 1e-6 {
		t.Errorf("ill-conditioned min = %g at %v", r.F, r.X)
	}
}

func TestAugmentedLagrangianKnownSolution(t *testing.T) {
	// min x² + y² s.t. x + y ≥ 2 (i.e. 2 − x − y ≤ 0); solution (1, 1), f = 2.
	f := sphere
	g := []Constraint{func(x []float64) float64 { return 2 - x[0] - x[1] }}
	box := mustBox(t, []float64{-5, -5}, []float64{5, 5})
	r := AugmentedLagrangian(f, g, box, []float64{0, 0}, AugLagOptions{})
	if !r.Converged {
		t.Fatalf("did not converge: %v", r)
	}
	if !almostEq(r.F, 2, 1e-3) {
		t.Errorf("constrained min = %g, want 2", r.F)
	}
	if !almostEq(r.X[0], 1, 1e-2) || !almostEq(r.X[1], 1, 1e-2) {
		t.Errorf("argmin = %v, want (1,1)", r.X)
	}
	// The constraint must hold (tolerance).
	if v := g[0](r.X); v > 1e-4 {
		t.Errorf("constraint violated by %g", v)
	}
}

func TestAugmentedLagrangianInactiveConstraint(t *testing.T) {
	// Constraint x+y ≤ 100 never binds: result equals the unconstrained one.
	f := func(x []float64) float64 { return (x[0]-1)*(x[0]-1) + (x[1]-2)*(x[1]-2) }
	g := []Constraint{func(x []float64) float64 { return x[0] + x[1] - 100 }}
	box := mustBox(t, []float64{-5, -5}, []float64{5, 5})
	r := AugmentedLagrangian(f, g, box, []float64{0, 0}, AugLagOptions{})
	if !almostEq(r.X[0], 1, 1e-3) || !almostEq(r.X[1], 2, 1e-3) {
		t.Errorf("argmin = %v, want (1,2)", r.X)
	}
}

func TestAugmentedLagrangianTwoConstraints(t *testing.T) {
	// min (x−3)² + (y−3)² s.t. x ≤ 1, y ≤ 2 → (1, 2).
	f := func(x []float64) float64 { return (x[0]-3)*(x[0]-3) + (x[1]-3)*(x[1]-3) }
	gs := []Constraint{
		func(x []float64) float64 { return x[0] - 1 },
		func(x []float64) float64 { return x[1] - 2 },
	}
	box := mustBox(t, []float64{-5, -5}, []float64{5, 5})
	r := AugmentedLagrangian(f, gs, box, []float64{0, 0}, AugLagOptions{})
	if !almostEq(r.X[0], 1, 1e-2) || !almostEq(r.X[1], 2, 1e-2) {
		t.Errorf("argmin = %v, want (1,2)", r.X)
	}
}

func TestAugmentedLagrangianNoConstraints(t *testing.T) {
	box := mustBox(t, []float64{-5, -5}, []float64{5, 5})
	r := AugmentedLagrangian(sphere, nil, box, []float64{3, 3}, AugLagOptions{})
	if r.F > 1e-8 {
		t.Errorf("unconstrained fallback min = %g", r.F)
	}
}

func TestAugmentedLagrangianInfeasibleProblem(t *testing.T) {
	// x ≥ 10 is impossible inside the box: the solver must report
	// non-convergence rather than a fake answer.
	g := []Constraint{func(x []float64) float64 { return 10 - x[0] }}
	box := mustBox(t, []float64{0, 0}, []float64{1, 1})
	r := AugmentedLagrangian(sphere, g, box, []float64{0.5, 0.5}, AugLagOptions{OuterIters: 8})
	if r.Converged {
		t.Error("infeasible problem reported as converged")
	}
}

func TestMultiStartEscapesLocalMin(t *testing.T) {
	// Double well: local min near x=−1 (f=0.5), global near x=2 (f=0).
	f := func(x []float64) float64 {
		v := x[0]
		return math.Min((v+1)*(v+1)+0.5, (v-2)*(v-2))
	}
	box := mustBox(t, []float64{-4}, []float64{4})
	solve := func(x0 []float64) Result {
		return NelderMead(f, box, x0, NelderMeadOptions{})
	}
	r := MultiStart(solve, box, 8)
	if !almostEq(r.X[0], 2, 1e-3) {
		t.Errorf("multistart landed at %v (f=%g)", r.X, r.F)
	}
	// Degenerate request.
	r1 := MultiStart(solve, box, 0)
	if len(r1.X) != 1 {
		t.Error("starts<1 should still run once")
	}
}

func TestMultiStartAccumulatesEvals(t *testing.T) {
	box := mustBox(t, []float64{-1}, []float64{1})
	solve := func(x0 []float64) Result {
		return NelderMead(sphere, box, x0, NelderMeadOptions{})
	}
	r1 := MultiStart(solve, box, 1)
	r4 := MultiStart(solve, box, 4)
	if r4.Evals <= r1.Evals {
		t.Errorf("evals not accumulated: %d vs %d", r4.Evals, r1.Evals)
	}
}

// Property: for random convex quadratics the three solvers agree with the
// analytical box-clamped minimum in 1D.
func TestSolversAgreeOnQuadraticsQuick(t *testing.T) {
	box := mustBox(t, []float64{-2}, []float64{2})
	f := func(center float64) bool {
		c := math.Mod(center, 5)
		if math.IsNaN(c) {
			return true
		}
		want := math.Max(-2, math.Min(2, c))
		obj := func(x []float64) float64 { return (x[0] - c) * (x[0] - c) }
		nm := NelderMead(obj, box, []float64{0}, NelderMeadOptions{})
		pg := ProjectedGradient(obj, box, []float64{0}, ProjGradOptions{})
		gx, _, _ := GoldenSection(func(x float64) float64 { return (x - c) * (x - c) }, -2, 2, 1e-10)
		return almostEq(nm.X[0], want, 1e-4) && almostEq(pg.X[0], want, 1e-4) && almostEq(gx, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	r := Result{X: []float64{1}, F: 2, Iters: 3, Evals: 4, Converged: true}
	if len(r.String()) == 0 {
		t.Error("empty string")
	}
}

func TestGradientSurroundedByInfeasibility(t *testing.T) {
	// Both sides +Inf: no usable direction; the gradient must be zero
	// rather than NaN so callers can stop cleanly.
	f := func(x []float64) float64 {
		if x[0] != 0.5 {
			return math.Inf(1)
		}
		return 1
	}
	g := Gradient(f, []float64{0.5})
	if g[0] != 0 {
		t.Errorf("walled-in gradient = %v", g)
	}
}

func TestGoldenSectionHandlesTolDefault(t *testing.T) {
	// tol <= 0 falls back to a sane default instead of looping forever.
	x, _, evals := GoldenSection(func(x float64) float64 { return x * x }, -1, 1, -5)
	if math.Abs(x) > 1e-6 {
		t.Errorf("argmin = %g", x)
	}
	if evals > 500 {
		t.Errorf("evals = %d", evals)
	}
}

func TestBisectDefaultTol(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x - 0.25 }, 0, 1, -1)
	if err != nil || math.Abs(x-0.25) > 1e-6 {
		t.Errorf("root = %g, %v", x, err)
	}
}
