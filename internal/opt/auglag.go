package opt

import "math"

// Constraint is an inequality constraint g(x) ≤ 0.
type Constraint func(x []float64) float64

// AugLagOptions configures the augmented-Lagrangian solver.
type AugLagOptions struct {
	OuterIters int     // default 30
	Penalty0   float64 // initial penalty weight; default 10
	PenaltyMul float64 // penalty growth per outer iteration; default 4
	// CTol is the constraint-violation tolerance declaring feasibility;
	// default 1e-6 (relative to 1+|g|).
	CTol float64
	// Inner configures the inner unconstrained-in-the-box solves.
	Inner NelderMeadOptions
}

func (o *AugLagOptions) defaults() {
	if o.OuterIters <= 0 {
		o.OuterIters = 30
	}
	if o.Penalty0 <= 0 {
		o.Penalty0 = 10
	}
	if o.PenaltyMul <= 1 {
		o.PenaltyMul = 4
	}
	if o.CTol <= 0 {
		o.CTol = 1e-6
	}
}

// AugmentedLagrangian minimizes f subject to g_i(x) ≤ 0 and box constraints,
// using the standard multiplier method for inequalities:
//
//	L(x; λ, μ) = f(x) + (1/2μ) Σ_i [max(0, λ_i + μ g_i(x))² − λ_i²]
//
// with multiplier update λ_i ← max(0, λ_i + μ g_i(x)). The inner problems
// are solved by Nelder–Mead inside the box, making the method derivative-free
// end to end — a good fit for queueing objectives whose gradients blow up at
// the stability boundary.
func AugmentedLagrangian(f Objective, gs []Constraint, box Box, x0 []float64, opts AugLagOptions) Result {
	opts.defaults()
	if len(gs) == 0 {
		return NelderMead(f, box, x0, opts.Inner)
	}

	lambda := make([]float64, len(gs))
	mu := opts.Penalty0
	x := box.Project(append([]float64(nil), x0...))

	totalEvals, totalIters := 0, 0
	var best Result
	best.F = math.Inf(1)
	feasibleFound := false
	var trace []TraceEntry

	for outer := 0; outer < opts.OuterIters; outer++ {
		lagr := func(p []float64) float64 {
			v := f(p)
			if math.IsInf(v, 1) {
				return v
			}
			for i, g := range gs {
				gi := g(p)
				if math.IsInf(gi, 1) {
					return math.Inf(1)
				}
				t := lambda[i] + mu*gi
				if t > 0 {
					v += (t*t - lambda[i]*lambda[i]) / (2 * mu)
				} else {
					v -= lambda[i] * lambda[i] / (2 * mu)
				}
			}
			return v
		}
		res := NelderMead(lagr, box, x, opts.Inner)
		x = res.X
		totalEvals += res.Evals
		totalIters++

		// Measure violation and update multipliers.
		maxViol := 0.0
		for i, g := range gs {
			gi := g(x)
			if gi > maxViol {
				maxViol = gi
			}
			lambda[i] = math.Max(0, lambda[i]+mu*gi)
		}

		fx := f(x)
		totalEvals++
		trace = append(trace, TraceEntry{
			Iter: outer, F: fx, Violation: maxViol, Step: mu, Evals: totalEvals,
		})
		if maxViol <= opts.CTol {
			prevBest := best.F
			if fx < best.F {
				best = Result{X: append([]float64(nil), x...), F: fx}
			}
			// Two consecutive feasible solves with a stable objective:
			// the multipliers have settled.
			if feasibleFound && math.Abs(fx-prevBest) <= 1e-8*(1+math.Abs(prevBest)) {
				best.Iters = totalIters
				best.Evals = totalEvals
				best.Converged = true
				best.Trace = trace
				return best
			}
			feasibleFound = true
		}
		mu *= opts.PenaltyMul
	}

	if !feasibleFound {
		// Return the least-violating point with Converged=false.
		return Result{X: x, F: f(x), Iters: totalIters, Evals: totalEvals, Converged: false, Trace: trace}
	}
	best.Iters = totalIters
	best.Evals = totalEvals
	best.Converged = true
	best.Trace = trace
	return best
}

// MultiStart runs the given solver from several deterministic starting points
// spread across the box (the center plus scaled lattice corners) and returns
// the best result. starts ≥ 1; evaluation counts are accumulated.
func MultiStart(solve func(x0 []float64) Result, box Box, starts int) Result {
	if starts < 1 {
		starts = 1
	}
	best := Result{F: math.Inf(1)}
	dim := box.Dim()
	for s := 0; s < starts; s++ {
		x0 := make([]float64, dim)
		for i := range x0 {
			// Deterministic low-discrepancy-ish spread: fractional parts
			// of multiples of the golden ratio, per start and dimension.
			frac := math.Mod(0.5+float64(s)*0.6180339887498949+float64(i)*0.3819660112501051, 1)
			x0[i] = box.Lo[i] + frac*box.Width(i)
		}
		r := solve(x0)
		evals := best.Evals + r.Evals
		iters := best.Iters + r.Iters
		if r.F < best.F {
			best = r
		}
		best.Evals = evals
		best.Iters = iters
	}
	return best
}
