package sim

import "math"

// Plan-level control: the simulator side of the model-driven autoscaler
// (internal/control). Once per control epoch the engine assembles a
// PlanObservation — every station's epoch observation plus the windowed
// per-class arrival-rate estimates — hands it to the PlanController, and
// applies the returned PlanDecision under the same clamps the per-station
// path enforces. The epoch machinery is shared with the per-station
// controller (see handleControl); only the decision surface differs.
//
// Determinism: the control event consumes no RNG draws, and a decision that
// holds every knob leaves the event stream untouched, so a no-op plan
// controller produces bit-identical results to a controller-free run (pinned
// by the perturbation-freedom tests in internal/control).

// handlePlanControl runs one epoch of the plan-level controller.
func (s *simulator) handlePlanControl(now float64) {
	obs := &s.planObs
	obs.Time = now
	for i, st := range s.stations {
		obs.Stations[i] = s.observeStation(st, now)
	}
	// λ̂ from the window sensors: NaN (no estimate) when no window set is
	// attached or a class's window has no coverage yet. Reading the sensor
	// only advances its expiry bookkeeping, never the measured state.
	s.win.Rates(now, obs.Rates)
	d := s.planController.DecidePlan(*obs)
	s.applyPlan(now, d)
}

// applyPlan applies a plan decision: per-tier speed retunes (clamped, with
// non-finite and non-positive entries holding the current speed) and
// effective-server-count changes via parking. It always restarts the epoch
// utilization measurement, decision or not, so the next observation covers
// exactly one epoch.
func (s *simulator) applyPlan(now float64, d PlanDecision) {
	for j, st := range s.stations {
		if j < len(d.Speeds) {
			sp := d.Speeds[j]
			// NaN or non-positive means "hold" by contract — and a NaN that
			// slipped through would otherwise pass both clamp comparisons
			// and poison every departure time (see handleControl).
			if !math.IsNaN(sp) && sp > 0 {
				if sp < st.minSpeed {
					sp = st.minSpeed
				}
				if sp > st.maxSpeed {
					sp = st.maxSpeed
				}
				s.setSpeed(st, now, sp)
			}
		}
		if j < len(d.Servers) && !st.sleepEnabled {
			if want := d.Servers[j]; want > 0 {
				if want > st.servers {
					want = st.servers // cannot buy hardware mid-run
				}
				s.setParked(st, now, st.servers-want)
			}
		}
		st.epochBusy.StartAt(now, float64(len(st.running)))
	}
}

// setParked moves a station to the given parked-server count. Growing the
// active pool puts freed servers straight to work on the waiting line (like
// a repair); shrinking is lazy — running services finish first (departures
// stop backfilling while the pool is over-subscribed, see handleDeparture).
func (s *simulator) setParked(st *simStation, now float64, parked int) {
	if parked == st.parked {
		return
	}
	st.parked = parked
	s.tr.event(now, TracePark, -1, 0, st.idx, float64(parked))
	s.count(pkPark)
	st.observeBusy(now) // the power level steps with the idle pool
	for st.freeServers() > 0 {
		next := st.nextWaiting()
		if next == nil {
			break
		}
		s.startService(st, next, now)
	}
}
