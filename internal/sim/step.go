package sim

import (
	"fmt"

	"clusterq/internal/cluster"
	"clusterq/internal/obs/window"
)

// Replication is one simulator replication exposed as a steppable value
// instead of a closed loop: callers pop events one at a time, peek at the
// next event's time, or advance to a chosen simulated time, observing (and
// eventually steering) the system between steps. It is the building block
// the shared-clock orchestrator in internal/sim/multi interleaves, and the
// surface an online controller or co-simulated dispatcher drives mid-run.
//
// A Replication runs the identical engine Run uses — stepping to the horizon
// and calling Result produces bit-for-bit the same Result as Run with
// Replications set to 1 and the same seed (pinned by the step-equivalence
// golden tests). Recorder, Windows, Trace and Probe options all attach; the
// single replication is the recording one.
//
// The zero value is not usable; construct with NewReplication. Methods must
// be called from one goroutine.
type Replication struct {
	s      *simulator
	c      *cluster.Cluster
	o      Options
	res    *Result
	resErr error
	sealed bool
}

// NewReplication validates the options exactly as Run does and builds a
// single stepped replication with the given seed. Replications is forced to
// 1: a stepped value is one replication by construction, which also makes
// the Trace/Recorder single-replication contracts hold automatically. Run
// derives replication r's seed as Options.Seed + r; pass the same sum here
// to reproduce a specific replication of a closed run (Options.Seed itself
// is ignored in favor of the explicit argument).
func NewReplication(c *cluster.Cluster, o Options, seed uint64) (*Replication, error) {
	o.Replications = 1
	o.Progress = nil // meaningless for a caller-driven single replication
	if err := o.validate(c); err != nil {
		return nil, err
	}
	s, err := newSimulator(c, o, seed, true)
	if err != nil {
		return nil, err
	}
	return &Replication{s: s, c: c, o: o}, nil
}

// HasPendingEvents reports whether at least one event remains at or before
// the horizon — whether ProcessNextEvent would do work.
func (r *Replication) HasPendingEvents() bool {
	return !r.sealed && r.s.hasPendingEvents()
}

// PeekNextEventTime returns the earliest scheduled event time without
// advancing the clock; ok is false when the calendar is empty. The returned
// time may exceed the horizon — such an event will never be processed, and
// HasPendingEvents is already false.
func (r *Replication) PeekNextEventTime() (float64, bool) {
	return r.s.cal.peekTime()
}

// ProcessNextEvent pops and dispatches exactly one event, reporting whether
// it did. It returns false — leaving the calendar untouched — once no event
// at or before the horizon remains, or after Result sealed the replication.
func (r *Replication) ProcessNextEvent() bool {
	if r.sealed {
		return false
	}
	return r.s.processNextEvent()
}

// AdvanceTo processes every event scheduled at or before min(t, horizon), in
// order, and returns how many it processed. The clock never exceeds the
// horizon regardless of t.
func (r *Replication) AdvanceTo(t float64) int {
	n := 0
	for {
		et, ok := r.PeekNextEventTime()
		if !ok || et > t || !r.ProcessNextEvent() {
			return n
		}
		n++
	}
}

// Run drains the replication to the horizon — the stepped spelling of the
// closed loop.
func (r *Replication) Run() {
	for r.ProcessNextEvent() {
	}
}

// Now is the current simulated time: the time of the last processed event
// (0 before the first step). It never exceeds the horizon.
func (r *Replication) Now() float64 { return r.s.cal.now }

// Horizon is the replication's simulated end time.
func (r *Replication) Horizon() float64 { return r.s.horizon }

// Windows returns the attached sliding-window sensor set, or nil — the
// mid-run observation surface a caller reads between steps.
func (r *Replication) Windows() *window.Set { return r.o.Windows }

// Result finalizes the replication: it flushes the trace, surfaces buffered
// trace write errors, and aggregates the single replication exactly as Run
// aggregates many. The first call seals the replication — further stepping
// is refused, because summarizing finalizes measurement state — and the
// outcome is memoized, so Result may be called repeatedly.
func (r *Replication) Result() (*Result, error) {
	if !r.sealed {
		r.sealed = true
		out, err := r.s.finish()
		if err != nil {
			r.resErr = err
		} else {
			r.res = aggregate(r.c, r.o, []repOutput{out})
		}
	}
	if r.resErr != nil {
		return nil, r.resErr
	}
	return r.res, nil
}

// String identifies the replication for diagnostics.
func (r *Replication) String() string {
	return fmt.Sprintf("sim.Replication{now=%g, horizon=%g}", r.Now(), r.Horizon())
}
