package sim

// Event-loop micro-benchmarks with allocation reporting. These are the
// numbers BENCH_sim.json records and CI's bench-smoke job exercises: the
// calendar and event loop must stay allocation-free in steady state (the
// hard gate is TestSteadyStateAllocationsBounded; the benchmarks quantify
// ns/op and B/op alongside).

import (
	"fmt"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// benchCluster is a two-class, two-tier priority cluster: enough structure to
// exercise routing, priority queueing, and per-tier stats without the cost of
// the full enterprise scenario.
func benchCluster(disc queueing.Discipline) *cluster.Cluster {
	c := oneTier(2, 1, disc,
		[]cluster.Class{{Name: "hi", Lambda: 0.4}, {Name: "lo", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.2, CV2: 2}})
	return c
}

// benchReplication runs one full replication per iteration — the event loop
// end to end, without Run's aggregation layer.
func benchReplication(b *testing.B, c *cluster.Cluster, o Options) {
	b.Helper()
	if err := o.defaults(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newSimulator(c, o, o.Seed+uint64(i), false)
		if err != nil {
			b.Fatal(err)
		}
		s.run()
	}
}

// BenchmarkEventLoopFCFS measures the pooled event loop on a non-preemptive
// station: ~9k calendar events per iteration (arrival/start/visit/exit).
func BenchmarkEventLoopFCFS(b *testing.B) {
	benchReplication(b, benchCluster(queueing.NonPreemptive),
		Options{Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1})
}

// BenchmarkEventLoopPreemptive adds the cancelled-run path: preemptions
// strand stale departure events whose runs are recycled on pop.
func BenchmarkEventLoopPreemptive(b *testing.B) {
	benchReplication(b, benchCluster(queueing.PreemptiveResume),
		Options{Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1})
}

// BenchmarkEventLoopControlled adds the DVFS control loop: every retune
// cancels and reissues the whole running set.
func BenchmarkEventLoopControlled(b *testing.B) {
	benchReplication(b, benchCluster(queueing.PreemptiveResume), Options{
		Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1,
		Controller: UtilizationPolicy{Target: 0.6}, ControlPeriod: 20,
	})
}

// BenchmarkCalendar isolates the heap itself: schedule/next round-trips over
// a live set of 512 events, the pattern the simulator drives it with. Do not
// change its workload: TestDisabledRecorderOverheadGate runs it as the
// machine-speed calibration probe against recorded baselines. The
// cross-scheduler comparison lives in BenchmarkCalendarScaling.
func BenchmarkCalendar(b *testing.B) {
	const live = 512
	cal := newCalendar()
	rng := NewRNG(7)
	for i := 0; i < live; i++ {
		cal.schedule(rng.Float64()*100, evArrival, 0, nil, 0, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := cal.next()
		cal.recycle(e)
		cal.schedule(cal.now+rng.Float64()*10, evArrival, 0, nil, 0, nil)
	}
}

// BenchmarkCalendarScaling puts both schedulers through the identical
// hold-model workload (pop one, schedule one) at growing live-set sizes.
// This is the table results/BENCH_sim2.json records: the heap's O(log n)
// sift cost grows with the live set while the ladder's amortized-O(1)
// bucket walk stays flat, so the ratio is the point of the benchmark.
func BenchmarkCalendarScaling(b *testing.B) {
	for _, kind := range []string{CalendarHeap, CalendarLadder} {
		for _, live := range []int{512, 8 << 10, 64 << 10} {
			b.Run(fmt.Sprintf("%s/%d", kind, live), func(b *testing.B) {
				cal := newCalendarKind(kind)
				rng := NewRNG(7)
				for i := 0; i < live; i++ {
					cal.schedule(rng.Float64()*100, evArrival, 0, nil, 0, nil)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := cal.next()
					cal.recycle(e)
					cal.schedule(cal.now+rng.Float64()*10, evArrival, 0, nil, 0, nil)
				}
			})
		}
	}
}
