package sim

import (
	"math"
	"sync/atomic"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/obs"
	"clusterq/internal/queueing"
)

func probeCluster() *cluster.Cluster {
	return oneTier(2, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.6}, {Name: "b", Lambda: 0.4}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}})
}

func TestProbeTimelineSeriesAndUtilization(t *testing.T) {
	c := probeCluster()
	reg := obs.NewRegistry()
	res := run(t, c, Options{
		Horizon: 40000, Replications: 3, Seed: 7,
		Probe: &Probe{Period: 5, Registry: reg},
	})
	tl := res.Timeline
	if tl == nil || tl.Len() == 0 {
		t.Fatal("probe must produce a non-empty timeline")
	}
	want := []string{
		"tier0_queue", "tier0_busy", "tier0_util", "tier0_power",
		"class0_inflight", "class1_inflight", "power_total",
	}
	names := tl.Names()
	if len(names) != len(want) {
		t.Fatalf("series = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("series[%d] = %q, want %q", i, names[i], n)
		}
	}

	// Uniformly sampled utilization must estimate the analytical time
	// average ρ = λ·E[S]/(c·s) = 1.0/2 = 0.5.
	if got := tl.Mean("tier0_util"); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("sampled utilization %g, want ≈ 0.5", got)
	}
	// The sampled power must agree with the time-integrated measurement.
	if got, want := tl.Mean("power_total"), res.TotalPower.Mean; math.Abs(got-want) > 0.05*want {
		t.Fatalf("sampled power %g vs measured %g", got, want)
	}
	// In-flight counts are per class and nonnegative; with λ_a > λ_b class
	// a should carry more jobs on average.
	if a, b := tl.Mean("class0_inflight"), tl.Mean("class1_inflight"); !(a > b) {
		t.Fatalf("inflight means: class0 %g should exceed class1 %g", a, b)
	}
}

func TestProbeEventCountsAndRegistry(t *testing.T) {
	c := probeCluster()
	reg := obs.NewRegistry()
	res := run(t, c, Options{
		Horizon: 5000, Replications: 2, Seed: 11,
		Probe: &Probe{Period: 10, Registry: reg},
	})
	arr := res.EventCounts[TraceArrival]
	exits := res.EventCounts[TraceExit]
	if arr == 0 || exits == 0 {
		t.Fatalf("event counts empty: %v", res.EventCounts)
	}
	if exits > arr {
		t.Fatalf("exits %d exceed arrivals %d", exits, arr)
	}
	if starts := res.EventCounts[TraceStart]; starts < exits {
		t.Fatalf("service starts %d below exits %d", starts, exits)
	}
	// The registry sees the same totals.
	if got := reg.Counter("sim_events_arrival_total", "").Value(); got != arr {
		t.Fatalf("registry arrivals %d, want %d", got, arr)
	}
	if got := reg.Gauge("sim_replications", "").Value(); got != 2 {
		t.Fatalf("registry replications %g, want 2", got)
	}
}

// A nil probe must leave the simulation untouched: identical seeds give
// identical estimates with and without the probe attached, because the probe
// draws no randomness and only observes.
func TestProbeDisabledLeavesResultsIdentical(t *testing.T) {
	c := probeCluster()
	base := Options{Horizon: 8000, Replications: 3, Seed: 42, Quantiles: []float64{0.95}}
	plain := run(t, c, base)

	probed := base
	probed.Probe = &Probe{Period: 7}
	withProbe := run(t, c, probed)

	if plain.Timeline != nil || plain.EventCounts != nil {
		t.Fatal("no probe: Timeline and EventCounts must be nil")
	}
	if withProbe.Timeline == nil {
		t.Fatal("probe attached but no timeline")
	}
	for k := range plain.Delay {
		if plain.Delay[k].Mean != withProbe.Delay[k].Mean {
			t.Fatalf("class %d delay diverged: %g vs %g",
				k, plain.Delay[k].Mean, withProbe.Delay[k].Mean)
		}
		if plain.DelayQuantile[k][0.95] != withProbe.DelayQuantile[k][0.95] {
			t.Fatalf("class %d p95 diverged", k)
		}
	}
	if plain.TotalPower.Mean != withProbe.TotalPower.Mean {
		t.Fatalf("power diverged: %g vs %g", plain.TotalPower.Mean, withProbe.TotalPower.Mean)
	}
	for j := range plain.Tiers {
		if plain.Tiers[j].Utilization.Mean != withProbe.Tiers[j].Utilization.Mean {
			t.Fatalf("tier %d utilization diverged", j)
		}
	}
}

func TestProbeRequiresPositivePeriod(t *testing.T) {
	c := probeCluster()
	_, err := Run(c, Options{Horizon: 100, Probe: &Probe{}})
	if err == nil {
		t.Fatal("zero-period probe must be rejected")
	}
}

func TestProgressCallbackCountsReplications(t *testing.T) {
	c := probeCluster()
	var calls, last atomic.Int64
	_, err := Run(c, Options{
		Horizon: 500, Replications: 4, Seed: 1,
		Progress: func(done, total int) {
			calls.Add(1)
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
			if done == 4 {
				last.Store(4)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 || last.Load() != 4 {
		t.Fatalf("progress calls = %d (last done %d), want 4 reaching 4", calls.Load(), last.Load())
	}
}
