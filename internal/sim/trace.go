package sim

import (
	"bufio"
	"fmt"
	"io"
)

// TraceHeader is the CSV header line of the event trace.
const TraceHeader = "time,event,class,job,station,value"

// traceBufSize is the traceWriter's internal buffer: large enough that a
// busy trace issues one underlying write per ~64 KiB of rows instead of one
// per row, small enough to be irrelevant next to the simulator state.
const traceBufSize = 64 << 10

// traceWriter serializes simulator events as CSV rows through an internal
// bufio.Writer (one coalesced write per buffer fill instead of one syscall
// per event). The run loop calls flush after the replication finishes;
// callers hand Options.Trace a plain writer and must not see rows before
// Run returns. A nil traceWriter is a no-op, keeping the hot path
// branch-cheap when tracing is off.
type traceWriter struct {
	bw  *bufio.Writer
	err error
}

func newTraceWriter(w io.Writer) *traceWriter {
	t := &traceWriter{bw: bufio.NewWriterSize(w, traceBufSize)}
	t.line("%s\n", TraceHeader)
	return t
}

func (t *traceWriter) line(format string, args ...any) {
	if t == nil || t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.bw, format, args...)
}

// flush pushes the buffered tail to the underlying writer, folding any
// flush failure into the error the next Err call reports.
func (t *traceWriter) flush() {
	if t == nil || t.err != nil {
		return
	}
	t.err = t.bw.Flush()
}

// Err returns the first write (or flush) error the trace hit, or nil. Once
// a write fails the writer goes silent, so the trace is truncated at that
// point; the run loop flushes and surfaces this error from sim.Run instead
// of dropping it.
func (t *traceWriter) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// event writes one row. station is -1 for network-level events; value is an
// event-specific number (speed for retune, 0 otherwise).
func (t *traceWriter) event(now float64, kind string, class int, jobID uint64, station int, value float64) {
	if t == nil {
		return
	}
	t.line("%.9g,%s,%d,%d,%d,%.9g\n", now, kind, class, jobID, station, value)
}

// Trace event kinds, written in the `event` column.
const (
	TraceArrival    = "arrival" // external arrival accepted
	TraceStart      = "service_start"
	TracePreempt    = "preempt"
	TraceVisitEnd   = "visit_end"   // service at a station completed
	TraceExit       = "exit"        // request left the system
	TraceRetune     = "retune"      // controller changed a station's speed (value = new speed)
	TraceSetupBegin = "setup_begin" // a sleeping server starts warming up
	TraceSetupDone  = "setup_done"
	TraceBreakdown  = "breakdown"  // a server failed (value = failed count after)
	TraceRepair     = "repair"     // a server was repaired (value = failed count after)
	TraceTimeout    = "timeout"    // an attempt's deadline expired (value = age)
	TraceRetry      = "retry"      // a timed-out request re-enters (value = attempt #)
	TraceAbandon    = "abandon"    // retry budget spent; the request leaves unserved
	TraceShed       = "shed"       // an arrival refused by admission control
	TraceShedLevel  = "shed_level" // admission level changed (value = classes shed)
	TracePark       = "park"       // plan controller resized a tier's active pool (value = parked count after)
)
