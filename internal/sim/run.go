package sim

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"clusterq/internal/cluster"
	"clusterq/internal/obs"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
	"clusterq/internal/stats"
)

// ZeroWarmup requests a replication with NO warmup discard: every arrival
// from t=0 counts toward the steady-state output. It exists because the
// Options zero value must keep meaning "use the default warmup" — an
// explicit Warmup of 0 is indistinguishable from an unset field, so the
// explicit request is spelled with a negative sentinel instead.
const ZeroWarmup = -1.0

// Calendar implementation names for Options.Calendar.
const (
	// CalendarHeap is the concrete binary min-heap: O(log n) per
	// operation, the default, and the fastest at small live event sets.
	CalendarHeap = "heap"
	// CalendarLadder is the ladder queue (see ladder.go): amortized O(1)
	// per operation, overtaking the heap as the live set grows into the
	// thousands. Pop order is identical, so results are bit-identical.
	CalendarLadder = "ladder"
)

// calendarEnv reads the CLUSTERQ_CALENDAR override. The environment variable
// exists so a whole test suite or experiment batch can be re-run on the other
// calendar without threading an option through every construction site (CI
// runs the E1 smoke and the allocation gate this way). It is read afresh on
// every defaults() call — once per Run, nowhere near any hot path — so
// t.Setenv in a later test is honored even after an earlier test resolved
// options.
func calendarEnv() string { return os.Getenv("CLUSTERQ_CALENDAR") }

// Options configures a simulation experiment.
type Options struct {
	// Horizon is the simulated time per replication (required, > 0).
	Horizon float64
	// Warmup is the initial transient discarded from every replication.
	// Leaving it at zero selects the default of 10% of the horizon; to
	// measure from t=0 with no discard, set Warmup to ZeroWarmup (any
	// negative value works). Values in (0, Horizon) are used as given.
	Warmup float64
	// Replications is the number of independent runs (default 5); the
	// confidence intervals come from across-replication variability.
	Replications int
	// Seed selects the replication seed sequence (replication r uses
	// Seed + r), making experiments reproducible.
	Seed uint64
	// Quantiles lists end-to-end delay quantiles to estimate per class
	// (e.g. 0.95); empty means none.
	Quantiles []float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Profiles optionally replaces each class's constant Poisson arrivals
	// with a time-varying profile (nil entries keep the constant rate).
	// When set, its length must equal the class count. This is the
	// workload side of the dynamic power management extension; the
	// analytical model stays stationary.
	Profiles []Profile
	// Controller optionally runs a per-station DVFS policy at runtime,
	// re-deciding every ControlPeriod simulated seconds. Requires
	// ControlPeriod > 0.
	Controller Controller
	// PlanController optionally runs a plan-level (cluster-wide) controller
	// at runtime instead — the hook the model-driven autoscaler in
	// internal/control plugs into. Requires ControlPeriod > 0 and exactly
	// one replication (plan controllers are stateful across epochs, so a
	// single instance cannot be shared by parallel replications); at most
	// one of Controller and PlanController may be set. When Windows is also
	// set, the epoch observation carries the windowed per-class arrival-
	// rate estimates.
	PlanController PlanController
	ControlPeriod  float64
	// Trace, when non-nil, streams every simulator event as a CSV row
	// (header sim.TraceHeader). Tracing requires Replications == 1 —
	// interleaved traces from parallel replications would be meaningless.
	// Wrap the writer in bufio for long runs; traces are large.
	Trace io.Writer
	// Recorder, when non-nil, attaches the flight recorder: every job
	// lifecycle event (arrival, service start/stop, preemption, timeout,
	// backoff, resume, exit) is pushed into the recorder's ring buffer and
	// assembled into per-job spans with an exact queue/service/preempted/
	// backoff sojourn decomposition. Like Trace, the recorder requires
	// Replications == 1: job ids repeat across replications and interleaved
	// spans would be meaningless. A nil recorder costs one predictable
	// branch per event.
	Recorder *trace.Recorder
	// Windows, when non-nil, attaches streaming sliding-window estimators
	// (per-class arrival rate, mean and tail sojourn, per-tier utilization)
	// fed by replication 0 — the sensor layer an online controller reads
	// mid-run. The Set's class/tier dimensions must match the cluster.
	// Utilization sensing and gauge publication ride the probe's sampling
	// tick, so attach a Probe to keep them fresh; arrival and sojourn
	// observations flow regardless.
	Windows *window.Set
	// Probe optionally attaches the observability layer: periodic sampling
	// of per-tier queue length, busy servers, utilization and power plus
	// per-class in-flight counts (surfaced in Result.Timeline, recorded on
	// replication 0), and per-event-type counters summed over every
	// replication (Result.EventCounts). A nil probe costs nothing.
	Probe *Probe
	// Progress, when non-nil, is called once per completed replication
	// with the running completion count and the total. Replications run
	// concurrently, so the callback must be safe for concurrent use (an
	// atomic store, a channel send); counts arrive in completion order.
	Progress func(done, total int)
	// Sleep optionally enables the instant-off sleep policy per tier: a
	// non-nil entry j means tier j's idle servers power down to SleepPower
	// watts and pay a Setup period (at busy power) before serving the
	// first request of each busy period. Length must equal the tier count
	// when set. Preemption is not combined with sleep: a sleeping tier
	// serves in strict priority order without interrupting service.
	Sleep []*SleepConfig
	// Failures optionally enables per-tier server breakdown/repair
	// processes: a non-nil entry j gives tier j's servers exponential
	// MTBF/MTTR fail-stop failures. Length must equal the tier count when
	// set; a tier cannot combine Failures with Sleep.
	Failures []*FailureConfig
	// Deadlines optionally gives classes per-attempt response-time
	// deadlines with retry-or-abandon semantics; a nil entry leaves the
	// class unbounded. Length must equal the class count when set.
	Deadlines []*DeadlineConfig
	// Shedding optionally enables priority-aware admission control: when
	// measured utilization crosses the threshold, the lowest-priority
	// classes' arrivals are refused first.
	Shedding *SheddingConfig
	// Calendar selects the event-calendar implementation: CalendarHeap
	// (the default) or CalendarLadder. Both pop events in the identical
	// (time, seq) total order, so every result — including golden hashes —
	// is bit-identical across the two; the choice is purely a performance
	// knob. Leaving it empty defers to the CLUSTERQ_CALENDAR environment
	// variable, then to the heap.
	Calendar string
}

// SleepConfig parameterizes a tier's instant-off sleep policy.
type SleepConfig struct {
	// Setup is the wake-up (setup) time distribution.
	Setup queueing.ServiceDist
	// SleepPower is the per-server power draw while asleep (W), typically
	// far below the idle power the always-on model pays.
	SleepPower float64
}

func (o *Options) defaults() error {
	if !(o.Horizon > 0) {
		return fmt.Errorf("sim: horizon %g must be positive", o.Horizon)
	}
	switch {
	case o.Warmup < 0:
		// ZeroWarmup (or any negative value): an explicit zero-warmup run.
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = o.Horizon * 0.1
	case o.Warmup >= o.Horizon:
		return fmt.Errorf("sim: warmup %g must be below the horizon %g", o.Warmup, o.Horizon)
	}
	if o.Replications <= 0 {
		o.Replications = 5
	}
	switch {
	case o.Confidence == 0:
		o.Confidence = 0.95
	case !(o.Confidence > 0) || o.Confidence >= 1:
		// An explicitly out-of-range (or NaN) level is a configuration
		// mistake, not a request for the default: reject it like a bad
		// warmup instead of silently rewriting it.
		return fmt.Errorf("sim: confidence level %g out of (0, 1)", o.Confidence)
	}
	switch o.Calendar {
	case "":
		switch env := calendarEnv(); env {
		case "", CalendarHeap:
			o.Calendar = CalendarHeap
		case CalendarLadder:
			o.Calendar = CalendarLadder
		default:
			// A typo in the environment override should fail loudly, not
			// silently benchmark the wrong calendar.
			return fmt.Errorf("sim: CLUSTERQ_CALENDAR=%q: unknown calendar (want %q or %q)",
				env, CalendarHeap, CalendarLadder)
		}
	case CalendarHeap, CalendarLadder:
	default:
		return fmt.Errorf("sim: unknown calendar %q (want %q or %q)", o.Calendar, CalendarHeap, CalendarLadder)
	}
	if (o.Controller != nil || o.PlanController != nil) && !(o.ControlPeriod > 0) {
		return fmt.Errorf("sim: a controller requires a positive control period")
	}
	if o.Controller != nil && o.PlanController != nil {
		return fmt.Errorf("sim: Controller and PlanController are mutually exclusive")
	}
	if o.PlanController != nil && o.Replications != 1 {
		return fmt.Errorf("sim: a plan controller requires exactly 1 replication, got %d", o.Replications)
	}
	if o.Trace != nil && o.Replications != 1 {
		return fmt.Errorf("sim: tracing requires exactly 1 replication, got %d", o.Replications)
	}
	if o.Recorder != nil && o.Replications != 1 {
		return fmt.Errorf("sim: the flight recorder requires exactly 1 replication, got %d", o.Replications)
	}
	if err := o.Probe.validate(); err != nil {
		return err
	}
	return nil
}

// validateSleep cross-checks the sleep configs against the tier count.
func (o *Options) validateSleep(numTiers int) error {
	if o.Sleep == nil {
		return nil
	}
	if len(o.Sleep) != numTiers {
		return fmt.Errorf("sim: %d sleep configs for %d tiers", len(o.Sleep), numTiers)
	}
	for j, sc := range o.Sleep {
		if sc == nil {
			continue
		}
		if sc.Setup == nil || !(sc.Setup.Mean() > 0) {
			return fmt.Errorf("sim: tier %d sleep config lacks a setup distribution", j)
		}
		if sc.SleepPower < 0 {
			return fmt.Errorf("sim: tier %d negative sleep power %g", j, sc.SleepPower)
		}
	}
	return nil
}

// validateProfiles cross-checks the profile list against the class count.
func (o *Options) validateProfiles(numClasses int) error {
	if o.Profiles == nil {
		return nil
	}
	if len(o.Profiles) != numClasses {
		return fmt.Errorf("sim: %d profiles for %d classes", len(o.Profiles), numClasses)
	}
	for k, p := range o.Profiles {
		if p == nil {
			continue
		}
		if !(p.MaxRate() >= 0) {
			return fmt.Errorf("sim: class %d profile has invalid max rate %g", k, p.MaxRate())
		}
	}
	return nil
}

// TierResult is the measured steady state of one tier.
type TierResult struct {
	Name        string
	Utilization stats.Estimate // mean busy fraction per server
	Power       stats.Estimate // average power draw (W)
	// WaitByClass[k] is the mean waiting time class k experiences per
	// visit to this tier — the per-tier decomposition of the end-to-end
	// delays, useful for locating which tier hurts which class.
	WaitByClass []stats.Estimate
}

// Result aggregates the simulation output across replications.
type Result struct {
	// Delay[k] is class k's measured mean end-to-end response time.
	Delay []stats.Estimate
	// DelayQuantile[k][p] is the measured p-quantile of class k's delay
	// (averaged across replications).
	DelayQuantile []map[float64]float64
	// WeightedDelay is the completion-weighted all-class mean delay.
	WeightedDelay stats.Estimate
	// TotalPower is the measured cluster average power (W).
	TotalPower stats.Estimate
	// EnergyPerRequest[k] is the measured dynamic energy per class-k
	// request (J).
	EnergyPerRequest []stats.Estimate
	// Tiers holds per-tier measurements.
	Tiers []TierResult
	// Completed[k] counts post-warmup completions of class k, summed over
	// replications.
	Completed []int64
	// Goodput[k] is class k's measured post-warmup completion rate
	// (requests per second). Without deadlines or shedding it is the plain
	// throughput; with them it is what the cluster actually delivered.
	Goodput []stats.Estimate
	// Timeouts, Retries, Abandoned and Shed count the degraded-mode events
	// per class (post-warmup arrivals only, summed over replications):
	// expired attempt deadlines, re-entries, requests that exhausted their
	// retry budget, and arrivals refused by admission control. All zeros
	// when the corresponding feature is off.
	Timeouts, Retries, Abandoned, Shed []int64
	// Replications actually run.
	Replications int
	// Timeline holds the probe's sampled time series from replication 0
	// (nil unless Options.Probe is set): per-tier queue length, busy
	// servers, utilization and instantaneous power, per-class in-flight
	// counts, and total power, sampled every Probe.Period.
	Timeline *obs.Timeline
	// EventCounts sums simulator events by trace-event name across all
	// replications (nil unless Options.Probe is set).
	EventCounts map[string]int64
}

// repOutput is the per-replication summary fed to the aggregator.
type repOutput struct {
	delay     []float64
	wDelay    float64
	quant     []map[float64]float64
	power     float64
	energy    []float64 // per request, per class
	goodput   []float64 // per class: completions over the measured span
	tierUtil  []float64
	tierPower []float64
	tierWait  [][]float64 // [tier][class] mean wait per visit
	completed []int64
	timeouts  []int64
	retries   []int64
	abandoned []int64
	shed      []int64
	events    [numProbeKinds]int64
	tl        *obs.Timeline // replication 0 only, with a probe attached
}

// validate resolves the option defaults and runs the full cross-check chain
// against the cluster — the one validation path shared by Run and
// NewReplication, so a stepped replication rejects exactly what a closed run
// rejects. The receiver is a pointer: defaults() rewrites fields in place.
func (o *Options) validate(c *cluster.Cluster) error {
	if err := o.defaults(); err != nil {
		return err
	}
	if err := c.Validate(); err != nil {
		return err
	}
	k := len(c.Classes)
	jn := len(c.Tiers)
	if err := o.validateProfiles(k); err != nil {
		return err
	}
	if err := o.validateSleep(jn); err != nil {
		return err
	}
	if err := o.validateFailures(jn); err != nil {
		return err
	}
	if err := o.validateDeadlines(k); err != nil {
		return err
	}
	if err := o.validateShedding(k); err != nil {
		return err
	}
	if o.Windows != nil && (o.Windows.Classes() != k || o.Windows.Tiers() != jn) {
		return fmt.Errorf("sim: window set sized for %d classes / %d tiers, cluster has %d / %d",
			o.Windows.Classes(), o.Windows.Tiers(), k, jn)
	}
	return nil
}

// Run simulates the cluster and aggregates the replications.
func Run(c *cluster.Cluster, o Options) (*Result, error) {
	if err := o.validate(c); err != nil {
		return nil, err
	}
	// Replications are independent (own RNG streams, own event calendar)
	// and read the cluster immutably, so they run in parallel, bounded by
	// the CPU count. Each replication's seed fixes its result, so the
	// output is deterministic regardless of scheduling.
	reps := make([]repOutput, o.Replications)
	errs := make([]error, o.Replications)
	var wg sync.WaitGroup
	var done atomic.Int64
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for r := 0; r < o.Replications; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := newSimulator(c, o, o.Seed+uint64(r), r == 0)
			if err != nil {
				errs[r] = err
				return
			}
			s.run()
			reps[r], errs[r] = s.finish()
			if errs[r] != nil {
				return
			}
			if o.Progress != nil {
				o.Progress(int(done.Add(1)), o.Replications)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return aggregate(c, o, reps), nil
}

// finish flushes the replication's trace, surfaces any buffered write error
// — a trace that stopped writing mid-run is truncated data, not a result —
// and reduces the collectors to the per-replication summary.
func (s *simulator) finish() (repOutput, error) {
	s.tr.flush()
	if err := s.tr.Err(); err != nil {
		return repOutput{}, fmt.Errorf("sim: trace write failed: %w", err)
	}
	return s.summarize(), nil
}

// aggregate folds per-replication summaries into the cross-replication
// Result (confidence intervals from across-replication variability) and
// publishes the probe's registry output. Shared by Run and the stepped
// Replication's Result, so both finalize identically.
func aggregate(c *cluster.Cluster, o Options, reps []repOutput) *Result {
	k := len(c.Classes)
	jn := len(c.Tiers)
	res := &Result{
		Delay:            make([]stats.Estimate, k),
		DelayQuantile:    make([]map[float64]float64, k),
		EnergyPerRequest: make([]stats.Estimate, k),
		Tiers:            make([]TierResult, jn),
		Completed:        make([]int64, k),
		Goodput:          make([]stats.Estimate, k),
		Timeouts:         make([]int64, k),
		Retries:          make([]int64, k),
		Abandoned:        make([]int64, k),
		Shed:             make([]int64, k),
		Replications:     o.Replications,
	}

	agg := func(pick func(repOutput) float64) stats.Estimate {
		var w stats.Welford
		var n int64
		for _, r := range reps {
			v := pick(r)
			if !math.IsNaN(v) {
				w.Add(v)
			}
		}
		n = w.Count()
		return stats.Estimate{
			Mean: w.Mean(), HalfW: w.CI(o.Confidence), Level: o.Confidence,
			Samples: n, Batches: n,
		}
	}

	for cl := 0; cl < k; cl++ {
		cl := cl
		res.Delay[cl] = agg(func(r repOutput) float64 { return r.delay[cl] })
		res.EnergyPerRequest[cl] = agg(func(r repOutput) float64 { return r.energy[cl] })
		res.Goodput[cl] = agg(func(r repOutput) float64 { return r.goodput[cl] })
		for _, r := range reps {
			res.Completed[cl] += r.completed[cl]
			res.Timeouts[cl] += r.timeouts[cl]
			res.Retries[cl] += r.retries[cl]
			res.Abandoned[cl] += r.abandoned[cl]
			res.Shed[cl] += r.shed[cl]
		}
		// Quantiles: average across replications.
		if len(o.Quantiles) > 0 {
			m := make(map[float64]float64, len(o.Quantiles))
			for _, p := range o.Quantiles {
				var w stats.Welford
				for _, r := range reps {
					if v := r.quant[cl][p]; !math.IsNaN(v) {
						w.Add(v)
					}
				}
				m[p] = w.Mean()
			}
			res.DelayQuantile[cl] = m
		}
	}
	res.WeightedDelay = agg(func(r repOutput) float64 { return r.wDelay })
	res.TotalPower = agg(func(r repOutput) float64 { return r.power })
	for j := 0; j < jn; j++ {
		j := j
		waits := make([]stats.Estimate, k)
		for cl := 0; cl < k; cl++ {
			cl := cl
			waits[cl] = agg(func(r repOutput) float64 { return r.tierWait[j][cl] })
		}
		res.Tiers[j] = TierResult{
			Name:        c.Tiers[j].Name,
			Utilization: agg(func(r repOutput) float64 { return r.tierUtil[j] }),
			Power:       agg(func(r repOutput) float64 { return r.tierPower[j] }),
			WaitByClass: waits,
		}
	}
	if o.Probe != nil {
		res.Timeline = reps[0].tl
		res.EventCounts = make(map[string]int64, numProbeKinds)
		for kind, name := range probeKindNames {
			if !probeKindActive(probeKind(kind), o) {
				continue
			}
			var total int64
			for _, r := range reps {
				total += r.events[kind]
			}
			res.EventCounts[name] = total
		}
		publishProbe(o.Probe, res, o.Horizon)
	}
	return res
}

// summarize reduces one replication's raw collectors to scalars.
func (s *simulator) summarize() repOutput {
	// Degenerate light-traffic runs can finish with no event ever landing in
	// [warmup, horizon): the event-driven reset never fires and the
	// time-weighted busy/power statistics would silently include the
	// transient. Finalize from the clock instead — the reset lands at the
	// warmup boundary, the latest point the first in-window event could not
	// have preceded. A no-op on every non-degenerate run, where the first
	// post-warmup event already flipped warmupDone.
	if !s.warmupDone {
		s.endWarmup(s.warmup)
	}
	k := len(s.c.Classes)
	out := repOutput{
		delay:     make([]float64, k),
		quant:     make([]map[float64]float64, k),
		energy:    make([]float64, k),
		goodput:   make([]float64, k),
		tierUtil:  make([]float64, len(s.stations)),
		tierPower: make([]float64, len(s.stations)),
		completed: make([]int64, k),
		timeouts:  s.timeouts,
		retries:   s.retries,
		abandoned: s.abandoned,
		shed:      s.shed,
		events:    s.evCounts,
		tl:        s.tl,
	}
	// The measured span: post-warmup simulated time, the denominator of the
	// per-class goodput rates.
	measured := s.horizon - s.warmup
	var wNum, wDen float64
	for cl := 0; cl < k; cl++ {
		out.delay[cl] = s.delay[cl].Mean()
		out.completed[cl] = s.completed[cl]
		if measured > 0 {
			out.goodput[cl] = float64(s.completed[cl]) / measured
		}
		if n := s.completed[cl]; n > 0 {
			wNum += float64(n) * s.delay[cl].Mean()
			wDen += float64(n)
		}
		q := make(map[float64]float64, len(s.quantiles))
		for _, p := range s.quantiles {
			q[p] = s.delayQ[cl].Value(p)
		}
		out.quant[cl] = q
	}
	if wDen > 0 {
		out.wDelay = wNum / wDen
	} else {
		out.wDelay = math.NaN()
	}

	span := s.horizon
	out.tierWait = make([][]float64, len(s.stations))
	for j, st := range s.stations {
		out.tierWait[j] = make([]float64, k)
		for cl := 0; cl < k; cl++ {
			out.tierWait[j][cl] = st.waitByCls[cl].Mean()
		}
		busyMean := st.busy.MeanAt(span)
		if math.IsNaN(busyMean) {
			busyMean = 0
		}
		out.tierUtil[j] = busyMean / float64(st.servers)
		// Power is integrated directly (powerTW) so runtime speed changes
		// are accounted exactly.
		p := st.powerTW.MeanAt(span)
		if math.IsNaN(p) {
			p = st.instPower()
		}
		out.tierPower[j] = p
		out.power += out.tierPower[j]
	}

	// Per-class dynamic energy per request: energy accumulated at all
	// stations divided by completions of the class.
	for cl := 0; cl < k; cl++ {
		var e float64
		for _, st := range s.stations {
			e += st.svcEnergy[cl]
		}
		// Use end-to-end completions as the divisor; station visits of
		// in-flight jobs make the numerator slightly larger, a vanishing
		// edge effect over long horizons.
		if s.completed[cl] > 0 {
			out.energy[cl] = e / float64(s.completed[cl])
		} else {
			out.energy[cl] = math.NaN()
		}
	}
	return out
}
