package sim

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

func traceLines(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != TraceHeader {
		t.Fatalf("missing header, got %q", lines[0])
	}
	var rows [][]string
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return rows
}

func TestTraceBasicInvariants(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	_, err := Run(c, Options{Horizon: 500, Warmup: 50, Replications: 1, Seed: 3, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	rows := traceLines(t, &buf)
	if len(rows) < 100 {
		t.Fatalf("suspiciously short trace: %d rows", len(rows))
	}
	counts := map[string]int{}
	prevT := -1.0
	for _, r := range rows {
		if len(r) != 6 {
			t.Fatalf("malformed row %v", r)
		}
		ts, err := strconv.ParseFloat(r[0], 64)
		if err != nil {
			t.Fatalf("bad timestamp %q", r[0])
		}
		if ts < prevT {
			t.Fatalf("trace not time-ordered: %g after %g", ts, prevT)
		}
		prevT = ts
		counts[r[1]]++
	}
	// Flow conservation: every exit had an arrival; starts cover visits.
	if counts[TraceExit] > counts[TraceArrival] {
		t.Errorf("more exits (%d) than arrivals (%d)", counts[TraceExit], counts[TraceArrival])
	}
	if counts[TraceVisitEnd] > counts[TraceStart] {
		t.Errorf("more visit ends (%d) than service starts (%d)", counts[TraceVisitEnd], counts[TraceStart])
	}
	if counts[TraceArrival]-counts[TraceExit] > 50 {
		t.Errorf("too many in-flight at horizon: %d", counts[TraceArrival]-counts[TraceExit])
	}
	// Single-tier tandem: one visit per exit.
	if counts[TraceVisitEnd] < counts[TraceExit] {
		t.Errorf("exits (%d) exceed visit ends (%d)", counts[TraceExit], counts[TraceVisitEnd])
	}
}

func TestTraceExitValueIsSojourn(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(2, 2, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.4}},
		[]queueing.Demand{{Work: 1, CV2: 0}}) // deterministic 0.5 s service
	_, err := Run(c, Options{Horizon: 300, Warmup: 30, Replications: 1, Seed: 5, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range traceLines(t, &buf) {
		if r[1] != TraceExit {
			continue
		}
		d, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Sojourn is at least the deterministic service time.
		if d < 0.5-1e-9 {
			t.Errorf("exit sojourn %g below service time", d)
		}
	}
}

func TestTraceCapturesRetunesAndSetups(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(1, 2, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.8}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	_, err := Run(c, Options{
		Horizon: 500, Warmup: 50, Replications: 1, Seed: 7, Trace: &buf,
		Controller: flipFlop{}, ControlPeriod: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, TraceRetune) {
		t.Error("no retune events traced")
	}

	buf.Reset()
	_, err = Run(c, Options{
		Horizon: 500, Warmup: 50, Replications: 1, Seed: 7, Trace: &buf,
		Sleep: []*SleepConfig{{Setup: queueing.NewExponential(0.5), SleepPower: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, TraceSetupBegin) || !strings.Contains(out, TraceSetupDone) {
		t.Error("no setup events traced")
	}
}

func TestTraceRequiresSingleReplication(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.1}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	if _, err := Run(c, Options{Horizon: 100, Replications: 2, Trace: &buf}); err == nil {
		t.Error("multi-replication trace accepted")
	}
}
