package sim

import (
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// retryCluster builds a single-tier cluster whose class retries with
// probability p (a Jackson network with feedback — the sim should match the
// product-form result exactly for FCFS exponential service).
func retryCluster(lam, mu, p float64) *cluster.Cluster {
	pm, _ := power.NewPowerLaw(50, 2, 2)
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "t", Servers: 1, Speed: mu,
			Discipline: queueing.FCFS, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}},
		}},
		Classes: []cluster.Class{{Name: "a", Lambda: lam}},
		Routing: []*queueing.ClassRouting{{Entry: []float64{1}, Next: [][]float64{{p}}}},
	}
}

func TestSimRetryLoopMatchesJackson(t *testing.T) {
	lam, mu, p := 0.5, 2.0, 0.4
	c := retryCluster(lam, mu, p)
	m, err := cluster.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Options{Horizon: 60000, Replications: 5, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	// Jackson: E2E = v·T(λv) with v = 1/(1−p) — exact for this network.
	v := 1 / (1 - p)
	mm1, _ := queueing.NewMM1(lam*v, mu)
	want := v * mm1.MeanResponse()
	if relErr(m.Delay[0], want) > 1e-9 {
		t.Fatalf("analytic %g != Jackson %g", m.Delay[0], want)
	}
	if relErr(res.Delay[0].Mean, want) > 0.05 {
		t.Errorf("sim delay %v, Jackson predicts %g", res.Delay[0], want)
	}
	// Station utilization reflects the retried traffic.
	if relErr(res.Tiers[0].Utilization.Mean, lam*v/mu) > 0.04 {
		t.Errorf("utilization %v, want %g", res.Tiers[0].Utilization, lam*v/mu)
	}
	// Per-request energy includes the expected retries.
	if relErr(res.EnergyPerRequest[0].Mean, m.EnergyPerRequest[0]) > 0.05 {
		t.Errorf("energy/request sim %v vs analytic %g", res.EnergyPerRequest[0], m.EnergyPerRequest[0])
	}
}

func TestSimBranchingRouting(t *testing.T) {
	// Enter at tier 0, then 50/50 to tier 1 or 2. Throughput splits, and
	// the analytic model matches the simulation.
	pm, _ := power.NewPowerLaw(20, 1, 2)
	mk := func(name string) *cluster.Tier {
		return &cluster.Tier{Name: name, Servers: 1, Speed: 2,
			Discipline: queueing.FCFS, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}}}
	}
	c := &cluster.Cluster{
		Tiers:   []*cluster.Tier{mk("front"), mk("left"), mk("right")},
		Classes: []cluster.Class{{Name: "a", Lambda: 1.0}},
		Routing: []*queueing.ClassRouting{{
			Entry: []float64{1, 0, 0},
			Next:  [][]float64{{0, 0.5, 0.5}, {0, 0, 0}, {0, 0, 0}},
		}},
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Options{Horizon: 40000, Replications: 4, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(res.Delay[0].Mean, m.Delay[0]) > 0.05 {
		t.Errorf("sim %v vs analytic %g", res.Delay[0], m.Delay[0])
	}
	// The two branches each see half the traffic.
	for _, j := range []int{1, 2} {
		if relErr(res.Tiers[j].Utilization.Mean, 0.25) > 0.08 {
			t.Errorf("branch %d utilization %v, want 0.25", j, res.Tiers[j].Utilization)
		}
	}
}

func TestSimRoutingDeterministicEquivalence(t *testing.T) {
	// A chain expressing the plain tandem must give the same analytic
	// prediction and statistically matching simulated delays.
	pm, _ := power.NewPowerLaw(20, 1, 2)
	mk := func(name string) *cluster.Tier {
		return &cluster.Tier{Name: name, Servers: 1, Speed: 2,
			Discipline: queueing.NonPreemptive, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}}}
	}
	chainRoute, err := queueing.RoutingFromRoute([]int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := &cluster.Cluster{
		Tiers:   []*cluster.Tier{mk("a"), mk("b")},
		Classes: []cluster.Class{{Name: "x", Lambda: 0.9}},
	}
	chain := det.Clone()
	chain.Routing = []*queueing.ClassRouting{chainRoute}

	mDet, err := cluster.Evaluate(det)
	if err != nil {
		t.Fatal(err)
	}
	mChain, err := cluster.Evaluate(chain)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mChain.Delay[0], mDet.Delay[0]) > 1e-12 {
		t.Fatalf("analytic mismatch: %g vs %g", mChain.Delay[0], mDet.Delay[0])
	}
	rDet, err := Run(det, Options{Horizon: 20000, Replications: 3, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	rChain, err := Run(chain, Options{Horizon: 20000, Replications: 3, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(rChain.Delay[0].Mean, rDet.Delay[0].Mean) > 0.06 {
		t.Errorf("sim mismatch: chain %g vs det %g", rChain.Delay[0].Mean, rDet.Delay[0].Mean)
	}
}

func TestSimRoutingWithPriorities(t *testing.T) {
	// Two classes, low priority retries: its retries must not break the
	// priority ordering, and both classes should match the analytic model
	// within the usual network-approximation error.
	pm, _ := power.NewPowerLaw(30, 1, 2)
	c := &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "t", Servers: 1, Speed: 2,
			Discipline: queueing.NonPreemptive, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}},
		}},
		Classes: []cluster.Class{
			{Name: "hi", Lambda: 0.4},
			{Name: "lo", Lambda: 0.4},
		},
		Routing: []*queueing.ClassRouting{
			{Entry: []float64{1}, Next: [][]float64{{0}}},   // one visit
			{Entry: []float64{1}, Next: [][]float64{{0.3}}}, // geometric retries
		},
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Options{Horizon: 50000, Replications: 4, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Delay[0].Mean < res.Delay[1].Mean) {
		t.Errorf("priority ordering broken: %g vs %g", res.Delay[0].Mean, res.Delay[1].Mean)
	}
	// Both classes track the model (this test once caught a real bug:
	// re-entering jobs grabbing the server they had just freed instead of
	// rejoining behind the queue).
	for k := range c.Classes {
		if relErr(res.Delay[k].Mean, m.Delay[k]) > 0.08 {
			t.Errorf("class %d: sim %g vs analytic %g", k, res.Delay[k].Mean, m.Delay[k])
		}
	}
}

func TestClusterRoutingValidation(t *testing.T) {
	c := retryCluster(0.5, 2, 0.4)
	c.Routing = []*queueing.ClassRouting{nil, nil} // wrong length
	if err := c.Validate(); err == nil {
		t.Error("routing length mismatch accepted")
	}
	c2 := retryCluster(0.5, 2, 1.0) // recurrent: never exits
	if err := c2.Validate(); err == nil {
		t.Error("recurrent routing accepted")
	}
}
