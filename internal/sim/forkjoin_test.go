package sim

import (
	"math"
	"testing"

	"clusterq/internal/queueing"
)

func TestForkJoinK1IsMM1(t *testing.T) {
	// k=1 degenerates to a plain M/M/1.
	est, err := SimulateForkJoin(1, 0.7, 1, 60000, 5, 61)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.7)
	if relErr(est.Mean, want) > 0.04 {
		t.Errorf("FJ(1) response %v, M/M/1 predicts %g", est, want)
	}
}

func TestForkJoinK2MatchesFlattoHahn(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.85} {
		est, err := SimulateForkJoin(2, rho, 1, 80000, 5, 62)
		if err != nil {
			t.Fatal(err)
		}
		want, err := queueing.ForkJoin2Exact(rho, 1)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(est.Mean, want) > 0.05 {
			t.Errorf("ρ=%g: FJ(2) sim %v, exact %g", rho, est, want)
		}
	}
}

func TestForkJoinLowLoadIsHarmonicMax(t *testing.T) {
	// At vanishing load the response is the max of k service times:
	// H_k/μ exactly.
	for _, k := range []int{2, 4, 8} {
		est, err := SimulateForkJoin(k, 0.02, 1, 80000, 3, 63)
		if err != nil {
			t.Fatal(err)
		}
		want := queueing.HarmonicNumber(k)
		if relErr(est.Mean, want) > 0.05 {
			t.Errorf("k=%d: low-load response %v, want H_k=%g", k, est, want)
		}
	}
}

func TestNelsonTantawiAgainstSimulation(t *testing.T) {
	// The NT approximation claims a few percent accuracy; hold it to 8%
	// across widths and loads.
	for _, k := range []int{3, 4, 8, 16} {
		for _, rho := range []float64{0.3, 0.6, 0.85} {
			est, err := SimulateForkJoin(k, rho, 1, 60000, 4, 64)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := queueing.ForkJoinNelsonTantawi(k, rho, 1)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(est.Mean, approx) > 0.08 {
				t.Errorf("k=%d ρ=%g: sim %g vs NT %g (%.1f%%)",
					k, rho, est.Mean, approx, 100*relErr(est.Mean, approx))
			}
		}
	}
}

func TestForkJoinSyncPenaltyShape(t *testing.T) {
	// The penalty grows with k and SHRINKS with load (shared arrivals
	// correlate the queues, so the join barrier costs relatively less
	// when everyone queues anyway).
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		prev := 0.0
		for _, k := range []int{1, 2, 4, 8, 16} {
			p, err := queueing.ForkJoinSyncPenalty(k, rho)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev {
				t.Errorf("penalty not increasing in k at ρ=%g", rho)
			}
			prev = p
		}
	}
	p8lo, _ := queueing.ForkJoinSyncPenalty(8, 0.1)
	p8hi, _ := queueing.ForkJoinSyncPenalty(8, 0.9)
	if !(p8hi < p8lo) {
		t.Errorf("penalty should shrink with load: %g at ρ=0.1 vs %g at ρ=0.9", p8lo, p8hi)
	}
	// k=1 penalty is exactly 1 at any load.
	if p, _ := queueing.ForkJoinSyncPenalty(1, 0.7); !almostEq(p, 1, 1e-12) {
		t.Errorf("k=1 penalty = %g", p)
	}
}

func TestForkJoinValidation(t *testing.T) {
	if _, err := SimulateForkJoin(0, 1, 1, 100, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SimulateForkJoin(1, 1, 0, 100, 1, 0); err == nil {
		t.Error("μ=0 accepted")
	}
	if _, err := queueing.ForkJoinNelsonTantawi(0, 1, 1); err == nil {
		t.Error("NT k=0 accepted")
	}
	if v, err := queueing.ForkJoinNelsonTantawi(4, 2, 1); err != nil || !math.IsInf(v, 1) {
		t.Errorf("saturated NT: %g, %v", v, err)
	}
	if _, err := queueing.ForkJoinSyncPenalty(2, 1); err == nil {
		t.Error("ρ=1 penalty accepted")
	}
	if h := queueing.HarmonicNumber(4); !almostEq(h, 1+0.5+1.0/3+0.25, 1e-12) {
		t.Errorf("H_4 = %g", h)
	}
}
