package sim

import "fmt"

// Observation is what a runtime DVFS controller sees about one station at a
// control epoch.
type Observation struct {
	Time        float64
	Station     int
	Utilization float64 // mean busy fraction per server since the last epoch
	QueueLen    int     // jobs waiting (not in service) right now
	Speed       float64 // current speed
	Servers     int
	MinSpeed    float64 // clamp range the decision will be held to
	MaxSpeed    float64
}

// Controller decides a station's next speed at every control epoch — the
// online counterpart of the paper's offline optimizations. The returned
// speed is clamped to [MinSpeed, MaxSpeed] by the simulator.
type Controller interface {
	// Name labels the policy in experiment tables.
	Name() string
	// Decide returns the speed to run the station at until the next epoch.
	Decide(obs Observation) float64
}

// StaticPolicy never changes speeds: the offline-optimal operating point,
// used as the baseline the reactive policies are compared against.
type StaticPolicy struct{}

// Name implements Controller.
func (StaticPolicy) Name() string { return "static" }

// Decide implements Controller.
func (StaticPolicy) Decide(obs Observation) float64 { return obs.Speed }

// UtilizationPolicy is the classic reactive DVFS rule: scale the speed so
// the observed utilization moves toward Target, with first-order smoothing
// (Gain) and a queue-pressure boost that accelerates recovery when work has
// already piled up (utilization alone saturates at 1 and cannot see backlog).
type UtilizationPolicy struct {
	// Target is the desired per-server utilization (default 0.7).
	Target float64
	// Gain in (0, 1] is the fraction of the correction applied per epoch
	// (default 0.5; 1 = jump straight to the estimate).
	Gain float64
	// QueueGain scales the backlog boost (default 0.1 per queued job per
	// server).
	QueueGain float64
}

// Name implements Controller.
func (p UtilizationPolicy) Name() string {
	return fmt.Sprintf("reactive(ρ*=%.2g)", p.target())
}

func (p UtilizationPolicy) target() float64 {
	if p.Target <= 0 || p.Target >= 1 {
		return 0.7
	}
	return p.Target
}

func (p UtilizationPolicy) gain() float64 {
	if p.Gain <= 0 || p.Gain > 1 {
		return 0.5
	}
	return p.Gain
}

func (p UtilizationPolicy) queueGain() float64 {
	if p.QueueGain < 0 {
		return 0
	}
	if p.QueueGain == 0 {
		return 0.1
	}
	return p.QueueGain
}

// Decide implements Controller. The served work rate since the last epoch is
// util·speed·servers; the speed that would serve the same work at the target
// utilization is util·speed/target. Backlog multiplies the estimate so the
// queue drains instead of merely not growing.
func (p UtilizationPolicy) Decide(obs Observation) float64 {
	desired := obs.Speed * obs.Utilization / p.target()
	if obs.QueueLen > obs.Servers {
		desired *= 1 + p.queueGain()*float64(obs.QueueLen)/float64(obs.Servers)
	}
	next := obs.Speed + p.gain()*(desired-obs.Speed)
	if next < obs.MinSpeed {
		next = obs.MinSpeed
	}
	if next > obs.MaxSpeed {
		next = obs.MaxSpeed
	}
	return next
}
