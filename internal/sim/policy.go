package sim

import "fmt"

// Observation is what a runtime DVFS controller sees about one station at a
// control epoch.
type Observation struct {
	Time        float64
	Station     int
	Utilization float64 // mean busy fraction per server since the last epoch
	QueueLen    int     // jobs waiting (not in service) right now
	Speed       float64 // current speed
	Servers     int
	MinSpeed    float64 // clamp range the decision will be held to
	MaxSpeed    float64
}

// Controller decides a station's next speed at every control epoch — the
// online counterpart of the paper's offline optimizations. The returned
// speed is clamped to [MinSpeed, MaxSpeed] by the simulator.
type Controller interface {
	// Name labels the policy in experiment tables.
	Name() string
	// Decide returns the speed to run the station at until the next epoch.
	Decide(obs Observation) float64
}

// StaticPolicy never changes speeds: the offline-optimal operating point,
// used as the baseline the reactive policies are compared against.
type StaticPolicy struct{}

// Name implements Controller.
func (StaticPolicy) Name() string { return "static" }

// Decide implements Controller.
func (StaticPolicy) Decide(obs Observation) float64 { return obs.Speed }

// ZeroQueueGain requests a UtilizationPolicy with NO queue-pressure boost.
// It exists for the same reason as ZeroWarmup: the zero value of QueueGain
// must keep meaning "use the default", so an explicit zero is spelled with a
// negative sentinel instead (any negative value disables the boost).
const ZeroQueueGain = -1.0

// UtilizationPolicy is the classic reactive DVFS rule: scale the speed so
// the observed utilization moves toward Target, with first-order smoothing
// (Gain) and a queue-pressure boost that accelerates recovery when work has
// already piled up (utilization alone saturates at 1 and cannot see backlog).
type UtilizationPolicy struct {
	// Target is the desired per-server utilization (default 0.7).
	Target float64
	// Gain in (0, 1] is the fraction of the correction applied per epoch
	// (default 0.5; 1 = jump straight to the estimate).
	Gain float64
	// QueueGain scales the backlog boost (default 0.1 per queued job per
	// server). Leaving it at zero selects the default; to disable the boost
	// entirely, set QueueGain to ZeroQueueGain (any negative value works).
	QueueGain float64
}

// Name implements Controller.
func (p UtilizationPolicy) Name() string {
	return fmt.Sprintf("reactive(ρ*=%.2g)", p.target())
}

func (p UtilizationPolicy) target() float64 {
	if p.Target <= 0 || p.Target >= 1 {
		return 0.7
	}
	return p.Target
}

func (p UtilizationPolicy) gain() float64 {
	if p.Gain <= 0 || p.Gain > 1 {
		return 0.5
	}
	return p.Gain
}

func (p UtilizationPolicy) queueGain() float64 {
	if p.QueueGain < 0 {
		// ZeroQueueGain (or any negative value): boost explicitly disabled.
		return 0
	}
	if p.QueueGain == 0 {
		// The unset field, not an explicit zero — that is ZeroQueueGain.
		return 0.1
	}
	return p.QueueGain
}

// PlanObservation is what a plan-level controller sees at a control epoch:
// every station's per-epoch observation plus the windowed per-class arrival-
// rate estimates. It is the cluster-wide counterpart of Observation — one
// decision over the whole plan instead of one per station.
type PlanObservation struct {
	// Time is the epoch's simulated time.
	Time float64
	// Stations holds one Observation per tier, in tier order.
	Stations []Observation
	// Rates[k] is class k's windowed arrival-rate estimate λ̂ read from the
	// attached window.Set at this epoch, or NaN when no window set is
	// attached (or the window has no coverage yet). Controllers must treat
	// NaN as "no estimate" and fall back to their nominal rates.
	Rates []float64
}

// PlanDecision is a plan-level controller's retune order. Zero values hold
// the current plan: a nil or short slice, a NaN or non-positive speed, and a
// non-positive server count all mean "leave that knob alone", so the zero
// PlanDecision is a guaranteed no-op (the perturbation-freedom tests pin
// that a controller returning it never changes any result bit).
type PlanDecision struct {
	// Speeds[j], when positive and finite, is tier j's new speed (clamped
	// to the tier's [MinSpeed, MaxSpeed] by the simulator).
	Speeds []float64
	// Servers[j], when positive, is tier j's new effective server count:
	// the simulator parks servers - Servers[j] of the configured servers
	// (clamped to at least 1 active). Parked servers draw no power and
	// accept no work; shrinking is lazy — running services finish before
	// the pool contracts. Ignored on tiers with the sleep policy enabled
	// (sleep already manages the idle pool) and values above the configured
	// count are capped (the simulator cannot buy hardware mid-run).
	Servers []int
}

// PlanController re-plans the whole cluster at every control epoch — the
// model-driven counterpart of the per-station Controller, designed for
// controllers that re-run the paper's optimizations against live estimates
// (see internal/control). At most one of Controller and PlanController may
// be set on Options.
type PlanController interface {
	// Name labels the policy in experiment tables.
	Name() string
	// DecidePlan returns the retune order to apply until the next epoch.
	DecidePlan(obs PlanObservation) PlanDecision
}

// Decide implements Controller. The served work rate since the last epoch is
// util·speed·servers; the speed that would serve the same work at the target
// utilization is util·speed/target. Backlog multiplies the estimate so the
// queue drains instead of merely not growing.
func (p UtilizationPolicy) Decide(obs Observation) float64 {
	desired := obs.Speed * obs.Utilization / p.target()
	if obs.QueueLen > obs.Servers {
		desired *= 1 + p.queueGain()*float64(obs.QueueLen)/float64(obs.Servers)
	}
	next := obs.Speed + p.gain()*(desired-obs.Speed)
	if next < obs.MinSpeed {
		next = obs.MinSpeed
	}
	if next > obs.MaxSpeed {
		next = obs.MaxSpeed
	}
	return next
}
