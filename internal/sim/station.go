package sim

import (
	"math"

	"clusterq/internal/power"
	"clusterq/internal/queueing"
	"clusterq/internal/stats"
)

// job is one request flowing through the network.
type job struct {
	id         uint64
	class      int
	arrival    float64 // external arrival time
	routePos   int     // index into the class route (deterministic routing)
	cur        int     // current station (probabilistic routing)
	remaining  float64 // remaining WORK at the current station (preemption)
	enqueued   float64 // time it joined the current station (wait accounting)
	servedTime float64 // in-service time accumulated at the current station
	attempts   int     // retries consumed so far (deadline extension)
}

// serviceRun is one (possibly preempted) service occupancy of a server.
type serviceRun struct {
	job       *job
	start     float64 // when this run started
	cancelled bool    // the departure event is stale (preempted)
}

// simStation is the runtime state of one tier.
type simStation struct {
	idx        int
	servers    int
	speed      float64
	minSpeed   float64 // DVFS clamp for runtime controllers
	maxSpeed   float64
	discipline queueing.Discipline
	pm         power.Model
	samplers   []Sampler // per class: WORK distributions

	queues     []jobDeque    // per-class FIFO queues (priority order = index)
	fifo       jobDeque      // single queue under FCFS
	running    []*serviceRun // active service runs, ≤ servers
	runScratch []*serviceRun // spare backing array swapped in by setSpeed

	// Sleep-state extension (instant-off policy): idle servers power down
	// to sleepPower and pay a setup period (at busy power) to wake.
	sleepEnabled bool
	setupSampler Sampler
	sleepPower   float64
	settingUp    int // servers currently warming up

	// Failure extension: servers currently broken (fail-stop, drawing no
	// power) and the admission-control epoch's busy-server measurement
	// (only observed when shedding is enabled).
	failed      int
	shedEnabled bool
	shedBusy    stats.TimeWeighted

	// Plan-controller extension: servers administratively parked (powered
	// off, accepting no work). Shrinking is lazy — services already running
	// finish before the active pool contracts — so len(running) may
	// transiently exceed the active count.
	parked int

	// measurement
	busy      stats.TimeWeighted // number of busy servers over time
	powerTW   stats.TimeWeighted // instantaneous power draw over time
	epochBusy stats.TimeWeighted // busy servers since the last control epoch
	waitByCls []*stats.Welford   // waiting time per class at this station
	svcEnergy []float64          // dynamic energy per class (accumulated)
	servedCls []int64            // completions per class
}

// instPower returns the station's instantaneous power at its current speed
// and server states. Without sleep, non-busy up servers idle and failed
// servers draw nothing; with sleep (never combined with failures) non-busy
// servers are either warming up (busy power, the standard assumption) or
// asleep.
func (s *simStation) instPower() float64 {
	b := float64(len(s.running))
	if !s.sleepEnabled {
		// Parked servers draw nothing; during a lazy shrink the still-
		// running services can outnumber the active pool, so the idle count
		// floors at zero instead of going negative.
		idle := float64(s.servers-s.failed-s.parked) - b
		if idle < 0 {
			idle = 0
		}
		return b*s.pm.BusyPower(s.speed) + idle*s.pm.IdlePower(s.speed)
	}
	su := float64(s.settingUp)
	sl := float64(s.servers) - b - su
	return (b+su)*s.pm.BusyPower(s.speed) + sl*s.sleepPower
}

// sleepingServers returns the number of powered-down servers.
func (s *simStation) sleepingServers() int {
	return s.servers - len(s.running) - s.settingUp
}

// powerGap returns the busy/idle power difference at the current speed.
func (s *simStation) powerGap() float64 {
	return s.pm.BusyPower(s.speed) - s.pm.IdlePower(s.speed)
}

// bankSegment accounts the service segment of a run ending now: consumed
// work, in-service time, and dynamic energy at the CURRENT speed (callers
// must bank before changing the speed).
func (s *simStation) bankSegment(run *serviceRun, now float64) {
	seg := now - run.start
	if seg <= 0 {
		return
	}
	run.job.remaining -= seg * s.speed
	if run.job.remaining < 0 {
		run.job.remaining = 0
	}
	run.job.servedTime += seg
	s.svcEnergy[run.job.class] += s.powerGap() * seg
}

func (s *simStation) freeServers() int { return s.servers - s.failed - s.parked - len(s.running) }

// upServers is the capacity actually on the floor: configured servers minus
// those currently broken down or administratively parked.
func (s *simStation) upServers() int { return s.servers - s.failed - s.parked }

// upUtilization converts a mean busy-server level into a utilization of the
// UP servers — the denominator runtime sensors (the DVFS controller's epoch
// observation, the window utilization samples, the shedding epoch) must use.
// Dividing by the configured count instead understates load precisely while
// servers are failed; Result.Tiers deliberately keeps the configured-capacity
// denominator, which is the analytically comparable long-run view. A NaN
// mean (zero-length measurement span) falls back to the instantaneous busy
// count, and a station with every server down is maximally overloaded, not
// idle.
func (s *simStation) upUtilization(busyMean float64) float64 {
	up := s.upServers()
	if up <= 0 {
		return 1
	}
	if math.IsNaN(busyMean) {
		busyMean = float64(len(s.running))
	}
	return busyMean / float64(up)
}

// instUpUtilization is the instantaneous busy fraction of the up servers.
func (s *simStation) instUpUtilization() float64 {
	up := s.upServers()
	if up <= 0 {
		return 1
	}
	return float64(len(s.running)) / float64(up)
}

// enqueue adds a job to the station's waiting line at time now.
func (s *simStation) enqueue(j *job, now float64) {
	j.enqueued = now
	if s.discipline == queueing.FCFS {
		s.fifo.pushBack(j)
	} else {
		s.queues[j.class].pushBack(j)
	}
}

// nextWaiting pops the job that should be served next, or nil.
func (s *simStation) nextWaiting() *job {
	if s.discipline == queueing.FCFS {
		if s.fifo.len() == 0 {
			return nil
		}
		return s.fifo.popFront()
	}
	for k := range s.queues {
		if s.queues[k].len() > 0 {
			return s.queues[k].popFront()
		}
	}
	return nil
}

// requeueFront puts an interrupted (preempted or failed-over) job back at
// the head of its waiting line so it resumes before later arrivals of its
// class. Preemption only occurs under PreemptiveResume, but breakdowns
// interrupt service under any discipline, including FCFS's single line.
func (s *simStation) requeueFront(j *job) {
	if s.discipline == queueing.FCFS {
		s.fifo.pushFront(j)
		return
	}
	s.queues[j.class].pushFront(j)
}

// runOf returns the service run currently serving j, or nil.
func (s *simStation) runOf(j *job) *serviceRun {
	for _, r := range s.running {
		if r.job == j {
			return r
		}
	}
	return nil
}

// removeWaiting deletes j from its waiting line, preserving the order of the
// remaining jobs, and reports whether it was found. Timeouts are rare
// relative to arrivals, so the O(queue) scan does not weigh on the hot path.
func (s *simStation) removeWaiting(j *job) bool {
	if s.discipline == queueing.FCFS {
		return s.fifo.removeFirst(j)
	}
	return s.queues[j.class].removeFirst(j)
}

// lowestPriorityRunning returns the run with the numerically largest class
// index (lowest priority), or nil when no server is busy.
func (s *simStation) lowestPriorityRunning() *serviceRun {
	var worst *serviceRun
	for _, r := range s.running {
		if worst == nil || r.job.class > worst.job.class {
			worst = r
		}
	}
	return worst
}

// dropRun removes a run from the running set.
func (s *simStation) dropRun(target *serviceRun) {
	for i, r := range s.running {
		if r == target {
			s.running[i] = s.running[len(s.running)-1]
			s.running = s.running[:len(s.running)-1]
			return
		}
	}
}

// observeBusy records the current busy-server count and instantaneous power,
// to be called after every change to the running set or the speed.
func (s *simStation) observeBusy(now float64) {
	b := float64(len(s.running))
	s.busy.Observe(now, b)
	s.epochBusy.Observe(now, b)
	s.powerTW.Observe(now, s.instPower())
	if s.shedEnabled {
		s.shedBusy.Observe(now, b)
	}
}

// queueLen returns the number of waiting (not in-service) jobs.
func (s *simStation) queueLen() int {
	if s.discipline == queueing.FCFS {
		return s.fifo.len()
	}
	n := 0
	for k := range s.queues {
		n += s.queues[k].len()
	}
	return n
}

// resetStats clears measurement state at the end of the warmup period.
func (s *simStation) resetStats(now float64) {
	for _, w := range s.waitByCls {
		w.Reset()
	}
	for k := range s.svcEnergy {
		s.svcEnergy[k] = 0
		s.servedCls[k] = 0
	}
	s.busy.StartAt(now, float64(len(s.running)))
	s.powerTW.StartAt(now, s.instPower())
}
