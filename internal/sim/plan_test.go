package sim

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
)

// holdAllPlan is a plan controller that holds every knob — the sim-package
// twin of control.NoOp (which cannot be imported here: control depends on
// sim). internal/control pins that NoOp returns the identical zero decision.
type holdAllPlan struct{}

func (holdAllPlan) Name() string                            { return "hold-all" }
func (holdAllPlan) DecidePlan(PlanObservation) PlanDecision { return PlanDecision{} }

// fixedPlan replays one constant decision every epoch.
type fixedPlan struct{ d PlanDecision }

func (fixedPlan) Name() string                              { return "fixed" }
func (p fixedPlan) DecidePlan(PlanObservation) PlanDecision { return p.d }

// TestPlanControllerNoOpPerturbationFree pins satellite 3's property: a plan
// controller that holds every knob must leave the Result bit-identical to a
// controller-free run — on both calendars, driven closed or AdvanceTo-sliced,
// with the window sensors attached (sensor reads only advance expiry
// bookkeeping). The run uses ZeroWarmup because the warmup reset otherwise
// lands on the first event past the warmup time, and control events would
// legitimately shift that timestamp; with no reset the event stream's extra
// control pops must be entirely invisible.
func TestPlanControllerNoOpPerturbationFree(t *testing.T) {
	quantiles := []float64{0.9, 0.95}
	base := Options{
		Horizon: 3000, Replications: 1, Seed: 42,
		Quantiles: quantiles, Warmup: ZeroWarmup, Calendar: CalendarHeap,
	}
	free, err := Run(stepCluster(2, queueing.NonPreemptive), base)
	if err != nil {
		t.Fatal(err)
	}
	want := hashResult(free, quantiles)

	mkOpts := func(calKind string) Options {
		o := base
		o.Calendar = calKind
		o.PlanController = holdAllPlan{}
		o.ControlPeriod = 37
		win, err := window.NewSet(window.Config{Width: 200}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		o.Windows = win
		return o
	}
	for _, calKind := range []string{CalendarHeap, CalendarLadder} {
		closed, err := Run(stepCluster(2, queueing.NonPreemptive), mkOpts(calKind))
		if err != nil {
			t.Fatal(err)
		}
		if got := hashResult(closed, quantiles); got != want {
			t.Errorf("%s/closed: no-op plan controller perturbed the run:\n got %s\nwant %s", calKind, got, want)
		}

		o := mkOpts(calKind)
		rep, err := NewReplication(stepCluster(2, queueing.NonPreemptive), o, o.Seed)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 250.0; tt <= o.Horizon; tt += 250 {
			rep.AdvanceTo(tt)
		}
		rep.AdvanceTo(math.Inf(1))
		res, err := rep.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got := hashResult(res, quantiles); got != want {
			t.Errorf("%s/sliced: no-op plan controller perturbed the run:\n got %s\nwant %s", calKind, got, want)
		}
	}
}

// TestPlanControllerOptionValidation pins the Options contract: a plan
// controller needs a control period, exactly one replication, and cannot
// combine with the per-station controller.
func TestPlanControllerOptionValidation(t *testing.T) {
	c := stepCluster(1, queueing.FCFS)
	if _, err := Run(c, Options{Horizon: 100, Replications: 1,
		PlanController: holdAllPlan{}}); err == nil {
		t.Error("plan controller without period accepted")
	}
	if _, err := Run(c, Options{Horizon: 100, Replications: 2,
		PlanController: holdAllPlan{}, ControlPeriod: 10}); err == nil {
		t.Error("plan controller with 2 replications accepted")
	}
	if _, err := Run(c, Options{Horizon: 100, Replications: 1,
		PlanController: holdAllPlan{}, Controller: StaticPolicy{}, ControlPeriod: 10}); err == nil {
		t.Error("both controller kinds accepted")
	}
}

// TestPlanDecisionClampsAndHolds pins applyPlan's edge contract: NaN and
// non-positive speeds hold, out-of-range speeds clamp, and oversized server
// requests cap at the configured pool.
func TestPlanDecisionClampsAndHolds(t *testing.T) {
	c := stepCluster(2, queueing.NonPreemptive)
	o := Options{Horizon: 2000, Replications: 1, Seed: 3,
		ControlPeriod: 50, Probe: &Probe{Period: 100}}

	// NaN and zero speeds: pure holds, so no retune events at all.
	o.PlanController = fixedPlan{PlanDecision{Speeds: []float64{math.NaN()}}}
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventCounts[TraceRetune] != 0 {
		t.Errorf("NaN plan speed caused %d retunes, want 0 (hold)", res.EventCounts[TraceRetune])
	}
	if math.IsNaN(res.Delay[0].Mean) {
		t.Error("NaN plan speed leaked into results")
	}

	// A speed far beyond MaxSpeed clamps (station default MaxSpeed = 4×1);
	// asking for 1000 servers on a 2-server tier caps at 2 (a no-op park).
	o.PlanController = fixedPlan{PlanDecision{Speeds: []float64{1e9}, Servers: []int{1000}}}
	res, err = Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventCounts[TraceRetune] == 0 {
		t.Error("clamped over-max speed was never applied")
	}
	if res.EventCounts[TracePark] != 0 {
		t.Errorf("capped server request caused %d park events, want 0", res.EventCounts[TracePark])
	}
	if !(res.Completed[0] > 0) || math.IsNaN(res.TotalPower.Mean) {
		t.Error("clamped plan produced a broken run")
	}
}

// TestPlanParkingShedsIdlePower pins the parking semantics: a plan that
// keeps one of two servers parked must draw less power than the full pool at
// light load (parked servers draw nothing) while still serving the whole
// workload, and the park event must be traced and counted.
func TestPlanParkingShedsIdlePower(t *testing.T) {
	classes := []cluster.Class{{Name: "a", Lambda: 0.2}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}}
	mk := func() *cluster.Cluster { return oneTier(2, 1, queueing.FCFS, classes, demands) }
	base := Options{Horizon: 20000, Replications: 1, Seed: 11, Probe: &Probe{Period: 100}}

	full, err := Run(mk(), base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.PlanController = fixedPlan{PlanDecision{Servers: []int{1}}}
	o.ControlPeriod = 50
	parked, err := Run(mk(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !(parked.TotalPower.Mean < full.TotalPower.Mean) {
		t.Errorf("parked power %g not below full-pool power %g",
			parked.TotalPower.Mean, full.TotalPower.Mean)
	}
	if parked.EventCounts[TracePark] == 0 {
		t.Error("no park events recorded")
	}
	// Same arrival stream (control consumes no RNG), ample capacity on the
	// one remaining server: throughput must be preserved.
	if relErr(float64(parked.Completed[0]), float64(full.Completed[0])) > 0.02 {
		t.Errorf("parking lost work: %d vs %d completions", parked.Completed[0], full.Completed[0])
	}
}
