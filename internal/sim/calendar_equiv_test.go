package sim

import (
	"testing"
)

// driveCalendarsInLockstep runs the heap and ladder calendars through an
// identical randomized workload — schedules (plain and gen-stamped, with
// far-future, near-term, exactly-tied and exactly-now times), single pops,
// and AdvanceTo-style drains — and asserts the pop sequences are element for
// element identical in (time, seq) order, gen stamps included. ops bounds
// the workload length so the fuzz harness stays fast.
func driveCalendarsInLockstep(t *testing.T, seed uint64, ops int) {
	t.Helper()
	heap := newCalendarKind(CalendarHeap)
	ladder := newCalendarKind(CalendarLadder)
	rng := NewRNG(seed)
	live := 0
	pops := 0

	popBoth := func() bool {
		ht, hok := heap.peekTime()
		lt, lok := ladder.peekTime()
		if hok != lok || (hok && ht != lt) {
			t.Fatalf("pop %d: peekTime diverged: heap (%v,%v) ladder (%v,%v)", pops, ht, hok, lt, lok)
		}
		he := heap.next()
		le := ladder.next()
		if (he == nil) != (le == nil) {
			t.Fatalf("pop %d: heap nil=%v ladder nil=%v with %d live", pops, he == nil, le == nil, live)
		}
		if he == nil {
			return false
		}
		if he.time != le.time || he.seq != le.seq || he.gen != le.gen || he.kind != le.kind {
			t.Fatalf("pop %d diverged: heap (t=%v seq=%d gen=%d kind=%d) ladder (t=%v seq=%d gen=%d kind=%d)",
				pops, he.time, he.seq, he.gen, he.kind, le.time, le.seq, le.gen, le.kind)
		}
		if heap.now != ladder.now {
			t.Fatalf("pop %d: clocks diverged: heap %v ladder %v", pops, heap.now, ladder.now)
		}
		heap.recycle(he)
		ladder.recycle(le)
		live--
		pops++
		return true
	}

	schedule := func() {
		// A mix biased toward the simulator's schedule-at-now+Δ pattern,
		// with deliberate exact time ties so the seq tie-break is exercised
		// on every run.
		var at float64
		switch rng.Uint64() % 6 {
		case 0: // far future: exercises top and rung spawning
			at = heap.now + rng.Float64()*1e4
		case 1: // mid range
			at = heap.now + rng.Float64()*100
		case 2: // near term: exercises bottom inserts
			at = heap.now + rng.Float64()
		case 3: // exact tie grid: many bitwise-equal times
			at = heap.now + float64(rng.Uint64()%16)
		case 4:
			// Tight non-equal cluster: piles sub-bucket-width-apart times
			// into one bucket so deep rungs spawn and, once drained, leave
			// band gaps that later near-term pushes must not fall into
			// (the exhausted-rung regime of TestLadderPushIntoExhaustedRung).
			at = heap.now + 10 + rng.Float64()*0.01
		default: // exactly now: ordering is pure seq
			at = heap.now
		}
		if rng.Uint64()%4 == 0 {
			// The gen-stamped path deadlines use (scheduleGen): the stamp
			// must ride along unperturbed for staleness checks to work.
			gen := rng.Uint64() % 8
			heap.scheduleGen(at, evTimeout, 0, nil, 0, gen)
			ladder.scheduleGen(at, evTimeout, 0, nil, 0, gen)
		} else {
			heap.schedule(at, evArrival, 0, nil, 0, nil)
			ladder.schedule(at, evArrival, 0, nil, 0, nil)
		}
		live++
	}

	for i := 0; i < ops; i++ {
		switch op := rng.Uint64() % 10; {
		case op < 5 || live == 0:
			schedule()
		case op < 8:
			popBoth()
		default:
			// AdvanceTo-style drain: pop everything at or before a target
			// time, exactly how the step engine and the shared-clock
			// orchestrator consume the calendar.
			target := heap.now + rng.Float64()*50
			for {
				et, ok := heap.peekTime()
				if !ok || et > target {
					break
				}
				popBoth()
			}
		}
	}
	// Drain completely: the tail must match too.
	for popBoth() {
	}
	if live != 0 {
		t.Fatalf("accounting bug in the test driver: %d live after full drain", live)
	}
	if !heap.empty() || !ladder.empty() {
		t.Fatalf("calendars report non-empty after drain: heap %v ladder %v", !heap.empty(), !ladder.empty())
	}
}

// TestLadderMatchesHeapPopOrder is the property test: across many seeds, the
// ladder's pop sequence is bit-identical to the heap's on randomized
// workloads. This is the whole determinism argument for Options.Calendar —
// if pop order matches element for element, every downstream result matches
// bit for bit.
func TestLadderMatchesHeapPopOrder(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		driveCalendarsInLockstep(t, seed, 4000)
	}
}

// TestLadderMatchesHeapLargeLiveSet pushes one big batch through both
// schedulers so rung spawning (bucket > ladderThresh) and multi-level
// re-bucketing actually trigger, including heavy exact-tie pileups.
func TestLadderMatchesHeapLargeLiveSet(t *testing.T) {
	heap := newCalendarKind(CalendarHeap)
	ladder := newCalendarKind(CalendarLadder)
	rng := NewRNG(99)
	const n = 200000
	for i := 0; i < n; i++ {
		var at float64
		if rng.Uint64()%3 == 0 {
			at = float64(rng.Uint64() % 64) // massive equal-time pileups
		} else {
			at = rng.Float64() * 1000
		}
		heap.schedule(at, evArrival, 0, nil, 0, nil)
		ladder.schedule(at, evArrival, 0, nil, 0, nil)
	}
	for i := 0; i < n; i++ {
		he, le := heap.next(), ladder.next()
		if he.time != le.time || he.seq != le.seq {
			t.Fatalf("pop %d diverged: heap (t=%v seq=%d) ladder (t=%v seq=%d)",
				i, he.time, he.seq, le.time, le.seq)
		}
		heap.recycle(he)
		ladder.recycle(le)
	}
	if !ladder.empty() {
		t.Fatal("ladder non-empty after full drain")
	}
}

// TestLadderPushIntoExhaustedRung drains a spawned rung to its last bucket
// and then pushes into the gap between that rung's band end and the parent
// rung's current bucket — the simulator's normal schedule-at-now+Δ pattern,
// landing between the pop that consumed a rung's final bucket and the next
// pop. An exhausted rung must never capture such a push: before the eager
// removal in refillFromRung (and the exhausted-rung skip in push) the event
// was filed into the rung's already-consumed last bucket and silently
// dropped when the rung was lazily removed, leaving the queue overcounting
// and eventually spinning in ensureBottom.
func TestLadderPushIntoExhaustedRung(t *testing.T) {
	lq := newCalendarKind(CalendarLadder)
	// 100 events clustered in [10, 10.1) plus one far event at t=100: the
	// first pop pours top into rung 0, whose bucket holding the cluster
	// overflows ladderThresh and spawns a deeper rung covering the cluster.
	for i := 0; i < 100; i++ {
		lq.schedule(10+float64(i)*0.001, evArrival, 0, nil, 0, nil)
	}
	lq.schedule(100, evArrival, 0, nil, 0, nil)
	// Drain the cluster completely: the spawned rung's last bucket is
	// consumed on the final pop, leaving the rung exhausted but (before the
	// fix) still present until the next refill.
	for i := 0; i < 100; i++ {
		e := lq.next()
		if e == nil {
			t.Fatalf("pop %d: nil with %d scheduled", i, lq.sched.size())
		}
		if want := 10 + float64(i)*0.001; e.time != want {
			t.Fatalf("pop %d: got t=%v, want %v", i, e.time, want)
		}
		lq.recycle(e)
	}
	// t=10.5 is past the drained rung's band yet before the parent rung's
	// current bucket: it must pop next, not vanish into the exhausted rung.
	lq.schedule(10.5, evArrival, 0, nil, 0, nil)
	if n := lq.sched.size(); n != 2 {
		t.Fatalf("size after push: got %d, want 2", n)
	}
	e := lq.next()
	if e == nil || e.time != 10.5 {
		t.Fatalf("pop after push into rung gap: got %v, want t=10.5", e)
	}
	lq.recycle(e)
	e = lq.next()
	if e == nil || e.time != 100 {
		t.Fatalf("final pop: got %v, want t=100", e)
	}
	lq.recycle(e)
	if !lq.empty() {
		t.Fatalf("ladder non-empty after full drain: %d left", lq.sched.size())
	}
}

// FuzzLadderMatchesHeap lets the fuzzer search the workload space for a seed
// whose pop sequences diverge. The corpus seeds cover the regimes the
// property test already walks; `go test -fuzz FuzzLadderMatchesHeap` digs
// further.
func FuzzLadderMatchesHeap(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(42))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		driveCalendarsInLockstep(t, seed, 1500)
	})
}
