package sim

import (
	"testing"
)

// driveCalendarsInLockstep runs the heap and ladder calendars through an
// identical randomized workload — schedules (plain and gen-stamped, with
// far-future, near-term, exactly-tied and exactly-now times), single pops,
// and AdvanceTo-style drains — and asserts the pop sequences are element for
// element identical in (time, seq) order, gen stamps included. ops bounds
// the workload length so the fuzz harness stays fast.
func driveCalendarsInLockstep(t *testing.T, seed uint64, ops int) {
	t.Helper()
	heap := newCalendarKind(CalendarHeap)
	ladder := newCalendarKind(CalendarLadder)
	rng := NewRNG(seed)
	live := 0
	pops := 0

	popBoth := func() bool {
		ht, hok := heap.peekTime()
		lt, lok := ladder.peekTime()
		if hok != lok || (hok && ht != lt) {
			t.Fatalf("pop %d: peekTime diverged: heap (%v,%v) ladder (%v,%v)", pops, ht, hok, lt, lok)
		}
		he := heap.next()
		le := ladder.next()
		if (he == nil) != (le == nil) {
			t.Fatalf("pop %d: heap nil=%v ladder nil=%v with %d live", pops, he == nil, le == nil, live)
		}
		if he == nil {
			return false
		}
		if he.time != le.time || he.seq != le.seq || he.gen != le.gen || he.kind != le.kind {
			t.Fatalf("pop %d diverged: heap (t=%v seq=%d gen=%d kind=%d) ladder (t=%v seq=%d gen=%d kind=%d)",
				pops, he.time, he.seq, he.gen, he.kind, le.time, le.seq, le.gen, le.kind)
		}
		if heap.now != ladder.now {
			t.Fatalf("pop %d: clocks diverged: heap %v ladder %v", pops, heap.now, ladder.now)
		}
		heap.recycle(he)
		ladder.recycle(le)
		live--
		pops++
		return true
	}

	schedule := func() {
		// A mix biased toward the simulator's schedule-at-now+Δ pattern,
		// with deliberate exact time ties so the seq tie-break is exercised
		// on every run.
		var at float64
		switch rng.Uint64() % 5 {
		case 0: // far future: exercises top and rung spawning
			at = heap.now + rng.Float64()*1e4
		case 1: // mid range
			at = heap.now + rng.Float64()*100
		case 2: // near term: exercises bottom inserts
			at = heap.now + rng.Float64()
		case 3: // exact tie grid: many bitwise-equal times
			at = heap.now + float64(rng.Uint64()%16)
		default: // exactly now: ordering is pure seq
			at = heap.now
		}
		if rng.Uint64()%4 == 0 {
			// The gen-stamped path deadlines use (scheduleGen): the stamp
			// must ride along unperturbed for staleness checks to work.
			gen := rng.Uint64() % 8
			heap.scheduleGen(at, evTimeout, 0, nil, 0, gen)
			ladder.scheduleGen(at, evTimeout, 0, nil, 0, gen)
		} else {
			heap.schedule(at, evArrival, 0, nil, 0, nil)
			ladder.schedule(at, evArrival, 0, nil, 0, nil)
		}
		live++
	}

	for i := 0; i < ops; i++ {
		switch op := rng.Uint64() % 10; {
		case op < 5 || live == 0:
			schedule()
		case op < 8:
			popBoth()
		default:
			// AdvanceTo-style drain: pop everything at or before a target
			// time, exactly how the step engine and the shared-clock
			// orchestrator consume the calendar.
			target := heap.now + rng.Float64()*50
			for {
				et, ok := heap.peekTime()
				if !ok || et > target {
					break
				}
				popBoth()
			}
		}
	}
	// Drain completely: the tail must match too.
	for popBoth() {
	}
	if live != 0 {
		t.Fatalf("accounting bug in the test driver: %d live after full drain", live)
	}
	if !heap.empty() || !ladder.empty() {
		t.Fatalf("calendars report non-empty after drain: heap %v ladder %v", !heap.empty(), !ladder.empty())
	}
}

// TestLadderMatchesHeapPopOrder is the property test: across many seeds, the
// ladder's pop sequence is bit-identical to the heap's on randomized
// workloads. This is the whole determinism argument for Options.Calendar —
// if pop order matches element for element, every downstream result matches
// bit for bit.
func TestLadderMatchesHeapPopOrder(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		driveCalendarsInLockstep(t, seed, 4000)
	}
}

// TestLadderMatchesHeapLargeLiveSet pushes one big batch through both
// schedulers so rung spawning (bucket > ladderThresh) and multi-level
// re-bucketing actually trigger, including heavy exact-tie pileups.
func TestLadderMatchesHeapLargeLiveSet(t *testing.T) {
	heap := newCalendarKind(CalendarHeap)
	ladder := newCalendarKind(CalendarLadder)
	rng := NewRNG(99)
	const n = 200000
	for i := 0; i < n; i++ {
		var at float64
		if rng.Uint64()%3 == 0 {
			at = float64(rng.Uint64() % 64) // massive equal-time pileups
		} else {
			at = rng.Float64() * 1000
		}
		heap.schedule(at, evArrival, 0, nil, 0, nil)
		ladder.schedule(at, evArrival, 0, nil, 0, nil)
	}
	for i := 0; i < n; i++ {
		he, le := heap.next(), ladder.next()
		if he.time != le.time || he.seq != le.seq {
			t.Fatalf("pop %d diverged: heap (t=%v seq=%d) ladder (t=%v seq=%d)",
				i, he.time, he.seq, le.time, le.seq)
		}
		heap.recycle(he)
		ladder.recycle(le)
	}
	if !ladder.empty() {
		t.Fatal("ladder non-empty after full drain")
	}
}

// FuzzLadderMatchesHeap lets the fuzzer search the workload space for a seed
// whose pop sequences diverge. The corpus seeds cover the regimes the
// property test already walks; `go test -fuzz FuzzLadderMatchesHeap` digs
// further.
func FuzzLadderMatchesHeap(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(42))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		driveCalendarsInLockstep(t, seed, 1500)
	})
}
