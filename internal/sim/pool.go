package sim

// Per-replication free lists for the simulator's three transient object
// kinds. A replication of horizon T schedules O(λT) events, creates O(λT)
// jobs and O(λT) service runs; without recycling every one is a separate
// garbage-collected allocation and the event loop spends a large share of
// its time in the allocator. With the free lists, allocation is bounded by
// the replication's LIVE set (jobs in flight, events in the calendar, runs
// in service) — a constant in steady state — so the loop is allocation-free
// once warm.
//
// Recycling cannot perturb determinism: a recycled object is fully
// re-initialized before reuse, so the simulation's visible state is
// bit-identical to a run that allocated fresh objects. The pooled-golden-
// hash test in determinism_test.go pins this.
//
// Lifetime invariants (what makes recycling sound):
//
//   - event: owned by the calendar from schedule() until next() pops it;
//     the run loop recycles it after the handler returns. Handlers never
//     retain events.
//   - serviceRun: exactly one departure event references each run. A run
//     is recycled exactly when that event is handled — the normal path
//     after bankSegment/dropRun, the cancelled (stale) path immediately —
//     so no calendar event can ever reference a reused run.
//   - job: recycled when the job leaves the system (exit, abandonment, or a
//     numerically empty routing entry row). Stale cancelled departure events
//     may still hold a *job pointer then, but their handler reads only
//     run.cancelled and returns, so the pointer is never dereferenced.
//     Timeout/retry events DO dereference their *job, so they carry the
//     job's id as a generation stamp (event.gen); freeJob zeroes the id,
//     and allocJob hands out a fresh one, so a stale stamp never matches
//     and the handler bails before touching recycled state.

// allocJob returns a zeroed job, reusing a recycled one when available.
func (s *simulator) allocJob() *job {
	if n := len(s.jobFree); n > 0 {
		j := s.jobFree[n-1]
		s.jobFree = s.jobFree[:n-1]
		*j = job{}
		return j
	}
	return &job{}
}

// freeJob recycles a job that has left the system. The id is zeroed
// immediately (not only on realloc) so a pending timeout/retry event whose
// generation stamp still names this job sees the mismatch even before the
// job is handed out again.
func (s *simulator) freeJob(j *job) {
	j.id = 0
	s.jobFree = append(s.jobFree, j)
}

// allocRun returns a zeroed service run, reusing a recycled one when
// available.
func (s *simulator) allocRun() *serviceRun {
	if n := len(s.runFree); n > 0 {
		r := s.runFree[n-1]
		s.runFree = s.runFree[:n-1]
		*r = serviceRun{}
		return r
	}
	return &serviceRun{}
}

// freeRun recycles a run whose departure event has been handled.
func (s *simulator) freeRun(r *serviceRun) { s.runFree = append(s.runFree, r) }
