package sim

import (
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

func TestScheduleValidation(t *testing.T) {
	bad := []struct {
		name   string
		times  []float64
		rates  []float64
		period float64
	}{
		{"empty", nil, nil, 0},
		{"length mismatch", []float64{0, 1}, []float64{1}, 0},
		{"nonzero start", []float64{1, 2}, []float64{1, 2}, 0},
		{"non-ascending", []float64{0, 5, 5}, []float64{1, 2, 3}, 0},
		{"negative rate", []float64{0, 5}, []float64{1, -2}, 0},
		{"period inside breakpoints", []float64{0, 10, 20}, []float64{1, 2, 3}, 15},
	}
	for _, tc := range bad {
		if _, err := NewSchedule(tc.times, tc.rates, tc.period); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSchedulePiecewiseAndPeriodic(t *testing.T) {
	// Open-ended: the final rate holds forever past the last breakpoint.
	s, err := NewSchedule([]float64{0, 10, 20}, []float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {5, 1}, {10, 2}, {19.9, 2}, {20, 3}, {1e6, 3},
	} {
		if got := s.RateAt(tc.t); got != tc.want {
			t.Errorf("open RateAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if s.MaxRate() != 3 {
		t.Errorf("MaxRate = %g, want 3", s.MaxRate())
	}
	if MeanRate(s) != 3 {
		t.Errorf("open-ended mean = %g, want final rate 3", MeanRate(s))
	}

	// Cycling: t wraps modulo the period, and the mean is time-weighted
	// over one cycle: (10·1 + 10·2 + 10·3)/30 = 2.
	p, err := NewSchedule([]float64{0, 10, 20}, []float64{1, 2, 3}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RateAt(35); got != 1 {
		t.Errorf("periodic RateAt(35) = %g, want 1 (wrapped to 5)", got)
	}
	if got := p.RateAt(59.9); got != 3 {
		t.Errorf("periodic RateAt(59.9) = %g, want 3", got)
	}
	if got := MeanRate(p); !almostEq(got, 2, 1e-12) {
		t.Errorf("periodic mean = %g, want 2", got)
	}
}

// TestScheduleThinningRealizesMeanRate cross-validates the schedule against
// the arrival generator the same way the sinusoid is validated: a cycling
// staircase must deliver its time-weighted mean rate of completions in a
// lightly loaded station.
func TestScheduleThinningRealizesMeanRate(t *testing.T) {
	c := oneTier(4, 4, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 99 /* ignored when a profile is set */}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	st, err := NewSchedule([]float64{0, 500, 1000}, []float64{1, 3, 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Horizon: 30000, Replications: 3, Seed: 21, Profiles: []Profile{st}}
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	span := (o.Horizon - o.Horizon*0.1) * float64(res.Replications)
	got := float64(res.Completed[0]) / span
	if relErr(got, 2) > 0.03 {
		t.Errorf("throughput %g, want 2 (schedule mean)", got)
	}
}
