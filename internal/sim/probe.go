package sim

import (
	"fmt"

	"clusterq/internal/obs"
)

// Probe configures the simulator's observability hooks: periodic time-series
// sampling of the system state and per-event-type counters. Attach one via
// Options.Probe; a nil probe leaves the engine on its unobserved fast path.
type Probe struct {
	// Period is the sampling period in simulated seconds (required, > 0).
	// Every Period the probe records, per tier, the waiting-queue length,
	// busy servers, utilization and instantaneous power, plus the
	// system-wide per-class in-flight counts and total power.
	Period float64
	// Registry optionally receives the aggregated event counters
	// (sim_events_<kind>_total) and run-level gauges after Run completes,
	// for exposition through obs.Registry.WriteJSON / WritePrometheus.
	// May be nil.
	Registry *obs.Registry
}

func (p *Probe) validate() error {
	if p == nil {
		return nil
	}
	if !(p.Period > 0) {
		return fmt.Errorf("sim: probe period %g must be positive", p.Period)
	}
	return nil
}

// probeKind enumerates the countable simulator events; the names mirror the
// trace-event strings so trace rows and counters line up.
type probeKind int

const (
	pkArrival probeKind = iota
	pkStart
	pkPreempt
	pkVisitEnd
	pkExit
	pkRetune
	pkSetupBegin
	pkSetupDone
	pkBreakdown
	pkRepair
	pkTimeout
	pkRetry
	pkAbandon
	pkShed
	pkPark
	numProbeKinds
)

// probeKindNames maps counter slots to the trace-event vocabulary.
var probeKindNames = [numProbeKinds]string{
	TraceArrival, TraceStart, TracePreempt, TraceVisitEnd,
	TraceExit, TraceRetune, TraceSetupBegin, TraceSetupDone,
	TraceBreakdown, TraceRepair, TraceTimeout, TraceRetry,
	TraceAbandon, TraceShed, TracePark,
}

// probeKindActive reports whether a counter can be nonzero under the given
// options. Inactive counters are omitted from Result.EventCounts so
// failure-free results — and the golden hashes pinned on them — are
// untouched by the failure subsystem's vocabulary.
func probeKindActive(k probeKind, o Options) bool {
	switch k {
	case pkBreakdown, pkRepair:
		return o.Failures != nil
	case pkTimeout, pkRetry, pkAbandon:
		return o.Deadlines != nil
	case pkShed:
		return o.Shedding != nil
	case pkPark:
		return o.PlanController != nil
	default:
		return true
	}
}

// count bumps one event counter; a branch and an increment when the probe is
// attached, a branch when it is not.
func (s *simulator) count(k probeKind) {
	if s.probe != nil {
		s.evCounts[k]++
	}
}

// timelineSeriesNames builds the probe's column layout for jn tiers and kn
// classes: per tier queue/busy/util/power, per class in-flight, then the
// cluster-wide power.
func timelineSeriesNames(jn, kn int) []string {
	names := make([]string, 0, 4*jn+kn+1)
	for j := 0; j < jn; j++ {
		names = append(names,
			fmt.Sprintf("tier%d_queue", j),
			fmt.Sprintf("tier%d_busy", j),
			fmt.Sprintf("tier%d_util", j),
			fmt.Sprintf("tier%d_power", j),
		)
	}
	for k := 0; k < kn; k++ {
		names = append(names, fmt.Sprintf("class%d_inflight", k))
	}
	names = append(names, "power_total")
	return names
}

// handleSample records one probe observation and schedules the next. Only the
// recording replication (replication 0) carries a timeline; the others still
// count events.
func (s *simulator) handleSample() {
	now := s.cal.now
	if s.tl != nil {
		row := s.tl.Row()
		i := 0
		var totalPower float64
		for _, st := range s.stations {
			p := st.instPower()
			row[i] = float64(st.queueLen())
			row[i+1] = float64(len(st.running))
			row[i+2] = float64(len(st.running)) / float64(st.servers)
			row[i+3] = p
			i += 4
			totalPower += p
		}
		for k := range s.inflight {
			row[i] = float64(s.inflight[k])
			i++
		}
		row[i] = totalPower
		s.tl.Sample(now, row)
	}
	// The window sensors ride the same tick: utilization samples per tier,
	// then a gauge refresh so live HTTP readers see current readings. The
	// samples are utilization of the UP servers — the controller-facing
	// truth during outages — unlike the timeline's tier<j>_util column
	// above, which keeps the configured-capacity view matching Result.Tiers.
	if s.win != nil {
		for j, st := range s.stations {
			s.win.ObserveUtilization(now, j, st.instUpUtilization())
		}
		s.win.Publish(now)
	}
	s.cal.schedule(now+s.probe.Period, evSample, 0, nil, 0, nil)
}

// publishProbe pushes the aggregated counters and run facts into the probe's
// registry (when one is attached) after all replications finished.
func publishProbe(p *Probe, res *Result, horizon float64) {
	reg := p.Registry
	if reg == nil {
		return
	}
	for _, name := range probeKindNames {
		// Counters for inactive features are absent from EventCounts (see
		// probeKindActive); publishing them as zeros would misstate what
		// the run could even observe.
		if n, ok := res.EventCounts[name]; ok {
			reg.Counter("sim_events_"+name+"_total",
				"simulator "+name+" events summed over replications").
				Add(n)
		}
	}
	reg.Gauge("sim_replications", "independent replications run").
		Set(float64(res.Replications))
	reg.Gauge("sim_horizon_seconds", "simulated seconds per replication").
		Set(horizon)
	var completed int64
	for _, n := range res.Completed {
		completed += n
	}
	reg.Gauge("sim_completed_requests", "post-warmup completions, all classes").
		Set(float64(completed))
	reg.Gauge("sim_power_watts", "measured cluster average power").
		Set(res.TotalPower.Mean)
	reg.Gauge("sim_weighted_delay_seconds", "completion-weighted mean end-to-end delay").
		Set(res.WeightedDelay.Mean)
	if res.Timeline != nil {
		reg.Gauge("sim_timeline_samples", "probe samples recorded on replication 0").
			Set(float64(res.Timeline.Len()))
	}
}
