package sim

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

// oneTier builds a single-tier cluster with the given parameters.
func oneTier(servers int, speed float64, disc queueing.Discipline, classes []cluster.Class, demands []queueing.Demand) *cluster.Cluster {
	pm, _ := power.NewPowerLaw(100, 10, 2)
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "t0", Servers: servers, Speed: speed,
			Discipline: disc, Power: pm, Demands: demands,
		}},
		Classes: classes,
	}
}

func run(t *testing.T, c *cluster.Cluster, o Options) *Result {
	t.Helper()
	r, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSimMM1MeanResponse(t *testing.T) {
	// M/M/1 with λ=0.7, μ=1 (work 1, speed 1): E[T] = 1/(1−0.7)/1 = 10/3.
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.7}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res := run(t, c, Options{Horizon: 60000, Replications: 5, Seed: 1})
	want := 1 / (1 - 0.7)
	if relErr(res.Delay[0].Mean, want) > 0.04 {
		t.Errorf("M/M/1 delay = %v, want %g", res.Delay[0], want)
	}
	// Utilization law.
	if relErr(res.Tiers[0].Utilization.Mean, 0.7) > 0.03 {
		t.Errorf("utilization = %v, want 0.7", res.Tiers[0].Utilization)
	}
}

func TestSimMD1Wait(t *testing.T) {
	// M/D/1: wait is half the M/M/1 wait. λ=0.8, service 1 ⇒ E[W]=2, E[T]=3.
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.8}},
		[]queueing.Demand{{Work: 1, CV2: 0}})
	res := run(t, c, Options{Horizon: 80000, Replications: 5, Seed: 2})
	if relErr(res.Delay[0].Mean, 3) > 0.05 {
		t.Errorf("M/D/1 response = %v, want 3", res.Delay[0])
	}
}

func TestSimMMcMatchesErlangC(t *testing.T) {
	// M/M/3, λ=2.4, μ=1.
	c := oneTier(3, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 2.4}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	q, _ := queueing.NewMMc(2.4, 1, 3)
	res := run(t, c, Options{Horizon: 50000, Replications: 5, Seed: 3})
	if relErr(res.Delay[0].Mean, q.MeanResponse()) > 0.05 {
		t.Errorf("M/M/3 response = %v, want %g", res.Delay[0], q.MeanResponse())
	}
}

func TestSimNonPreemptivePriorityMatchesCobham(t *testing.T) {
	// Two classes, λ=0.25 each, exp work 1, speed 1.
	classes := []cluster.Class{{Name: "hi", Lambda: 0.25}, {Name: "lo", Lambda: 0.25}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}}
	c := oneTier(1, 1, queueing.NonPreemptive, classes, demands)
	res := run(t, c, Options{Horizon: 60000, Replications: 5, Seed: 4})
	// Known values: W1 = 2/3, W2 = 4/3 ⇒ T1 = 5/3, T2 = 7/3.
	if relErr(res.Delay[0].Mean, 5.0/3) > 0.05 {
		t.Errorf("high class response = %v, want %g", res.Delay[0], 5.0/3)
	}
	if relErr(res.Delay[1].Mean, 7.0/3) > 0.05 {
		t.Errorf("low class response = %v, want %g", res.Delay[1], 7.0/3)
	}
	// Per-tier wait decomposition matches Cobham directly.
	if relErr(res.Tiers[0].WaitByClass[0].Mean, 2.0/3) > 0.06 {
		t.Errorf("tier wait hi = %v, want %g", res.Tiers[0].WaitByClass[0], 2.0/3)
	}
	if relErr(res.Tiers[0].WaitByClass[1].Mean, 4.0/3) > 0.06 {
		t.Errorf("tier wait lo = %v, want %g", res.Tiers[0].WaitByClass[1], 4.0/3)
	}
}

func TestSimPreemptiveResumeMatchesTheory(t *testing.T) {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.25}, {Name: "lo", Lambda: 0.25}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}}
	c := oneTier(1, 1, queueing.PreemptiveResume, classes, demands)
	res := run(t, c, Options{Horizon: 60000, Replications: 5, Seed: 5})
	// T1 = 4/3 (private M/M/1), T2 = 8/3.
	if relErr(res.Delay[0].Mean, 4.0/3) > 0.05 {
		t.Errorf("high class response = %v, want %g", res.Delay[0], 4.0/3)
	}
	if relErr(res.Delay[1].Mean, 8.0/3) > 0.06 {
		t.Errorf("low class response = %v, want %g", res.Delay[1], 8.0/3)
	}
}

func TestSimTandemNetworkMatchesAnalytic(t *testing.T) {
	// 3 identical FCFS M/M/1 tiers in tandem: Burke's theorem makes the
	// analytical product form exact. λ=0.6, μ=speed=2 per tier.
	pm, _ := power.NewPowerLaw(50, 5, 2)
	mk := func(name string) *cluster.Tier {
		return &cluster.Tier{Name: name, Servers: 1, Speed: 2,
			Discipline: queueing.FCFS, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}}}
	}
	c := &cluster.Cluster{
		Tiers:   []*cluster.Tier{mk("a"), mk("b"), mk("c")},
		Classes: []cluster.Class{{Name: "x", Lambda: 0.6}},
	}
	m, err := cluster.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, c, Options{Horizon: 40000, Replications: 5, Seed: 6})
	if relErr(res.Delay[0].Mean, m.Delay[0]) > 0.04 {
		t.Errorf("tandem delay sim %v vs analytic %g", res.Delay[0], m.Delay[0])
	}
	if relErr(res.TotalPower.Mean, m.TotalPower) > 0.03 {
		t.Errorf("power sim %v vs analytic %g", res.TotalPower, m.TotalPower)
	}
	if relErr(res.EnergyPerRequest[0].Mean, m.EnergyPerRequest[0]) > 0.04 {
		t.Errorf("energy/request sim %v vs analytic %g", res.EnergyPerRequest[0], m.EnergyPerRequest[0])
	}
}

func TestSimPowerAccounting(t *testing.T) {
	// Zero traffic: power must equal the idle floor exactly.
	c := oneTier(4, 2, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res := run(t, c, Options{Horizon: 1000, Replications: 2, Seed: 7})
	want := 4 * 100.0 // 4 servers × idle 100 W
	if relErr(res.TotalPower.Mean, want) > 1e-9 {
		t.Errorf("idle power = %v, want %g", res.TotalPower, want)
	}
	if res.Completed[0] != 0 {
		t.Error("completions with zero traffic")
	}
}

func TestSimQuantiles(t *testing.T) {
	// M/M/1 response is Exp(μ−λ): quantiles are −ln(1−p)/(μ−λ).
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res := run(t, c, Options{Horizon: 60000, Replications: 5, Seed: 8, Quantiles: []float64{0.5, 0.95}})
	rate := 0.5
	// The P² estimator converges slowly on the skewed tail: across seeds
	// the p95 lands within ~1–7% at this sample size, so the tolerance is
	// wider than for means.
	for _, p := range []float64{0.5, 0.95} {
		want := -math.Log(1-p) / rate
		got := res.DelayQuantile[0][p]
		if relErr(got, want) > 0.10 {
			t.Errorf("p%g quantile = %g, want %g", p*100, got, want)
		}
	}
}

func TestSimPrioritySeparation(t *testing.T) {
	// At high load, the priority gap must be large and ordered.
	classes := []cluster.Class{
		{Name: "gold", Lambda: 0.3},
		{Name: "silver", Lambda: 0.3},
		{Name: "bronze", Lambda: 0.3},
	}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}, {Work: 1, CV2: 1}}
	c := oneTier(1, 1, queueing.NonPreemptive, classes, demands)
	res := run(t, c, Options{Horizon: 50000, Replications: 3, Seed: 9})
	d := res.Delay
	if !(d[0].Mean < d[1].Mean && d[1].Mean < d[2].Mean) {
		t.Errorf("priority ordering violated: %g %g %g", d[0].Mean, d[1].Mean, d[2].Mean)
	}
}

func TestSimReproducible(t *testing.T) {
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	o := Options{Horizon: 2000, Replications: 2, Seed: 33}
	r1 := run(t, c, o)
	r2 := run(t, c, o)
	if r1.Delay[0].Mean != r2.Delay[0].Mean {
		t.Error("same seed produced different results")
	}
	o.Seed = 34
	r3 := run(t, c, o)
	if r1.Delay[0].Mean == r3.Delay[0].Mean {
		t.Error("different seeds produced identical results")
	}
}

func TestSimLittlesLaw(t *testing.T) {
	// Throughput in = throughput out at steady state: completions per unit
	// time ≈ λ (per class).
	classes := []cluster.Class{{Name: "a", Lambda: 0.4}, {Name: "b", Lambda: 0.3}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}}
	c := oneTier(2, 1, queueing.NonPreemptive, classes, demands)
	o := Options{Horizon: 50000, Replications: 3, Seed: 10}
	res := run(t, c, o)
	measureSpan := (o.Horizon - o.Horizon*0.1) * float64(res.Replications)
	for k, want := range []float64{0.4, 0.3} {
		got := float64(res.Completed[k]) / measureSpan
		if relErr(got, want) > 0.03 {
			t.Errorf("class %d throughput = %g, want %g", k, got, want)
		}
	}
}

func TestSimOptionsValidation(t *testing.T) {
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.1}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	if _, err := Run(c, Options{}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(c, Options{Horizon: 10, Warmup: 20}); err == nil {
		t.Error("warmup beyond horizon accepted")
	}
	bad := oneTier(0, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.1}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	if _, err := Run(bad, Options{Horizon: 10}); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestSimPartialRoute(t *testing.T) {
	pm, _ := power.NewPowerLaw(10, 1, 2)
	mk := func(name string) *cluster.Tier {
		return &cluster.Tier{Name: name, Servers: 1, Speed: 2,
			Discipline: queueing.NonPreemptive, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}}}
	}
	c := &cluster.Cluster{
		Tiers: []*cluster.Tier{mk("a"), mk("b")},
		Classes: []cluster.Class{
			{Name: "full", Lambda: 0.4},
			{Name: "short", Lambda: 0.4},
		},
		Routes: [][]int{{0, 1}, {0}},
	}
	res := run(t, c, Options{Horizon: 30000, Replications: 3, Seed: 12})
	if !(res.Delay[1].Mean < res.Delay[0].Mean) {
		t.Errorf("short route should be faster: %g vs %g", res.Delay[1].Mean, res.Delay[0].Mean)
	}
	m, _ := cluster.Evaluate(c)
	for k := range c.Classes {
		if relErr(res.Delay[k].Mean, m.Delay[k]) > 0.08 {
			t.Errorf("class %d sim %g vs analytic %g", k, res.Delay[k].Mean, m.Delay[k])
		}
	}
}

func TestSimHighVariabilityService(t *testing.T) {
	// Hyperexponential service (CV²=4): P-K says E[W] = λE[S²]/(2(1−ρ)).
	lam := 0.5
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: lam}},
		[]queueing.Demand{{Work: 1, CV2: 4}})
	d := queueing.DistForCV2(1, 4)
	wantW := lam * d.SecondMoment() / (2 * (1 - lam))
	res := run(t, c, Options{Horizon: 120000, Replications: 5, Seed: 13})
	if relErr(res.Delay[0].Mean, wantW+1) > 0.08 {
		t.Errorf("hyperexp response = %v, want %g", res.Delay[0], wantW+1)
	}
}

func TestSimCIsCoverAnalytic(t *testing.T) {
	// The 95% CI from replications should usually contain the exact value.
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.6}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res := run(t, c, Options{Horizon: 50000, Replications: 8, Seed: 20})
	want := 1 / (1 - 0.6)
	if !res.Delay[0].Contains(want) && res.Delay[0].RelErr(want) > 0.03 {
		t.Errorf("CI %v does not cover %g", res.Delay[0], want)
	}
}

func TestSimCustomConfidenceLevel(t *testing.T) {
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	r90, err := Run(c, Options{Horizon: 5000, Replications: 4, Seed: 71, Confidence: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	r99, err := Run(c, Options{Horizon: 5000, Replications: 4, Seed: 71, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Same replications, wider level → wider interval, identical mean.
	if r90.Delay[0].Mean != r99.Delay[0].Mean {
		t.Error("confidence level changed the point estimate")
	}
	if !(r99.Delay[0].HalfW > r90.Delay[0].HalfW) {
		t.Errorf("99%% CI (%g) not wider than 90%% (%g)", r99.Delay[0].HalfW, r90.Delay[0].HalfW)
	}
	if r90.Delay[0].Level != 0.90 || r99.Delay[0].Level != 0.99 {
		t.Error("levels not recorded")
	}
}
