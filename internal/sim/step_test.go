package sim

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/obs"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
)

// stepCluster is the golden-hash cluster shape (two classes, one station).
func stepCluster(servers int, disc queueing.Discipline) *cluster.Cluster {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	return oneTier(servers, 1, disc, classes, demands)
}

// TestStepEquivalenceGoldenBaseline pins the tentpole claim of the step
// refactor: a step-driven replication is the SAME engine, so draining it
// event by event must produce a bit-identical Result to the closed Run() on
// the E1-style baseline config — including the probe's event counters. It
// runs once per calendar, and the closed-run hash is computed once on the
// heap: every (calendar, drive-mode) pair must land on those same bits.
func TestStepEquivalenceGoldenBaseline(t *testing.T) {
	quantiles := []float64{0.9, 0.95}
	opts := Options{
		Horizon:      3000,
		Replications: 1,
		Seed:         42,
		Quantiles:    quantiles,
		Probe:        &Probe{Period: 10},
		Calendar:     CalendarHeap,
	}

	closed, err := Run(stepCluster(2, queueing.NonPreemptive), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := hashResult(closed, quantiles)

	// Drive the same replication three different ways; every stepping
	// granularity on either calendar must land on the same bits.
	drive := map[string]func(r *Replication){
		"event-by-event": func(r *Replication) {
			for r.HasPendingEvents() {
				if !r.ProcessNextEvent() {
					t.Fatal("ProcessNextEvent returned false with events pending")
				}
			}
		},
		"advance-in-chunks": func(r *Replication) {
			for tt := 100.0; tt <= opts.Horizon; tt += 100 {
				r.AdvanceTo(tt)
			}
			r.AdvanceTo(math.Inf(1))
		},
		"drain": func(r *Replication) { r.Run() },
	}
	for _, calKind := range []string{CalendarHeap, CalendarLadder} {
		stepped := opts
		stepped.Calendar = calKind
		for name, fn := range drive {
			rep, err := NewReplication(stepCluster(2, queueing.NonPreemptive), stepped, stepped.Seed)
			if err != nil {
				t.Fatal(err)
			}
			fn(rep)
			res, err := rep.Result()
			if err != nil {
				t.Fatal(err)
			}
			if got := hashResult(res, quantiles); got != want {
				t.Errorf("%s/%s: stepped Result hash differs from closed heap Run:\n got %s\nwant %s",
					calKind, name, got, want)
			}
		}
	}
}

// TestStepEquivalenceDegradedWithSensors repeats the equivalence check on an
// E21-style config — breakdowns, deadlines and shedding all on — with the
// flight recorder, window sensors and probe attached, the configuration an
// online controller would actually step. Both the Result hash and the
// sensors' final readings must match the closed run bit for bit. The closed
// reference runs on the heap; the stepped replication runs on each calendar
// in turn, so the failure+deadline+shedding+recorder+windows event stream is
// pinned identical across schedulers too.
func TestStepEquivalenceDegradedWithSensors(t *testing.T) {
	quantiles := []float64{0.9}
	mkOpts := func(calKind string) (Options, *trace.Recorder, *window.Set) {
		rec := trace.NewRecorder(1 << 15)
		win, err := window.NewSet(window.Config{Width: 200}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return Options{
			Horizon:      1500,
			Replications: 1,
			Seed:         11,
			Quantiles:    quantiles,
			Probe:        &Probe{Period: 10},
			Recorder:     rec,
			Windows:      win,
			Failures:     []*FailureConfig{{MTBF: 50, MTTR: 10}},
			Deadlines: []*DeadlineConfig{
				{Deadline: 8, MaxRetries: 2, RetryBackoff: 0.5},
				{Deadline: 12},
			},
			Shedding: &SheddingConfig{Threshold: 0.9, Period: 25},
			Calendar: calKind,
		}, rec, win
	}

	optsA, recA, winA := mkOpts(CalendarHeap)
	closed, err := Run(stepCluster(3, queueing.NonPreemptive), optsA)
	if err != nil {
		t.Fatal(err)
	}
	want := hashResult(closed, quantiles)

	for _, calKind := range []string{CalendarHeap, CalendarLadder} {
		optsB, recB, winB := mkOpts(calKind)
		rep, err := NewReplication(stepCluster(3, queueing.NonPreemptive), optsB, optsB.Seed)
		if err != nil {
			t.Fatal(err)
		}
		for rep.ProcessNextEvent() {
		}
		res, err := rep.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got := hashResult(res, quantiles); got != want {
			t.Errorf("%s: stepped Result hash differs from closed heap Run:\n got %s\nwant %s", calKind, got, want)
		}
		if a, b := len(recA.Spans()), len(recB.Spans()); a != b {
			t.Errorf("%s: recorder spans differ: closed %d, stepped %d", calKind, a, b)
		}
		ua, ub := winA.Utilization(optsA.Horizon, 0), winB.Utilization(optsB.Horizon, 0)
		//lint:waive floateq reason="bit-identical window readings are the point of the equivalence test" until=2027-08-01
		if ua != ub {
			t.Errorf("%s: window utilization differs: closed %v, stepped %v", calKind, ua, ub)
		}
	}
}

// TestClockNeverExceedsHorizon pins the peek-before-pop invariant: the old
// loop popped the first past-horizon event, advancing calendar.now beyond
// the horizon and dropping the event without recycling it. The stepper must
// leave that event in the heap and keep the clock at or below the horizon
// for the replication's entire life.
func TestClockNeverExceedsHorizon(t *testing.T) {
	opts := Options{Horizon: 500, Replications: 1, Seed: 3}
	rep, err := NewReplication(stepCluster(2, queueing.NonPreemptive), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for rep.HasPendingEvents() {
		rep.ProcessNextEvent()
		steps++
		if now := rep.Now(); now > opts.Horizon {
			t.Fatalf("step %d: clock %g exceeded the horizon %g", steps, now, opts.Horizon)
		}
	}
	if steps == 0 {
		t.Fatal("replication processed no events")
	}
	// Arrivals always chain a next candidate, so a drained replication must
	// still hold a future event — proof the loop peeked rather than popped.
	next, ok := rep.PeekNextEventTime()
	if !ok {
		t.Fatal("calendar empty at the horizon; expected a pending past-horizon event")
	}
	if next <= opts.Horizon {
		t.Fatalf("drained with an in-horizon event still pending at t=%g", next)
	}
	if rep.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent processed a past-horizon event")
	}
	if now := rep.Now(); now > opts.Horizon {
		t.Fatalf("final clock %g exceeds the horizon %g", now, opts.Horizon)
	}
}

// TestWarmupFinalizedWithoutPostWarmupEvents pins the degenerate-traffic
// bugfix: when no event lands in [warmup, horizon), the event-driven warmup
// reset never fires and the time-weighted busy/power statistics would keep
// the transient. summarize must finalize the reset from the clock, so the
// measured utilization excludes all pre-warmup service.
func TestWarmupFinalizedWithoutPostWarmupEvents(t *testing.T) {
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.02}},
		[]queueing.Demand{{Work: 1, CV2: 0}})
	opts := Options{Horizon: 300, Warmup: 150, Replications: 1}
	if err := opts.defaults(); err != nil {
		t.Fatal(err)
	}
	// Scan seeds for the degenerate shape: at least one arrival served
	// before the warmup boundary, then an inter-arrival gap so long the next
	// candidate lands past the horizon. RNG streams are deterministic, so
	// the seed found once is found forever.
	for seed := uint64(0); seed < 2000; seed++ {
		s, err := newSimulator(c, opts, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		s.run()
		if s.jobSeq == 0 || s.warmupDone {
			continue
		}
		// Precondition established: traffic before warmup, silence after.
		out := s.summarize()
		if !s.warmupDone {
			t.Error("summarize did not finalize the warmup reset")
		}
		if out.tierUtil[0] != 0 {
			t.Errorf("seed %d: post-warmup utilization %g includes the pre-warmup transient, want 0",
				seed, out.tierUtil[0])
		}
		if out.completed[0] != 0 {
			t.Errorf("seed %d: %d completions counted from the transient", seed, out.completed[0])
		}
		return
	}
	t.Fatal("no seed under 2000 produced a pre-warmup-only run; loosen the scenario")
}

// TestUpUtilization pins the sensor denominator helper: utilization is load
// against surviving capacity, NaN means fall back to the instantaneous busy
// count, and a station with no up servers is maximally overloaded.
func TestUpUtilization(t *testing.T) {
	st := &simStation{servers: 4}
	if got := st.upUtilization(1); got != 0.25 {
		t.Errorf("no failures: upUtilization(1) = %g, want 0.25", got)
	}
	st.failed = 3
	if got := st.upUtilization(1); got != 1 {
		t.Errorf("3 of 4 failed: upUtilization(1) = %g, want 1", got)
	}
	st.failed = 4
	if got := st.upUtilization(0); got != 1 {
		t.Errorf("all failed: upUtilization(0) = %g, want 1 (overloaded, not idle)", got)
	}
	st.failed = 2
	st.running = []*serviceRun{{}}
	if got := st.upUtilization(math.NaN()); got != 0.5 {
		t.Errorf("NaN mean: upUtilization = %g, want instantaneous 1/2", got)
	}
	if got := st.instUpUtilization(); got != 0.5 {
		t.Errorf("instUpUtilization = %g, want 0.5", got)
	}
}

// TestWindowUtilizationRisesDuringOutage is the breakdown regression the
// divisor bugfix exists for: a saturated station whose servers keep failing.
// The windowed utilization sensor — and the gauge bound to it — must read
// the surviving servers as saturated (rise toward 1), not fall toward the
// availability fraction the way the configured-capacity divisor did.
func TestWindowUtilizationRisesDuringOutage(t *testing.T) {
	c := oneTier(4, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 6}}, // offered 6 >> degraded capacity
		[]queueing.Demand{{Work: 1, CV2: 1}})
	win, err := window.NewSet(window.Config{Width: 200}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	win.Bind(reg)
	opts := Options{
		Horizon:      2000,
		Warmup:       ZeroWarmup,
		Replications: 1,
		Seed:         9,
		Probe:        &Probe{Period: 5},
		Windows:      win,
		// Availability 0.2: most of the run, most servers are down.
		Failures: []*FailureConfig{{MTBF: 40, MTTR: 160}},
	}
	rep, err := NewReplication(c, opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	// Early reading, before breakdowns accumulate: all servers up and busy.
	rep.AdvanceTo(200)
	early := win.Utilization(rep.Now(), 0)
	rep.Run()
	res, err := rep.Result()
	if err != nil {
		t.Fatal(err)
	}
	late := win.Utilization(opts.Horizon, 0)

	if math.IsNaN(early) || math.IsNaN(late) {
		t.Fatalf("window produced NaN readings (early %v, late %v)", early, late)
	}
	if late < 0.95 {
		t.Errorf("deep in the outage the up servers are saturated: window utilization %g, want >= 0.95", late)
	}
	if late < early-0.02 {
		t.Errorf("window utilization fell during the outage (early %g -> late %g); sensor is dividing by configured capacity", early, late)
	}
	if g := reg.Gauge("window_tier0_utilization", "").Value(); g < 0.95 {
		t.Errorf("bound gauge reads %g during the outage, want >= 0.95", g)
	}
	// Result.Tiers deliberately keeps the configured-capacity denominator:
	// with availability 0.2 it must sit far below the sensor reading.
	if tu := res.Tiers[0].Utilization.Mean; tu > late-0.3 {
		t.Errorf("Result.Tiers utilization %g should stay on configured capacity, well below the sensor's %g", tu, late)
	}
}

// recordingPolicy captures every Observation the controller is handed.
type recordingPolicy struct {
	utils *[]float64
	after float64
}

func (p recordingPolicy) Name() string { return "recording" }
func (p recordingPolicy) Decide(o Observation) float64 {
	if o.Time >= p.after {
		*p.utils = append(*p.utils, o.Utilization)
	}
	return o.Speed
}

// TestControllerObservesUpUtilization pins the second bugfix site: the DVFS
// controller's epoch observation. Under the same saturated outage, the
// controller must see the surviving servers as loaded (mean utilization near
// 1 once failures accumulate), not the availability-diluted fraction.
func TestControllerObservesUpUtilization(t *testing.T) {
	c := oneTier(4, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 6}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	var utils []float64
	opts := Options{
		Horizon:       2000,
		Warmup:        ZeroWarmup,
		Replications:  1,
		Seed:          9,
		Controller:    recordingPolicy{utils: &utils, after: 1000},
		ControlPeriod: 20,
		Failures:      []*FailureConfig{{MTBF: 40, MTTR: 160}},
	}
	if _, err := Run(c, opts); err != nil {
		t.Fatal(err)
	}
	if len(utils) == 0 {
		t.Fatal("controller observed no late epochs")
	}
	var sum float64
	for _, u := range utils {
		sum += u
	}
	mean := sum / float64(len(utils))
	// With availability 0.2 the configured-capacity divisor reads ~0.2 here;
	// against up servers the saturated survivors read ~1.
	if mean < 0.8 {
		t.Errorf("controller's mean late-epoch utilization %g, want >= 0.8 (up-server denominator)", mean)
	}
}
