package sim

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	evArrival   eventKind = iota // candidate external arrival of a class
	evDeparture                  // service completion at a station
	evControl                    // runtime DVFS controller epoch
	evSetupDone                  // a sleeping server finished warming up
	evSample                     // observability probe sampling tick
	evBreakdown                  // candidate server breakdown at a station (thinned)
	evRepair                     // a failed server finished its repair
	evTimeout                    // a class deadline expired for a specific attempt
	evRetry                      // a timed-out job re-enters after its backoff
	evShedEpoch                  // admission-control epoch: re-decide the shed level
)

// event is one scheduled occurrence. Events are ordered by time with the
// sequence number as a deterministic tie-breaker, making runs reproducible.
type event struct {
	time    float64
	seq     uint64
	kind    eventKind
	class   int
	job     *job
	station int
	run     *serviceRun // for departures: the service run completing
	// gen is a staleness stamp for timeout/retry events: the job's id at
	// scheduling time. Jobs are pooled, so by the time such an event fires
	// its *job may have been recycled; the handler compares gen against the
	// job's current id and ignores the event on mismatch.
	gen uint64
}

// eventLess is the calendar's one total order: ascending time with the
// sequence number as a deterministic tie-breaker. Every scheduler
// implementation pops in exactly this order, which is why the calendar
// choice cannot perturb results.
func eventLess(a, b *event) bool {
	//lint:waive floateq reason="deliberate exact compare: bitwise-equal times fall through to the seq tie-break" until=2027-08-01
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// scheduler is the priority-structure half of the calendar: a multiset of
// events popped in eventLess order. Two implementations exist — the binary
// min-heap below (O(log n), cache-friendly at small live sets) and the
// ladder queue in ladder.go (amortized O(1), wins at large live sets). Both
// pop the identical (time, seq) sequence for any push sequence, so the
// choice is purely a performance knob; the equivalence property/fuzz tests
// in calendar_equiv_test.go pin this.
type scheduler interface {
	// push inserts e; the caller has already assigned e.time and e.seq.
	push(e *event)
	// pop removes and returns the eventLess-minimum event, nil when empty.
	pop() *event
	// peekTime reports the minimum event's time without removing it; ok is
	// false when the scheduler is empty. Implementations may reorganize
	// internal state, so peekTime is not safe for concurrent use.
	peekTime() (float64, bool)
	// size reports how many events are scheduled.
	size() int
}

// eventHeap is a concrete binary min-heap of events ordered by eventLess.
// It deliberately does not implement container/heap: the stdlib interface
// boxes every Push/Pop operand through `any`, which heap-allocates one
// escape per scheduled event. With concrete methods the sift loops stay
// monomorphic and the calendar's steady state allocates nothing. Pop order
// is a pure function of the (time, seq) total order, so the heap's internal
// layout cannot affect determinism.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	return eventLess(h[i], h[j])
}

// up sifts the element at index i toward the root.
func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// down sifts the element at index i toward the leaves.
func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// push implements scheduler.
func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// pop implements scheduler.
func (h *eventHeap) pop() *event {
	s := *h
	if len(s) == 0 {
		return nil
	}
	e := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	*h = s[:n]
	if n > 0 {
		h.down(0)
	}
	return e
}

// peekTime implements scheduler.
func (h *eventHeap) peekTime() (float64, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0].time, true
}

// size implements scheduler.
func (h *eventHeap) size() int { return len(*h) }

// calendar wraps a scheduler with a monotone clock, sequence numbering, and
// an event free list. Popped events are recycled via recycle(), so once the
// scheduler and free list reach the replication's high-water mark the
// calendar stops allocating: the live event set, not the event count, bounds
// memory.
type calendar struct {
	sched scheduler
	seq   uint64
	now   float64
	free  []*event
}

// newCalendar builds a calendar on the default scheduler (the binary heap).
func newCalendar() *calendar { return newCalendarKind(CalendarHeap) }

// newCalendarKind builds a calendar on the named scheduler: CalendarLadder
// selects the ladder queue, anything else (including the zero value) the
// binary heap — callers that bypass Options.defaults still get a working
// calendar.
func newCalendarKind(kind string) *calendar {
	c := &calendar{}
	if kind == CalendarLadder {
		c.sched = newLadderQueue()
	} else {
		c.sched = new(eventHeap)
	}
	return c
}

// schedule enqueues a pooled event at absolute time t. The fields not used
// by the kind are zeroed.
func (c *calendar) schedule(t float64, kind eventKind, class int, j *job, station int, run *serviceRun) {
	e := c.alloc()
	e.kind, e.class, e.job, e.station, e.run, e.gen = kind, class, j, station, run, 0
	c.at(t, e)
}

// scheduleGen enqueues a pooled event carrying a generation stamp (see
// event.gen) — the scheduling entry point for timeout and retry events.
func (c *calendar) scheduleGen(t float64, kind eventKind, class int, j *job, station int, gen uint64) {
	e := c.alloc()
	e.kind, e.class, e.job, e.station, e.run, e.gen = kind, class, j, station, nil, gen
	c.at(t, e)
}

// alloc pops a recycled event or makes a fresh one.
func (c *calendar) alloc() *event {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free = c.free[:n-1]
		return e
	}
	return &event{}
}

// at schedules an event at absolute time t.
func (c *calendar) at(t float64, e *event) {
	e.time = t
	e.seq = c.seq
	c.seq++
	c.sched.push(e)
}

// peekTime reports the earliest scheduled event time without popping the
// event or advancing the clock; ok is false when the calendar is empty.
// Steppers use it to decide whether the next event is inside the horizon
// BEFORE committing the clock to it — popping first would advance now past
// the horizon and strand the event outside the free list.
func (c *calendar) peekTime() (float64, bool) {
	return c.sched.peekTime()
}

// next pops the earliest event and advances the clock; nil when empty.
func (c *calendar) next() *event {
	e := c.sched.pop()
	if e == nil {
		return nil
	}
	c.now = e.time
	return e
}

// recycle returns a popped event to the free list. The caller must not
// retain the event: its fields are overwritten on the next schedule.
func (c *calendar) recycle(e *event) {
	e.job, e.run = nil, nil
	c.free = append(c.free, e)
}

// empty reports whether any events remain.
func (c *calendar) empty() bool { return c.sched.size() == 0 }
