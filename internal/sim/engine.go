package sim

import "container/heap"

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	evArrival   eventKind = iota // candidate external arrival of a class
	evDeparture                  // service completion at a station
	evControl                    // runtime DVFS controller epoch
	evSetupDone                  // a sleeping server finished warming up
	evSample                     // observability probe sampling tick
)

// event is one scheduled occurrence. Events are ordered by time with the
// sequence number as a deterministic tie-breaker, making runs reproducible.
type event struct {
	time    float64
	seq     uint64
	kind    eventKind
	class   int
	job     *job
	station int
	run     *serviceRun // for departures: the service run completing
}

// eventHeap is a binary min-heap of events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:floateq deliberate exact compare: bitwise-equal times fall through to the seq tie-break
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// calendar wraps the heap with a monotone clock and sequence numbering.
type calendar struct {
	h   eventHeap
	seq uint64
	now float64
}

func newCalendar() *calendar {
	c := &calendar{}
	heap.Init(&c.h)
	return c
}

// at schedules an event at absolute time t.
func (c *calendar) at(t float64, e *event) {
	e.time = t
	e.seq = c.seq
	c.seq++
	heap.Push(&c.h, e)
}

// next pops the earliest event and advances the clock; nil when empty.
func (c *calendar) next() *event {
	if len(c.h) == 0 {
		return nil
	}
	e := heap.Pop(&c.h).(*event)
	c.now = e.time
	return e
}

// empty reports whether any events remain.
func (c *calendar) empty() bool { return len(c.h) == 0 }
