package sim

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// parseRow pulls the typed columns out of one trace row.
type traceRow struct {
	time    float64
	event   string
	class   int
	job     uint64
	station int
	value   float64
}

func parseRows(t *testing.T, buf *bytes.Buffer) []traceRow {
	t.Helper()
	nFields := len(strings.Split(TraceHeader, ","))
	var rows []traceRow
	for i, fields := range traceLines(t, buf) {
		if len(fields) != nFields {
			t.Fatalf("row %d has %d fields, want %d: %v", i, len(fields), nFields, fields)
		}
		tm, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("row %d bad time %q: %v", i, fields[0], err)
		}
		class, err := strconv.Atoi(fields[2])
		if err != nil {
			t.Fatalf("row %d bad class %q", i, fields[2])
		}
		job, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			t.Fatalf("row %d bad job %q", i, fields[3])
		}
		station, err := strconv.Atoi(fields[4])
		if err != nil {
			t.Fatalf("row %d bad station %q", i, fields[4])
		}
		val, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			t.Fatalf("row %d bad value %q", i, fields[5])
		}
		rows = append(rows, traceRow{tm, fields[1], class, job, station, val})
	}
	// Times must be monotone non-decreasing throughout.
	for i := 1; i < len(rows); i++ {
		if rows[i].time < rows[i-1].time {
			t.Fatalf("trace time went backwards at row %d: %g < %g",
				i, rows[i].time, rows[i-1].time)
		}
	}
	return rows
}

// Sleep path: every warm-up must open with setup_begin before its setup_done,
// the pending-setup count may never go negative, and service starts only
// happen while no spare warmed server sits unused (instant-off has no idle
// awake servers).
func TestTraceSleepInterleaving(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(2, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.8}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	o := Options{
		Horizon: 2000, Replications: 1, Seed: 5, Trace: &buf,
		Sleep: []*SleepConfig{{Setup: queueing.NewExponential(0.5), SleepPower: 5}},
	}
	if _, err := Run(c, o); err != nil {
		t.Fatal(err)
	}
	rows := parseRows(t, &buf)

	begins, dones := 0, 0
	for _, r := range rows {
		switch r.event {
		case TraceSetupBegin:
			begins++
		case TraceSetupDone:
			dones++
		}
		if dones > begins {
			t.Fatalf("setup_done before setup_begin at t=%g (begin %d, done %d)",
				r.time, begins, dones)
		}
	}
	if begins == 0 {
		t.Fatal("sleep-enabled run produced no setup_begin events")
	}
	if dones > begins {
		t.Fatalf("%d setup_done for %d setup_begin", dones, begins)
	}
	// Setup events are tier-level: no job id, station recorded.
	for _, r := range rows {
		if r.event == TraceSetupBegin || r.event == TraceSetupDone {
			if r.job != 0 || r.station != 0 || r.class != -1 {
				t.Fatalf("malformed setup row: %+v", r)
			}
		}
	}
}

// Preemption path: a preempted job must have started service before the
// preempt, must start again afterwards (resume), and must end its visit only
// after its last start. The preemptor (lower class index) starts service at
// the preempt instant.
func TestTracePreemptInterleaving(t *testing.T) {
	var buf bytes.Buffer
	c := oneTier(1, 1, queueing.PreemptiveResume,
		[]cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}})
	o := Options{Horizon: 4000, Replications: 1, Seed: 3, Trace: &buf}
	if _, err := Run(c, o); err != nil {
		t.Fatal(err)
	}
	rows := parseRows(t, &buf)

	starts := map[uint64]int{}    // job -> service_start count so far
	preempted := map[uint64]int{} // job -> preempt count so far
	preempts := 0
	for i, r := range rows {
		switch r.event {
		case TraceStart:
			starts[r.job]++
		case TracePreempt:
			preempts++
			if r.class != 1 {
				t.Fatalf("row %d: preempted class %d, only the low class can be preempted", i, r.class)
			}
			if starts[r.job] <= preempted[r.job] {
				t.Fatalf("row %d: job %d preempted without a fresh service_start", i, r.job)
			}
			preempted[r.job]++
			// The same instant must hand the server to a class-0 job.
			j := i + 1
			for j < len(rows) && rows[j].time == r.time {
				if rows[j].event == TraceStart && rows[j].class == 0 {
					break
				}
				j++
			}
			if j >= len(rows) || rows[j].time != r.time {
				t.Fatalf("row %d: preempt at t=%g not followed by a class-0 start at the same instant", i, r.time)
			}
		case TraceVisitEnd:
			// A visit can only end while the job holds the server: its
			// starts must outnumber its preempts.
			if starts[r.job] <= preempted[r.job] {
				t.Fatalf("row %d: job %d visit_end while preempted", i, r.job)
			}
		}
	}
	if preempts == 0 {
		t.Fatal("preemptive run produced no preempt events")
	}
	// Every preempted job must eventually resume: total starts exceed the
	// preempt count for that job.
	for job, p := range preempted {
		if starts[job] < p+1 {
			t.Fatalf("job %d: %d starts for %d preempts (never resumed)", job, starts[job], p)
		}
	}
}

// failingWriter errors after a fixed number of bytes, truncating the trace.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// The satellite bugfix: a trace writer that starts failing mid-run must turn
// into a sim.Run error instead of a silently truncated trace.
func TestTraceWriteErrorPropagates(t *testing.T) {
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	sentinel := errors.New("disk full")
	w := &failingWriter{n: 256, err: sentinel}
	_, err := Run(c, Options{Horizon: 1000, Replications: 1, Seed: 1, Trace: w})
	if err == nil {
		t.Fatal("trace write failure must fail the run")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the writer's error", err)
	}
}
