package sim

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden fixtures from the current output")

// failureCluster is a two-class preemptive tier that, with breakdowns and
// tight deadlines layered on, exercises every recorder hook: preemption (by
// priority and by breakdown), timeout, backoff, resume, abandon, exit.
func failureCluster() *cluster.Cluster {
	return oneTier(2, 1, queueing.PreemptiveResume,
		[]cluster.Class{{Name: "hi", Lambda: 0.4}, {Name: "lo", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}})
}

func failureOptions(rec *trace.Recorder) Options {
	return Options{
		Horizon:      1500,
		Warmup:       ZeroWarmup,
		Replications: 1,
		Seed:         11,
		Recorder:     rec,
		Probe:        &Probe{Period: 10},
		Failures:     []*FailureConfig{{MTBF: 40, MTTR: 4}},
		Deadlines: []*DeadlineConfig{
			nil,
			{Deadline: 12, MaxRetries: 2, RetryBackoff: 2},
		},
	}
}

// TestSpanAccountingProperty is the span-accounting property test: across a
// failure-enabled run every closed span's queue+service+preempted+backoff
// components are non-negative, sum exactly (bit-for-bit) to Sojourn(), and
// agree with the wall-clock End-Arrival up to float accumulation dust; the
// recorder's outcome counts must match the simulator's own event counters.
func TestSpanAccountingProperty(t *testing.T) {
	rec := trace.NewRecorder(1 << 17) // big enough that nothing is dropped
	res := run(t, failureCluster(), failureOptions(rec))

	spans := rec.Spans()
	if len(spans) < 500 {
		t.Fatalf("only %d spans closed; the scenario is too quiet", len(spans))
	}
	if rec.SpansDropped() != 0 || rec.EventsDropped() != 0 {
		t.Fatalf("ring overflow (events %d, spans %d): grow the capacity",
			rec.EventsDropped(), rec.SpansDropped())
	}
	if rec.Unmatched() != 0 {
		t.Fatalf("recorder saw %d events for unknown jobs: hook mismatch", rec.Unmatched())
	}

	var sawPreempted, sawBackoff bool
	for _, sp := range spans {
		if sp.Queue < 0 || sp.Service < 0 || sp.Preempted < 0 || sp.Backoff < 0 {
			t.Fatalf("negative component in span %+v", sp)
		}
		// The decomposition is exact BY CONSTRUCTION (Sojourn is defined as
		// this fixed-order sum); a tolerance would hide real drift. floateq
		// exempts _test.go files, so no waiver is needed.
		if sp.Sojourn() != sp.Queue+sp.Service+sp.Preempted+sp.Backoff {
			t.Fatalf("span components do not sum to sojourn: %+v", sp)
		}
		wall := sp.End - sp.Arrival
		if math.Abs(sp.Sojourn()-wall) > 1e-6*math.Max(1, wall) {
			t.Fatalf("sojourn %g disagrees with wall clock %g for span %+v",
				sp.Sojourn(), wall, sp)
		}
		if sp.Outcome == trace.OutcomeCompleted && sp.Service == 0 {
			t.Fatalf("completed span with zero service time: %+v", sp)
		}
		sawPreempted = sawPreempted || sp.Preempted > 0
		sawBackoff = sawBackoff || sp.Backoff > 0
	}
	if !sawPreempted || !sawBackoff {
		t.Errorf("scenario never exercised preempted=%v / backoff=%v components",
			sawPreempted, sawBackoff)
	}

	// The recorder's view must agree with the independent event counters.
	var completed, abandoned int64
	for _, b := range rec.Breakdowns() {
		completed += b.Completed
		abandoned += b.Abandoned
	}
	if got := res.EventCounts[TraceExit]; completed != got {
		t.Errorf("recorder completed %d vs simulator exits %d", completed, got)
	}
	if got := res.EventCounts[TraceAbandon]; abandoned != got {
		t.Errorf("recorder abandoned %d vs simulator abandons %d", abandoned, got)
	}
}

// TestRecorderDoesNotPerturbResults pins the observer-effect contract: a
// run with the flight recorder attached produces bit-identical Results to
// the same run without it (the recorder consumes no RNG and touches no
// simulator state).
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	quantiles := []float64{0.9}
	opts := failureOptions(nil)
	opts.Quantiles = quantiles

	plain := run(t, failureCluster(), opts)

	opts.Recorder = trace.NewRecorder(0)
	w, err := window.NewSet(window.Config{Width: 100}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts.Windows = w
	observed := run(t, failureCluster(), opts)

	if a, b := hashResult(plain, quantiles), hashResult(observed, quantiles); a != b {
		t.Errorf("recorder perturbed the Result: %s vs %s", a, b)
	}
}

// TestRecorderRequiresSingleReplication mirrors the Trace contract.
func TestRecorderRequiresSingleReplication(t *testing.T) {
	_, err := Run(regressionCluster(), Options{
		Horizon: 100, Replications: 2, Recorder: trace.NewRecorder(0),
	})
	if err == nil {
		t.Fatal("recorder with 2 replications accepted")
	}
}

// TestWindowDimensionsValidated rejects a Set sized for the wrong cluster.
func TestWindowDimensionsValidated(t *testing.T) {
	w, err := window.NewSet(window.Config{Width: 50}, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(regressionCluster(), Options{Horizon: 100, Windows: w}); err == nil {
		t.Fatal("mis-sized window set accepted")
	}
}

// TestWindowSensorsTrackModel: on a steady M/M/1 the windowed estimators
// must track the true arrival rate, the analytical mean response, and the
// sampled utilization.
func TestWindowSensorsTrackModel(t *testing.T) {
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.6}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	w, err := window.NewSet(window.Config{Width: 1000, Buckets: 20}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 8000.0
	run(t, c, Options{
		Horizon: horizon, Replications: 1, Seed: 5,
		Windows: w, Probe: &Probe{Period: 5},
	})

	cs := w.Class(horizon, 0)
	if relErr(cs.Rate, 0.6) > 0.15 {
		t.Errorf("window λ̂ = %g, true λ = 0.6", cs.Rate)
	}
	// M/M/1: E[T] = 1/(μ−λ) = 2.5.
	if relErr(cs.MeanSojourn, 2.5) > 0.25 {
		t.Errorf("window mean sojourn = %g, model 2.5", cs.MeanSojourn)
	}
	if cs.TailSojourn <= cs.MeanSojourn {
		t.Errorf("p99 %g not above the mean %g", cs.TailSojourn, cs.MeanSojourn)
	}
	if got := w.Utilization(horizon, 0); math.Abs(got-0.6) > 0.1 {
		t.Errorf("window utilization = %g, model 0.6", got)
	}
}

// TestChromeTraceGolden pins the Chrome trace-event export bit-for-bit on a
// small deterministic run. Regenerate with -update-golden after deliberate
// format changes.
func TestChromeTraceGolden(t *testing.T) {
	rec := trace.NewRecorder(0)
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	c := oneTier(1, 1, queueing.PreemptiveResume, classes, demands)
	run(t, c, Options{
		Horizon: 30, Warmup: ZeroWarmup, Replications: 1, Seed: 3, Recorder: rec,
	})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestChromeTraceGolden -update-golden ./internal/sim` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from the golden fixture (len %d vs %d); "+
			"regenerate with -update-golden ONLY for deliberate format changes",
			buf.Len(), len(want))
	}
}
