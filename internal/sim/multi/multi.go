// Package multi orchestrates several simulator replicas under one shared
// clock: each replica is an independent stepped replication
// (sim.Replication) of its own cluster — its own configuration, server
// generation, DVFS class, failure regime and seed — and the orchestrator
// always advances the replica holding the globally earliest pending event.
// Events therefore interleave in global event-time order, exactly the
// decomposition a fleet-level controller or cross-cluster dispatcher needs:
// between any two steps, every replica's sensors are coherent as of the
// shared clock.
//
// Determinism: each replica's seed fully determines its event sequence, and
// ties between replicas break to the lowest index, so a fleet run is a pure
// function of its []Replica slice — same seeds, same hashes, regardless of
// GOMAXPROCS (the orchestrator is single-goroutine by construction).
package multi

import (
	"fmt"
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/sim"
)

// Replica describes one cluster instance in the fleet.
type Replica struct {
	// Name labels the replica in results and errors (defaults to its index).
	Name string
	// Cluster is the replica's own configuration — fleets are heterogeneous,
	// so every replica may model a different tier layout, server generation
	// or DVFS class.
	Cluster *cluster.Cluster
	// Options configures the replica's single replication. Horizons may
	// differ per replica; a replica past its horizon simply stops
	// contributing events while the rest of the fleet runs on.
	Options sim.Options
	// Seed fixes the replica's RNG streams. Replicas with equal seeds and
	// equal configurations produce bit-identical results; give every replica
	// its own seed for independent sample paths.
	Seed uint64
}

// Orchestrator interleaves N stepped replications under one shared clock.
// Construct with New; methods must be called from one goroutine.
type Orchestrator struct {
	names   []string
	reps    []*sim.Replication
	results []*sim.Result
	err     error
}

// New validates every replica (the same validation chain sim.Run applies)
// and builds the fleet. At least one replica is required.
func New(replicas []Replica) (*Orchestrator, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("multi: a fleet needs at least one replica")
	}
	o := &Orchestrator{
		names: make([]string, len(replicas)),
		reps:  make([]*sim.Replication, len(replicas)),
	}
	for i, r := range replicas {
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("replica%d", i)
		}
		rep, err := sim.NewReplication(r.Cluster, r.Options, r.Seed)
		if err != nil {
			return nil, fmt.Errorf("multi: replica %d (%s): %w", i, name, err)
		}
		o.names[i] = name
		o.reps[i] = rep
	}
	return o, nil
}

// Len returns the fleet size.
func (o *Orchestrator) Len() int { return len(o.reps) }

// Name returns replica i's label.
func (o *Orchestrator) Name(i int) string { return o.names[i] }

// Replication exposes replica i's stepped replication, for reading its
// sensors (Windows), clock, or horizon between steps. Stepping it directly
// is allowed but bypasses the shared-clock ordering; prefer the
// orchestrator's own step methods.
func (o *Orchestrator) Replication(i int) *sim.Replication { return o.reps[i] }

// Next reports which replica holds the globally earliest pending event and
// at what time; ok is false when every replica is drained to its horizon.
// Ties break to the lowest replica index, which keeps the interleaving — and
// therefore the whole fleet run — deterministic.
func (o *Orchestrator) Next() (idx int, t float64, ok bool) {
	idx = -1
	for i, rep := range o.reps {
		if !rep.HasPendingEvents() {
			continue
		}
		et, _ := rep.PeekNextEventTime()
		if idx < 0 || et < t {
			idx, t = i, et
		}
	}
	if idx < 0 {
		return 0, 0, false
	}
	return idx, t, true
}

// HasPendingEvents reports whether any replica still has an event at or
// before its horizon.
func (o *Orchestrator) HasPendingEvents() bool {
	for _, rep := range o.reps {
		if rep.HasPendingEvents() {
			return true
		}
	}
	return false
}

// ProcessNextEvent advances the replica with the globally earliest pending
// event by exactly one event, returning its index and the shared clock after
// the step; ok is false when the fleet is drained.
func (o *Orchestrator) ProcessNextEvent() (idx int, t float64, ok bool) {
	idx, t, ok = o.Next()
	if !ok {
		return 0, 0, false
	}
	o.reps[idx].ProcessNextEvent()
	return idx, t, true
}

// AdvanceTo processes, in global event-time order, every fleet event
// scheduled at or before t (each replica's own horizon still caps it), and
// returns how many events it processed.
func (o *Orchestrator) AdvanceTo(t float64) int {
	n := 0
	for {
		_, et, ok := o.Next()
		if !ok || et > t {
			return n
		}
		if _, _, ok := o.ProcessNextEvent(); !ok {
			return n
		}
		n++
	}
}

// Run drains the whole fleet to its horizons.
func (o *Orchestrator) Run() {
	for o.HasPendingEvents() {
		o.AdvanceTo(math.Inf(1))
	}
}

// Now is the shared clock: the latest event time any replica has committed
// to (0 before the first step). Individual replicas may lag when their
// calendars go quiet; read Replication(i).Now() for a replica-local clock.
func (o *Orchestrator) Now() float64 {
	now := 0.0
	for _, rep := range o.reps {
		if t := rep.Now(); t > now {
			now = t
		}
	}
	return now
}

// Results finalizes every replica (draining any that still has pending
// events) and returns the per-replica results in fleet order. Like
// sim.Replication.Result, finalization seals the replicas; Results is
// memoized and may be called repeatedly.
func (o *Orchestrator) Results() ([]*sim.Result, error) {
	if o.results != nil || o.err != nil {
		return o.results, o.err
	}
	o.Run()
	results := make([]*sim.Result, len(o.reps))
	for i, rep := range o.reps {
		res, err := rep.Result()
		if err != nil {
			o.err = fmt.Errorf("multi: replica %d (%s): %w", i, o.names[i], err)
			return nil, o.err
		}
		results[i] = res
	}
	o.results = results
	return results, nil
}

// Summary is the fleet-level rollup of per-replica results.
type Summary struct {
	// TotalPower sums the replica mean powers (W).
	TotalPower float64
	// Completed sums post-warmup completions across replicas and classes.
	Completed int64
	// WeightedDelay is the completion-weighted mean end-to-end delay across
	// the whole fleet (NaN when nothing completed).
	WeightedDelay float64
}

// Summarize rolls per-replica results up to fleet totals.
func Summarize(results []*sim.Result) Summary {
	s := Summary{WeightedDelay: math.NaN()}
	var wNum, wDen float64
	for _, res := range results {
		if res == nil {
			continue
		}
		s.TotalPower += res.TotalPower.Mean
		var n int64
		for _, c := range res.Completed {
			n += c
		}
		s.Completed += n
		if n > 0 && !math.IsNaN(res.WeightedDelay.Mean) {
			wNum += float64(n) * res.WeightedDelay.Mean
			wDen += float64(n)
		}
	}
	if wDen > 0 {
		s.WeightedDelay = wNum / wDen
	}
	return s
}
