package multi_test

import (
	"crypto/sha256"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
	"clusterq/internal/sim"
	"clusterq/internal/sim/multi"
	"clusterq/internal/stats"
)

// fleetTier builds a one-tier cluster for a given "server generation":
// server count, speed and queueing discipline vary per replica.
func fleetTier(servers int, speed float64, disc queueing.Discipline) *cluster.Cluster {
	pm, _ := power.NewPowerLaw(100, 10, 2)
	return &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "t0", Servers: servers, Speed: speed,
			Discipline: disc,
			Power:      pm,
			Demands:    []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}},
		}},
		Classes: []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}},
	}
}

// heterogeneousFleet is the ≥3-replica mixed fleet the acceptance criteria
// name: one plain current-generation cluster, one older generation running
// the full failure/deadline/shedding pipeline, and one fast small cluster
// under a runtime DVFS controller — three different configurations, seeds
// and even horizons under one shared clock.
func heterogeneousFleet() []multi.Replica {
	return []multi.Replica{
		{
			Name:    "gen2-plain",
			Cluster: fleetTier(2, 1, queueing.NonPreemptive),
			Options: sim.Options{Horizon: 1500, Quantiles: []float64{0.9}},
			Seed:    101,
		},
		{
			Name:    "gen1-degraded",
			Cluster: fleetTier(3, 0.8, queueing.NonPreemptive),
			Options: sim.Options{
				Horizon:  1200,
				Failures: []*sim.FailureConfig{{MTBF: 60, MTTR: 12}},
				Deadlines: []*sim.DeadlineConfig{
					{Deadline: 10, MaxRetries: 1, RetryBackoff: 0.5},
					{Deadline: 15},
				},
				Shedding: &sim.SheddingConfig{Threshold: 0.9, Period: 25},
			},
			Seed: 202,
		},
		{
			Name:    "gen3-dvfs",
			Cluster: fleetTier(2, 1.6, queueing.PreemptiveResume),
			Options: sim.Options{
				Horizon:       1500,
				Controller:    sim.UtilizationPolicy{Target: 0.6},
				ControlPeriod: 25,
			},
			Seed: 303,
		},
	}
}

// hashResult digests a Result's numeric fields bit-exactly, mirroring the
// sim package's internal golden hasher ('x' float format + sha256).
func hashResult(res *sim.Result) string {
	var sb strings.Builder
	put := func(vals ...float64) {
		for _, v := range vals {
			sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
			sb.WriteByte(',')
		}
	}
	for k := range res.Delay {
		put(res.Delay[k].Mean, res.Delay[k].HalfW)
		put(res.EnergyPerRequest[k].Mean, res.EnergyPerRequest[k].HalfW)
		put(res.Goodput[k].Mean)
		fmt.Fprintf(&sb, "c%d,t%d,r%d,a%d,s%d,",
			res.Completed[k], res.Timeouts[k], res.Retries[k], res.Abandoned[k], res.Shed[k])
		ps := make([]float64, 0, len(res.DelayQuantile[k]))
		for p := range res.DelayQuantile[k] {
			//lint:waive simdeterm reason="keys are sorted immediately below, so map order cannot leak" until=2027-08-01
			ps = append(ps, p)
		}
		sort.Float64s(ps)
		for _, p := range ps {
			put(p, res.DelayQuantile[k][p])
		}
	}
	put(res.WeightedDelay.Mean, res.WeightedDelay.HalfW)
	put(res.TotalPower.Mean, res.TotalPower.HalfW)
	for _, tr := range res.Tiers {
		sb.WriteString(tr.Name)
		put(tr.Utilization.Mean, tr.Utilization.HalfW)
		put(tr.Power.Mean, tr.Power.HalfW)
		for _, w := range tr.WaitByClass {
			put(w.Mean, w.HalfW)
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

func fleetHashes(t *testing.T) []string {
	t.Helper()
	orch, err := multi.New(heterogeneousFleet())
	if err != nil {
		t.Fatal(err)
	}
	results, err := orch.Results()
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]string, len(results))
	for i, res := range results {
		hashes[i] = hashResult(res)
	}
	return hashes
}

// TestFleetDeterminism pins the acceptance criterion: a shared-clock run of
// three heterogeneous replicas is a pure function of its seeds — two
// identical fleets produce bit-identical per-replica hashes.
func TestFleetDeterminism(t *testing.T) {
	a := fleetHashes(t)
	b := fleetHashes(t)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("replica %d hash differs across identical fleet runs:\n got %s\nwant %s", i, b[i], a[i])
		}
	}
}

// TestFleetIdenticalAcrossGOMAXPROCS re-runs the fleet under different
// parallelism settings; the orchestrator is single-goroutine by
// construction, so scheduling must not be able to leak into the results.
func TestFleetIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	base := fleetHashes(t)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		got := fleetHashes(t)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("GOMAXPROCS=%d: replica %d hash drifted:\n got %s\nwant %s", procs, i, got[i], base[i])
			}
		}
	}
}

// TestFleetMixedCalendars pins the orchestrator over heterogeneous event
// calendars: per-replica sim.Options carry their own Calendar, so one fleet
// can mix heap and ladder replicas — and because both schedulers pop the
// identical (time, seq) order, the per-replica hashes must be bit-identical
// to the all-default (heap) fleet's, on every mixture.
func TestFleetMixedCalendars(t *testing.T) {
	base := fleetHashes(t)
	mixtures := [][]string{
		{sim.CalendarLadder, sim.CalendarLadder, sim.CalendarLadder},
		{sim.CalendarLadder, sim.CalendarHeap, sim.CalendarLadder},
		{sim.CalendarHeap, sim.CalendarLadder, sim.CalendarHeap},
	}
	for _, mix := range mixtures {
		replicas := heterogeneousFleet()
		for i := range replicas {
			replicas[i].Options.Calendar = mix[i]
		}
		orch, err := multi.New(replicas)
		if err != nil {
			t.Fatal(err)
		}
		results, err := orch.Results()
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if got := hashResult(res); got != base[i] {
				t.Errorf("mixture %v: replica %d hash differs from the all-heap fleet:\n got %s\nwant %s",
					mix, i, got, base[i])
			}
		}
	}
}

// TestFleetMatchesStandaloneRun pins non-interference: interleaving replicas
// under the shared clock must not perturb any of them — each replica's
// Result is bit-identical to running the same cluster, options and seed as a
// standalone single-replication sim.Run.
func TestFleetMatchesStandaloneRun(t *testing.T) {
	replicas := heterogeneousFleet()
	got := fleetHashes(t)
	for i, r := range replicas {
		o := r.Options
		o.Replications = 1
		o.Seed = r.Seed
		res, err := sim.Run(r.Cluster, o)
		if err != nil {
			t.Fatal(err)
		}
		if want := hashResult(res); got[i] != want {
			t.Errorf("replica %d (%s): fleet hash differs from standalone Run:\n got %s\nwant %s",
				i, r.Name, got[i], want)
		}
	}
}

// TestSharedClockOrdering pins the orchestrator's scheduling contract: the
// fleet's event times are processed in non-decreasing global order, and the
// shared clock never exceeds the largest replica horizon.
func TestSharedClockOrdering(t *testing.T) {
	orch, err := multi.New(heterogeneousFleet())
	if err != nil {
		t.Fatal(err)
	}
	maxHorizon := 0.0
	for i := 0; i < orch.Len(); i++ {
		if h := orch.Replication(i).Horizon(); h > maxHorizon {
			maxHorizon = h
		}
	}
	last := 0.0
	steps := 0
	seen := make(map[int]int)
	for {
		idx, et, ok := orch.ProcessNextEvent()
		if !ok {
			break
		}
		if et < last {
			t.Fatalf("step %d: event time went backwards (%g after %g) on replica %d", steps, et, last, idx)
		}
		last = et
		seen[idx]++
		steps++
	}
	if steps == 0 {
		t.Fatal("fleet processed no events")
	}
	for i := 0; i < orch.Len(); i++ {
		if seen[i] == 0 {
			t.Errorf("replica %d (%s) never advanced", i, orch.Name(i))
		}
	}
	if now := orch.Now(); now > maxHorizon {
		t.Errorf("shared clock %g exceeds the largest horizon %g", now, maxHorizon)
	}
	if orch.HasPendingEvents() {
		t.Error("drained fleet still reports pending events")
	}
}

// TestAdvanceToInterleavesReplicas drives the fleet in shared-clock slices
// and checks the slices partition the run: the slice-driven fleet finishes
// with the same per-replica hashes as the drained one.
func TestAdvanceToInterleavesReplicas(t *testing.T) {
	want := fleetHashes(t)

	orch, err := multi.New(heterogeneousFleet())
	if err != nil {
		t.Fatal(err)
	}
	for tt := 50.0; tt <= 1500; tt += 50 {
		orch.AdvanceTo(tt)
		if now := orch.Now(); now > tt {
			t.Fatalf("AdvanceTo(%g) let the shared clock reach %g", tt, now)
		}
	}
	results, err := orch.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := hashResult(res); got != want[i] {
			t.Errorf("replica %d: sliced advance drifted from drained run:\n got %s\nwant %s", i, got, want[i])
		}
	}
}

// TestSummarize checks the fleet rollup math on hand-built results.
func TestSummarize(t *testing.T) {
	mk := func(power, delay float64, completed int64) *sim.Result {
		return &sim.Result{
			TotalPower:    stats.Estimate{Mean: power},
			WeightedDelay: stats.Estimate{Mean: delay},
			Completed:     []int64{completed},
		}
	}
	s := multi.Summarize([]*sim.Result{mk(100, 2, 30), mk(50, 4, 10), nil})
	if s.TotalPower != 150 {
		t.Errorf("TotalPower = %g, want 150", s.TotalPower)
	}
	if s.Completed != 40 {
		t.Errorf("Completed = %d, want 40", s.Completed)
	}
	if want := (30.0*2 + 10.0*4) / 40.0; math.Abs(s.WeightedDelay-want) > 1e-12 {
		t.Errorf("WeightedDelay = %g, want %g", s.WeightedDelay, want)
	}
	if empty := multi.Summarize(nil); !math.IsNaN(empty.WeightedDelay) {
		t.Errorf("empty fleet WeightedDelay = %g, want NaN", empty.WeightedDelay)
	}
}

// TestNewRejectsBadReplica checks validation errors carry the replica label.
func TestNewRejectsBadReplica(t *testing.T) {
	if _, err := multi.New(nil); err == nil {
		t.Error("New(nil) accepted an empty fleet")
	}
	bad := []multi.Replica{{
		Name:    "broken",
		Cluster: fleetTier(2, 1, queueing.NonPreemptive),
		Options: sim.Options{Horizon: -1},
	}}
	_, err := multi.New(bad)
	if err == nil {
		t.Fatal("New accepted a negative horizon")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the failing replica", err)
	}
}
