package sim

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// TestResultIdenticalAcrossGOMAXPROCS pins the simulator's bit-reproducibility
// contract: replications run concurrently, but each replication's seed fully
// determines its output, so the aggregated Result must hash identically no
// matter how much parallelism the runtime grants.
func TestResultIdenticalAcrossGOMAXPROCS(t *testing.T) {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	c := oneTier(2, 1, queueing.NonPreemptive, classes, demands)
	quantiles := []float64{0.9, 0.95}
	opts := Options{
		Horizon:      3000,
		Replications: 6,
		Seed:         42,
		Quantiles:    quantiles,
		Probe:        &Probe{Period: 10},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	hashes := make(map[int]string)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(c, opts)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		hashes[procs] = hashResult(res, quantiles)
	}

	base := hashes[1]
	for _, procs := range []int{2, 4} {
		if hashes[procs] != base {
			t.Errorf("Result hash differs: GOMAXPROCS=1 %s vs GOMAXPROCS=%d %s",
				base, procs, hashes[procs])
		}
	}
}

// TestPooledCalendarGoldenHash pins the free-list refactor's central claim:
// recycling events, jobs, and service runs must not change a single bit of
// any Result. The golden hashes below were recorded on the UNPOOLED
// simulator (container/heap calendar, fresh allocation per event/job/run)
// at the same seeds, immediately after the warmup/stats bugfixes landed. If
// either hash drifts, pooling has leaked state between recycled objects —
// fail loudly, do not re-record without understanding why.
//
// The test runs once per calendar implementation: the ladder queue pops the
// identical (time, seq) sequence, so the SAME unpooled goldens must hold
// bit for bit on both — the acceptance criterion of Options.Calendar.
func TestPooledCalendarGoldenHash(t *testing.T) {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	quantiles := []float64{0.9, 0.95}

	for _, calKind := range []string{CalendarHeap, CalendarLadder} {
		t.Run(calKind, func(t *testing.T) {
			// Non-preemptive two-server station with probe counters attached:
			// exercises arrival/start/visit/exit recycling plus the probe path.
			np := oneTier(2, 1, queueing.NonPreemptive, classes, demands)
			resNP, err := Run(np, Options{
				Horizon:      3000,
				Replications: 6,
				Seed:         42,
				Quantiles:    quantiles,
				Probe:        &Probe{Period: 10},
				Calendar:     calKind,
			})
			if err != nil {
				t.Fatal(err)
			}
			const goldenNP = "2931bffdb52d5f3373575a5897bf6cf450f89930c84b7a6f1354b1f2b15809ef"
			if h := hashResult(resNP, quantiles); h != goldenNP {
				t.Errorf("non-preemptive Result hash drifted from the unpooled golden:\n got %s\nwant %s", h, goldenNP)
			}

			// Preemptive-resume under a DVFS controller: exercises the cancelled-
			// run paths (preempt and retune both strand stale departure events
			// whose runs are recycled on pop).
			pr := oneTier(2, 1, queueing.PreemptiveResume, classes, demands)
			resPR, err := Run(pr, Options{
				Horizon: 2000, Replications: 3, Seed: 7, Quantiles: quantiles,
				Controller: UtilizationPolicy{Target: 0.6}, ControlPeriod: 25,
				Calendar: calKind,
			})
			if err != nil {
				t.Fatal(err)
			}
			const goldenPR = "38b43cd3bc675302a8eca783d4ef1ac9b0a9948eaf2635c14c8a46b48560d59d"
			if h := hashResult(resPR, quantiles); h != goldenPR {
				t.Errorf("preemptive-resume Result hash drifted from the unpooled golden:\n got %s\nwant %s", h, goldenPR)
			}
		})
	}
}

// hashResult digests every numeric field of a Result bit-exactly ('x' format
// preserves the full float bit pattern; a tolerance would hide real drift).
func hashResult(res *Result, quantiles []float64) string {
	var sb strings.Builder
	put := func(vals ...float64) {
		for _, v := range vals {
			sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
			sb.WriteByte(',')
		}
	}
	for k := range res.Delay {
		put(res.Delay[k].Mean, res.Delay[k].HalfW)
		put(res.EnergyPerRequest[k].Mean, res.EnergyPerRequest[k].HalfW)
		fmt.Fprintf(&sb, "c%d,", res.Completed[k])
		for _, p := range quantiles {
			put(res.DelayQuantile[k][p])
		}
	}
	put(res.WeightedDelay.Mean, res.WeightedDelay.HalfW)
	put(res.TotalPower.Mean, res.TotalPower.HalfW)
	for _, tr := range res.Tiers {
		sb.WriteString(tr.Name)
		put(tr.Utilization.Mean, tr.Utilization.HalfW)
		put(tr.Power.Mean, tr.Power.HalfW)
		for _, w := range tr.WaitByClass {
			put(w.Mean, w.HalfW)
		}
	}
	names := make([]string, 0, len(res.EventCounts))
	for name := range res.EventCounts {
		//lint:waive simdeterm reason="keys are sorted immediately below, so map order cannot leak" until=2027-08-01
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d,", name, res.EventCounts[name])
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}
