package sim

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// TestResultIdenticalAcrossGOMAXPROCS pins the simulator's bit-reproducibility
// contract: replications run concurrently, but each replication's seed fully
// determines its output, so the aggregated Result must hash identically no
// matter how much parallelism the runtime grants.
func TestResultIdenticalAcrossGOMAXPROCS(t *testing.T) {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	c := oneTier(2, 1, queueing.NonPreemptive, classes, demands)
	quantiles := []float64{0.9, 0.95}
	opts := Options{
		Horizon:      3000,
		Replications: 6,
		Seed:         42,
		Quantiles:    quantiles,
		Probe:        &Probe{Period: 10},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	hashes := make(map[int]string)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(c, opts)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		hashes[procs] = hashResult(res, quantiles)
	}

	base := hashes[1]
	for _, procs := range []int{2, 4} {
		if hashes[procs] != base {
			t.Errorf("Result hash differs: GOMAXPROCS=1 %s vs GOMAXPROCS=%d %s",
				base, procs, hashes[procs])
		}
	}
}

// hashResult digests every numeric field of a Result bit-exactly ('x' format
// preserves the full float bit pattern; a tolerance would hide real drift).
func hashResult(res *Result, quantiles []float64) string {
	var sb strings.Builder
	put := func(vals ...float64) {
		for _, v := range vals {
			sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
			sb.WriteByte(',')
		}
	}
	for k := range res.Delay {
		put(res.Delay[k].Mean, res.Delay[k].HalfW)
		put(res.EnergyPerRequest[k].Mean, res.EnergyPerRequest[k].HalfW)
		fmt.Fprintf(&sb, "c%d,", res.Completed[k])
		for _, p := range quantiles {
			put(res.DelayQuantile[k][p])
		}
	}
	put(res.WeightedDelay.Mean, res.WeightedDelay.HalfW)
	put(res.TotalPower.Mean, res.TotalPower.HalfW)
	for _, tr := range res.Tiers {
		sb.WriteString(tr.Name)
		put(tr.Utilization.Mean, tr.Utilization.HalfW)
		put(tr.Power.Mean, tr.Power.HalfW)
		for _, w := range tr.WaitByClass {
			put(w.Mean, w.HalfW)
		}
	}
	names := make([]string, 0, len(res.EventCounts))
	for name := range res.EventCounts {
		//lint:simdeterm keys are sorted immediately below, so map order cannot leak
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d,", name, res.EventCounts[name])
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}
