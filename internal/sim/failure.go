package sim

// Failure-aware simulation: per-tier server breakdown/repair processes,
// per-class request deadlines with retry-or-abandon semantics, and
// priority-aware admission control (load shedding). All three features are
// off by default and follow the same zero-value-means-off, validate-on-Run
// contract as the sleep extension; with every config nil the simulator's
// event stream — and therefore its output — is bit-identical to a build
// without this file (the RNG streams the features consume are only split
// when a feature is enabled, after all pre-existing splits).

import (
	"fmt"
	"math"

	"clusterq/internal/obs/trace"
)

// FailureConfig parameterizes one tier's server breakdown/repair process.
// Each of the tier's servers, while up, fails after an exponential time with
// mean MTBF; a failed server is repaired after an exponential time with mean
// MTTR and rejoins the pool. Failures are fail-stop: a job in service on the
// failing server is interrupted mid-work and returned to the HEAD of its
// class queue (preemptive-resume semantics, reusing the preemption
// machinery), so it resumes before later arrivals of its class and loses no
// completed work. Failed servers draw no power.
type FailureConfig struct {
	// MTBF is one server's mean time between failures while up (required,
	// > 0, simulated seconds).
	MTBF float64
	// MTTR is one server's mean time to repair (required, > 0).
	MTTR float64
}

// Availability returns the steady-state fraction of time one server is up,
// A = MTBF/(MTBF+MTTR) — the quantity the analytical availability-degraded
// capacity approximation (queueing.MMcWithBreakdowns) consumes.
func (fc *FailureConfig) Availability() float64 {
	return fc.MTBF / (fc.MTBF + fc.MTTR)
}

// DeadlineConfig gives one class a per-attempt response-time deadline with a
// bounded retry budget. An attempt that has not left the system Deadline
// seconds after it entered is pulled out (from the queue, or mid-service);
// the request then either re-enters from the start of its route after an
// exponential backoff, or — once MaxRetries retries are spent — abandons.
type DeadlineConfig struct {
	// Deadline is the per-attempt response-time budget (required, > 0).
	Deadline float64
	// MaxRetries bounds how many times a timed-out request re-enters
	// (0 means abandon on the first timeout).
	MaxRetries int
	// RetryBackoff is the MEAN of the exponential backoff before the first
	// retry; it doubles with every subsequent attempt (exponential
	// backoff). 0 retries immediately.
	RetryBackoff float64
}

// SheddingConfig enables priority-aware admission control: every Period the
// simulator measures each tier's utilization of its UP servers; when the
// worst tier exceeds Threshold one more of the lowest-priority classes is
// shed (its new arrivals are refused at admission), and when it falls below
// ResumeBelow one class is re-admitted. Class 0 (highest priority) is never
// shed.
type SheddingConfig struct {
	// Threshold is the worst-tier utilization above which shedding tightens
	// (required, in (0, 1]).
	Threshold float64
	// ResumeBelow is the utilization under which shedding relaxes; it must
	// be below Threshold (hysteresis). 0 selects 0.8·Threshold.
	ResumeBelow float64
	// Period is the measurement epoch in simulated seconds (required, > 0).
	Period float64
	// MaxShedClasses caps how many classes may be shed at once; 0 selects
	// the maximum, every class but class 0.
	MaxShedClasses int
}

// validateFailures cross-checks the failure configs against the tier count
// and the sleep configs (a tier cannot combine instant-off sleep with
// breakdowns: both remove servers from the pool with conflicting semantics).
func (o *Options) validateFailures(numTiers int) error {
	if o.Failures == nil {
		return nil
	}
	if len(o.Failures) != numTiers {
		return fmt.Errorf("sim: %d failure configs for %d tiers", len(o.Failures), numTiers)
	}
	for j, fc := range o.Failures {
		if fc == nil {
			continue
		}
		if !(fc.MTBF > 0) || math.IsInf(fc.MTBF, 1) {
			return fmt.Errorf("sim: tier %d MTBF %g must be positive and finite", j, fc.MTBF)
		}
		if !(fc.MTTR > 0) || math.IsInf(fc.MTTR, 1) {
			return fmt.Errorf("sim: tier %d MTTR %g must be positive and finite", j, fc.MTTR)
		}
		if o.Sleep != nil && o.Sleep[j] != nil {
			return fmt.Errorf("sim: tier %d combines sleep and failures; pick one per tier", j)
		}
	}
	return nil
}

// validateDeadlines cross-checks the deadline configs against the class count.
func (o *Options) validateDeadlines(numClasses int) error {
	if o.Deadlines == nil {
		return nil
	}
	if len(o.Deadlines) != numClasses {
		return fmt.Errorf("sim: %d deadline configs for %d classes", len(o.Deadlines), numClasses)
	}
	for k, dc := range o.Deadlines {
		if dc == nil {
			continue
		}
		if !(dc.Deadline > 0) || math.IsInf(dc.Deadline, 1) {
			return fmt.Errorf("sim: class %d deadline %g must be positive and finite", k, dc.Deadline)
		}
		if dc.MaxRetries < 0 {
			return fmt.Errorf("sim: class %d negative retry budget %d", k, dc.MaxRetries)
		}
		if dc.RetryBackoff < 0 || math.IsInf(dc.RetryBackoff, 1) || math.IsNaN(dc.RetryBackoff) {
			return fmt.Errorf("sim: class %d invalid retry backoff %g", k, dc.RetryBackoff)
		}
	}
	return nil
}

// validateShedding checks the admission-control config.
func (o *Options) validateShedding(numClasses int) error {
	sc := o.Shedding
	if sc == nil {
		return nil
	}
	if !(sc.Threshold > 0) || sc.Threshold > 1 {
		return fmt.Errorf("sim: shedding threshold %g out of (0, 1]", sc.Threshold)
	}
	if sc.ResumeBelow < 0 || sc.ResumeBelow >= sc.Threshold {
		if sc.ResumeBelow != 0 {
			return fmt.Errorf("sim: shedding resume level %g must lie in (0, threshold %g)", sc.ResumeBelow, sc.Threshold)
		}
	}
	if !(sc.Period > 0) {
		return fmt.Errorf("sim: shedding period %g must be positive", sc.Period)
	}
	if sc.MaxShedClasses < 0 || sc.MaxShedClasses > numClasses-1 {
		return fmt.Errorf("sim: shedding may drop at most %d classes, got %d", numClasses-1, sc.MaxShedClasses)
	}
	return nil
}

// armDeadline schedules the timeout for the attempt class k's job starts at
// time now. The event carries the job's id as a generation stamp: jobs are
// pooled, so when the timeout fires the handler compares the stamp against
// the job's current id and treats any mismatch (the attempt completed, the
// job was recycled) as stale.
func (s *simulator) armDeadline(j *job, now float64) {
	if s.deadlines == nil {
		return
	}
	dc := s.deadlines[j.class]
	if dc == nil {
		return
	}
	s.cal.scheduleGen(now+dc.Deadline, evTimeout, j.class, j, -1, j.id)
}

// handleBreakdown processes one breakdown CANDIDATE at a station. Candidates
// arrive at the superposition's peak rate servers/MTBF; thinning accepts a
// candidate with probability up/servers, which by Poisson superposition
// yields the exact aggregate failure process of the up servers only — the
// same idiom handleArrival uses for non-homogeneous arrivals. An accepted
// breakdown picks a victim uniformly among the up servers; a busy victim's
// job is interrupted fail-stop and requeued at the head of its class line.
func (s *simulator) handleBreakdown(e *event) {
	now := s.cal.now
	st := s.stations[e.station]
	fc := s.failures[st.idx]
	rng := s.failRNG[st.idx]
	// The candidate stream continues regardless of acceptance.
	s.cal.schedule(now+rng.Exp(float64(st.servers)/fc.MTBF), evBreakdown, 0, nil, st.idx, nil)
	up := st.servers - st.failed
	if up <= 0 || rng.Float64() >= float64(up)/float64(st.servers) {
		return
	}
	st.failed++
	s.tr.event(now, TraceBreakdown, -1, 0, st.idx, float64(st.failed))
	s.count(pkBreakdown)
	// Victim: uniform over the up servers. The first len(running) of them
	// are busy; the remainder are idle and fail without interrupting work.
	if v := int(rng.Float64() * float64(up)); v < len(st.running) {
		run := st.running[v]
		// The victim's interruption is a preemption from the job's point of
		// view: work stops with work remaining.
		if s.rec != nil {
			s.rec.RecordPreempt(now, run.job.class, run.job.id, st.idx)
		}
		run.cancelled = true
		st.bankSegment(run, now)
		if run.job.remaining < 1e-12 {
			run.job.remaining = 1e-12 // numerically vanished; finishes immediately on resume
		}
		st.dropRun(run)
		st.requeueFront(run.job)
	}
	st.observeBusy(now) // capacity and power both stepped
	s.cal.schedule(now+rng.Exp(1/fc.MTTR), evRepair, 0, nil, st.idx, nil)
}

// handleRepair returns one failed server to the pool and puts it to work
// when jobs are waiting.
func (s *simulator) handleRepair(e *event) {
	now := s.cal.now
	st := s.stations[e.station]
	st.failed--
	s.tr.event(now, TraceRepair, -1, 0, st.idx, float64(st.failed))
	s.count(pkRepair)
	st.observeBusy(now)
	if st.freeServers() > 0 {
		if next := st.nextWaiting(); next != nil {
			s.startService(st, next, now)
		}
	}
}

// handleTimeout expires one attempt's deadline. The job is pulled out of
// wherever it is — its waiting line, or mid-service (fail-stop on the
// request side: the partial work is discarded with the attempt) — and either
// re-enters from the start of its route after a backoff, or abandons once
// its retry budget is spent.
func (s *simulator) handleTimeout(e *event) {
	j := e.job
	if j == nil || j.id == 0 || j.id != e.gen {
		return // stale: the attempt completed (or the job was recycled) first
	}
	now := s.cal.now
	st := s.stations[j.cur]
	freedServer := false
	if run := st.runOf(j); run != nil {
		run.cancelled = true
		st.bankSegment(run, now) // energy already spent is spent
		st.dropRun(run)
		st.observeBusy(now)
		freedServer = true
	} else if !st.removeWaiting(j) {
		// Defensive: the job is not at its recorded station. Unreachable
		// under the current event orderings; treat as stale rather than
		// corrupt the queues.
		return
	}
	s.tr.event(now, TraceTimeout, j.class, j.id, st.idx, now-j.arrival)
	s.count(pkTimeout)
	if s.rec != nil {
		s.rec.RecordTimeout(now, j.class, j.id, st.idx)
	}
	post := j.arrival >= s.warmup
	if post {
		s.timeouts[j.class]++
	}
	dc := s.deadlines[j.class]
	if j.attempts < dc.MaxRetries {
		j.attempts++
		s.tr.event(now, TraceRetry, j.class, j.id, -1, float64(j.attempts))
		s.count(pkRetry)
		if s.rec != nil {
			s.rec.RecordBackoff(now, j.class, j.id, j.attempts)
		}
		if post {
			s.retries[j.class]++
		}
		var backoff float64
		if dc.RetryBackoff > 0 {
			mean := dc.RetryBackoff * float64(uint64(1)<<uint(j.attempts-1))
			backoff = s.retryRNG[j.class].Exp(1 / mean)
		}
		s.cal.scheduleGen(now+backoff, evRetry, j.class, j, -1, j.id)
	} else {
		s.tr.event(now, TraceAbandon, j.class, j.id, -1, now-j.arrival)
		s.count(pkAbandon)
		if s.rec != nil {
			s.rec.RecordExit(now, j.class, j.id, trace.OutcomeAbandoned)
		}
		if post {
			s.abandoned[j.class]++
		}
		if s.inflight != nil {
			s.inflight[j.class]--
		}
		s.freeJob(j)
	}
	if freedServer && st.freeServers() > 0 {
		if next := st.nextWaiting(); next != nil {
			s.startService(st, next, now)
		}
	}
}

// handleRetry re-enters a timed-out job at the start of its route with a
// fresh deadline. The attempt draws fresh work samples on delivery, modeling
// a request whose partial server-side work is lost with the timed-out
// attempt.
func (s *simulator) handleRetry(e *event) {
	j := e.job
	if j == nil || j.id == 0 || j.id != e.gen {
		return // defensive; retry events have no legitimate stale path
	}
	now := s.cal.now
	j.routePos = 0
	if s.rec != nil {
		s.rec.RecordResume(now, j.class, j.id)
	}
	s.armDeadline(j, now)
	if r := s.routings[j.class]; r != nil {
		entry := s.sampleIndex(j.class, r.Entry)
		if entry < 0 {
			if s.inflight != nil {
				s.inflight[j.class]--
			}
			if s.rec != nil {
				s.rec.RecordExit(now, j.class, j.id, trace.OutcomeDropped)
			}
			s.freeJob(j)
			return
		}
		s.deliverTo(j, entry, now)
		return
	}
	s.deliver(j, now)
}

// handleShedEpoch re-decides the admission-control level from the worst
// tier's utilization of its UP servers over the elapsed epoch (failed
// servers are capacity the cluster does not have; shedding reacts to the
// capacity that is actually on the floor). One level is added or removed per
// epoch, with hysteresis between Threshold and ResumeBelow.
func (s *simulator) handleShedEpoch() {
	now := s.cal.now
	worst := 0.0
	for _, st := range s.stations {
		util := st.upUtilization(st.shedBusy.MeanAt(now))
		if util > worst {
			worst = util
		}
		st.shedBusy.StartAt(now, float64(len(st.running)))
	}
	switch {
	case worst > s.shedCfg.Threshold && s.shedClasses < s.shedMax:
		s.shedClasses++
		s.tr.event(now, TraceShedLevel, -1, 0, -1, float64(s.shedClasses))
	case worst < s.shedResume && s.shedClasses > 0:
		s.shedClasses--
		s.tr.event(now, TraceShedLevel, -1, 0, -1, float64(s.shedClasses))
	}
	s.cal.schedule(now+s.shedCfg.Period, evShedEpoch, 0, nil, 0, nil)
}
