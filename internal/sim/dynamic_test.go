package sim

import (
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

func TestProfilesValidation(t *testing.T) {
	if _, err := NewSinusoid(1, 2, 10); err == nil {
		t.Error("amplitude > mean accepted")
	}
	if _, err := NewSinusoid(1, 0.5, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewSquareWave(2, 1, 10, 0.5); err == nil {
		t.Error("high < low accepted")
	}
	if _, err := NewSquareWave(1, 2, 10, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	sw, err := NewSquareWave(1, 3, 10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if sw.RateAt(1) != 3 || sw.RateAt(5) != 1 || sw.RateAt(11) != 3 {
		t.Error("square wave phases wrong")
	}
	if sw.MaxRate() != 3 {
		t.Error("square max")
	}
	sin, err := NewSinusoid(2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := sin.RateAt(25); !almostEq(got, 3, 1e-9) {
		t.Errorf("sinusoid peak = %g", got)
	}
	if sin.MaxRate() != 3 {
		t.Error("sinusoid max")
	}
}

func TestMeanRate(t *testing.T) {
	if MeanRate(ConstantRate(2.5)) != 2.5 {
		t.Error("constant mean")
	}
	sin, _ := NewSinusoid(2, 1, 100)
	if MeanRate(sin) != 2 {
		t.Error("sinusoid mean")
	}
	sw, _ := NewSquareWave(1, 3, 10, 0.5)
	if MeanRate(sw) != 2 {
		t.Error("square mean")
	}
}

func TestThinningRealizesMeanRate(t *testing.T) {
	// A sinusoidal profile must deliver its mean rate of completions in a
	// lightly loaded system (throughput in = throughput out).
	c := oneTier(4, 4, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 99 /* ignored when a profile is set */}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	sin, _ := NewSinusoid(2, 1.5, 500)
	o := Options{Horizon: 30000, Replications: 3, Seed: 21, Profiles: []Profile{sin}}
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	span := (o.Horizon - o.Horizon*0.1) * float64(res.Replications)
	got := float64(res.Completed[0]) / span
	if relErr(got, 2) > 0.03 {
		t.Errorf("throughput %g, want 2 (profile mean)", got)
	}
}

func TestSquareWaveLoadSwings(t *testing.T) {
	// Under a square wave that saturates the station in the high phase,
	// delays must be much worse than under a constant load at the mean.
	demands := []queueing.Demand{{Work: 1, CV2: 1}}
	cls := []cluster.Class{{Name: "a", Lambda: 0.6}}
	c := oneTier(1, 1, queueing.FCFS, cls, demands)
	resConst, err := Run(c, Options{Horizon: 30000, Replications: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := NewSquareWave(0.25, 0.95, 2000, 0.5) // same mean 0.6
	resSwing, err := Run(c, Options{Horizon: 30000, Replications: 3, Seed: 5, Profiles: []Profile{sw}})
	if err != nil {
		t.Fatal(err)
	}
	if !(resSwing.Delay[0].Mean > 1.5*resConst.Delay[0].Mean) {
		t.Errorf("swinging load delay %g not clearly worse than constant %g",
			resSwing.Delay[0].Mean, resConst.Delay[0].Mean)
	}
}

func TestProfileOptionValidation(t *testing.T) {
	c := oneTier(1, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	if _, err := Run(c, Options{Horizon: 100, Profiles: []Profile{ConstantRate(1), ConstantRate(1)}}); err == nil {
		t.Error("profile count mismatch accepted")
	}
	if _, err := Run(c, Options{Horizon: 100, Controller: StaticPolicy{}}); err == nil {
		t.Error("controller without period accepted")
	}
}

func TestStaticControllerIsNoOp(t *testing.T) {
	c := oneTier(1, 2, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.9}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	plain, err := Run(c, Options{Horizon: 8000, Replications: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := Run(c, Options{Horizon: 8000, Replications: 2, Seed: 3,
		Controller: StaticPolicy{}, ControlPeriod: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(plain.Delay[0].Mean, ctl.Delay[0].Mean, 1e-9) {
		t.Errorf("static controller changed results: %g vs %g", plain.Delay[0].Mean, ctl.Delay[0].Mean)
	}
	// Power can differ in the 4th digit: the warmup reset lands on the
	// first event past the warmup time, and control events shift it.
	if !almostEq(plain.TotalPower.Mean, ctl.TotalPower.Mean, 1e-3) {
		t.Errorf("static controller changed power: %g vs %g", plain.TotalPower.Mean, ctl.TotalPower.Mean)
	}
}

func TestSetSpeedExactWithDeterministicService(t *testing.T) {
	// One deterministic job in service; halving the speed mid-run must
	// stretch exactly the remaining half of the work. We verify indirectly:
	// with speed changes the measured mean service-ish response stays
	// consistent with work conservation (served work rate = λ·E[work]).
	pm, _ := power.NewPowerLaw(10, 1, 2)
	c := &cluster.Cluster{
		Tiers: []*cluster.Tier{{
			Name: "t", Servers: 1, Speed: 2, MinSpeed: 1, MaxSpeed: 4,
			Discipline: queueing.FCFS, Power: pm,
			Demands: []queueing.Demand{{Work: 1, CV2: 0}},
		}},
		Classes: []cluster.Class{{Name: "a", Lambda: 0.8}},
	}
	// A controller that oscillates the speed but averages the same
	// capacity; the system must stay stable and conserve throughput.
	res, err := Run(c, Options{
		Horizon: 30000, Replications: 3, Seed: 9,
		Controller: flipFlop{}, ControlPeriod: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	span := (30000 - 3000) * 3.0
	thr := float64(res.Completed[0]) / span
	if relErr(thr, 0.8) > 0.03 {
		t.Errorf("throughput %g under speed flapping, want 0.8", thr)
	}
}

// flipFlop alternates between two speeds whose harmonic structure keeps the
// station stable (1.5 and 3.0 around offered work rate 0.8).
type flipFlop struct{}

func (flipFlop) Name() string { return "flipflop" }
func (flipFlop) Decide(obs Observation) float64 {
	if obs.Speed < 2 {
		return 3
	}
	return 1.5
}

func TestUtilizationPolicyDecide(t *testing.T) {
	p := UtilizationPolicy{Target: 0.5, Gain: 1}
	// Running at util 1.0 with target 0.5 → double the speed.
	obs := Observation{Utilization: 1, Speed: 2, Servers: 2, QueueLen: 0, MinSpeed: 0.5, MaxSpeed: 10}
	if got := p.Decide(obs); !almostEq(got, 4, 1e-9) {
		t.Errorf("decide = %g, want 4", got)
	}
	// Util below target → slow down.
	obs.Utilization = 0.25
	if got := p.Decide(obs); !almostEq(got, 1, 1e-9) {
		t.Errorf("decide = %g, want 1", got)
	}
	// Queue pressure boosts beyond the pure-utilization estimate.
	obs.Utilization = 1
	obs.QueueLen = 20
	boosted := p.Decide(obs)
	if !(boosted > 4) {
		t.Errorf("queue pressure ignored: %g", boosted)
	}
	// Clamping.
	obs.MaxSpeed = 3
	if got := p.Decide(obs); got != 3 {
		t.Errorf("clamp to max failed: %g", got)
	}
	// Defaults are sane.
	d := UtilizationPolicy{}
	if d.target() != 0.7 || d.gain() != 0.5 || d.queueGain() != 0.1 {
		t.Error("defaults wrong")
	}
	if len(d.Name()) == 0 || len(StaticPolicy{}.Name()) == 0 {
		t.Error("policy names empty")
	}
}

func TestReactiveControllerTracksDiurnalLoad(t *testing.T) {
	// The headline dynamic-power-management result: under a diurnal load,
	// the reactive policy should (a) spend less power than a static
	// allocation provisioned for the PEAK, while (b) keeping delays far
	// better than a static allocation provisioned for the MEAN.
	pm, _ := power.NewPowerLaw(100, 2, 3)
	mk := func(speed float64) *cluster.Cluster {
		return &cluster.Cluster{
			Tiers: []*cluster.Tier{{
				Name: "t", Servers: 2, Speed: speed, MinSpeed: 0.5, MaxSpeed: 6,
				Discipline: queueing.NonPreemptive, Power: pm,
				Demands: []queueing.Demand{{Work: 1, CV2: 1}},
			}},
			Classes: []cluster.Class{{Name: "a", Lambda: 2}},
		}
	}
	sin, _ := NewSinusoid(2, 1.6, 4000) // swings 0.4 … 3.6 req/s
	base := Options{Horizon: 40000, Replications: 3, Seed: 17, Profiles: []Profile{sin}}

	// Static provisioned for the peak: speed so that util at peak ≈ 0.75.
	peak := mk(3.6 / 2 / 0.75)
	oPeak := base
	resPeak, err := Run(peak, oPeak)
	if err != nil {
		t.Fatal(err)
	}
	// Static provisioned for the mean: util at mean ≈ 0.75 — saturates at peak.
	mean := mk(2.0 / 2 / 0.75)
	resMean, err := Run(mean, base)
	if err != nil {
		t.Fatal(err)
	}
	// Reactive: starts at the mean allocation, adapts every 20 s.
	oCtl := base
	oCtl.Controller = UtilizationPolicy{Target: 0.75}
	oCtl.ControlPeriod = 20
	resCtl, err := Run(mean, oCtl)
	if err != nil {
		t.Fatal(err)
	}

	if !(resCtl.TotalPower.Mean < resPeak.TotalPower.Mean) {
		t.Errorf("reactive power %g not below peak-static %g",
			resCtl.TotalPower.Mean, resPeak.TotalPower.Mean)
	}
	if !(resCtl.Delay[0].Mean < resMean.Delay[0].Mean/2) {
		t.Errorf("reactive delay %g not clearly better than mean-static %g",
			resCtl.Delay[0].Mean, resMean.Delay[0].Mean)
	}
}
