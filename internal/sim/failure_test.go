package sim

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

func TestFailureOptionValidation(t *testing.T) {
	c := regressionCluster() // 1 tier, 2 classes
	base := Options{Horizon: 100, Replications: 1, Seed: 1}

	cases := map[string]func(*Options){
		"failure count mismatch": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: 10, MTTR: 1}, {MTBF: 10, MTTR: 1}}
		},
		"zero MTBF": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: 0, MTTR: 1}}
		},
		"negative MTTR": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: 10, MTTR: -1}}
		},
		"NaN MTBF": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: math.NaN(), MTTR: 1}}
		},
		"infinite MTTR": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: 10, MTTR: math.Inf(1)}}
		},
		"sleep and failures on one tier": func(o *Options) {
			o.Failures = []*FailureConfig{{MTBF: 10, MTTR: 1}}
			o.Sleep = []*SleepConfig{{Setup: queueing.NewExponential(1)}}
		},
		"deadline count mismatch": func(o *Options) {
			o.Deadlines = []*DeadlineConfig{{Deadline: 5}}
		},
		"zero deadline": func(o *Options) {
			o.Deadlines = []*DeadlineConfig{{Deadline: 0}, nil}
		},
		"negative retry budget": func(o *Options) {
			o.Deadlines = []*DeadlineConfig{{Deadline: 5, MaxRetries: -1}, nil}
		},
		"negative backoff": func(o *Options) {
			o.Deadlines = []*DeadlineConfig{{Deadline: 5, RetryBackoff: -1}, nil}
		},
		"shedding threshold zero": func(o *Options) {
			o.Shedding = &SheddingConfig{Threshold: 0, Period: 10}
		},
		"shedding threshold above one": func(o *Options) {
			o.Shedding = &SheddingConfig{Threshold: 1.5, Period: 10}
		},
		"shedding resume above threshold": func(o *Options) {
			o.Shedding = &SheddingConfig{Threshold: 0.8, ResumeBelow: 0.9, Period: 10}
		},
		"shedding period zero": func(o *Options) {
			o.Shedding = &SheddingConfig{Threshold: 0.8}
		},
		"shedding too many classes": func(o *Options) {
			o.Shedding = &SheddingConfig{Threshold: 0.8, Period: 10, MaxShedClasses: 2}
		},
	}
	for name, mutate := range cases {
		o := base
		mutate(&o)
		if _, err := Run(c, o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A fully specified valid combination must run.
	o := base
	o.Failures = []*FailureConfig{{MTBF: 50, MTTR: 5}}
	o.Deadlines = []*DeadlineConfig{{Deadline: 20, MaxRetries: 2, RetryBackoff: 1}, nil}
	o.Shedding = &SheddingConfig{Threshold: 0.9, Period: 10, MaxShedClasses: 1}
	if _, err := Run(c, o); err != nil {
		t.Errorf("valid failure options rejected: %v", err)
	}
}

// TestBreakdownsMatchEffectiveCapacityMMc cross-validates the simulator's
// explicit breakdown/repair injection against the analytic availability-
// weighted capacity approximation in its regime of validity: repairs fast
// relative to the service time (fast-switching), where a server that is up a
// fraction A of the time is well approximated by a server of speed·A.
func TestBreakdownsMatchEffectiveCapacityMMc(t *testing.T) {
	// M/M/2, λ=0.9, μ=1 per server; MTBF=18, MTTR=2 ⇒ A=0.9.
	c := oneTier(2, 1, queueing.FCFS,
		[]cluster.Class{{Name: "a", Lambda: 0.9}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	fc := &FailureConfig{MTBF: 18, MTTR: 2}
	res := run(t, c, Options{
		Horizon: 60000, Replications: 5, Seed: 6,
		Failures: []*FailureConfig{fc},
		Probe:    &Probe{Period: 100},
	})

	pred, err := queueing.MMcWithBreakdowns(0.9, 1, 2, fc.Availability())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(res.Delay[0].Mean, pred.MeanResponse()) > 0.1 {
		t.Errorf("degraded delay = %v, effective-capacity M/M/c predicts %g",
			res.Delay[0], pred.MeanResponse())
	}

	// Breakdowns must make things strictly worse than the nominal queue.
	nominal, _ := queueing.NewMMc(0.9, 1, 2)
	if !(res.Delay[0].Mean > nominal.MeanResponse()) {
		t.Errorf("degraded delay %g not above nominal M/M/2 response %g",
			res.Delay[0].Mean, nominal.MeanResponse())
	}
	if res.EventCounts[TraceBreakdown] == 0 || res.EventCounts[TraceRepair] == 0 {
		t.Errorf("no breakdown/repair events counted: %v", res.EventCounts)
	}
	// Nothing times out, so all arrivals complete: goodput ≈ λ.
	if relErr(res.Goodput[0].Mean, 0.9) > 0.05 {
		t.Errorf("goodput = %v, want ≈ λ = 0.9", res.Goodput[0])
	}
}

// TestFailureFreeNilConfigsMatchUnset pins the zero-value-means-off contract:
// enabling the subsystems with all-nil per-tier/per-class entries leaves every
// measured quantity identical to a run without the options set at all.
func TestFailureFreeNilConfigsMatchUnset(t *testing.T) {
	c := regressionCluster()
	base := Options{Horizon: 2000, Replications: 3, Seed: 9}
	plain, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	nils := base
	nils.Failures = []*FailureConfig{nil}
	nils.Deadlines = []*DeadlineConfig{nil, nil}
	res, err := Run(c, nils)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.Delay {
		if res.Delay[k] != plain.Delay[k] {
			t.Errorf("class %d delay %+v != unset %+v", k, res.Delay[k], plain.Delay[k])
		}
		if res.Completed[k] != plain.Completed[k] {
			t.Errorf("class %d completions %d != unset %d", k, res.Completed[k], plain.Completed[k])
		}
		if res.Timeouts[k] != 0 || res.Retries[k] != 0 || res.Abandoned[k] != 0 || res.Shed[k] != 0 {
			t.Errorf("class %d degraded-mode counters nonzero with nil configs", k)
		}
	}
	if res.TotalPower != plain.TotalPower {
		t.Errorf("power %+v != unset %+v", res.TotalPower, plain.TotalPower)
	}
}

// hashFailureResult extends hashResult with the degraded-mode outputs so the
// determinism test below pins the new fields too.
func hashFailureResult(res *Result, quantiles []float64) string {
	var sb strings.Builder
	sb.WriteString(hashResult(res, quantiles))
	for k := range res.Goodput {
		sb.WriteString(strconv.FormatFloat(res.Goodput[k].Mean, 'x', -1, 64))
		fmt.Fprintf(&sb, ",t%d,r%d,a%d,s%d;",
			res.Timeouts[k], res.Retries[k], res.Abandoned[k], res.Shed[k])
	}
	return sb.String()
}

func TestFailureResultIdenticalAcrossGOMAXPROCS(t *testing.T) {
	classes := []cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.4}}
	demands := []queueing.Demand{{Work: 1, CV2: 1}, {Work: 1.5, CV2: 2}}
	c := oneTier(2, 1, queueing.NonPreemptive, classes, demands)
	quantiles := []float64{0.9}
	opts := Options{
		Horizon: 3000, Replications: 6, Seed: 13, Quantiles: quantiles,
		Probe:     &Probe{Period: 10},
		Failures:  []*FailureConfig{{MTBF: 40, MTTR: 4}},
		Deadlines: []*DeadlineConfig{{Deadline: 25, MaxRetries: 2, RetryBackoff: 0.5}, {Deadline: 15}},
		Shedding:  &SheddingConfig{Threshold: 0.95, Period: 20},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	hashes := make(map[int]string)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(c, opts)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		hashes[procs] = hashFailureResult(res, quantiles)
	}
	for _, procs := range []int{2, 4} {
		if hashes[procs] != hashes[1] {
			t.Errorf("failure-mode Result differs between GOMAXPROCS=1 and %d", procs)
		}
	}
}

// TestTimeoutAccounting pins the pipeline's conservation law: every timeout
// is followed by exactly one retry or one abandonment.
func TestTimeoutAccounting(t *testing.T) {
	c := regressionCluster()
	res := run(t, c, Options{
		Horizon: 20000, Replications: 3, Seed: 17,
		// Tight deadlines against a queue at ρ=0.65: plenty of timeouts.
		Deadlines: []*DeadlineConfig{
			{Deadline: 2, MaxRetries: 3, RetryBackoff: 0.5},
			{Deadline: 1.5, MaxRetries: 0},
		},
	})
	for k := range res.Timeouts {
		if res.Timeouts[k] == 0 {
			t.Errorf("class %d: no timeouts under a tight deadline", k)
		}
		if res.Timeouts[k] != res.Retries[k]+res.Abandoned[k] {
			t.Errorf("class %d: %d timeouts != %d retries + %d abandoned",
				k, res.Timeouts[k], res.Retries[k], res.Abandoned[k])
		}
	}
	// Class 1 has no retry budget: every timeout abandons.
	if res.Retries[1] != 0 || res.Abandoned[1] != res.Timeouts[1] {
		t.Errorf("MaxRetries=0 class retried %d times, abandoned %d of %d timeouts",
			res.Retries[1], res.Abandoned[1], res.Timeouts[1])
	}
	// Abandonment costs goodput: class 1's completion rate drops below λ.
	if !(res.Goodput[1].Mean < 0.35) {
		t.Errorf("class 1 goodput %v not reduced below λ=0.35 by abandonment", res.Goodput[1])
	}
}

func TestLooseDeadlineNeverFires(t *testing.T) {
	c := regressionCluster()
	base := Options{Horizon: 5000, Replications: 2, Seed: 19}
	plain, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	loose := base
	loose.Deadlines = []*DeadlineConfig{{Deadline: 1e6, MaxRetries: 1}, {Deadline: 1e6}}
	res, err := Run(c, loose)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Timeouts {
		if res.Timeouts[k] != 0 || res.Retries[k] != 0 || res.Abandoned[k] != 0 {
			t.Errorf("class %d: loose deadline fired (%d/%d/%d)",
				k, res.Timeouts[k], res.Retries[k], res.Abandoned[k])
		}
		// Timeout events that never fire must not disturb the sample path.
		if res.Delay[k].Mean != plain.Delay[k].Mean {
			t.Errorf("class %d delay %g != unset %g under a never-firing deadline",
				k, res.Delay[k].Mean, plain.Delay[k].Mean)
		}
	}
}

// TestSheddingDropsLowestClassFirst overloads a two-class station and checks
// that admission control refuses only bronze traffic: class 0 is never shed,
// and relief shows up as bronze shed counts plus a finite gold delay.
func TestSheddingDropsLowestClassFirst(t *testing.T) {
	// ρ ≈ 1.3 without shedding: the queue grows without bound.
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "gold", Lambda: 0.4}, {Name: "bronze", Lambda: 0.9}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}})
	res := run(t, c, Options{
		Horizon: 20000, Replications: 3, Seed: 23,
		Shedding: &SheddingConfig{Threshold: 0.9, ResumeBelow: 0.7, Period: 50},
		Probe:    &Probe{Period: 100},
	})
	if res.Shed[0] != 0 {
		t.Errorf("class 0 shed %d arrivals; the top class must never be shed", res.Shed[0])
	}
	if res.Shed[1] == 0 {
		t.Error("overloaded run shed no bronze arrivals")
	}
	if res.EventCounts[TraceShed] == 0 {
		t.Errorf("no shed events counted: %v", res.EventCounts)
	}
	// With bronze shed the station is left with ρ well below 1; gold's delay
	// stays in the same ballpark as its Cobham value under partial bronze
	// load — loosely, just demand it is small rather than queue-explosion.
	if !(res.Delay[0].Mean < 10) {
		t.Errorf("gold delay %v under shedding; admission control gave no relief", res.Delay[0])
	}
}
