package sim

import "math"

// ladderQueue is the calendar's amortized-O(1) scheduler: a ladder queue
// (Tang, Goh & Thng, "Ladder queue: An O(1) priority queue structure for
// large-scale discrete event simulation", ACM TOMACS 2005) adapted to the
// pooled *event calendar. Where the binary heap pays O(log n) sift work per
// operation, the ladder spreads events into time buckets and only ever
// sorts small near-term batches, so the per-event cost stays flat as the
// live set grows — the property that lets fleet-scale replications keep the
// event loop near its small-live-set speed.
//
// Structure, latest to earliest:
//
//   - top: an unsorted spill list for far-future events (time ≥ topStart),
//     with its running min/max. Appending here is O(1).
//   - rungs[0..nRungs-1]: bucketed time bands. Rung 0 is spawned from top;
//     rung i+1 is spawned by re-bucketing an overfull current bucket of
//     rung i, so deeper rungs cover ever-earlier, ever-narrower bands.
//   - bottom: the sorted near-term batch, consumed in place through botPos.
//
// Pops drain bottom; when it empties, the deepest rung's next non-empty
// bucket is either sorted into bottom (small bucket) or re-bucketed into a
// deeper rung (overfull bucket), and when no rungs remain, top is poured
// into a fresh rung 0. Pushes go to the latest structure whose band covers
// the event's time, falling through to an ordered insert into bottom.
//
// Determinism: pop order is exactly eventLess order, bit-identical to the
// heap's. Bucket indices are computed with a monotone float map (see
// ladderRung.add), so an earlier time can never land in a later bucket;
// equal times always share a bucket (same index) or arrive later with a
// larger seq in a later structure, and every within-batch sort breaks time
// ties by seq. The property/fuzz tests in calendar_equiv_test.go compare
// pop sequences element for element against the heap.
//
// Allocation: bucket backing arrays, bottom and top are all reused across
// refills (see initRung and the b[:0] truncations below), so like the heap
// the ladder allocates only until the live set's high-water mark is reached
// — the steady-state event loop stays allocation-free on either scheduler,
// and TestSteadyStateAllocationsBounded gates both.
type ladderQueue struct {
	top            []*event
	topStart       float64 // pushes at time ≥ topStart go to top
	topMin, topMax float64 // running bounds of top's event times
	rungs          [ladderMaxRungs]ladderRung
	nRungs         int
	bottom         []*event // sorted ascending by eventLess; bottom[botPos:] live
	botPos         int
	n              int // total live events across all structures
}

const (
	// ladderThresh is the bucket size above which a refilled bucket is
	// re-bucketed into a deeper rung instead of sorted straight into
	// bottom — the knob bounding every sort the ladder ever does.
	ladderThresh = 64
	// ladderMaxRungs caps re-bucketing depth. Past it (equal-time pileups
	// already bypass spawning, so only adversarial time distributions get
	// here) buckets are sorted into bottom regardless of size.
	ladderMaxRungs = 8
)

// ladderRung is one bucketed time band: bucket i spans
// [start + i*width, start + (i+1)*width), with the last bucket absorbing
// everything later (indices clamp down, never up past the end).
type ladderRung struct {
	start   float64
	width   float64
	cur     int // lowest non-consumed bucket
	buckets [][]*event
	count   int // live events in buckets[cur:]
}

// curStart is the left edge of the rung's current bucket: the earliest time
// a push may still target this rung.
func (r *ladderRung) curStart() float64 { return r.start + r.width*float64(r.cur) }

// add buckets an event. The index map t ↦ int((t-start)/width) is monotone
// non-decreasing in t (subtraction and division by a positive constant are
// monotone under IEEE rounding, as is truncation), which is the load-bearing
// property: an earlier time can never be filed after a later one, and equal
// times always share a bucket. The clamps keep boundary-rounding stragglers
// in range — and run before any float→int conversion, whose out-of-range
// behavior Go leaves undefined.
func (r *ladderRung) add(e *event) {
	idx := r.cur
	if f := (e.time - r.start) / r.width; f > float64(r.cur) {
		if f >= float64(len(r.buckets)) {
			idx = len(r.buckets) - 1
		} else {
			idx = int(f)
		}
	}
	if idx >= len(r.buckets) {
		// Defensive: push skips exhausted rungs, so cur < len(buckets) here;
		// should that invariant ever break, clamp instead of indexing past
		// the table (refillFromRung re-consumes the last bucket when count
		// says it is non-empty, so a clamped straggler still pops).
		idx = len(r.buckets) - 1
	}
	r.buckets[idx] = append(r.buckets[idx], e)
	r.count++
}

func newLadderQueue() *ladderQueue {
	return &ladderQueue{
		topStart: math.Inf(-1), // first push always lands in top
		topMin:   math.Inf(1),
		topMax:   math.Inf(-1),
	}
}

// push implements scheduler: file the event in the latest structure whose
// band covers its time. Rung 0 holds the latest band and deeper rungs
// strictly earlier ones, so the first rung whose current bucket starts at or
// before the event's time is the right one.
func (q *ladderQueue) push(e *event) {
	q.n++
	if e.time >= q.topStart {
		q.top = append(q.top, e)
		if e.time < q.topMin {
			q.topMin = e.time
		}
		if e.time > q.topMax {
			q.topMax = e.time
		}
		return
	}
	for i := 0; i < q.nRungs; i++ {
		r := &q.rungs[i]
		if r.cur >= len(r.buckets) {
			// Exhausted rung awaiting lazy removal (a spawn consumed its
			// last bucket): it has no band left, and filing into it would
			// lose the event when the rung is dropped. Fall through — the
			// next structure covering the time is a deeper rung's clamped
			// last bucket or the sorted bottom, both order-correct.
			continue
		}
		if e.time >= r.curStart() {
			r.add(e)
			return
		}
	}
	q.bottomInsert(e)
}

// bottomInsert places an event into the live tail of the sorted bottom by
// binary search. Only events earlier than every rung band get here — the
// simulator's schedule-at-now±ε pattern — so the shifted suffix is short
// (bounded by the last refilled batch, ≤ ladderThresh in the spawning
// regime).
func (q *ladderQueue) bottomInsert(e *event) {
	lo, hi := q.botPos, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(q.bottom[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = e
}

// pop implements scheduler.
func (q *ladderQueue) pop() *event {
	if q.n == 0 {
		return nil
	}
	q.ensureBottom()
	e := q.bottom[q.botPos]
	q.bottom[q.botPos] = nil // drop the reference for the pool's sake
	q.botPos++
	q.n--
	if q.botPos == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.botPos = 0
	}
	return e
}

// peekTime implements scheduler. Materializing the minimum may reorganize
// rungs, but never changes pop order.
func (q *ladderQueue) peekTime() (float64, bool) {
	if q.n == 0 {
		return 0, false
	}
	q.ensureBottom()
	return q.bottom[q.botPos].time, true
}

// size implements scheduler.
func (q *ladderQueue) size() int { return q.n }

// ensureBottom refills bottom until it holds the global minimum. Callers
// guarantee n > 0.
func (q *ladderQueue) ensureBottom() {
	for q.botPos == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.botPos = 0
		if q.nRungs > 0 {
			q.refillFromRung()
			continue // the rung may have turned out exhausted
		}
		q.transferTop()
	}
}

// refillFromRung consumes the deepest rung's next non-empty bucket: small
// buckets sort into bottom, overfull ones re-bucket into a deeper rung
// (unless all their times are equal, in which case subdividing cannot help
// and a seq-ordered sort is already the answer).
func (q *ladderQueue) refillFromRung() {
	r := &q.rungs[q.nRungs-1]
	for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
		r.cur++
	}
	if r.cur >= len(r.buckets) {
		if r.count > 0 {
			// Defensive: only add's clamp can file into a consumed last
			// bucket; rewind so the straggler pops instead of being dropped
			// with the rung.
			r.cur = len(r.buckets) - 1
		} else {
			q.nRungs--
			return
		}
	}
	b := r.buckets[r.cur]
	r.buckets[r.cur] = b[:0] // keep the backing array for the rung's next life
	r.cur++
	r.count -= len(b)
	if len(b) > ladderThresh && q.nRungs < ladderMaxRungs {
		minT, maxT := b[0].time, b[0].time
		for _, e := range b[1:] {
			if e.time < minT {
				minT = e.time
			}
			if e.time > maxT {
				maxT = e.time
			}
		}
		// A positive width needs minT < maxT and must survive the division
		// (a sub-ulp spread can round to zero); otherwise fall through to
		// the sort.
		if w := (maxT - minT) / float64(len(b)); w > 0 {
			// The spawn may have consumed the parent's last bucket; the
			// parent cannot be removed here (the child takes the deepest
			// slot), so push skips it by its cur == len(buckets) mark and
			// the check above drops it once the child drains.
			nr := q.initRung(q.nRungs, minT, w, len(b))
			q.nRungs++
			for _, e := range b {
				nr.add(e)
			}
			return
		}
	}
	if r.cur == len(r.buckets) {
		// The rung's last bucket is consumed: remove the rung eagerly so a
		// push between now and the next refill can never target its dead
		// band (events filed there would be dropped with the rung).
		q.nRungs--
	}
	q.bottom = append(q.bottom, b...)
	sortEvents(q.bottom)
}

// transferTop pours the far-future spill list into a fresh rung 0 (or, when
// its times are all equal or the spread vanishes, straight into bottom) and
// advances topStart so future pushes beyond the poured band spill anew.
// Precondition: no rungs, bottom consumed, top non-empty.
func (q *ladderQueue) transferTop() {
	q.topStart = q.topMax
	if w := (q.topMax - q.topMin) / float64(len(q.top)); len(q.top) > 1 && w > 0 {
		r := q.initRung(0, q.topMin, w, len(q.top))
		q.nRungs = 1
		for _, e := range q.top {
			r.add(e)
		}
	} else {
		q.bottom = append(q.bottom, q.top...)
		sortEvents(q.bottom)
	}
	clear(q.top)
	q.top = q.top[:0]
	q.topMin = math.Inf(1)
	q.topMax = math.Inf(-1)
}

// initRung readies rung slot i to cover [start, start+width*nb), reusing
// both the bucket-slice table and every bucket backing array a previous
// life of the slot left behind — the rung-level analogue of the event free
// list, keeping steady-state refills allocation-free.
func (q *ladderQueue) initRung(i int, start, width float64, nb int) *ladderRung {
	r := &q.rungs[i]
	r.start, r.width, r.cur, r.count = start, width, 0, 0
	if cap(r.buckets) < nb {
		old := r.buckets[:cap(r.buckets)]
		r.buckets = make([][]*event, nb)
		copy(r.buckets, old)
	}
	r.buckets = r.buckets[:nb]
	for j := range r.buckets {
		r.buckets[j] = r.buckets[j][:0]
	}
	return r
}

// sortEvents sorts ascending by eventLess: introsort-style quicksort with
// median-of-three pivoting, recursing on the smaller half, finishing small
// ranges by insertion sort. A concrete sort, because sort.Slice costs a
// closure allocation plus interface dispatch per comparison — on the
// refill path that would put allocations back into the steady-state event
// loop the free lists got rid of. Keys are unique ((time, seq) with unique
// seq), so equal-pivot pathologies cannot arise.
func sortEvents(a []*event) {
	for len(a) > 12 {
		m := len(a) / 2
		last := len(a) - 1
		// Median-of-three: order a[0] ≤ a[m] ≤ a[last], pivot on a[m].
		if eventLess(a[m], a[0]) {
			a[m], a[0] = a[0], a[m]
		}
		if eventLess(a[last], a[0]) {
			a[last], a[0] = a[0], a[last]
		}
		if eventLess(a[last], a[m]) {
			a[last], a[m] = a[m], a[last]
		}
		pivot := a[m]
		i, j := 0, last
		for i <= j {
			for eventLess(a[i], pivot) {
				i++
			}
			for eventLess(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j < len(a)-i {
			sortEvents(a[:j+1])
			a = a[i:]
		} else {
			sortEvents(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && eventLess(e, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}
