// Package sim is a discrete-event simulator for priority-type cluster
// computing systems: multi-class Poisson arrivals, multi-server stations with
// FCFS / non-preemptive / preemptive-resume priority scheduling, DVFS energy
// accounting, and replication-based output analysis. It is the paper's C5
// substrate: every analytical quantity in internal/cluster is validated
// against this simulator.
package sim

import (
	"math"

	"clusterq/internal/queueing"
)

// RNG is a xoshiro256++ pseudo-random generator with SplitMix64 seeding:
// fast, high quality, and deterministic across platforms — replication seeds
// are simple integers.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator; any seed (including 0) is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential variate with the given rate (> 0).
func (r *RNG) Exp(rate float64) float64 {
	// 1−U ∈ (0, 1] avoids log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Split derives an independent generator (for per-station or per-class
// streams) from the current one.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Sampler draws service (work) samples from a distribution.
type Sampler interface {
	Sample(r *RNG) float64
	// Mean returns the distribution mean, for verification.
	Mean() float64
}

type expSampler struct{ mean float64 }

func (s expSampler) Sample(r *RNG) float64 { return r.Exp(1 / s.mean) }
func (s expSampler) Mean() float64         { return s.mean }

type detSampler struct{ v float64 }

func (s detSampler) Sample(*RNG) float64 { return s.v }
func (s detSampler) Mean() float64       { return s.v }

type erlangSampler struct {
	k    int
	rate float64 // per-stage rate = k/mean
}

func (s erlangSampler) Sample(r *RNG) float64 {
	var sum float64
	for i := 0; i < s.k; i++ {
		sum += r.Exp(s.rate)
	}
	return sum
}
func (s erlangSampler) Mean() float64 { return float64(s.k) / s.rate }

type hyperSampler struct {
	p      float64
	m1, m2 float64
}

func (s hyperSampler) Sample(r *RNG) float64 {
	if r.Float64() < s.p {
		return r.Exp(1 / s.m1)
	}
	return r.Exp(1 / s.m2)
}
func (s hyperSampler) Mean() float64 { return s.p*s.m1 + (1-s.p)*s.m2 }

type uniformSampler struct{ lo, hi float64 }

func (s uniformSampler) Sample(r *RNG) float64 { return s.lo + (s.hi-s.lo)*r.Float64() }
func (s uniformSampler) Mean() float64         { return (s.lo + s.hi) / 2 }

// SamplerFor builds a variate sampler matching a queueing.ServiceDist: the
// simulator draws from exactly the distribution family the analytical model
// assumes, so discrepancies measure the *network* approximation, not a
// distribution mismatch.
func SamplerFor(d queueing.ServiceDist) Sampler {
	switch t := d.(type) {
	case queueing.Exponential:
		return expSampler{mean: t.M}
	case queueing.Deterministic:
		return detSampler{v: t.M}
	case queueing.Erlang:
		return erlangSampler{k: t.K, rate: float64(t.K) / t.M}
	case queueing.HyperExp:
		return hyperSampler{p: t.P, m1: t.M1, m2: t.M2}
	case queueing.Uniform:
		return uniformSampler{lo: t.Lo, hi: t.Hi}
	default:
		// Unknown families fall back to an exponential with the same
		// mean — documented, conservative, and exercised in tests.
		return expSampler{mean: d.Mean()}
	}
}
