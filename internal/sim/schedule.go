package sim

// The Schedule profile lives outside arrivals.go deliberately: its
// constructor formats validation errors (whose operands the compiler boxes
// onto the heap), and arrivals.go is part of the hotalloc-policed
// allocation-free file set. Construction happens once per experiment, never
// on the event loop, so the escapes are fine here and the hot-path gate
// stays exact.

import (
	"fmt"
	"math"
)

// Schedule is a piecewise-constant multi-period rate profile: rate Rates[i]
// holds on [Times[i], Times[i+1]), and the last rate holds forever. With a
// positive Period the whole schedule cycles (t is taken modulo Period), which
// is how a multi-day staircase or a repeating business-hours pattern is
// spelled. Construct with NewSchedule.
type Schedule struct {
	Times  []float64 // breakpoints, ascending, Times[0] == 0
	Rates  []float64 // Rates[i] holds from Times[i]
	Period float64   // 0 = no cycling
	max    float64
}

// NewSchedule validates and returns the profile. times and rates must have
// equal length ≥ 1, times must start at 0 and strictly ascend, rates must be
// non-negative, and a positive period must not cut a segment short (every
// breakpoint below it).
func NewSchedule(times, rates []float64, period float64) (Schedule, error) {
	if len(times) == 0 || len(times) != len(rates) {
		return Schedule{}, fmt.Errorf("sim: schedule needs matching non-empty breakpoints and rates (%d vs %d)",
			len(times), len(rates))
	}
	if times[0] != 0 {
		return Schedule{}, fmt.Errorf("sim: schedule must start at t=0, got %g", times[0])
	}
	var max float64
	for i, r := range rates {
		if !(r >= 0) {
			return Schedule{}, fmt.Errorf("sim: schedule rate %d is %g, must be non-negative", i, r)
		}
		if r > max {
			max = r
		}
		if i > 0 && !(times[i] > times[i-1]) {
			return Schedule{}, fmt.Errorf("sim: schedule breakpoints must strictly ascend (%g after %g)",
				times[i], times[i-1])
		}
	}
	if period != 0 && !(period > times[len(times)-1]) {
		return Schedule{}, fmt.Errorf("sim: schedule period %g must exceed the last breakpoint %g",
			period, times[len(times)-1])
	}
	return Schedule{
		Times:  append([]float64(nil), times...),
		Rates:  append([]float64(nil), rates...),
		Period: period,
		max:    max,
	}, nil
}

// RateAt implements Profile.
func (s Schedule) RateAt(t float64) float64 {
	if s.Period > 0 {
		t = math.Mod(t, s.Period)
	}
	// Segments are few (an experiment's staircase), so the linear scan from
	// the top finds the holding segment without a search structure.
	for i := len(s.Times) - 1; i >= 0; i-- {
		if t >= s.Times[i] {
			return s.Rates[i]
		}
	}
	return s.Rates[0]
}

// MaxRate implements Profile.
func (s Schedule) MaxRate() float64 { return s.max }
