package sim

import (
	"fmt"

	"clusterq/internal/stats"
)

// SimulateForkJoin measures the mean response time of a k-queue fork-join
// system: Poisson(λ) jobs fork into k siblings, one per parallel FCFS M/M(μ)/1
// queue, and complete when the last sibling finishes. It is the ground truth
// the queueing.ForkJoinNelsonTantawi approximation is validated against.
//
// The function runs `reps` independent replications of `horizon` simulated
// seconds (10% warmup) in the calling goroutine — fork-join experiments
// parallelize across parameter points instead.
func SimulateForkJoin(k int, lambda, mu, horizon float64, reps int, seed uint64) (stats.Estimate, error) {
	if k < 1 || lambda < 0 || mu <= 0 || horizon <= 0 || reps < 1 {
		return stats.Estimate{}, fmt.Errorf("sim: invalid fork-join parameters k=%d λ=%g μ=%g horizon=%g reps=%d",
			k, lambda, mu, horizon, reps)
	}
	var acc stats.Welford
	var total int64
	for r := 0; r < reps; r++ {
		mean, n := forkJoinRep(k, lambda, mu, horizon, seed+uint64(r))
		if n > 0 {
			acc.Add(mean)
			total += n
		}
	}
	return stats.Estimate{
		Mean: acc.Mean(), HalfW: acc.CI(0.95), Level: 0.95,
		Samples: total, Batches: acc.Count(),
	}, nil
}

// fjEvent is one event of the dedicated fork-join simulator.
type fjEvent struct {
	time  float64
	seq   uint64
	queue int // -1 for arrivals, else the queue whose head departs
}

// fjHeap is a concrete binary min-heap of fork-join events ordered by
// (time, seq). Like eventHeap it avoids container/heap's per-operation
// interface boxing; events are small values, so the heap itself is the only
// storage they ever occupy.
type fjHeap []fjEvent

func (h fjHeap) less(i, j int) bool {
	//lint:waive floateq reason="deliberate exact compare: bitwise-equal times fall through to the seq tie-break" until=2027-08-01
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *fjHeap) push(e fjEvent) {
	*h = append(*h, e)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *fjHeap) pop() fjEvent {
	s := *h
	e := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return e
}

// fjJob tracks one forked job.
type fjJob struct {
	arrival float64
	pending int // siblings not yet finished
}

// forkJoinRep runs one replication and returns the mean post-warmup response
// and the sample count.
func forkJoinRep(k int, lambda, mu, horizon float64, seed uint64) (float64, int64) {
	rng := NewRNG(seed)
	warmup := horizon * 0.1

	var cal fjHeap
	seq := uint64(0)
	push := func(t float64, queue int) {
		cal.push(fjEvent{time: t, seq: seq, queue: queue})
		seq++
	}
	if lambda > 0 {
		push(rng.Exp(lambda), -1)
	}

	queues := make([]deque[*fjJob], k) // FIFO per queue; head is in service
	var free []*fjJob                  // recycled jobs: live set bounds allocation
	var resp stats.Welford

	for len(cal) > 0 {
		e := cal.pop()
		now := e.time
		if now > horizon {
			break
		}
		if e.queue < 0 {
			// Arrival: fork into every queue; start service where idle.
			push(now+rng.Exp(lambda), -1)
			var j *fjJob
			if n := len(free); n > 0 {
				j, free = free[n-1], free[:n-1]
			} else {
				j = &fjJob{}
			}
			j.arrival, j.pending = now, k
			for q := 0; q < k; q++ {
				queues[q].pushBack(j)
				if queues[q].len() == 1 {
					push(now+rng.Exp(mu), q)
				}
			}
			continue
		}
		// Departure of the head of queue e.queue.
		q := e.queue
		j := queues[q].popFront()
		j.pending--
		if j.pending == 0 {
			if j.arrival >= warmup {
				resp.Add(now - j.arrival)
			}
			free = append(free, j) // last sibling done: no queue holds it
		}
		if queues[q].len() > 0 {
			push(now+rng.Exp(mu), q)
		}
	}
	return resp.Mean(), resp.Count()
}
