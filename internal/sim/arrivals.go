package sim

import (
	"fmt"
	"math"
)

// Profile is a time-varying arrival-rate function for one class. The
// simulator generates arrivals by thinning a Poisson stream at MaxRate, so
// RateAt must never exceed MaxRate. Profiles are the workload side of the
// dynamic power management extension: the analytical model covers the
// stationary case, the simulator explores what happens when traffic moves.
type Profile interface {
	// RateAt returns the instantaneous arrival rate at time t ≥ 0.
	RateAt(t float64) float64
	// MaxRate returns a finite upper bound on RateAt over all t.
	MaxRate() float64
}

// ConstantRate is the stationary Poisson profile (the paper's model).
type ConstantRate float64

// RateAt implements Profile.
func (c ConstantRate) RateAt(float64) float64 { return float64(c) }

// MaxRate implements Profile.
func (c ConstantRate) MaxRate() float64 { return float64(c) }

// Sinusoid is a smooth diurnal profile:
//
//	λ(t) = Mean + Amplitude · sin(2π(t+Phase)/Period).
//
// Amplitude must not exceed Mean (rates stay non-negative).
type Sinusoid struct {
	Mean, Amplitude, Period, Phase float64
}

// NewSinusoid validates and returns the profile.
func NewSinusoid(mean, amplitude, period float64) (Sinusoid, error) {
	if !(mean >= 0) || amplitude < 0 || amplitude > mean || !(period > 0) {
		return Sinusoid{}, fmt.Errorf("sim: invalid sinusoid mean=%g amp=%g period=%g", mean, amplitude, period)
	}
	return Sinusoid{Mean: mean, Amplitude: amplitude, Period: period}, nil
}

// RateAt implements Profile.
func (s Sinusoid) RateAt(t float64) float64 {
	return s.Mean + s.Amplitude*math.Sin(2*math.Pi*(t+s.Phase)/s.Period)
}

// MaxRate implements Profile.
func (s Sinusoid) MaxRate() float64 { return s.Mean + s.Amplitude }

// SquareWave is the day/night profile: rate High for the first
// HighFraction of every period, Low for the rest.
type SquareWave struct {
	Low, High, Period, HighFraction float64
}

// NewSquareWave validates and returns the profile.
func NewSquareWave(low, high, period, highFraction float64) (SquareWave, error) {
	if low < 0 || high < low || !(period > 0) || highFraction < 0 || highFraction > 1 {
		return SquareWave{}, fmt.Errorf("sim: invalid square wave low=%g high=%g period=%g frac=%g",
			low, high, period, highFraction)
	}
	return SquareWave{Low: low, High: high, Period: period, HighFraction: highFraction}, nil
}

// RateAt implements Profile.
func (s SquareWave) RateAt(t float64) float64 {
	phase := math.Mod(t, s.Period) / s.Period
	if phase < s.HighFraction {
		return s.High
	}
	return s.Low
}

// MaxRate implements Profile.
func (s SquareWave) MaxRate() float64 { return s.High }

// arrivalChunk is how many accepted arrivals refillArrivals pregenerates per
// class per refill. One refill amortizes the profile-interface dispatch and
// RNG state traffic over the whole chunk, and the highest-rate classes stop
// paying a calendar round-trip per *candidate*: rejected candidates now cost
// two RNG draws instead of a schedule/pop/recycle cycle.
const arrivalChunk = 64

// arrivalQueue is one class's ring of pregenerated accepted arrival times,
// consumed lazily by handleArrival. Entries are absolute times, ascending;
// next is the first candidate time not yet thinned, carried across refills
// so the per-class RNG stream is consumed in exactly the order the
// one-at-a-time generator consumed it.
type arrivalQueue struct {
	times [arrivalChunk]float64
	head  int
	n     int
	next  float64
}

// pop removes and returns the earliest pending arrival time. The caller
// guarantees the ring is non-empty (refilling first when needed).
func (q *arrivalQueue) pop() float64 {
	t := q.times[q.head]
	q.head++
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return t
}

// refillArrivals batch-generates the next chunk of accepted arrivals for
// class k. Determinism is preserved draw for draw: the loop walks the same
// candidate chain (t_{i+1} = t_i + Exp) and interleaves the thinning draws
// exactly as the unbatched generator did — the successor's interarrival draw
// precedes the current candidate's accept draw — so the per-class RNG stream
// is consumed in the identical order and every accepted time is the
// identical float. Constant-rate profiles never thin (RateAt == MaxRate, so
// accept < 1 is false), which is why golden-hash runs are bit-identical.
//
// Generation stops at the chunk size or at the first candidate past the
// horizon: that candidate (accepted or not) is kept when the ring is
// otherwise empty, so the scheduled arrival chain always terminates in one
// past-horizon event that is never processed — the invariant
// TestClockNeverExceedsHorizon relies on. Over-drawing past the horizon is
// harmless: each class owns its split RNG stream, so no other consumer's
// draws shift.
func (s *simulator) refillArrivals(k int) {
	q := &s.arrQ[k]
	q.head = 0 // only ever refilled when empty
	prof := s.profiles[k]
	maxRate := prof.MaxRate()
	rng := s.arrRNG[k]
	for q.n < arrivalChunk {
		t := q.next
		q.next = t + rng.Exp(maxRate)
		// Thinning: the candidate becomes a real arrival with probability
		// λ(t)/λ_max, yielding an exact non-homogeneous Poisson process.
		ok := true
		if accept := prof.RateAt(t) / maxRate; accept < 1 && rng.Float64() >= accept {
			ok = false
		}
		if ok || (t > s.horizon && q.n == 0) {
			q.times[q.n] = t
			q.n++
		}
		if t > s.horizon {
			return
		}
	}
}

// MeanRate returns the long-run average rate of a profile over one period
// for the built-in shapes, or the constant rate. Used to pick fair static
// baselines in experiments.
func MeanRate(p Profile) float64 {
	switch t := p.(type) {
	case ConstantRate:
		return float64(t)
	case Sinusoid:
		return t.Mean
	case SquareWave:
		return t.High*t.HighFraction + t.Low*(1-t.HighFraction)
	case Schedule:
		if t.Period > 0 {
			// Time-weighted average over one cycle.
			var sum float64
			for i, r := range t.Rates {
				end := t.Period
				if i+1 < len(t.Times) {
					end = t.Times[i+1]
				}
				sum += r * (end - t.Times[i])
			}
			return sum / t.Period
		}
		// Without cycling the final segment holds forever and dominates the
		// long-run average.
		return t.Rates[len(t.Rates)-1]
	default:
		// Numerical average over a generic profile, using its max rate to
		// choose a sampling span.
		const samples = 10000
		span := 1000.0
		var sum float64
		for i := 0; i < samples; i++ {
			sum += p.RateAt(span * float64(i) / samples)
		}
		return sum / samples
	}
}
