package sim

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// TestQueueGainSentinel pins the zero-vs-unset fix: QueueGain's zero value
// means "unset, use the default", and disabling the queue-pressure boost
// takes the explicit ZeroQueueGain sentinel — exactly the ZeroWarmup
// convention. Before the fix an explicit 0 silently became the default 0.1,
// so the boost could not be turned off at all.
func TestQueueGainSentinel(t *testing.T) {
	if got := (UtilizationPolicy{}).queueGain(); got != 0.1 {
		t.Errorf("unset QueueGain = %g, want default 0.1", got)
	}
	if got := (UtilizationPolicy{QueueGain: ZeroQueueGain}.queueGain()); got != 0 {
		t.Errorf("ZeroQueueGain = %g, want boost disabled (0)", got)
	}
	if got := (UtilizationPolicy{QueueGain: -3}.queueGain()); got != 0 {
		t.Errorf("negative QueueGain = %g, want boost disabled (0)", got)
	}
	if got := (UtilizationPolicy{QueueGain: 0.3}.queueGain()); got != 0.3 {
		t.Errorf("explicit QueueGain = %g, want 0.3", got)
	}

	// Decision-level regression: with a long queue the boost must be fully
	// inert under ZeroQueueGain — the decision collapses to the pure
	// utilization step (util 1.0 at target 0.5, gain 1 ⇒ double the speed).
	obs := Observation{Utilization: 1, Speed: 2, Servers: 2, QueueLen: 50,
		MinSpeed: 0.1, MaxSpeed: 100}
	boosted := UtilizationPolicy{Target: 0.5, Gain: 1}.Decide(obs)
	flat := UtilizationPolicy{Target: 0.5, Gain: 1, QueueGain: ZeroQueueGain}.Decide(obs)
	if !almostEq(flat, 4, 1e-9) {
		t.Errorf("ZeroQueueGain decision = %g, want pure utilization step 4", flat)
	}
	if !(boosted > flat) {
		t.Errorf("default boost %g not above disabled boost %g", boosted, flat)
	}
}

// nanPolicy is a broken controller that always returns NaN — the shape a
// divide-by-zero inside a user policy produces.
type nanPolicy struct{}

func (nanPolicy) Name() string               { return "nan" }
func (nanPolicy) Decide(Observation) float64 { return math.NaN() }

// TestNaNControllerDecisionDegradesToMinSpeed pins the NaN-clamp fix. A NaN
// desired speed passes both clamp comparisons (NaN<min and NaN>max are both
// false), so before the guard it reached setSpeed, poisoned every departure
// time at the station, and silently terminated the whole run at the first
// control epoch (a NaN event time fails the `t <= horizon` pending check).
// With the guard the decision degrades to the station's MinSpeed and the run
// completes the full horizon with finite statistics — including under
// breakdowns, where the repair path reschedules work at the (clamped) speed.
func TestNaNControllerDecisionDegradesToMinSpeed(t *testing.T) {
	c := oneTier(2, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.2}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	o := Options{
		Horizon: 4000, Replications: 2, Seed: 7,
		Controller: nanPolicy{}, ControlPeriod: 25,
		Failures: []*FailureConfig{{MTBF: 50, MTTR: 5}},
		Probe:    &Probe{Period: 100},
	}
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	// Station minSpeed defaults to Speed/4 = 0.25, so capacity stays above
	// the offered 0.2 work/s: the run must deliver roughly λ·horizon·reps
	// completions, not the handful that fit before the first control epoch.
	if want := int64(0.2 * 4000 * 2 / 2); res.Completed[0] < want {
		t.Errorf("completions %d < %d: NaN decision wedged the run early", res.Completed[0], want)
	}
	if math.IsNaN(res.Delay[0].Mean) || math.IsNaN(res.TotalPower.Mean) {
		t.Errorf("NaN leaked into results: delay %g power %g", res.Delay[0].Mean, res.TotalPower.Mean)
	}
	// The degraded decision is applied as a real retune to MinSpeed (once:
	// subsequent identical decisions are skipped by setSpeed).
	if res.EventCounts[TraceRetune] == 0 {
		t.Error("no retune events: the clamped NaN decision was never applied")
	}
}
