package sim

// deque is a growable ring buffer holding a waiting line. The simulators
// push at the back (arrivals), pop at the front (service order), and push
// at the front (preempted jobs resuming ahead of their class line). A plain
// slice serving that pattern with q = q[1:] pops leaks front capacity and
// keeps re-allocating as the slice walks through its backing arrays; the
// ring reuses its storage, so once a replication reaches its high-water
// queue length the waiting lines stop allocating. The zero value is an
// empty deque ready for use.
type deque[T comparable] struct {
	buf  []T
	head int // index of the front element
	n    int // number of queued elements
}

// jobDeque is a station's waiting line (see simStation).
type jobDeque = deque[*job]

func (d *deque[T]) len() int { return d.n }

// grow doubles the buffer (minimum 8) and re-linearizes the ring.
func (d *deque[T]) grow() {
	c := 2 * len(d.buf)
	if c == 0 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = nb, 0
}

// pushBack appends an element at the tail of the line.
func (d *deque[T]) pushBack(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = x
	d.n++
}

// pushFront inserts an element at the head of the line (preemption requeue).
func (d *deque[T]) pushFront(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = x
	d.n++
}

// front returns the head of the line without removing it; the caller must
// have checked len() > 0.
func (d *deque[T]) front() T { return d.buf[d.head] }

// popFront removes and returns the head of the line; the caller must have
// checked len() > 0.
func (d *deque[T]) popFront() T {
	var zero T
	x := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return x
}

// removeFirst deletes the first element equal to x, preserving the order of
// the rest, and reports whether it was found. An O(n) scan plus shift —
// used by the deadline extension to pull a timed-out job out of its waiting
// line, an event rare relative to push/pop traffic.
func (d *deque[T]) removeFirst(x T) bool {
	for i := 0; i < d.n; i++ {
		if d.buf[(d.head+i)%len(d.buf)] == x {
			for k := i; k < d.n-1; k++ {
				d.buf[(d.head+k)%len(d.buf)] = d.buf[(d.head+k+1)%len(d.buf)]
			}
			var zero T
			d.buf[(d.head+d.n-1)%len(d.buf)] = zero
			d.n--
			return true
		}
	}
	return false
}
