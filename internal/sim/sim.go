package sim

import (
	"math"

	"clusterq/internal/cluster"
	"clusterq/internal/obs"
	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
	"clusterq/internal/stats"
)

// simulator holds the state of one replication.
type simulator struct {
	c        *cluster.Cluster
	cal      *calendar
	arrRNG   []*RNG // one arrival stream per class
	arrQ     []arrivalQueue
	svcRNG   []*RNG // one service stream per station
	stations []*simStation
	routes   [][]int

	warmup     float64
	horizon    float64
	warmupDone bool
	jobSeq     uint64

	// Dynamic power management extension: per-class arrival profiles
	// (constant when absent) and an optional runtime controller — either a
	// per-station DVFS policy or a plan-level (cluster-wide) one, never
	// both. planObs is the plan controller's reusable epoch observation.
	profiles       []Profile
	controller     Controller
	planController PlanController
	planObs        PlanObservation
	controlPeriod  float64

	// Probabilistic routing: per-class Markov chains (nil = deterministic
	// route) and the RNG streams that drive next-hop sampling.
	routings []*queueing.ClassRouting
	routeRNG []*RNG

	// Failure extension (nil/zero unless the corresponding option is set):
	// per-tier breakdown configs and RNG streams, per-class deadline
	// configs and retry-backoff streams, the shedding config with its
	// resolved hysteresis/cap, the current shed level, and the per-class
	// degraded-mode counters (post-warmup arrivals only).
	failures    []*FailureConfig
	failRNG     []*RNG
	deadlines   []*DeadlineConfig
	retryRNG    []*RNG
	shedCfg     *SheddingConfig
	shedResume  float64
	shedMax     int
	shedClasses int
	timeouts    []int64
	retries     []int64
	abandoned   []int64
	shed        []int64

	tr *traceWriter // nil unless Options.Trace is set

	// Flight recorder and window sensors (nil unless the corresponding
	// option is set; windows only on the recording replication). Hot-path
	// call sites carry their own nil guards — like the probe's — so the
	// disabled cost is one predictable branch per event, not a call.
	rec *trace.Recorder
	win *window.Set

	// Observability (nil/zero unless Options.Probe is set): the probe
	// config, the recording replication's timeline, per-class in-flight
	// counts, and per-event-type counters.
	probe    *Probe
	tl       *obs.Timeline
	inflight []int
	evCounts [numProbeKinds]int64

	delay     []*stats.Welford // end-to-end response per class
	delayQ    []*stats.QuantileSet
	completed []int64
	quantiles []float64

	// Free lists (see pool.go): recycled jobs and service runs, so the
	// steady-state event loop allocates nothing.
	jobFree []*job
	runFree []*serviceRun
}

// newSimulator builds one replication. record enables the probe's timeline
// capture (only the first replication records one; event counters run on
// every replication).
func newSimulator(c *cluster.Cluster, o Options, seed uint64, record bool) (*simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := NewRNG(seed)
	s := &simulator{
		c:              c,
		cal:            newCalendarKind(o.Calendar),
		warmup:         o.Warmup,
		warmupDone:     o.Warmup <= 0, // explicit zero warmup: never reset, measure from t=0
		horizon:        o.Horizon,
		routes:         make([][]int, len(c.Classes)),
		quantiles:      o.Quantiles,
		controller:     o.Controller,
		planController: o.PlanController,
		controlPeriod:  o.ControlPeriod,
		probe:          o.Probe,
	}
	if o.Trace != nil {
		s.tr = newTraceWriter(o.Trace)
	}
	// The recorder requires a single replication (validated in Run), and
	// the windows feed from the recording replication only, mirroring the
	// timeline: one coherent sensor stream, not an interleaving.
	if record {
		s.rec = o.Recorder
		s.win = o.Windows
	}
	if s.probe != nil && record {
		s.tl = obs.NewTimeline(timelineSeriesNames(len(c.Tiers), len(c.Classes))...)
		s.inflight = make([]int, len(c.Classes))
	}
	quantiles := o.Quantiles
	// Resolve arrival profiles: default every class to its constant rate.
	s.profiles = make([]Profile, len(c.Classes))
	for k, cl := range c.Classes {
		if o.Profiles != nil && o.Profiles[k] != nil {
			s.profiles[k] = o.Profiles[k]
		} else {
			s.profiles[k] = ConstantRate(cl.Lambda)
		}
	}
	for k := range c.Classes {
		s.routes[k] = c.Route(k)
	}
	s.routings = make([]*queueing.ClassRouting, len(c.Classes))
	if c.Routing != nil {
		copy(s.routings, c.Routing)
	}
	for range c.Classes {
		s.arrRNG = append(s.arrRNG, root.Split())
		s.routeRNG = append(s.routeRNG, root.Split())
	}
	for j, t := range c.Tiers {
		st := &simStation{
			idx:        j,
			servers:    t.Servers,
			speed:      t.Speed,
			minSpeed:   t.MinSpeed,
			maxSpeed:   t.MaxSpeed,
			discipline: t.Discipline,
			pm:         t.Power,
			queues:     make([]jobDeque, len(c.Classes)),
			waitByCls:  make([]*stats.Welford, len(c.Classes)),
			svcEnergy:  make([]float64, len(c.Classes)),
			servedCls:  make([]int64, len(c.Classes)),
		}
		// Controllers need a clamp range even when the tier left the DVFS
		// bounds unset.
		if st.minSpeed <= 0 {
			st.minSpeed = t.Speed / 4
		}
		if st.maxSpeed <= 0 {
			st.maxSpeed = t.Speed * 4
		}
		if o.Sleep != nil && o.Sleep[j] != nil {
			st.sleepEnabled = true
			st.setupSampler = SamplerFor(o.Sleep[j].Setup)
			st.sleepPower = o.Sleep[j].SleepPower
		}
		for k := range c.Classes {
			st.waitByCls[k] = &stats.Welford{}
			// Work samplers reproduce the analytical demand shape.
			d := t.Demands[k]
			st.samplers = append(st.samplers, SamplerFor(queueing.DistForCV2(d.Work, d.CV2)))
		}
		st.busy.StartAt(0, 0)
		st.epochBusy.StartAt(0, 0)
		st.powerTW.StartAt(0, st.instPower())
		s.stations = append(s.stations, st)
		s.svcRNG = append(s.svcRNG, root.Split())
	}
	s.delay = make([]*stats.Welford, len(c.Classes))
	s.delayQ = make([]*stats.QuantileSet, len(c.Classes))
	s.completed = make([]int64, len(c.Classes))
	s.timeouts = make([]int64, len(c.Classes))
	s.retries = make([]int64, len(c.Classes))
	s.abandoned = make([]int64, len(c.Classes))
	s.shed = make([]int64, len(c.Classes))
	for k := range c.Classes {
		s.delay[k] = &stats.Welford{}
		s.delayQ[k] = stats.NewQuantileSet(quantiles...)
	}
	// Failure-extension streams are split ONLY when the feature is on, and
	// after every pre-existing split: a run with all three features off
	// consumes exactly the RNG stream sequence it always did, keeping
	// disabled output bit-identical (the golden-hash tests pin this).
	if o.Failures != nil {
		s.failures = o.Failures
		for range c.Tiers {
			s.failRNG = append(s.failRNG, root.Split())
		}
	}
	if o.Deadlines != nil {
		s.deadlines = o.Deadlines
		for range c.Classes {
			s.retryRNG = append(s.retryRNG, root.Split())
		}
	}
	if o.Shedding != nil {
		s.shedCfg = o.Shedding
		s.shedResume = o.Shedding.ResumeBelow
		if s.shedResume == 0 {
			s.shedResume = 0.8 * o.Shedding.Threshold
		}
		s.shedMax = o.Shedding.MaxShedClasses
		if s.shedMax == 0 {
			s.shedMax = len(c.Classes) - 1
		}
		for _, st := range s.stations {
			st.shedEnabled = true
			st.shedBusy.StartAt(0, 0)
		}
	}
	// Prime the arrival machinery: per class, draw the first candidate time
	// — the same first draw the one-at-a-time generator made — then batch-
	// generate the first chunk of accepted arrivals (see refillArrivals) and
	// schedule the earliest. Thinning happens at generation time now, so the
	// calendar only ever carries accepted arrivals.
	s.arrQ = make([]arrivalQueue, len(c.Classes))
	for k := range c.Classes {
		if s.profiles[k].MaxRate() > 0 {
			s.arrQ[k].next = s.arrRNG[k].Exp(s.profiles[k].MaxRate())
			s.refillArrivals(k)
			s.cal.schedule(s.arrQ[k].pop(), evArrival, k, nil, 0, nil)
		}
	}
	// Prime the control loop.
	if (s.controller != nil || s.planController != nil) && s.controlPeriod > 0 {
		s.cal.schedule(s.controlPeriod, evControl, 0, nil, 0, nil)
	}
	if s.planController != nil {
		s.planObs = PlanObservation{
			Stations: make([]Observation, len(s.stations)),
			Rates:    make([]float64, len(c.Classes)),
		}
	}
	// Prime the probe's sampling loop.
	if s.probe != nil {
		s.cal.schedule(s.probe.Period, evSample, 0, nil, 0, nil)
	}
	// Prime one breakdown candidate per failing tier (see handleBreakdown
	// for the thinning construction) and the admission-control epoch.
	if s.failures != nil {
		for j, fc := range s.failures {
			if fc == nil {
				continue
			}
			st := s.stations[j]
			s.cal.schedule(s.failRNG[j].Exp(float64(st.servers)/fc.MTBF), evBreakdown, 0, nil, j, nil)
		}
	}
	if s.shedCfg != nil {
		s.cal.schedule(s.shedCfg.Period, evShedEpoch, 0, nil, 0, nil)
	}
	return s, nil
}

// hasPendingEvents reports whether at least one event remains at or before
// the horizon. It peeks rather than pops: the first past-horizon event stays
// in the heap and the clock never commits to its time, so cal.now is bounded
// by the horizon for the replication's whole life (asserted by
// TestClockNeverExceedsHorizon).
func (s *simulator) hasPendingEvents() bool {
	t, ok := s.cal.peekTime()
	return ok && t <= s.horizon
}

// processNextEvent pops and dispatches exactly one event, returning false —
// without touching the calendar — when no event at or before the horizon
// remains. This is the engine's single step; run() and the exported stepped
// Replication are both thin loops over it.
func (s *simulator) processNextEvent() bool {
	if !s.hasPendingEvents() {
		return false
	}
	e := s.cal.next()
	if !s.warmupDone && e.time >= s.warmup {
		s.endWarmup(e.time)
	}
	switch e.kind {
	case evArrival:
		s.handleArrival(e)
	case evDeparture:
		s.handleDeparture(e)
	case evControl:
		s.handleControl()
	case evSetupDone:
		s.handleSetupDone(e)
	case evSample:
		s.handleSample()
	case evBreakdown:
		s.handleBreakdown(e)
	case evRepair:
		s.handleRepair(e)
	case evTimeout:
		s.handleTimeout(e)
	case evRetry:
		s.handleRetry(e)
	case evShedEpoch:
		s.handleShedEpoch()
	}
	// The handler has returned and nothing retains the event (see
	// pool.go): recycle it for the next schedule.
	s.cal.recycle(e)
	return true
}

// run executes the replication to the horizon.
func (s *simulator) run() {
	for s.processNextEvent() {
	}
}

func (s *simulator) endWarmup(now float64) {
	s.warmupDone = true
	for _, st := range s.stations {
		st.resetStats(now)
	}
	for k := range s.delay {
		s.delay[k].Reset()
		s.delayQ[k] = stats.NewQuantileSet(s.quantiles...)
		s.completed[k] = 0
	}
}

func (s *simulator) handleArrival(e *event) {
	now := s.cal.now
	k := e.class
	// Schedule the next accepted arrival off the pregenerated ring, batch-
	// refilling it when drained (see refillArrivals — thinning against the
	// profile already happened at generation time, so there is no rejected-
	// candidate path here and the calendar round-trip per rejected candidate
	// is gone). Scheduling before any other work keeps the event sequence
	// numbering identical to the one-at-a-time generator's.
	q := &s.arrQ[k]
	if q.n == 0 {
		s.refillArrivals(k)
	}
	s.cal.schedule(q.pop(), evArrival, k, nil, 0, nil)

	// Admission control: the current shed level refuses the lowest
	// s.shedClasses classes before they enter (so they count as shed, not
	// as arrivals). One compare when shedding is idle or off.
	if s.shedClasses > 0 && k >= len(s.profiles)-s.shedClasses {
		s.tr.event(now, TraceShed, k, 0, -1, 0)
		s.count(pkShed)
		if now >= s.warmup {
			s.shed[k]++
		}
		return
	}

	s.jobSeq++
	j := s.allocJob()
	j.id, j.class, j.arrival = s.jobSeq, k, now
	s.tr.event(now, TraceArrival, k, j.id, -1, 0)
	s.count(pkArrival)
	if s.rec != nil {
		s.rec.RecordArrival(now, k, j.id)
	}
	if s.win != nil {
		s.win.ObserveArrival(now, k)
	}
	s.armDeadline(j, now)
	if s.inflight != nil {
		s.inflight[k]++
	}
	if r := s.routings[k]; r != nil {
		entry := s.sampleIndex(k, r.Entry)
		if entry < 0 {
			// Numerically empty entry distribution: the job never enters.
			if s.inflight != nil {
				s.inflight[k]--
			}
			if s.rec != nil {
				s.rec.RecordExit(now, k, j.id, trace.OutcomeDropped)
			}
			s.freeJob(j)
			return
		}
		s.deliverTo(j, entry, now)
		return
	}
	s.deliver(j, now)
}

// sampleIndex draws an index from a (sub)stochastic row using class k's
// routing stream; -1 means "none" (the residual mass, i.e. exit).
func (s *simulator) sampleIndex(k int, probs []float64) int {
	u := s.routeRNG[k].Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return -1
}

// handleControl runs one epoch of the runtime controller — the per-station
// DVFS path here, or the plan-level path in plan.go.
func (s *simulator) handleControl() {
	now := s.cal.now
	if s.planController != nil {
		s.handlePlanControl(now)
		s.cal.schedule(now+s.controlPeriod, evControl, 0, nil, 0, nil)
		return
	}
	for _, st := range s.stations {
		// The controller sees load against the capacity actually on the
		// floor: failed servers do not serve, so dividing by the configured
		// count would understate utilization exactly when breakdowns make
		// the control decision matter (see upUtilization).
		obs := s.observeStation(st, now)
		next := s.controller.Decide(obs)
		// A NaN decision would pass BOTH clamp comparisons below (NaN<min
		// and NaN>max are both false) and poison every departure time at
		// the station — the whole run would then terminate silently early,
		// because a NaN event time fails the `t <= horizon` pending check.
		// Any non-finite decision degrades to the safe floor instead.
		if math.IsNaN(next) {
			next = st.minSpeed
		}
		if next < st.minSpeed {
			next = st.minSpeed
		}
		if next > st.maxSpeed {
			next = st.maxSpeed
		}
		s.setSpeed(st, now, next)
		st.epochBusy.StartAt(now, float64(len(st.running)))
	}
	s.cal.schedule(now+s.controlPeriod, evControl, 0, nil, 0, nil)
}

// observeStation builds one station's per-epoch controller observation.
func (s *simulator) observeStation(st *simStation, now float64) Observation {
	return Observation{
		Time:        now,
		Station:     st.idx,
		Utilization: st.upUtilization(st.epochBusy.MeanAt(now)),
		QueueLen:    st.queueLen(),
		Speed:       st.speed,
		Servers:     st.servers,
		MinSpeed:    st.minSpeed,
		MaxSpeed:    st.maxSpeed,
	}
}

// maybeWake starts warming a sleeping server when there is more queued work
// than servers already warming up.
func (s *simulator) maybeWake(st *simStation, now float64) {
	if st.sleepingServers() > 0 && st.settingUp < st.queueLen() {
		s.tr.event(now, TraceSetupBegin, -1, 0, st.idx, 0)
		s.count(pkSetupBegin)
		st.settingUp++
		st.observeBusy(now) // power steps from sleep to setup level
		d := st.setupSampler.Sample(s.svcRNG[st.idx])
		s.cal.schedule(now+d, evSetupDone, 0, nil, st.idx, nil)
	}
}

// handleSetupDone puts a freshly warmed server to work, or straight back to
// sleep when the queue drained while it warmed up.
func (s *simulator) handleSetupDone(e *event) {
	now := s.cal.now
	st := s.stations[e.station]
	st.settingUp--
	s.tr.event(now, TraceSetupDone, -1, 0, st.idx, 0)
	s.count(pkSetupDone)
	if next := st.nextWaiting(); next != nil {
		s.startService(st, next, now)
	} else {
		st.observeBusy(now) // back to sleep
	}
}

// setSpeed retunes a station mid-run: every in-flight service banks its
// segment at the old speed, then resumes at the new one with its departure
// rescheduled from the remaining work.
func (s *simulator) setSpeed(st *simStation, now, speed float64) {
	//lint:waive floateq reason="deliberate exact compare: skip the reschedule only when the controller hands back the identical speed" until=2027-08-01
	if speed == st.speed {
		return
	}
	s.tr.event(now, TraceRetune, -1, 0, st.idx, speed)
	s.count(pkRetune)
	old := st.running
	// Bank all segments at the old speed before switching.
	for _, run := range old {
		st.bankSegment(run, now)
		run.cancelled = true
	}
	st.speed = speed
	// Swap in the scratch backing array instead of allocating a fresh
	// running set per retune; the old array becomes the next scratch.
	st.running = st.runScratch[:0]
	for _, run := range old {
		nr := s.allocRun()
		nr.job, nr.start = run.job, now
		st.running = append(st.running, nr)
		rem := run.job.remaining
		if rem < 1e-12 {
			rem = 1e-12
		}
		s.cal.schedule(now+rem/speed, evDeparture, 0, run.job, st.idx, nr)
	}
	st.runScratch = old[:0]
	st.observeBusy(now) // record the new power level
}

// deliver hands the job to the next station on its deterministic route.
func (s *simulator) deliver(j *job, now float64) {
	s.deliverTo(j, s.routes[j.class][j.routePos], now)
}

// deliverTo hands the job to a specific station, drawing a fresh work sample.
func (s *simulator) deliverTo(j *job, stIdx int, now float64) {
	st := s.stations[stIdx]
	j.cur = stIdx
	j.remaining = st.samplers[j.class].Sample(s.svcRNG[stIdx])
	j.enqueued = now
	j.servedTime = 0
	s.arriveAtStation(st, j, now)
}

func (s *simulator) arriveAtStation(st *simStation, j *job, now float64) {
	if st.sleepEnabled {
		// Instant-off: there are never awake idle servers; the job queues
		// and a sleeper starts warming up if one is available and not
		// already spoken for.
		st.enqueue(j, now)
		s.maybeWake(st, now)
		return
	}
	if st.freeServers() > 0 {
		s.startService(st, j, now)
		return
	}
	if st.discipline == queueing.PreemptiveResume {
		if victim := st.lowestPriorityRunning(); victim != nil && j.class < victim.job.class {
			s.preempt(st, victim, now)
			s.startService(st, j, now)
			return
		}
	}
	st.enqueue(j, now)
}

// preempt stops a running service, banks the finished work segment, and
// requeues the job at the head of its class line.
func (s *simulator) preempt(st *simStation, run *serviceRun, now float64) {
	s.tr.event(now, TracePreempt, run.job.class, run.job.id, st.idx, 0)
	s.count(pkPreempt)
	if s.rec != nil {
		s.rec.RecordPreempt(now, run.job.class, run.job.id, st.idx)
	}
	run.cancelled = true
	st.bankSegment(run, now)
	if run.job.remaining < 1e-12 {
		run.job.remaining = 1e-12 // numerically vanished; finishes immediately on resume
	}
	st.dropRun(run)
	st.observeBusy(now)
	st.requeueFront(run.job)
}

func (s *simulator) startService(st *simStation, j *job, now float64) {
	s.tr.event(now, TraceStart, j.class, j.id, st.idx, 0)
	s.count(pkStart)
	if s.rec != nil {
		s.rec.RecordServiceStart(now, j.class, j.id, st.idx)
	}
	run := s.allocRun()
	run.job, run.start = j, now
	st.running = append(st.running, run)
	st.observeBusy(now)
	s.cal.schedule(now+j.remaining/st.speed, evDeparture, 0, j, st.idx, run)
}

func (s *simulator) handleDeparture(e *event) {
	if e.run.cancelled {
		// The stale event was the last reference to the cancelled run
		// (preempt/setSpeed dropped it from the running set): recycle it.
		s.freeRun(e.run)
		return
	}
	now := s.cal.now
	st := s.stations[e.station]
	j := e.job
	// Bank the final service segment (energy + in-service time), then
	// retire and recycle the run. Everything at the station that was not
	// in-service time was waiting, including gaps caused by preemption.
	st.bankSegment(e.run, now)
	st.dropRun(e.run)
	s.freeRun(e.run)
	st.observeBusy(now)

	wait := (now - j.enqueued) - j.servedTime
	if wait < 0 {
		wait = 0 // floating-point dust on uncontended visits
	}
	if j.arrival >= s.warmup {
		// Per-tier visit statistics apply the same arrival-time filter as
		// the end-to-end delays below: a job that arrived during the warmup
		// transient must not leak into steady-state tier stats just because
		// its visit completed after the warmup reset.
		st.waitByCls[j.class].Add(wait)
		st.servedCls[j.class]++
	}
	s.tr.event(now, TraceVisitEnd, j.class, j.id, st.idx, 0)
	s.count(pkVisitEnd)
	if s.rec != nil {
		s.rec.RecordServiceStop(now, j.class, j.id, st.idx)
	}

	// Hand the freed server to the queue BEFORE routing the departing job
	// onward: a job feeding back to the same station must rejoin behind
	// the work already waiting, not grab the server it just released. The
	// free-server check only bites during a lazy shrink (a plan controller
	// parked servers while they were busy): the finished service then
	// retires its server instead of backfilling.
	if st.freeServers() > 0 {
		if next := st.nextWaiting(); next != nil {
			s.startService(st, next, now)
		}
	}

	// Route advance: probabilistic next hop under a routing chain,
	// positional advance along a deterministic route otherwise.
	done := false
	if r := s.routings[j.class]; r != nil {
		next := s.sampleIndex(j.class, r.Next[j.cur])
		if next >= 0 {
			s.deliverTo(j, next, now)
		} else {
			done = true
		}
	} else {
		j.routePos++
		if j.routePos < len(s.routes[j.class]) {
			s.deliver(j, now)
		} else {
			done = true
		}
	}
	if done {
		s.tr.event(now, TraceExit, j.class, j.id, -1, now-j.arrival)
		s.count(pkExit)
		if s.rec != nil {
			s.rec.RecordExit(now, j.class, j.id, trace.OutcomeCompleted)
		}
		if s.win != nil {
			s.win.ObserveSojourn(now, j.class, now-j.arrival)
		}
		if s.inflight != nil {
			s.inflight[j.class]--
		}
		if j.arrival >= s.warmup {
			// Only post-warmup arrivals count toward steady-state output.
			d := now - j.arrival
			s.delay[j.class].Add(d)
			s.delayQ[j.class].Add(d)
			s.completed[j.class]++
		}
		s.freeJob(j)
	}
}
