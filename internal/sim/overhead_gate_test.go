package sim

// The disabled-recorder overhead gate: with no recorder attached the event
// loop must stay within 2% of the recorded baseline. Raw cross-machine
// nanosecond comparisons are meaningless, so the gate anchors on the
// same-machine numbers in results/BENCH_obs.json (captured together with the
// recorder change) and normalizes residual machine-speed drift with
// BenchmarkCalendar as a calibration probe (same code then and now, pure
// CPU, allocation-free). If BENCH_obs.json is missing the gate falls back to
// the BENCH_sim.json reference box with a much wider margin: the calendar is
// a poor proxy for the whole event loop across microarchitectures (observed
// mismatch ~2.3x between the reference box and a faster Xeon: the calendar
// sped up 3.1x, the event loop only 1.3x), so the fallback can only catch
// multi-x regressions. Either way the gate exists to catch gross hot-path
// mistakes — a stray allocation, a mutex, an unguarded recorder call per
// event, which cost 2-10x — not single-percent drift; the authoritative 2%
// before/after comparison is the same-machine pair recorded in
// BENCH_obs.json. CI's bench-smoke job runs this with
// CLUSTERQ_OVERHEAD_GATE=1; plain `go test` skips it.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clusterq/internal/queueing"
)

// overheadBudget is the allowed disabled-recorder overhead over the
// baseline, per the PR's acceptance criterion.
const overheadBudget = 0.02

// sameMachineMargin absorbs calendar-probe noise, scheduling jitter, and
// small instruction-mix differences between similar containers when the
// anchor is the same-machine BENCH_obs.json baseline.
const sameMachineMargin = 0.25

// crossMachineMargin is the fallback slack when only the BENCH_sim.json
// reference-box numbers are available. The calendar-to-event-loop speed
// ratio varies ~2.3x across the machines we have measured, so anything
// tighter would fire on healthy code; 1.5 still catches an allocation or
// lock added per event.
const crossMachineMargin = 1.5

func measureMin(b func(b *testing.B), rounds int) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(b)
		ns := float64(r.NsPerOp())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// readBaseline pulls ns_op entries for the two anchor benchmarks out of a
// results JSON file. section is the top-level key holding the benchmark map.
func readBaseline(t *testing.T, file, section string) (fcfs, cal float64, ok bool) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "results", file))
	if err != nil {
		return 0, 0, false
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s parse: %v", file, err)
	}
	var bench map[string]json.RawMessage
	if err := json.Unmarshal(doc[section], &bench); err != nil {
		return 0, 0, false
	}
	nsOp := func(name string) float64 {
		var e struct {
			NsOp float64 `json:"ns_op"`
		}
		// Sections mix benchmark objects with prose ("note"); a key that
		// does not parse as a benchmark entry simply yields no baseline.
		if err := json.Unmarshal(bench[name], &e); err != nil {
			return 0
		}
		return e.NsOp
	}
	fcfs = nsOp("BenchmarkEventLoopFCFS")
	cal = nsOp("BenchmarkCalendar")
	return fcfs, cal, fcfs > 0 && cal > 0
}

func TestDisabledRecorderOverheadGate(t *testing.T) {
	if os.Getenv("CLUSTERQ_OVERHEAD_GATE") == "" {
		t.Skip("set CLUSTERQ_OVERHEAD_GATE=1 to run the bench-smoke overhead gate")
	}

	baseFCFS, baseCal, ok := readBaseline(t, "BENCH_obs.json", "gate_baseline")
	margin := sameMachineMargin
	source := "BENCH_obs.json gate_baseline (same machine as the recorder change)"
	if !ok {
		baseFCFS, baseCal, ok = readBaseline(t, "BENCH_sim.json", "internal_sim")
		margin = crossMachineMargin
		source = "BENCH_sim.json reference box (cross-machine fallback)"
	}
	if !ok {
		t.Fatal("no usable baseline in results/BENCH_obs.json or results/BENCH_sim.json")
	}

	// Min-of-N suppresses scheduling noise; the minimum is the cleanest
	// estimate of what the code costs.
	localCal := measureMin(BenchmarkCalendar, 5)
	localFCFS := measureMin(func(b *testing.B) {
		benchReplication(b, benchCluster(queueing.NonPreemptive),
			Options{Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1})
	}, 5)

	speed := localCal / baseCal // >1: this machine is slower than the baseline box
	allowed := baseFCFS * speed * (1 + overheadBudget) * (1 + margin)
	t.Logf("baseline: %s", source)
	t.Logf("calendar: local %.0f ns vs baseline %.0f ns (speed factor %.3f)", localCal, baseCal, speed)
	t.Logf("event loop: local %.0f ns, speed-scaled baseline %.0f ns, allowed %.0f ns",
		localFCFS, baseFCFS*speed, allowed)
	if localFCFS > allowed {
		t.Errorf("disabled-recorder event loop %.0f ns/op exceeds the %.0f ns/op gate "+
			"(baseline %.0f ns/op from %s, calendar speed factor %.3f, +%.0f%% budget+margin); "+
			"a hot-path regression has likely crept into the event loop",
			localFCFS, allowed, baseFCFS, source, speed,
			100*((1+overheadBudget)*(1+margin)-1))
	}
}
