package sim

import (
	"math"
	"testing"

	"clusterq/internal/queueing"
	"clusterq/internal/stats"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds too similar")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	var w stats.Welford
	buckets := make([]int, 10)
	const n = 200000
	for i := 0; i < n; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
		w.Add(u)
		buckets[int(u*10)]++
	}
	if math.Abs(w.Mean()-0.5) > 0.005 {
		t.Errorf("mean = %g", w.Mean())
	}
	if math.Abs(w.Variance()-1.0/12) > 0.002 {
		t.Errorf("variance = %g", w.Variance())
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestExpVariates(t *testing.T) {
	r := NewRNG(11)
	var w stats.Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Exp(2))
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Errorf("exp mean = %g, want 0.5", w.Mean())
	}
	// Exponential: variance = mean².
	if math.Abs(w.Variance()-0.25) > 0.01 {
		t.Errorf("exp variance = %g, want 0.25", w.Variance())
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Error("split streams identical")
	}
}

func TestSamplersMatchDistMoments(t *testing.T) {
	dists := []queueing.ServiceDist{
		queueing.NewExponential(2),
		queueing.NewDeterministic(1.5),
		queueing.NewErlang(3, 4),
		queueing.NewHyperExpCV2(1, 4),
		queueing.NewUniform(1, 3),
	}
	for _, d := range dists {
		s := SamplerFor(d)
		if !almostEq(s.Mean(), d.Mean(), 1e-9) {
			t.Errorf("%v: sampler mean %g != dist mean %g", d, s.Mean(), d.Mean())
		}
		r := NewRNG(99)
		var w stats.Welford
		for i := 0; i < 150000; i++ {
			x := s.Sample(r)
			if x < 0 {
				t.Fatalf("%v: negative sample %g", d, x)
			}
			w.Add(x)
		}
		if relErr(w.Mean(), d.Mean()) > 0.02 {
			t.Errorf("%v: empirical mean %g vs %g", d, w.Mean(), d.Mean())
		}
		// Second moment matches too (what P-K formulas consume).
		var w2 stats.Welford
		r2 := NewRNG(100)
		for i := 0; i < 150000; i++ {
			x := s.Sample(r2)
			w2.Add(x * x)
		}
		if relErr(w2.Mean(), d.SecondMoment()) > 0.05 {
			t.Errorf("%v: empirical E[S²] %g vs %g", d, w2.Mean(), d.SecondMoment())
		}
	}
}

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
