package sim

// Observability-path benchmarks: the CSV trace writer's buffered win, and
// the event loop with the flight recorder / window sensors enabled. These
// are the numbers results/BENCH_obs.json records; the disabled-path cost is
// covered by the BENCH_sim.json event-loop benchmarks (the recorder adds
// one nil-check branch per hook site when off).

import (
	"fmt"
	"os"
	"testing"

	"clusterq/internal/obs/trace"
	"clusterq/internal/obs/window"
	"clusterq/internal/queueing"
)

// BenchmarkTraceWriterBuffered measures one trace row through the buffered
// traceWriter backed by a real file — the cost Options.Trace pays per event.
func BenchmarkTraceWriterBuffered(b *testing.B) {
	f, err := os.CreateTemp(b.TempDir(), "trace*.csv")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	tw := newTraceWriter(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.event(float64(i), TraceArrival, 1, uint64(i), -1, 0)
	}
	b.StopTimer()
	tw.flush()
	if err := tw.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceWriterUnbuffered is the pre-buffering comparator: one
// fmt.Fprintf — and therefore one file write — per event, the shape the
// traceWriter had before it buffered internally.
func BenchmarkTraceWriterUnbuffered(b *testing.B) {
	f, err := os.CreateTemp(b.TempDir(), "trace*.csv")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmt.Fprintf(f, "%.9g,%s,%d,%d,%d,%.9g\n",
			float64(i), TraceArrival, 1, uint64(i), -1, 0.0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObservedReplication mirrors benchReplication but runs as the
// recording replication so the recorder/window options actually attach.
func benchObservedReplication(b *testing.B, o Options) {
	b.Helper()
	c := benchCluster(queueing.NonPreemptive)
	if err := o.defaults(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newSimulator(c, o, o.Seed+uint64(i), true)
		if err != nil {
			b.Fatal(err)
		}
		s.run()
	}
}

// BenchmarkEventLoopRecorder is BenchmarkEventLoopFCFS with the flight
// recorder enabled: every lifecycle event takes a mutex and lands in the
// ring. The ratio to the FCFS baseline is the enabled-recorder overhead.
func BenchmarkEventLoopRecorder(b *testing.B) {
	rec := trace.NewRecorder(1 << 16)
	benchObservedReplication(b, Options{
		Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1, Recorder: rec,
	})
}

// BenchmarkEventLoopWindows enables the window sensors (with the probe tick
// that feeds their utilization series) on the same scenario.
func BenchmarkEventLoopWindows(b *testing.B) {
	w, err := window.NewSet(window.Config{Width: 100}, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchObservedReplication(b, Options{
		Horizon: 2500, Warmup: 100, Replications: 1, Seed: 1,
		Windows: w, Probe: &Probe{Period: 10},
	})
}
