package sim

import (
	"math"
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/queueing"
)

// regressionCluster is a moderately loaded single-tier priority station used
// by the white-box regression tests below: one visit per job, so per-tier and
// end-to-end counters must agree exactly.
func regressionCluster() *cluster.Cluster {
	return oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.35}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 2}})
}

// TestWarmupDefaults pins the unset-vs-explicit-zero warmup semantics: the
// Options zero value selects the 10%-of-horizon default, ZeroWarmup (any
// negative) selects a genuine no-discard run, and a warmup at or beyond the
// horizon is rejected rather than silently measuring nothing.
func TestWarmupDefaults(t *testing.T) {
	unset := Options{Horizon: 1000}
	if err := unset.defaults(); err != nil {
		t.Fatal(err)
	}
	if unset.Warmup != 100 {
		t.Errorf("unset warmup resolved to %g, want the 10%% default 100", unset.Warmup)
	}

	zero := Options{Horizon: 1000, Warmup: ZeroWarmup}
	if err := zero.defaults(); err != nil {
		t.Fatal(err)
	}
	if zero.Warmup != 0 {
		t.Errorf("ZeroWarmup resolved to %g, want 0", zero.Warmup)
	}

	given := Options{Horizon: 1000, Warmup: 250}
	if err := given.defaults(); err != nil {
		t.Fatal(err)
	}
	if given.Warmup != 250 {
		t.Errorf("explicit warmup changed to %g, want 250 unchanged", given.Warmup)
	}

	for _, w := range []float64{1000, 1500} {
		bad := Options{Horizon: 1000, Warmup: w}
		if err := bad.defaults(); err == nil {
			t.Errorf("warmup %g >= horizon accepted, want error", w)
		}
	}
}

// TestZeroWarmupCountsEverything verifies the behavioral half of the
// sentinel fix: a ZeroWarmup run keeps the transient completions a
// default-warmup run discards, and its simulator never performs the warmup
// reset (warmupDone starts true). Before the fix an explicit Warmup of 0 was
// indistinguishable from unset and silently got the 10% default.
func TestZeroWarmupCountsEverything(t *testing.T) {
	c := regressionCluster()
	base := Options{Horizon: 800, Replications: 2, Seed: 11}

	withDefault := base
	noWarmup := base
	noWarmup.Warmup = ZeroWarmup
	resDefault, err := Run(c, withDefault)
	if err != nil {
		t.Fatal(err)
	}
	resZero, err := Run(c, noWarmup)
	if err != nil {
		t.Fatal(err)
	}
	var nDefault, nZero int64
	for k := range resDefault.Completed {
		nDefault += resDefault.Completed[k]
		nZero += resZero.Completed[k]
	}
	// Same seeds, same sample paths; the only difference is whether the
	// first 10% of each replication is discarded.
	if nZero <= nDefault {
		t.Errorf("ZeroWarmup counted %d completions, default warmup %d; want strictly more without the discard", nZero, nDefault)
	}

	o := noWarmup
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	s, err := newSimulator(c, o, o.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	if !s.warmupDone {
		t.Error("ZeroWarmup simulator starts with warmupDone=false; the mid-run reset would discard data")
	}
}

// TestTierStatsMatchEndToEnd is the regression test for the per-tier warmup
// filter: on a single-tier cluster every job makes exactly one visit, so the
// per-tier wait/served counters must match the end-to-end delay counters
// sample for sample. Before the fix, jobs that arrived during the warmup
// transient but departed after the reset leaked into the tier stats (their
// end-to-end delay was correctly dropped), making the tier counts larger.
func TestTierStatsMatchEndToEnd(t *testing.T) {
	c := regressionCluster()
	o := Options{Horizon: 600, Warmup: 60, Replications: 1, Seed: 3}
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	s, err := newSimulator(c, o, o.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	s.run()
	st := s.stations[0]
	for k := range c.Classes {
		if st.servedCls[k] != s.completed[k] {
			t.Errorf("class %d: tier served %d visits but %d jobs completed; pre-warmup arrivals leaked into tier stats",
				k, st.servedCls[k], s.completed[k])
		}
		if st.waitByCls[k].Count() != s.delay[k].Count() {
			t.Errorf("class %d: tier wait has %d samples, end-to-end delay has %d",
				k, st.waitByCls[k].Count(), s.delay[k].Count())
		}
		if s.completed[k] == 0 {
			t.Errorf("class %d: no completions; the regression check needs post-warmup traffic", k)
		}
	}
}

// TestSteadyStateAllocationsBounded gates the allocation-free event loop in
// plain `go test` (CI's bench smoke only reports numbers; this fails the
// build). One full replication is ~40k calendar events; the pooled simulator
// allocates only setup state plus the high-water free lists, far below one
// allocation per event. The pre-pooling loop allocated ~3 objects per event
// and blows this bound by two orders of magnitude.
// Both calendars are gated: the ladder's rung/bucket reuse must keep it as
// setup-bounded as the heap.
func TestSteadyStateAllocationsBounded(t *testing.T) {
	c := regressionCluster()
	for _, calKind := range []string{CalendarHeap, CalendarLadder} {
		t.Run(calKind, func(t *testing.T) {
			o := Options{Horizon: 15000, Warmup: 100, Replications: 1, Seed: 5, Calendar: calKind}
			if err := o.defaults(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(3, func() {
				s, err := newSimulator(c, o, o.Seed, false)
				if err != nil {
					t.Fatal(err)
				}
				s.run()
				if s.summarize().completed[0] == 0 {
					t.Fatal("replication produced no completions")
				}
			})
			// Generous ceiling over the measured ~300 setup allocations; one
			// allocation per event would be ~40000.
			if allocs > 2000 {
				t.Errorf("full replication made %.0f allocations, want setup-only (<2000)", allocs)
			}
		})
	}
}

// TestConfidenceDefaults pins the fix for silently rewritten confidence
// levels: the zero value still selects 0.95, a valid explicit level is kept,
// and an out-of-range level is an error instead of being replaced behind the
// caller's back.
func TestConfidenceDefaults(t *testing.T) {
	unset := Options{Horizon: 1000}
	if err := unset.defaults(); err != nil {
		t.Fatal(err)
	}
	if unset.Confidence != 0.95 {
		t.Errorf("unset confidence resolved to %g, want 0.95", unset.Confidence)
	}

	given := Options{Horizon: 1000, Confidence: 0.99}
	if err := given.defaults(); err != nil {
		t.Fatal(err)
	}
	if given.Confidence != 0.99 {
		t.Errorf("explicit confidence changed to %g, want 0.99 unchanged", given.Confidence)
	}

	for _, level := range []float64{1.5, -0.2, 1, math.NaN()} {
		bad := Options{Horizon: 1000, Confidence: level}
		if err := bad.defaults(); err == nil {
			t.Errorf("confidence %g accepted, want error", level)
		}
	}
}
