package sim

import (
	"testing"

	"clusterq/internal/cluster"
	"clusterq/internal/power"
	"clusterq/internal/queueing"
)

func sleepOpts(setupMean, sleepW float64) Options {
	return Options{
		Horizon: 60000, Replications: 5, Seed: 31,
		Sleep: []*SleepConfig{{Setup: queueing.NewExponential(setupMean), SleepPower: sleepW}},
	}
}

func TestSleepMM1MatchesWelch(t *testing.T) {
	// M/M/1 instant-off with exponential setup: E[T] = 1/(μ−λ) + E[setup].
	lam, setupMean := 0.5, 2.0
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: lam}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res, err := Run(c, sleepOpts(setupMean, 5))
	if err != nil {
		t.Fatal(err)
	}
	q, err := queueing.NewMG1Setup(lam, queueing.NewExponential(1), queueing.NewExponential(setupMean))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(res.Delay[0].Mean, q.MeanResponse()) > 0.05 {
		t.Errorf("sleep M/M/1 response %v, Welch predicts %g", res.Delay[0], q.MeanResponse())
	}
}

func TestSleepMG1SetupDeterministic(t *testing.T) {
	lam := 0.6
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: lam}},
		[]queueing.Demand{{Work: 1, CV2: 0.5}}) // Erlang-2 service
	o := Options{
		Horizon: 60000, Replications: 5, Seed: 37,
		Sleep: []*SleepConfig{{Setup: queueing.NewDeterministic(1.5), SleepPower: 0}},
	}
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := queueing.NewMG1Setup(lam, queueing.NewErlang(1, 2), queueing.NewDeterministic(1.5))
	if relErr(res.Delay[0].Mean, q.MeanResponse()) > 0.05 {
		t.Errorf("det-setup response %v, Welch predicts %g", res.Delay[0], q.MeanResponse())
	}
}

func TestSleepPowerMatchesCycleAnalysis(t *testing.T) {
	lam, setupMean, sleepW := 0.4, 1.0, 10.0
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: lam}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	// oneTier uses PowerLaw(100, 10, 2) at speed 1 → busy 110, idle 100.
	res, err := Run(c, sleepOpts(setupMean, sleepW))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := queueing.NewMG1Setup(lam, queueing.NewExponential(1), queueing.NewExponential(setupMean))
	want := q.SleepAveragePower(110, 110, sleepW)
	if relErr(res.TotalPower.Mean, want) > 0.03 {
		t.Errorf("sleep power %v, cycle analysis predicts %g", res.TotalPower, want)
	}
	// And sleeping must beat always-on at this light load with deep sleep.
	resOn, err := Run(c, Options{Horizon: 60000, Replications: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.TotalPower.Mean < resOn.TotalPower.Mean) {
		t.Errorf("sleep power %g not below always-on %g", res.TotalPower.Mean, resOn.TotalPower.Mean)
	}
}

func TestSleepZeroTrafficDrawsSleepPower(t *testing.T) {
	c := oneTier(3, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	res, err := Run(c, sleepOpts(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(res.TotalPower.Mean, 3*7) > 1e-9 {
		t.Errorf("idle cluster draws %g W, want 21", res.TotalPower.Mean)
	}
}

func TestSleepMultiServerThroughputConserved(t *testing.T) {
	c := oneTier(3, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 1.8}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	o := sleepOpts(0.5, 5)
	o.Horizon = 40000
	res, err := Run(c, o)
	if err != nil {
		t.Fatal(err)
	}
	span := (o.Horizon - o.Horizon*0.1) * float64(res.Replications)
	thr := float64(res.Completed[0]) / span
	if relErr(thr, 1.8) > 0.03 {
		t.Errorf("throughput %g, want 1.8", thr)
	}
	// Delay with sleep must exceed the always-on M/M/3 response.
	mmc, _ := queueing.NewMMc(1.8, 1, 3)
	if !(res.Delay[0].Mean > mmc.MeanResponse()) {
		t.Errorf("sleep delay %g not above always-on %g", res.Delay[0].Mean, mmc.MeanResponse())
	}
}

func TestSleepPriorityOrderingPreserved(t *testing.T) {
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "hi", Lambda: 0.3}, {Name: "lo", Lambda: 0.3}},
		[]queueing.Demand{{Work: 1, CV2: 1}, {Work: 1, CV2: 1}})
	res, err := Run(c, sleepOpts(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Delay[0].Mean < res.Delay[1].Mean) {
		t.Errorf("priority lost under sleep: %g vs %g", res.Delay[0].Mean, res.Delay[1].Mean)
	}
}

func TestSleepConfigValidation(t *testing.T) {
	c := oneTier(1, 1, queueing.NonPreemptive,
		[]cluster.Class{{Name: "a", Lambda: 0.5}},
		[]queueing.Demand{{Work: 1, CV2: 1}})
	if _, err := Run(c, Options{Horizon: 100, Sleep: []*SleepConfig{nil, nil}}); err == nil {
		t.Error("tier-count mismatch accepted")
	}
	if _, err := Run(c, Options{Horizon: 100, Sleep: []*SleepConfig{{}}}); err == nil {
		t.Error("missing setup distribution accepted")
	}
	if _, err := Run(c, Options{Horizon: 100,
		Sleep: []*SleepConfig{{Setup: queueing.NewExponential(1), SleepPower: -1}}}); err == nil {
		t.Error("negative sleep power accepted")
	}
	// nil entries disable sleep per tier.
	pm, _ := power.NewPowerLaw(50, 5, 2)
	c2 := &cluster.Cluster{
		Tiers: []*cluster.Tier{
			{Name: "a", Servers: 1, Speed: 2, Discipline: queueing.NonPreemptive, Power: pm,
				Demands: []queueing.Demand{{Work: 1, CV2: 1}}},
			{Name: "b", Servers: 1, Speed: 2, Discipline: queueing.NonPreemptive, Power: pm,
				Demands: []queueing.Demand{{Work: 1, CV2: 1}}},
		},
		Classes: []cluster.Class{{Name: "x", Lambda: 0.5}},
	}
	if _, err := Run(c2, Options{Horizon: 2000, Replications: 1,
		Sleep: []*SleepConfig{nil, {Setup: queueing.NewExponential(1), SleepPower: 0}}}); err != nil {
		t.Fatalf("mixed sleep config rejected: %v", err)
	}
}
