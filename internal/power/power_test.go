package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestPowerLawBasics(t *testing.T) {
	m, err := NewPowerLaw(100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.IdlePower(2) != 100 {
		t.Errorf("idle = %g", m.IdlePower(2))
	}
	if got := m.BusyPower(2); !almostEq(got, 100+10*8, 1e-12) {
		t.Errorf("busy(2) = %g, want 180", got)
	}
	if got := m.DynamicPower(2); !almostEq(got, 80, 1e-12) {
		t.Errorf("dynamic(2) = %g", got)
	}
}

func TestPowerLawValidation(t *testing.T) {
	if _, err := NewPowerLaw(-1, 1, 2); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := NewPowerLaw(1, -1, 2); err == nil {
		t.Error("negative kappa accepted")
	}
	if _, err := NewPowerLaw(1, 1, 0.5); err == nil {
		t.Error("gamma < 1 accepted")
	}
}

func TestPowerLawConvexInSpeed(t *testing.T) {
	m, _ := NewPowerLaw(50, 5, 2.5)
	f := func(a, b float64) bool {
		s1 := 0.1 + math.Mod(math.Abs(a), 10)
		s2 := 0.1 + math.Mod(math.Abs(b), 10)
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		mid := (s1 + s2) / 2
		return m.BusyPower(mid) <= (m.BusyPower(s1)+m.BusyPower(s2))/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearModel(t *testing.T) {
	m := Linear{Idle: 10, Slope: 3}
	if m.IdlePower(5) != 10 || m.BusyPower(5) != 25 {
		t.Errorf("linear: %g %g", m.IdlePower(5), m.BusyPower(5))
	}
}

func TestTableInterpolation(t *testing.T) {
	tb, err := NewTable(20, []float64{1, 2, 4}, []float64{50, 80, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.BusyPower(1); got != 50 {
		t.Errorf("at first point = %g", got)
	}
	if got := tb.BusyPower(4); got != 200 {
		t.Errorf("at last point = %g", got)
	}
	if got := tb.BusyPower(1.5); !almostEq(got, 65, 1e-12) {
		t.Errorf("interp(1.5) = %g, want 65", got)
	}
	if got := tb.BusyPower(3); !almostEq(got, 140, 1e-12) {
		t.Errorf("interp(3) = %g, want 140", got)
	}
	// Clamping.
	if got := tb.BusyPower(0.5); got != 50 {
		t.Errorf("below range = %g", got)
	}
	if got := tb.BusyPower(9); got != 200 {
		t.Errorf("above range = %g", got)
	}
	if tb.IdlePower(2) != 20 {
		t.Error("idle power")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(1, nil, nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTable(1, []float64{1, 2}, []float64{5}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewTable(1, []float64{2, 1}, []float64{5, 6}); err == nil {
		t.Error("non-increasing speeds accepted")
	}
	if _, err := NewTable(-1, []float64{1}, []float64{5}); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := NewTable(1, []float64{0}, []float64{5}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestStationPower(t *testing.T) {
	m, _ := NewPowerLaw(100, 10, 2) // busy(2) = 140
	// 4 servers at ρ=0.5: 4·(0.5·140 + 0.5·100) = 480.
	if got := StationPower(m, 2, 4, 0.5); !almostEq(got, 480, 1e-12) {
		t.Errorf("station power = %g, want 480", got)
	}
	// Zero load: idle floor only.
	if got := StationPower(m, 2, 4, 0); !almostEq(got, 400, 1e-12) {
		t.Errorf("idle floor = %g, want 400", got)
	}
	// Clamping: overload and negative.
	if got := StationPower(m, 2, 4, 1.7); !almostEq(got, 4*140, 1e-12) {
		t.Errorf("overloaded = %g", got)
	}
	if got := StationPower(m, 2, 4, math.Inf(1)); !almostEq(got, 4*140, 1e-12) {
		t.Errorf("infinite rho = %g", got)
	}
	if got := StationPower(m, 2, 4, -0.3); !almostEq(got, 400, 1e-12) {
		t.Errorf("negative rho = %g", got)
	}
}

func TestStationPowerMonotoneInLoadAndSpeed(t *testing.T) {
	m, _ := NewPowerLaw(80, 4, 3)
	f := func(a, b float64) bool {
		r1 := math.Mod(math.Abs(a), 1)
		r2 := math.Mod(math.Abs(b), 1)
		if math.IsNaN(r1) || math.IsNaN(r2) {
			return true
		}
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		if StationPower(m, 2, 3, r1) > StationPower(m, 2, 3, r2)+1e-9 {
			return false
		}
		// More speed at same load costs more.
		return StationPower(m, 1.5, 3, r2) <= StationPower(m, 2.5, 3, r2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRequestEnergy(t *testing.T) {
	m, _ := NewPowerLaw(100, 10, 2)
	// Busy-idle gap at s=2 is 40 W; a 0.5 s service burns 20 J.
	if got := RequestEnergy(m, 2, 0.5); !almostEq(got, 20, 1e-12) {
		t.Errorf("request energy = %g, want 20", got)
	}
}

func TestEnergyPerUnitWorkIncreasesWithSpeed(t *testing.T) {
	m, _ := NewPowerLaw(100, 10, 3)
	// κ·s^{γ−1}: at s=1 → 10, at s=2 → 40.
	if got := EnergyPerUnitWork(m, 1); !almostEq(got, 10, 1e-12) {
		t.Errorf("e/work at 1 = %g", got)
	}
	if got := EnergyPerUnitWork(m, 2); !almostEq(got, 40, 1e-12) {
		t.Errorf("e/work at 2 = %g", got)
	}
	prev := 0.0
	for s := 0.5; s < 8; s += 0.5 {
		e := EnergyPerUnitWork(m, s)
		if e <= prev {
			t.Fatalf("energy per work not increasing at s=%g", s)
		}
		prev = e
	}
	if !math.IsNaN(EnergyPerUnitWork(m, 0)) {
		t.Error("zero speed should be NaN")
	}
}

func TestBreakdown(t *testing.T) {
	m, _ := NewPowerLaw(100, 10, 2)
	b := StationBreakdown(m, 2, 4, 0.5)
	if !almostEq(b.Static, 400, 1e-12) {
		t.Errorf("static = %g", b.Static)
	}
	if !almostEq(b.Dynamic, 4*0.5*40, 1e-12) {
		t.Errorf("dynamic = %g", b.Dynamic)
	}
	if !almostEq(b.Total(), StationPower(m, 2, 4, 0.5), 1e-12) {
		t.Errorf("breakdown total %g != station power", b.Total())
	}
	if len(b.String()) == 0 {
		t.Error("empty string")
	}
	// Clamped breakdown.
	bc := StationBreakdown(m, 2, 4, 2)
	if !almostEq(bc.Dynamic, 4*40, 1e-12) {
		t.Errorf("clamped dynamic = %g", bc.Dynamic)
	}
	bn := StationBreakdown(m, 2, 4, -1)
	if bn.Dynamic != 0 {
		t.Errorf("negative-rho dynamic = %g", bn.Dynamic)
	}
}

func TestModelStrings(t *testing.T) {
	m, _ := NewPowerLaw(1, 2, 3)
	tb, _ := NewTable(1, []float64{1}, []float64{2})
	for _, s := range []string{m.String(), Linear{1, 2}.String(), tb.String()} {
		if len(s) == 0 {
			t.Error("empty model string")
		}
	}
}
