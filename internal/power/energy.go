package power

import (
	"fmt"
	"math"
)

// StationPower returns the average power drawn by a station of c servers at
// speed s with per-server utilization rho: each server is busy a fraction
// rho of the time (utilization law), so
//
//	P̄ = c · [ρ·P_busy(s) + (1−ρ)·P_idle(s)].
//
// rho is clamped to [0, 1]; an unstable station is busy all the time.
func StationPower(m Model, s float64, c int, rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho > 1 || math.IsInf(rho, 1) {
		rho = 1
	}
	return float64(c) * (rho*m.BusyPower(s) + (1-rho)*m.IdlePower(s))
}

// RequestEnergy returns the marginal (dynamic) energy attributable to serving
// one request with mean service time svc at speed s: the busy/idle power gap
// integrated over the service time,
//
//	e = (P_busy(s) − P_idle(s)) · svc.
//
// This is the energy the cluster would not have spent had the request not
// arrived; idle (static) energy is attributed separately because it is paid
// regardless of traffic.
func RequestEnergy(m Model, s, svc float64) float64 {
	return (m.BusyPower(s) - m.IdlePower(s)) * svc
}

// EnergyPerUnitWork returns the dynamic energy to process one unit of work at
// speed s: (P_busy − P_idle)/s. Under the power law this is κ·s^{γ−1} + 0,
// strictly increasing in s for γ > 1 — the fundamental energy/performance
// tension the paper's optimizations trade against delay.
func EnergyPerUnitWork(m Model, s float64) float64 {
	if !(s > 0) {
		return math.NaN()
	}
	return (m.BusyPower(s) - m.IdlePower(s)) / s
}

// Breakdown decomposes a station's average power into its static (idle floor
// of all servers) and dynamic (traffic-induced) components.
type Breakdown struct {
	Static  float64 // c·P_idle — paid regardless of traffic
	Dynamic float64 // c·ρ·(P_busy − P_idle) — induced by served work
}

// Total returns Static + Dynamic.
func (b Breakdown) Total() float64 { return b.Static + b.Dynamic }

func (b Breakdown) String() string {
	return fmt.Sprintf("static=%.4gW dynamic=%.4gW total=%.4gW", b.Static, b.Dynamic, b.Total())
}

// StationBreakdown returns the static/dynamic power split of a station.
func StationBreakdown(m Model, s float64, c int, rho float64) Breakdown {
	if rho < 0 {
		rho = 0
	}
	if rho > 1 || math.IsInf(rho, 1) {
		rho = 1
	}
	return Breakdown{
		Static:  float64(c) * m.IdlePower(s),
		Dynamic: float64(c) * rho * (m.BusyPower(s) - m.IdlePower(s)),
	}
}
